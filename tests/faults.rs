//! Fault-injection sweeps: G-TSC must stay coherent — zero checker
//! violations — under seeded storms of NoC latency jitter, bounded
//! reordering, duplicate delivery, DRAM service-time jitter, and
//! timestamp-rollover pressure. Timestamp ordering tolerates arbitrary
//! message timing by construction (the Tardis lineage proof), so delayed,
//! reordered, or replayed messages may change *performance* but never
//! *correctness*; these sweeps are the executable form of that claim.
//!
//! Every storm derives from a single `u64` seed (`FaultConfig::chaos`),
//! so any failure reproduces exactly: re-run with the seed printed in the
//! panic message (see README, "Robustness harness").

use gtsc::faults::FaultStats;
use gtsc::gpu::{VecKernel, WarpOp, WarpProgram};
use gtsc::sim::{GpuSim, RunReport, SimBuilder};
use gtsc::types::{
    Addr, ConsistencyModel, FaultConfig, GpuConfig, ProtocolKind, TransportStats, Version,
};
use gtsc::workloads::micro;

/// Seeds swept by every storm test (≥100 per the robustness harness
/// contract; keep this in sync with DESIGN.md "Fault model & liveness").
const SEEDS: std::ops::Range<u64> = 0..104;

/// Two CTAs of two warps each hammering one block with a mix of atomics,
/// stores, and loads — maximal sharing, so a fault that breaks ordering
/// has the best possible chance of surfacing as a checker violation.
fn contended_atomics() -> VecKernel {
    let prog = |s: u64| {
        WarpProgram(
            (0..12)
                .map(|i| match (i + s) % 3 {
                    0 => WarpOp::atomic_coalesced(Addr(0), 32),
                    1 => WarpOp::store_coalesced(Addr(0), 32),
                    _ => WarpOp::load_coalesced(Addr(0), 32),
                })
                .collect(),
        )
    };
    VecKernel::new(
        "contend-atomic",
        2,
        vec![vec![prog(0), prog(1)], vec![prog(2), prog(3)]],
    )
}

/// Runs `kernel` on a small G-TSC GPU with the chaos storm for `seed`;
/// returns the report, the final memory image (for reproducibility
/// comparisons), and the aggregated fault counters.
fn run_storm(
    model: ConsistencyModel,
    seed: u64,
    kernel: &VecKernel,
) -> (RunReport, String, FaultStats) {
    let cfg = GpuConfig::test_small()
        .with_protocol(ProtocolKind::Gtsc)
        .with_consistency(model)
        .with_faults(FaultConfig::chaos(seed));
    let mut sim = GpuSim::new(cfg);
    let report = sim
        .run_kernel(kernel)
        .unwrap_or_else(|e| panic!("seed {seed} ({model:?}): {e}"));
    let image = format!("{:?}", sim.memory_image());
    let stats = sim.fault_stats().expect("chaos config is active");
    (report, image, stats)
}

/// One full storm sweep for a (model, kernel) pair. Asserts liveness and
/// zero violations per seed, and that the storm actually perturbed
/// something across the sweep (a silently inert harness proves nothing).
fn sweep(model: ConsistencyModel, kernel: &VecKernel) {
    let mut total = FaultStats::default();
    for seed in SEEDS {
        let (report, _, stats) = run_storm(model, seed, kernel);
        assert!(
            report.violations.is_empty(),
            "seed {seed} ({model:?}, {}): {:?}",
            kernel_name(kernel),
            report.violations
        );
        assert!(report.stats.cycles.0 > 0);
        total.merge(&stats);
    }
    assert!(total.jittered > 0, "storm never jittered a packet");
    assert!(total.reordered > 0, "storm never reordered a packet");
    assert!(total.duplicated > 0, "storm never duplicated a packet");
}

fn kernel_name(k: &VecKernel) -> &str {
    use gtsc::gpu::Kernel;
    k.name()
}

#[test]
fn gtsc_sc_message_passing_survives_fault_storms() {
    sweep(ConsistencyModel::Sc, &micro::message_passing(3));
}

#[test]
fn gtsc_rc_message_passing_survives_fault_storms() {
    sweep(ConsistencyModel::Rc, &micro::message_passing(3));
}

#[test]
fn gtsc_sc_contended_atomics_survive_fault_storms() {
    sweep(ConsistencyModel::Sc, &contended_atomics());
}

#[test]
fn gtsc_rc_contended_atomics_survive_fault_storms() {
    sweep(ConsistencyModel::Rc, &contended_atomics());
}

/// The whole plan is a pure function of the seed: same seed, same run —
/// byte for byte, across the report (stats, histograms, violations) and
/// the final memory image.
#[test]
fn fault_runs_are_reproducible_byte_for_byte() {
    let kernel = micro::message_passing(2);
    for seed in SEEDS {
        let (r1, img1, s1) = run_storm(ConsistencyModel::Rc, seed, &kernel);
        let (r2, img2, s2) = run_storm(ConsistencyModel::Rc, seed, &kernel);
        assert_eq!(
            format!("{r1:?}"),
            format!("{r2:?}"),
            "seed {seed}: report diverged"
        );
        assert_eq!(img1, img2, "seed {seed}: memory image diverged");
        assert_eq!(s1, s2, "seed {seed}: fault counters diverged");
    }
}

/// The incoherent baseline must keep failing under the same storms: the
/// reader that cached DATA keeps returning the stale copy after it has
/// observed the writer's new FLAG — the forbidden MP outcome. If the
/// harness somehow masked incoherence, G-TSC's clean sweeps above would
/// be vacuous.
#[test]
fn incoherent_baseline_still_shows_stale_reads_under_faults() {
    let data = Addr(0);
    let flag = Addr(128);
    let writer = WarpProgram(vec![
        WarpOp::Compute(40), // let the reader cache the old DATA first
        WarpOp::store_coalesced(data, 32),
        WarpOp::Fence,
        WarpOp::store_coalesced(flag, 32),
    ]);
    let reader = WarpProgram(vec![
        WarpOp::load_coalesced(data, 32), // caches stale DATA
        WarpOp::Compute(16_000),          // long wait: writer finishes
        WarpOp::load_coalesced(flag, 32), // miss -> sees the new FLAG
        WarpOp::Fence,
        WarpOp::load_coalesced(data, 32), // HITS the stale cached DATA
    ]);
    let kernel = VecKernel::new("stale-mp", 1, vec![vec![writer], vec![reader]]);
    let mut stale_runs = 0usize;
    // Seed 0 = fault-free control; the rest are chaos storms. Jitter can
    // perturb the race either way, so the assertion is over the sweep.
    for seed in 0..24u64 {
        let mut cfg = GpuConfig::test_small().with_protocol(ProtocolKind::L1NoCoherence);
        if seed > 0 {
            cfg = cfg.with_faults(FaultConfig::chaos(seed));
        }
        let geom = cfg.l1;
        let mut sim = GpuSim::new(cfg);
        sim.run_kernel(&kernel)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let flags = sim.checker().load_observations(geom.block_of(flag));
        let datas = sim.checker().load_observations(geom.block_of(data));
        let saw_new_flag = flags
            .iter()
            .any(|o| o.sm == 1 && o.version != Version::ZERO);
        let stale_after = datas
            .iter()
            .filter(|o| o.sm == 1)
            .max_by_key(|o| o.at)
            .is_some_and(|o| o.version == Version::ZERO);
        if saw_new_flag && stale_after {
            stale_runs += 1;
        }
    }
    assert!(
        stale_runs > 0,
        "the incoherent baseline never exhibited the forbidden MP outcome \
         across the sweep — the harness is masking incoherence"
    );
}

/// The fault-free reference image for `kernel`: loss soaks must leave
/// memory byte-identical to this, or the transport dropped or replayed
/// a write somewhere.
fn clean_image(model: ConsistencyModel, kernel: &VecKernel) -> String {
    let cfg = GpuConfig::test_small()
        .with_protocol(ProtocolKind::Gtsc)
        .with_consistency(model);
    let mut sim = GpuSim::new(cfg);
    sim.run_kernel(kernel).expect("fault-free run completes");
    format!("{:?}", sim.memory_image())
}

/// Loss soak: every seed runs the full chaos storm plus flit drops at
/// `drop_permille` (and corruption at half that). Each run must complete
/// — the watchdog turns a lost-packet stall into an error, so liveness
/// is asserted by the unwrap — with zero checker violations and a
/// memory image identical to the fault-free run. Across the sweep the
/// harness must show its work: packets actually dropped, transport
/// actually retransmitted.
fn lossy_sweep(drop_permille: u16) {
    let kernel = micro::message_passing(3);
    let reference = clean_image(ConsistencyModel::Sc, &kernel);
    let mut faults = FaultStats::default();
    let mut transport = TransportStats::default();
    for seed in SEEDS {
        let cfg = GpuConfig::test_small()
            .with_protocol(ProtocolKind::Gtsc)
            .with_faults(FaultConfig::lossy(seed, drop_permille));
        let mut sim = GpuSim::new(cfg);
        let report = sim
            .run_kernel(&kernel)
            .unwrap_or_else(|e| panic!("seed {seed} at {drop_permille}permille drop: {e}"));
        assert!(
            report.violations.is_empty(),
            "seed {seed} at {drop_permille}permille drop: {:?}",
            report.violations
        );
        assert_eq!(
            format!("{:?}", sim.memory_image()),
            reference,
            "seed {seed} at {drop_permille}permille drop: memory image diverged \
             from the fault-free run"
        );
        faults.merge(&sim.fault_stats().expect("lossy config is active"));
        transport.merge(&report.stats.transport);
    }
    assert!(faults.dropped > 0, "soak never dropped a packet");
    assert!(faults.corrupted > 0, "soak never corrupted a packet");
    assert!(
        transport.retransmits > 0 && transport.acks > 0,
        "transport never earned its keep: {transport:?}"
    );
    assert!(transport.delivered > 0);
}

#[test]
fn gtsc_survives_1pct_flit_drop_soak() {
    lossy_sweep(10);
}

#[test]
fn gtsc_survives_5pct_flit_drop_soak() {
    lossy_sweep(50);
}

/// L2-bank crash/recovery storms on top of a lossy NoC: a crashed bank
/// forgets its tag array and every in-flight conversation, recovery
/// rebuilds from DRAM behind a global epoch bump, and the L1s' leases
/// stay safe because logical time only moves forward. Memory must still
/// match the fault-free run.
#[test]
fn bank_crash_storms_recover_behind_epoch_bumps() {
    let kernel = micro::message_passing(3);
    let reference = clean_image(ConsistencyModel::Sc, &kernel);
    let mut recoveries = 0u64;
    let mut rollovers = 0u64;
    for seed in 0..32u64 {
        let cfg = GpuConfig::test_small()
            .with_protocol(ProtocolKind::Gtsc)
            .with_faults(FaultConfig::lossy(seed, 10).with_bank_crashes(2, 400));
        let mut sim = GpuSim::new(cfg);
        let report = sim
            .run_kernel(&kernel)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            report.violations.is_empty(),
            "seed {seed}: {:?}",
            report.violations
        );
        assert_eq!(
            format!("{:?}", sim.memory_image()),
            reference,
            "seed {seed}: bank crash corrupted the memory image"
        );
        recoveries += report.stats.transport.bank_recoveries;
        rollovers += report.stats.l2.ts_rollovers;
    }
    assert!(
        recoveries > 0,
        "no bank crash ever fired across the sweep — the schedule is inert"
    );
    assert!(
        rollovers > 0,
        "bank recoveries must ride the Section V-D epoch-bump protocol"
    );
}

/// The `ts_bits_cap` knob shrinks the epoch budget until rollovers storm:
/// the Section V-D reset protocol must fire repeatedly and still leave
/// the run coherent, even with the NoC misbehaving underneath it.
#[test]
fn rollover_storms_stay_coherent_under_noc_faults() {
    for seed in 0..16u64 {
        let mut faults = FaultConfig::chaos(seed);
        faults.ts_bits_cap = 6; // 64-tick epochs: rollovers guaranteed
        let cfg = GpuConfig::test_small()
            .with_protocol(ProtocolKind::Gtsc)
            .with_faults(faults);
        let mut sim = GpuSim::new(cfg);
        let report = sim
            .run_kernel(&contended_atomics())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            report.violations.is_empty(),
            "seed {seed}: {:?}",
            report.violations
        );
        assert!(
            report.stats.l2.ts_rollovers > 0,
            "seed {seed}: 6-bit timestamps should have forced a rollover"
        );
    }
}

/// `SimBuilder` and the fault plan compose: a custom-protocol build still
/// gets the same seeded storm installed (the harness is substrate-level,
/// not protocol-level).
#[test]
fn builder_installs_faults_for_custom_protocols() {
    let cfg = GpuConfig::test_small()
        .with_protocol(ProtocolKind::Gtsc)
        .with_faults(FaultConfig::chaos(7));
    let mut sim = SimBuilder::new(cfg).try_build().expect("valid config");
    let report = sim
        .run_kernel(&micro::message_passing(2))
        .expect("completes");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(
        sim.fault_stats().is_some(),
        "fault plan not installed via builder"
    );
}
