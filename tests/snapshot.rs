//! Whole-machine snapshot determinism, end to end: checkpoint a GPU
//! mid-kernel under active fault injection (lossy NoC + L2 bank
//! crashes), restore it into a freshly built machine, and prove the
//! continuation is indistinguishable — byte for byte — from a run that
//! was never interrupted. Plus corruption handling: damaged images
//! must produce structured [`SnapshotError`]s (never a panic) and the
//! [`CheckpointStore`] must fall back to its previous good image.

use proptest::prelude::*;

use gtsc::gpu::Kernel;
use gtsc::sim::{
    CheckpointError, CheckpointSource, CheckpointStore, GpuSim, KernelProgress, SimBuilder,
};
use gtsc::types::snap::SnapshotError;
use gtsc::types::{ConsistencyModel, FaultConfig, GpuConfig, ProtocolKind};
use gtsc::workloads::{Benchmark, Scale};

fn faulty_config(seed: u64, drop_permille: u16) -> GpuConfig {
    GpuConfig::test_small()
        .with_protocol(ProtocolKind::Gtsc)
        .with_consistency(ConsistencyModel::Rc)
        .with_faults(FaultConfig::lossy(seed, drop_permille).with_bank_crashes(2, 400))
}

fn build(cfg: &GpuConfig) -> GpuSim {
    SimBuilder::new(cfg.clone())
        .try_build()
        .expect("test config builds")
}

/// Advances in fixed slices until at least `min_cycles` have elapsed.
/// Returns true if the kernel drained before reaching that point.
fn advance_past(
    sim: &mut GpuSim,
    kernel: &dyn Kernel,
    progress: &mut KernelProgress,
    slice: u64,
    min_cycles: u64,
) -> bool {
    while sim.now().0 < min_cycles {
        if sim
            .advance_kernel(kernel, progress, slice)
            .expect("advance")
            .is_some()
        {
            return true;
        }
    }
    false
}

fn finish(
    sim: &mut GpuSim,
    kernel: &dyn Kernel,
    progress: &mut KernelProgress,
) -> gtsc::sim::RunReport {
    loop {
        if let Some(report) = sim.advance_kernel(kernel, progress, 997).expect("advance") {
            return report;
        }
    }
}

/// The acceptance-criteria determinism proof: for 20 seeds, a run that
/// is checkpointed mid-kernel under active faults and continued in a
/// *different* simulator instance matches the uninterrupted run's
/// stats, violations, and memory image exactly.
#[test]
fn twenty_seeds_mid_kernel_restore_matches_uninterrupted() {
    for seed in 0..20u64 {
        let bench = if seed % 2 == 0 {
            Benchmark::Km
        } else {
            Benchmark::Hs
        };
        let kernel = bench.build(Scale::Tiny);
        let cfg = faulty_config(seed, 50 + (seed as u16 % 4) * 10);

        let mut straight = build(&cfg);
        let reference = straight.run_kernel(&*kernel).expect("uninterrupted run");

        let mut first = build(&cfg);
        let mut progress = KernelProgress::new(&*kernel);
        let drained = advance_past(&mut first, &*kernel, &mut progress, 97, 150);
        assert!(
            !drained,
            "seed {seed}: kernel drained before the checkpoint"
        );
        let snapshot = first.save_snapshot(Some(&progress)).expect("snapshot");
        drop(first); // the original machine is gone — like a killed process

        let mut second = build(&cfg);
        let restored = second
            .restore_snapshot(&snapshot)
            .expect("restore")
            .expect("snapshot carried kernel progress");
        assert_eq!(restored.dispatched(), progress.dispatched(), "seed {seed}");
        let mut progress = restored;
        let resumed = finish(&mut second, &*kernel, &mut progress);

        assert_eq!(
            resumed.stats, reference.stats,
            "seed {seed}: stats diverged"
        );
        assert_eq!(
            resumed.violations.len(),
            reference.violations.len(),
            "seed {seed}: violations diverged"
        );
        assert_eq!(
            second.memory_image(),
            straight.memory_image(),
            "seed {seed}: memory image diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 100, ..ProptestConfig::default() })]

    /// snapshot → restore → snapshot is byte-identical across random
    /// seeds, loss rates, and checkpoint instants, with the lossy NoC
    /// and bank-crash machinery active.
    #[test]
    fn snapshot_restore_snapshot_is_byte_identical(
        seed in 0u64..1_000_000,
        drop_permille in 0u16..120,
        checkpoint_at in 60u64..400,
        slice in 31u64..257,
    ) {
        let kernel = Benchmark::Km.build(Scale::Tiny);
        let cfg = faulty_config(seed, drop_permille);
        let mut sim = build(&cfg);
        let mut progress = KernelProgress::new(&*kernel);
        advance_past(&mut sim, &*kernel, &mut progress, slice, checkpoint_at);
        let first = sim.save_snapshot(Some(&progress)).expect("snapshot");

        let mut rebuilt = build(&cfg);
        let restored = rebuilt.restore_snapshot(&first).expect("restore");
        let second = rebuilt.save_snapshot(restored.as_ref()).expect("re-snapshot");
        prop_assert_eq!(first, second);
    }

    /// Corrupting a snapshot anywhere — truncation or bit flips — must
    /// yield a structured error, never a panic, and never a sim that
    /// silently half-restored.
    #[test]
    fn corrupted_snapshots_error_cleanly(
        seed in 0u64..10_000,
        cut_permille in 1u32..999,
        flip_at in 0usize..4096,
    ) {
        let kernel = Benchmark::Hs.build(Scale::Tiny);
        let cfg = faulty_config(seed, 40);
        let mut sim = build(&cfg);
        let mut progress = KernelProgress::new(&*kernel);
        advance_past(&mut sim, &*kernel, &mut progress, 101, 120);
        let good = sim.save_snapshot(Some(&progress)).expect("snapshot");

        // Truncation at a proportional point.
        let cut = (good.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        let mut fresh = build(&cfg);
        prop_assert!(fresh.restore_snapshot(&good[..cut]).is_err());

        // Single bit flip.
        let mut flipped = good.clone();
        let i = flip_at % flipped.len();
        flipped[i] ^= 1 << (flip_at % 8);
        let mut fresh = build(&cfg);
        prop_assert!(fresh.restore_snapshot(&flipped).is_err());

        // The pristine bytes still restore after all that.
        let mut fresh = build(&cfg);
        prop_assert!(fresh.restore_snapshot(&good).is_ok());
    }
}

/// A corrupt primary checkpoint file falls back to the previous good
/// image; only when both are damaged does the loader report (not
/// panic) `AllCorrupt`.
#[test]
fn checkpoint_store_falls_back_to_previous_good_image() {
    let dir = std::env::temp_dir().join(format!("gtsc-snapshot-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let store = CheckpointStore::new(dir.join("sim.ck"));

    let kernel = Benchmark::Km.build(Scale::Tiny);
    let cfg = faulty_config(7, 60);
    let mut sim = build(&cfg);
    let mut progress = KernelProgress::new(&*kernel);

    advance_past(&mut sim, &*kernel, &mut progress, 97, 120);
    store
        .save(&sim.save_snapshot(Some(&progress)).unwrap())
        .unwrap();
    advance_past(&mut sim, &*kernel, &mut progress, 97, 240);
    store
        .save(&sim.save_snapshot(Some(&progress)).unwrap())
        .unwrap();

    let parse = |bytes: &[u8]| -> Result<KernelProgress, SnapshotError> {
        let mut fresh = build(&cfg);
        fresh
            .restore_snapshot(bytes)?
            .ok_or(SnapshotError::MissingSection {
                name: "progress".into(),
            })
    };

    // Both images good: primary wins and reflects the later cycle.
    let (latest, src) = store.load_latest(parse).unwrap().unwrap();
    assert_eq!(src, CheckpointSource::Primary);
    assert_eq!(latest.dispatched(), progress.dispatched());

    // Scribble the primary: the previous image must load instead.
    let mut bytes = std::fs::read(store.path()).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(store.path(), &bytes).unwrap();
    let (_, src) = store.load_latest(parse).unwrap().unwrap();
    assert_eq!(
        src,
        CheckpointSource::Previous,
        "fallback to .prev expected"
    );

    // Destroy the fallback too: structured error, not a panic.
    std::fs::write(dir.join("sim.ck.prev"), b"not a snapshot").unwrap();
    match store.load_latest(parse) {
        Err(CheckpointError::AllCorrupt { primary, fallback }) => {
            assert!(primary.is_some() && fallback.is_some());
        }
        other => panic!("expected AllCorrupt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
