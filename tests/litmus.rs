//! Consistency litmus tests run on the full simulator across a grid of
//! timing parameters (NoC/L2 latencies), so the interesting interleavings
//! actually occur.

use gtsc::sim::GpuSim;
use gtsc::types::{CacheGeometry, ConsistencyModel, GpuConfig, ProtocolKind, Version};
use gtsc::workloads::micro;

fn timing_grid() -> Vec<GpuConfig> {
    let mut out = Vec::new();
    for noc_latency in [2u64, 20, 75] {
        for l2_latency in [1u64, 10, 40] {
            let mut cfg = GpuConfig::test_small();
            cfg.noc.latency = noc_latency;
            cfg.l2_latency = l2_latency;
            out.push(cfg);
        }
    }
    out
}

fn block_of(addr: gtsc::types::Addr) -> gtsc::types::BlockAddr {
    CacheGeometry::new(1024, 2, 128).block_of(addr)
}

/// Message passing: a reader that observes the new FLAG must observe the
/// new DATA. Holds for every coherent protocol with fences.
#[test]
fn message_passing_publication_holds() {
    for (p, m) in [
        (ProtocolKind::Gtsc, ConsistencyModel::Rc),
        (ProtocolKind::Gtsc, ConsistencyModel::Sc),
        (ProtocolKind::Tc, ConsistencyModel::Sc),
        (ProtocolKind::TcWeak, ConsistencyModel::Rc),
        (ProtocolKind::NoL1, ConsistencyModel::Rc),
    ] {
        for base in timing_grid() {
            let cfg = base.with_protocol(p).with_consistency(m);
            let label = cfg.label();
            let kernel = micro::message_passing(8);
            let mut sim = GpuSim::new(cfg);
            let report = sim.run_kernel(&kernel).expect("completes");
            assert!(
                report.violations.is_empty(),
                "{label}: {:?}",
                report.violations
            );
            let flags = sim.checker().load_observations(block_of(micro::FLAG));
            let datas = sim.checker().load_observations(block_of(micro::DATA));
            assert_eq!(flags.len(), datas.len());
            for (f, d) in flags.iter().zip(datas.iter()) {
                assert!(
                    !(f.version != Version::ZERO && d.version == Version::ZERO),
                    "{label}: observed new FLAG but old DATA (forbidden)"
                );
            }
        }
    }
}

/// CoRR (coherent read-read): two program-ordered reads of the same
/// location by one warp never observe new-then-old.
#[test]
fn coherent_read_read_is_monotonic() {
    for (p, m) in [
        (ProtocolKind::Gtsc, ConsistencyModel::Rc),
        (ProtocolKind::Gtsc, ConsistencyModel::Sc),
        (ProtocolKind::Tc, ConsistencyModel::Sc),
        (ProtocolKind::NoL1, ConsistencyModel::Rc),
    ] {
        for base in timing_grid() {
            let cfg = base.with_protocol(p).with_consistency(m);
            let label = cfg.label();
            let kernel = micro::coherent_read_read(8);
            let mut sim = GpuSim::new(cfg);
            let report = sim.run_kernel(&kernel).expect("completes");
            assert!(
                report.violations.is_empty(),
                "{label}: {:?}",
                report.violations
            );
            // The reader's observations in completion order must never go
            // from the new version back to ZERO.
            let obs = sim.checker().load_observations(block_of(micro::DATA));
            let reader: Vec<Version> = obs
                .iter()
                .filter(|o| o.sm == 1)
                .map(|o| o.version)
                .collect();
            let mut seen_new = false;
            for v in reader {
                if v != Version::ZERO {
                    seen_new = true;
                } else {
                    assert!(!seen_new, "{label}: read went new -> old (CoRR violation)");
                }
            }
        }
    }
}

/// Store buffering under SC: `X=1; r0=Y || Y=1; r1=X` — both readers
/// observing the initial value is forbidden by sequential consistency.
#[test]
fn store_buffering_forbidden_under_sc() {
    for p in [ProtocolKind::Gtsc, ProtocolKind::Tc, ProtocolKind::NoL1] {
        for base in timing_grid() {
            let cfg = base.with_protocol(p).with_consistency(ConsistencyModel::Sc);
            let label = cfg.label();
            let kernel = micro::store_buffering();
            let mut sim = GpuSim::new(cfg);
            let report = sim.run_kernel(&kernel).expect("completes");
            assert!(
                report.violations.is_empty(),
                "{label}: {:?}",
                report.violations
            );
            let r0 = sim.checker().load_observations(block_of(micro::Y));
            let r1 = sim.checker().load_observations(block_of(micro::X));
            assert_eq!(r0.len(), 1, "{label}");
            assert_eq!(r1.len(), 1, "{label}");
            assert!(
                !(r0[0].version == Version::ZERO && r1[0].version == Version::ZERO),
                "{label}: both readers saw initial values (forbidden under SC)"
            );
        }
    }
}

/// Atomicity: N warps on different SMs each perform M atomic RMWs on one
/// block. Atomicity means the RMWs form a single chain: every operation
/// observes a distinct predecessor (no two atomics read the same old
/// value), and the chain starts at the initial value.
#[test]
fn atomics_form_a_chain() {
    use gtsc::gpu::{VecKernel, WarpOp, WarpProgram};
    use gtsc::types::Addr;
    use std::collections::HashSet;

    for (p, m) in [
        (ProtocolKind::Gtsc, ConsistencyModel::Rc),
        (ProtocolKind::Gtsc, ConsistencyModel::Sc),
        (ProtocolKind::Tc, ConsistencyModel::Sc),
        (ProtocolKind::TcWeak, ConsistencyModel::Rc),
        (ProtocolKind::NoL1, ConsistencyModel::Rc),
        (ProtocolKind::L1NoCoherence, ConsistencyModel::Rc),
    ] {
        for base in timing_grid().into_iter().step_by(3) {
            let cfg = base.with_protocol(p).with_consistency(m);
            let label = cfg.label();
            let prog = |pad: u32| {
                WarpProgram(
                    (0..5)
                        .flat_map(|i| {
                            [
                                WarpOp::Compute(pad + i),
                                WarpOp::atomic_coalesced(Addr(0), 32),
                            ]
                        })
                        .collect(),
                )
            };
            let kernel = VecKernel::new(
                "atomic-chain",
                2,
                vec![vec![prog(1), prog(4)], vec![prog(2), prog(7)]],
            );
            let mut sim = GpuSim::new(cfg);
            let report = sim.run_kernel(&kernel).expect("completes");
            assert!(
                report.violations.is_empty(),
                "{label}: {:?}",
                report.violations
            );
            // Gather every atomic's observed predecessor.
            let obs = sim
                .checker()
                .load_observations(block_of(gtsc::types::Addr(0)));
            let prevs: Vec<Version> = obs
                .iter()
                .filter(|o| o.exclusive)
                .map(|o| o.version)
                .collect();
            assert_eq!(prevs.len(), 20, "{label}: 4 warps x 5 atomics");
            let unique: HashSet<Version> = prevs.iter().copied().collect();
            assert_eq!(
                unique.len(),
                20,
                "{label}: two atomics observed the same old value — not atomic"
            );
            assert!(
                unique.contains(&Version::ZERO),
                "{label}: the chain must start at the initial value"
            );
        }
    }
}

/// IRIW under SC: the two readers must agree on the order of the two
/// independent stores. Forbidden: reader2 sees (new X, old Y) while
/// reader3 sees (new Y, old X).
#[test]
fn iriw_readers_agree_under_sc() {
    for p in [ProtocolKind::Gtsc, ProtocolKind::Tc, ProtocolKind::NoL1] {
        for base in timing_grid() {
            let mut cfg = base.with_protocol(p).with_consistency(ConsistencyModel::Sc);
            cfg.n_sms = 4; // one CTA per SM
            let label = cfg.label();
            let kernel = micro::iriw();
            let mut sim = GpuSim::new(cfg);
            let report = sim.run_kernel(&kernel).expect("completes");
            assert!(
                report.violations.is_empty(),
                "{label}: {:?}",
                report.violations
            );
            let xs = sim.checker().load_observations(block_of(micro::X));
            let ys = sim.checker().load_observations(block_of(micro::Y));
            // Reader on SM2 reads X then Y; reader on SM3 reads Y then X.
            let r2_x = xs
                .iter()
                .find(|o| o.sm == 2)
                .expect("reader2 read X")
                .version;
            let r2_y = ys
                .iter()
                .find(|o| o.sm == 2)
                .expect("reader2 read Y")
                .version;
            let r3_y = ys
                .iter()
                .find(|o| o.sm == 3)
                .expect("reader3 read Y")
                .version;
            let r3_x = xs
                .iter()
                .find(|o| o.sm == 3)
                .expect("reader3 read X")
                .version;
            let zero = Version::ZERO;
            let forbidden = r2_x != zero && r2_y == zero && r3_y != zero && r3_x == zero;
            assert!(!forbidden, "{label}: IRIW readers disagreed on store order");
        }
    }
}

/// The adaptive-lease extension (Tardis-2.0-style prediction) must keep
/// every litmus shape intact.
#[test]
fn adaptive_lease_preserves_litmus_shapes() {
    for base in timing_grid().into_iter().step_by(2) {
        let mut cfg = base
            .with_protocol(ProtocolKind::Gtsc)
            .with_consistency(ConsistencyModel::Rc);
        cfg.adaptive_lease = true;
        let kernel = micro::message_passing(8);
        let mut sim = GpuSim::new(cfg);
        let report = sim.run_kernel(&kernel).expect("completes");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        let flags = sim.checker().load_observations(block_of(micro::FLAG));
        let datas = sim.checker().load_observations(block_of(micro::DATA));
        for (f, d) in flags.iter().zip(datas.iter()) {
            assert!(!(f.version != Version::ZERO && d.version == Version::ZERO));
        }
    }
}

/// Message passing holds with the precise release/acquire pair too
/// (the cheaper fences the RC model provides).
#[test]
fn message_passing_with_release_acquire_fences() {
    for (p, m) in [
        (ProtocolKind::Gtsc, ConsistencyModel::Rc),
        (ProtocolKind::TcWeak, ConsistencyModel::Rc),
        (ProtocolKind::NoL1, ConsistencyModel::Rc),
    ] {
        for base in timing_grid() {
            let cfg = base.with_protocol(p).with_consistency(m);
            let label = cfg.label();
            let kernel = micro::message_passing_rel_acq(8);
            let mut sim = GpuSim::new(cfg);
            let report = sim.run_kernel(&kernel).expect("completes");
            assert!(
                report.violations.is_empty(),
                "{label}: {:?}",
                report.violations
            );
            let flags = sim.checker().load_observations(block_of(micro::FLAG));
            let datas = sim.checker().load_observations(block_of(micro::DATA));
            for (f, d) in flags.iter().zip(datas.iter()) {
                assert!(
                    !(f.version != Version::ZERO && d.version == Version::ZERO),
                    "{label}: release/acquire MP violated"
                );
            }
        }
    }
}
