//! Latency-observatory acceptance tests: causal span lifecycle, the
//! cycle-accounting invariant, and profile-report snapshot determinism.
//!
//! The span contract under test (see DESIGN.md §15):
//!
//! * every sampled span **closes exactly once**, even when its request
//!   is dropped by a lossy NoC or orphaned by an L2 bank crash;
//! * chain hops tile `[opened, closed]`, so the sum of per-hop
//!   durations equals the end-to-end latency — always, for every close
//!   reason;
//! * sampling is a pure function of (rate, seed, access ordinal), so
//!   two identical runs sample identical spans with identical records;
//! * the per-SM cycle-reason buckets sum exactly to the stepped cycles
//!   on every run, faults included;
//! * the default `profile_report` output derives solely from snapshotted
//!   stats, so a mid-kernel restore reproduces it byte-identically.

use gtsc::sim::{render_folded, render_profile, GpuSim, KernelProgress, RunReport, SimBuilder};
use gtsc::types::{ConsistencyModel, FaultConfig, GpuConfig, ProtocolKind};
use gtsc::workloads::{Benchmark, Scale};
use gtsc_trace::{CloseReason, SpanRecord};
use proptest::prelude::*;

/// Sample 1-in-4 accesses: dense enough that every tiny kernel run
/// sends sampled spans through misses, merges, and DRAM round trips.
const SPAN_RATE: u64 = 4;

fn spanned_config(seed: u64, lossy_permille: u16, bank_crashes: u16) -> GpuConfig {
    let mut faults = if lossy_permille > 0 {
        FaultConfig::lossy(seed, lossy_permille)
    } else {
        FaultConfig {
            seed,
            ..FaultConfig::default()
        }
    };
    if bank_crashes > 0 {
        faults = faults.with_bank_crashes(bank_crashes, 400);
    }
    let mut cfg = GpuConfig::test_small()
        .with_protocol(ProtocolKind::Gtsc)
        .with_consistency(ConsistencyModel::Rc)
        .with_faults(faults);
    cfg.trace = cfg.trace.with_spans(SPAN_RATE, seed);
    cfg
}

fn run_spanned(cfg: &GpuConfig, bench: Benchmark) -> (RunReport, Vec<SpanRecord>) {
    let kernel = bench.build(Scale::Tiny);
    let mut sim = SimBuilder::new(cfg.clone()).build();
    let report = sim.run_kernel(kernel.as_ref()).expect("kernel runs");
    let spans = sim.spans();
    (report, spans)
}

/// The two invariants that must hold for *every* span in *every* run:
/// it closed (exactly once — the store holds one record per id), and
/// its chain hops tile the whole `[opened, closed]` interval.
fn assert_span_contract(spans: &[SpanRecord], ctx: &str) {
    assert!(!spans.is_empty(), "{ctx}: sampling produced no spans");
    let mut seen = std::collections::HashSet::new();
    for s in spans {
        assert!(
            seen.insert(s.id),
            "{ctx}: span {:?} recorded more than once",
            s.id
        );
        let (closed_at, reason) = s
            .closed
            .unwrap_or_else(|| panic!("{ctx}: span {:?} never closed", s.id));
        assert!(
            closed_at >= s.opened,
            "{ctx}: span {:?} closed before it opened",
            s.id
        );
        let e2e = s.end_to_end().expect("closed span has a latency");
        assert_eq!(
            s.hop_total(),
            e2e,
            "{ctx}: span {:?} ({reason:?}) hops sum to {} but end-to-end is {e2e}",
            s.id,
            s.hop_total()
        );
    }
}

fn assert_cycle_accounting(report: &RunReport, ctx: &str) {
    for (i, sm) in report.stats.per_sm.iter().enumerate() {
        assert_eq!(
            sm.cycle_buckets.sum(),
            report.stats.accounted_cycles,
            "{ctx}: sm{i} cycle buckets do not sum to the stepped cycles"
        );
    }
    for v in &report.violations {
        assert!(
            !v.0.contains("cycle accounting"),
            "{ctx}: report flags broken cycle accounting: {}",
            v.0
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 100, ..ProptestConfig::default() })]

    /// 100 randomized (seed, faults, benchmark) runs: every sampled
    /// span closes exactly once with tiling hops, and every SM's cycle
    /// buckets sum to the stepped cycles — reliable, lossy, and
    /// bank-crash machines alike.
    #[test]
    fn every_span_closes_once_with_tiling_hops(
        seed in 0u64..10_000,
        lossy_ix in 0usize..3,
        crashes in 0u16..3,
        bench_ix in 0usize..3,
    ) {
        let lossy = [0u16, 30, 60][lossy_ix];
        let bench = [Benchmark::Km, Benchmark::Hs, Benchmark::Bh][bench_ix];
        let cfg = spanned_config(seed, lossy, crashes);
        let (report, spans) = run_spanned(&cfg, bench);
        let ctx = format!("seed={seed} lossy={lossy} crashes={crashes} {}", bench.name());
        assert_span_contract(&spans, &ctx);
        assert_cycle_accounting(&report, &ctx);
        // Close reasons stay within the machine's fault envelope: a
        // reliable, crash-free run completes everything.
        for s in &spans {
            let (_, reason) = s.closed.expect("checked above");
            if crashes == 0 {
                prop_assert_eq!(
                    reason, CloseReason::Completed,
                    "{}: span {:?} closed {:?} with no bank crashes",
                    &ctx, s.id, reason
                );
            }
        }
    }
}

/// Bank crashes must close orphaned spans with `BankReset` (at the L2)
/// or `Dropped` (in-flight NoC payloads abandoned by the flow reset) —
/// and some seed in the sweep must actually exercise those paths.
#[test]
fn bank_crashes_close_spans_with_fault_reasons() {
    let mut fault_closes = 0u64;
    for seed in 0..30u64 {
        let cfg = spanned_config(seed, 0, 2);
        let (report, spans) = run_spanned(&cfg, Benchmark::Km);
        let ctx = format!("crash seed={seed}");
        assert_span_contract(&spans, &ctx);
        assert_cycle_accounting(&report, &ctx);
        for s in &spans {
            match s.closed.expect("checked").1 {
                CloseReason::Completed => {}
                CloseReason::BankReset | CloseReason::Dropped => fault_closes += 1,
            }
        }
    }
    assert!(
        fault_closes > 0,
        "30 bank-crash seeds never closed a span via BankReset/Dropped — \
         the fault paths are not wired"
    );
}

/// Sampling is deterministic: the same (config, seed) twice produces
/// identical span records, field for field.
#[test]
fn identical_runs_sample_identical_spans() {
    for seed in [1u64, 7, 42] {
        let cfg = spanned_config(seed, 25, 1);
        let (_, a) = run_spanned(&cfg, Benchmark::Hs);
        let (_, b) = run_spanned(&cfg, Benchmark::Hs);
        assert_eq!(a, b, "seed {seed}: span records diverged between runs");
    }
}

/// The acceptance criterion for the observatory's snapshot story: a
/// run restored from a mid-kernel checkpoint produces **byte-identical**
/// `profile_report` output (table and folded dump) to the uninterrupted
/// run, because both derive solely from snapshotted stats.
#[test]
fn restored_run_reproduces_profile_report_byte_identically() {
    for seed in 0..8u64 {
        let cfg = spanned_config(seed, 40, 1);
        let kernel = Benchmark::Km.build(Scale::Tiny);

        let mut straight = SimBuilder::new(cfg.clone()).build();
        let reference = straight.run_kernel(&*kernel).expect("uninterrupted run");

        let mut first = SimBuilder::new(cfg.clone()).build();
        let mut progress = KernelProgress::new(&*kernel);
        while first.now().0 < 150 {
            let done = first
                .advance_kernel(&*kernel, &mut progress, 97)
                .expect("advance");
            assert!(done.is_none(), "seed {seed}: drained before checkpoint");
        }
        let snapshot = first.save_snapshot(Some(&progress)).expect("snapshot");
        drop(first);

        let mut second = SimBuilder::new(cfg.clone()).build();
        let mut progress = second
            .restore_snapshot(&snapshot)
            .expect("restore")
            .expect("snapshot carries kernel progress");
        let resumed = loop {
            if let Some(r) = second
                .advance_kernel(&*kernel, &mut progress, 997)
                .expect("advance")
            {
                break r;
            }
        };

        assert_eq!(
            render_profile(&resumed.stats),
            render_profile(&reference.stats),
            "seed {seed}: profile table diverged after restore"
        );
        assert_eq!(
            render_folded(&resumed.stats),
            render_folded(&reference.stats),
            "seed {seed}: folded dump diverged after restore"
        );
        assert_cycle_accounting(&resumed, &format!("restored seed={seed}"));
    }
}

/// Spans off (the default config) leaves the tracker disabled: no span
/// is ever recorded, so the hot path carries no observatory work.
#[test]
fn spans_off_records_nothing() {
    let cfg = GpuConfig::test_small()
        .with_protocol(ProtocolKind::Gtsc)
        .with_consistency(ConsistencyModel::Rc);
    let kernel = Benchmark::Km.build(Scale::Tiny);
    let mut sim = GpuSim::new(cfg);
    let report = sim.run_kernel(&*kernel).expect("kernel runs");
    assert!(sim.spans().is_empty(), "spans recorded with sampling off");
    assert_eq!(sim.spans_suppressed(), 0);
    assert_cycle_accounting(&report, "spans-off");
}
