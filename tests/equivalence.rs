//! Cross-protocol functional equivalence: on data-race-free workloads
//! (the paper's group B), the final memory image must be identical under
//! every protocol and consistency model — timing may differ, values may
//! not. Version ids encode (SM, warp, per-warp store index), so this is a
//! meaningful bit-for-bit comparison.

use std::collections::BTreeMap;

use gtsc::sim::GpuSim;
use gtsc::types::{BlockAddr, ConsistencyModel, GpuConfig, ProtocolKind, Version};
use gtsc::workloads::{Benchmark, Scale};

fn image_for(b: Benchmark, p: ProtocolKind, m: ConsistencyModel) -> BTreeMap<BlockAddr, Version> {
    let cfg = GpuConfig::test_small().with_protocol(p).with_consistency(m);
    let kernel = b.build(Scale::Tiny);
    let label = cfg.label();
    let mut sim = GpuSim::new(cfg);
    let report = sim.run_kernel(kernel.as_ref()).expect("completes");
    assert!(report.violations.is_empty(), "{} {label}", b.name());
    // Only written blocks matter (clean blocks may or may not be resident).
    sim.memory_image()
        .into_iter()
        .filter(|(_, v)| *v != Version::ZERO)
        .collect()
}

#[test]
fn group_b_final_images_agree_across_protocols() {
    let systems = [
        (ProtocolKind::NoL1, ConsistencyModel::Rc),
        (ProtocolKind::Gtsc, ConsistencyModel::Rc),
        (ProtocolKind::Gtsc, ConsistencyModel::Sc),
        (ProtocolKind::Tc, ConsistencyModel::Sc),
        (ProtocolKind::TcWeak, ConsistencyModel::Rc),
        (ProtocolKind::L1NoCoherence, ConsistencyModel::Rc),
    ];
    for b in Benchmark::group_b() {
        let reference = image_for(b, systems[0].0, systems[0].1);
        assert!(!reference.is_empty(), "{} writes something", b.name());
        for (p, m) in &systems[1..] {
            let img = image_for(b, *p, *m);
            assert_eq!(
                img,
                reference,
                "{} final image diverged under {:?}/{:?}",
                b.name(),
                p,
                m
            );
        }
    }
}

/// The same holds for G-TSC across lease values and timestamp widths:
/// protocol parameters change timing, never results.
#[test]
fn gtsc_parameters_do_not_change_results() {
    let b = Benchmark::Ge;
    let reference = image_for(b, ProtocolKind::Gtsc, ConsistencyModel::Rc);
    for (lease, ts_bits) in [(8u64, 16u32), (20, 16), (10, 8), (10, 10)] {
        let mut cfg = GpuConfig::test_small()
            .with_protocol(ProtocolKind::Gtsc)
            .with_lease(gtsc::types::Lease(lease));
        cfg.ts_bits = ts_bits;
        let kernel = b.build(Scale::Tiny);
        let mut sim = GpuSim::new(cfg);
        let report = sim.run_kernel(kernel.as_ref()).expect("completes");
        assert!(
            report.violations.is_empty(),
            "lease={lease} ts_bits={ts_bits}"
        );
        let img: BTreeMap<BlockAddr, Version> = sim
            .memory_image()
            .into_iter()
            .filter(|(_, v)| *v != Version::ZERO)
            .collect();
        assert_eq!(img, reference, "lease={lease} ts_bits={ts_bits}");
    }
}
