//! Protocol conformance suite: drives each protocol's L1/L2 controller
//! pair directly (no SMs, no NoC — just an in-order message channel with
//! configurable delay) through scripted coherence scenarios, the way a
//! hardware verification sequence would.

use std::collections::VecDeque;

use gtsc::protocol::msg::{L1ToL2, L2ToL1};
use gtsc::protocol::{
    AccessId, AccessKind, Completion, L1Controller, L1Outcome, L2Controller, MemAccess,
};
use gtsc::sim::{build_l1, build_l2};
use gtsc::types::{
    BlockAddr, ConsistencyModel, Cycle, GpuConfig, ProtocolKind, SpanId, Version, WarpId,
};

/// One L1 wired to one L2 bank through delayed in-order channels, with
/// DRAM resolved after a fixed latency.
struct Pair {
    l1: Box<dyn L1Controller>,
    l2: Box<dyn L2Controller>,
    now: Cycle,
    delay: u64,
    req_ch: VecDeque<(Cycle, L1ToL2)>,
    resp_ch: VecDeque<(Cycle, L2ToL1)>,
    dram_ch: VecDeque<(Cycle, BlockAddr, bool)>,
    next_id: u64,
    completions: Vec<Completion>,
}

impl Pair {
    fn new(protocol: ProtocolKind, delay: u64) -> Pair {
        let cfg = GpuConfig::test_small()
            .with_protocol(protocol)
            .with_consistency(ConsistencyModel::Rc);
        Pair {
            l1: build_l1(&cfg, 0),
            l2: build_l2(&cfg),
            now: Cycle(0),
            delay,
            req_ch: VecDeque::new(),
            resp_ch: VecDeque::new(),
            dram_ch: VecDeque::new(),
            next_id: 0,
            completions: Vec::new(),
        }
    }

    fn access(&mut self, warp: u16, kind: AccessKind, block: u64) -> (AccessId, L1Outcome) {
        self.next_id += 1;
        let id = AccessId(self.next_id);
        let acc = MemAccess {
            id,
            warp: WarpId(warp),
            kind,
            block: BlockAddr(block),
            span: SpanId::NONE,
        };
        let outcome = self.l1.access(acc, self.now);
        if let L1Outcome::Hit(c) = outcome {
            self.completions.push(c);
        }
        (id, outcome)
    }

    /// Advances one cycle, moving messages across the channels.
    fn step(&mut self) {
        let now = self.now;
        for c in self.l1.tick(now) {
            self.completions.push(c);
        }
        while let Some(req) = self.l1.take_request() {
            self.req_ch.push_back((now + self.delay, req));
        }
        while self.req_ch.front().is_some_and(|(t, _)| *t <= now) {
            let (_, req) = self.req_ch.pop_front().expect("front checked");
            self.l2.on_request(0, req, now);
        }
        self.l2.tick(now);
        while let Some((b, w)) = self.l2.take_dram_request() {
            self.dram_ch.push_back((now + 50, b, w));
        }
        while self.dram_ch.front().is_some_and(|(t, _, _)| *t <= now) {
            let (_, b, w) = self.dram_ch.pop_front().expect("front checked");
            self.l2.on_dram_response(b, w, now);
        }
        while let Some((_, resp)) = self.l2.take_response() {
            self.resp_ch.push_back((now + self.delay, resp));
        }
        while self.resp_ch.front().is_some_and(|(t, _)| *t <= now) {
            let (_, resp) = self.resp_ch.pop_front().expect("front checked");
            for c in self.l1.on_response(resp, now) {
                self.completions.push(c);
            }
        }
        self.now += 1;
    }

    /// Runs until `id` completes (panics after `limit` cycles).
    fn run_until_complete(&mut self, id: AccessId, limit: u64) -> Completion {
        for _ in 0..limit {
            if let Some(c) = self.completions.iter().find(|c| c.id == id) {
                return *c;
            }
            self.step();
        }
        panic!("access {id:?} did not complete within {limit} cycles");
    }

    fn drain(&mut self, limit: u64) {
        for _ in 0..limit {
            if self.l1.is_idle()
                && self.l2.is_idle()
                && self.req_ch.is_empty()
                && self.resp_ch.is_empty()
                && self.dram_ch.is_empty()
            {
                return;
            }
            self.step();
        }
        panic!("pair did not drain");
    }
}

const COHERENT: [ProtocolKind; 4] = [
    ProtocolKind::Gtsc,
    ProtocolKind::Tc,
    ProtocolKind::TcWeak,
    ProtocolKind::NoL1,
];

const ALL: [ProtocolKind; 5] = [
    ProtocolKind::Gtsc,
    ProtocolKind::Tc,
    ProtocolKind::TcWeak,
    ProtocolKind::NoL1,
    ProtocolKind::L1NoCoherence,
];

/// Scenario: a cold load completes and returns the initial contents.
#[test]
fn cold_load_returns_initial_value() {
    for p in ALL {
        for delay in [1u64, 7, 23] {
            let mut pair = Pair::new(p, delay);
            let (id, out) = pair.access(0, AccessKind::Load, 5);
            assert!(!matches!(out, L1Outcome::Reject), "{p:?}");
            let c = pair.run_until_complete(id, 500);
            assert_eq!(c.version, Version::ZERO, "{p:?} d{delay}");
            assert_eq!(c.kind, AccessKind::Load);
            pair.drain(500);
        }
    }
}

/// Scenario: store then load (same warp, after the ack) observes the
/// stored version — basic write-read coherence through the hierarchy.
#[test]
fn store_then_load_observes_store() {
    for p in ALL {
        let mut pair = Pair::new(p, 5);
        let (sid, _) = pair.access(0, AccessKind::Store, 9);
        let sc = pair.run_until_complete(sid, 2000);
        assert_eq!(sc.kind, AccessKind::Store, "{p:?}");
        let (lid, _) = pair.access(0, AccessKind::Load, 9);
        let lc = pair.run_until_complete(lid, 2000);
        assert_eq!(lc.version, sc.version, "{p:?}: load missed the store");
        pair.drain(2000);
    }
}

/// Scenario: two loads from different warps to the same missing block
/// both complete from a single fetch (MSHR merging), except on the
/// MSHR-less no-L1 baseline.
#[test]
fn concurrent_loads_merge() {
    for p in [
        ProtocolKind::Gtsc,
        ProtocolKind::Tc,
        ProtocolKind::L1NoCoherence,
    ] {
        let mut pair = Pair::new(p, 5);
        let (a, _) = pair.access(0, AccessKind::Load, 4);
        let (b, _) = pair.access(1, AccessKind::Load, 4);
        pair.run_until_complete(a, 1000);
        pair.run_until_complete(b, 1000);
        assert_eq!(
            pair.l1.stats().mshr_merges,
            1,
            "{p:?}: second load should merge"
        );
        pair.drain(500);
    }
}

/// Scenario: atomics to one block from two warps form a chain — the
/// second observes the first.
#[test]
fn atomic_pair_chains() {
    for p in COHERENT {
        let mut pair = Pair::new(p, 5);
        let (a, _) = pair.access(0, AccessKind::Atomic, 7);
        let ca = pair.run_until_complete(a, 3000);
        let (b, _) = pair.access(1, AccessKind::Atomic, 7);
        let cb = pair.run_until_complete(b, 3000);
        assert_eq!(ca.prev, Some(Version::ZERO), "{p:?}");
        assert_eq!(cb.prev, Some(ca.version), "{p:?}: chain broken");
        pair.drain(3000);
    }
}

/// Scenario (G-TSC, Figure 10): a read racing a pending store on the same
/// line must not observe the new version at a logical time before its
/// assigned `wts`.
#[test]
fn gtsc_update_visibility_blocks_racing_reader() {
    let mut pair = Pair::new(ProtocolKind::Gtsc, 20);
    // Warm the line.
    let (w, _) = pair.access(0, AccessKind::Load, 3);
    pair.run_until_complete(w, 1000);
    // Store by warp 0; read by warp 1 one cycle later.
    let (sid, _) = pair.access(0, AccessKind::Store, 3);
    pair.step();
    let (lid, out) = pair.access(1, AccessKind::Load, 3);
    assert!(
        matches!(out, L1Outcome::Queued),
        "racing reader must be parked, got {out:?}"
    );
    let sc = pair.run_until_complete(sid, 2000);
    let lc = pair.run_until_complete(lid, 2000);
    assert_eq!(lc.version, sc.version, "parked reader sees the new version");
    assert!(
        lc.ts.expect("logical ts") >= sc.ts.expect("wts"),
        "reader ts {:?} precedes the store's wts {:?} — the Figure 10 violation",
        lc.ts,
        sc.ts
    );
    pair.drain(2000);
}

/// Scenario (G-TSC): a logically-expired reader triggers a renewal, which
/// returns without data and still completes the read with the same
/// version.
#[test]
fn gtsc_renewal_completes_expired_reader() {
    let mut pair = Pair::new(ProtocolKind::Gtsc, 5);
    let (a, _) = pair.access(0, AccessKind::Load, 3);
    let ca = pair.run_until_complete(a, 1000);
    // Advance warp 1's logical clock far ahead via a store elsewhere.
    let (s, _) = pair.access(1, AccessKind::Store, 64); // different bank-set block
    pair.run_until_complete(s, 1000);
    let (s2, _) = pair.access(1, AccessKind::Store, 64);
    pair.run_until_complete(s2, 1000);
    // Warp 1 now reads block 3: tag-hit but logically expired -> renewal.
    let before = pair.l1.stats().renewals;
    let (b, _) = pair.access(1, AccessKind::Load, 3);
    let cb = pair.run_until_complete(b, 1000);
    assert_eq!(cb.version, ca.version, "renewal serves the same version");
    assert!(
        pair.l1.stats().renewals > before,
        "a renewal request was sent"
    );
    pair.drain(1000);
}

/// Scenario (TC-Strong): a store to a freshly-read block is delayed by the
/// outstanding physical lease; the ack only arrives after expiry.
#[test]
fn tc_strong_store_waits_for_lease() {
    let mut pair = Pair::new(ProtocolKind::Tc, 2);
    let (a, _) = pair.access(0, AccessKind::Load, 3);
    pair.run_until_complete(a, 1000);
    let read_done = pair.now;
    let (s, _) = pair.access(1, AccessKind::Store, 3);
    let sc = pair.run_until_complete(s, 5000);
    let _ = sc;
    let lease = GpuConfig::test_small().tc_lease_cycles;
    assert!(
        pair.now.0 >= read_done.0 + lease / 2,
        "store acked at {} — too early for a lease of {lease} granted near {read_done}",
        pair.now
    );
    pair.drain(2000);
}

/// Scenario: kernel-boundary flush empties the L1 — the next load misses
/// again (all protocols with an L1).
#[test]
fn flush_forces_cold_misses() {
    for p in [
        ProtocolKind::Gtsc,
        ProtocolKind::Tc,
        ProtocolKind::L1NoCoherence,
    ] {
        let mut pair = Pair::new(p, 3);
        let (a, _) = pair.access(0, AccessKind::Load, 3);
        pair.run_until_complete(a, 1000);
        pair.drain(1000);
        let cold_before = pair.l1.stats().cold_misses;
        pair.l1.flush();
        let (b, out) = pair.access(0, AccessKind::Load, 3);
        assert!(
            matches!(out, L1Outcome::Queued),
            "{p:?}: must miss after flush"
        );
        pair.run_until_complete(b, 1000);
        assert!(pair.l1.stats().cold_misses > cold_before, "{p:?}");
        pair.drain(1000);
    }
}

/// Scenario: interleaved stores from two warps to one block serialize at
/// the L2 — the final memory image holds the later ack's version, and
/// both stores complete.
#[test]
fn store_serialization_is_consistent() {
    for p in COHERENT {
        let mut pair = Pair::new(p, 4);
        let (a, _) = pair.access(0, AccessKind::Store, 11);
        let (b, _) = pair.access(1, AccessKind::Store, 11);
        let ca = pair.run_until_complete(a, 3000);
        let cb = pair.run_until_complete(b, 3000);
        pair.drain(3000);
        let img = pair.l2.memory_image();
        let final_v = img
            .iter()
            .find(|(blk, _)| *blk == BlockAddr(11))
            .map(|(_, v)| *v)
            .expect("block present");
        assert!(
            final_v == ca.version || final_v == cb.version,
            "{p:?}: final version is neither store's"
        );
        // Under G-TSC the wts order must agree with the final image.
        if p == ProtocolKind::Gtsc {
            let last = if ca.ts.unwrap() > cb.ts.unwrap() {
                ca.version
            } else {
                cb.version
            };
            assert_eq!(
                final_v, last,
                "G-TSC: image must hold the logically-later store"
            );
        }
    }
}

/// Scenario: a burst larger than the L1 MSHR leads to rejects, never to
/// lost accesses.
#[test]
fn mshr_overflow_rejects_cleanly() {
    for p in [ProtocolKind::Gtsc, ProtocolKind::Tc] {
        let mut pair = Pair::new(p, 10);
        let mut pending = Vec::new();
        let mut rejected = 0;
        for i in 0..32u64 {
            let (id, out) = pair.access((i % 4) as u16, AccessKind::Load, i * 2);
            match out {
                L1Outcome::Reject => rejected += 1,
                _ => pending.push(id),
            }
        }
        assert!(
            rejected > 0,
            "{p:?}: 32 distinct blocks must overflow an 8-entry MSHR"
        );
        for id in pending {
            pair.run_until_complete(id, 5000);
        }
        pair.drain(5000);
    }
}
