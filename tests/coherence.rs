//! Coherence soundness across the benchmark suite: every coherent
//! protocol/model pair must keep the timestamp-order (G-TSC) or
//! functional (TC/baselines) checker clean on the sharing benchmarks,
//! including under aggressive timestamp-rollover pressure.

use gtsc::sim::GpuSim;
use gtsc::types::{ConsistencyModel, GpuConfig, ProtocolKind};
use gtsc::workloads::{Benchmark, Scale};

fn check(b: Benchmark, cfg: GpuConfig) {
    let label = cfg.label();
    let kernel = b.build(Scale::Tiny);
    let mut sim = GpuSim::new(cfg);
    let report = sim
        .run_kernel(kernel.as_ref())
        .unwrap_or_else(|e| panic!("{} {label}: {e}", b.name()));
    assert!(
        report.violations.is_empty(),
        "{} under {label}: {:?}",
        b.name(),
        &report.violations[..report.violations.len().min(3)]
    );
}

#[test]
fn group_a_is_coherent_under_every_coherent_system() {
    for b in Benchmark::group_a() {
        for (p, m) in [
            (ProtocolKind::Gtsc, ConsistencyModel::Rc),
            (ProtocolKind::Gtsc, ConsistencyModel::Sc),
            (ProtocolKind::Tc, ConsistencyModel::Sc),
            (ProtocolKind::Tc, ConsistencyModel::Rc),
            (ProtocolKind::TcWeak, ConsistencyModel::Rc),
            (ProtocolKind::TcWeak, ConsistencyModel::Sc),
            (ProtocolKind::NoL1, ConsistencyModel::Sc),
            (ProtocolKind::NoL1, ConsistencyModel::Rc),
        ] {
            check(
                b,
                GpuConfig::test_small().with_protocol(p).with_consistency(m),
            );
        }
    }
}

#[test]
fn gtsc_survives_rollover_storms_on_every_group_a_benchmark() {
    for b in Benchmark::group_a() {
        for ts_bits in [7u32, 9, 12] {
            let mut cfg = GpuConfig::test_small().with_protocol(ProtocolKind::Gtsc);
            cfg.ts_bits = ts_bits;
            let kernel = b.build(Scale::Tiny);
            let mut sim = GpuSim::new(cfg);
            let report = sim
                .run_kernel(kernel.as_ref())
                .unwrap_or_else(|e| panic!("{} @{ts_bits}b: {e}", b.name()));
            assert!(
                report.violations.is_empty(),
                "{} @{ts_bits} bits: {:?}",
                b.name(),
                &report.violations[..report.violations.len().min(3)]
            );
        }
    }
}

#[test]
fn multi_kernel_sequences_stay_coherent() {
    let cfg = GpuConfig::test_small().with_protocol(ProtocolKind::Gtsc);
    let k1 = Benchmark::Stn.build(Scale::Tiny);
    let k2 = Benchmark::Bfs.build(Scale::Tiny);
    let k3 = Benchmark::Cc.build(Scale::Tiny);
    let mut sim = GpuSim::new(cfg);
    let report = sim
        .run_kernels(&[k1.as_ref(), k2.as_ref(), k3.as_ref()])
        .expect("all kernels complete");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.stats.sm.issued > 0);
}

/// Structural-pressure configuration: tiny MSHRs, tiny caches, narrow
/// windows — exercises the reject/retry paths end to end.
#[test]
fn coherent_under_structural_pressure() {
    for b in [Benchmark::Bh, Benchmark::Bfs] {
        let mut cfg = GpuConfig::test_small().with_protocol(ProtocolKind::Gtsc);
        cfg.l1_mshr_entries = 2;
        cfg.l1_mshr_merges = 2;
        cfg.l2_mshr_entries = 2;
        cfg.max_outstanding_per_warp = 2;
        check(b, cfg);
    }
}

/// A trace-driven kernel (the adoption path for user-captured traces)
/// runs end to end and stays coherent.
#[test]
fn traced_kernel_runs_end_to_end() {
    let trace = "\
kernel traced ctas=2 warps_per_cta=1
cta 0 warp 0
  st 0x0
  fence
  at 0x80
  ld 0x100
cta 1 warp 0
  at 0x80
  ld 0x0
  fence
  ld 0x80
";
    let kernel = gtsc::workloads::trace::parse_trace(trace).expect("parses");
    for p in [ProtocolKind::Gtsc, ProtocolKind::Tc, ProtocolKind::NoL1] {
        let cfg = GpuConfig::test_small().with_protocol(p);
        let label = cfg.label();
        let mut sim = GpuSim::new(cfg);
        let report = sim.run_kernel(&kernel).expect("completes");
        assert!(
            report.violations.is_empty(),
            "{label}: {:?}",
            report.violations
        );
    }
}

/// The adaptive-lease extension stays checker-clean on every sharing
/// benchmark.
#[test]
fn adaptive_lease_is_coherent_on_group_a() {
    for b in Benchmark::group_a() {
        let mut cfg = GpuConfig::test_small().with_protocol(ProtocolKind::Gtsc);
        cfg.adaptive_lease = true;
        check(b, cfg);
    }
}

/// Regression: at larger scale, write acks routinely cross timestamp
/// resets in flight; their commits must keep their old-epoch logical keys
/// (losing them once produced phantom "timestamp-order violations" on BH
/// at 8-bit timestamps).
#[test]
fn rollover_with_in_flight_acks_at_scale() {
    for b in [Benchmark::Bh, Benchmark::Bfs] {
        let mut cfg = GpuConfig::paper_default().with_protocol(ProtocolKind::Gtsc);
        cfg.ts_bits = 7;
        let kernel = b.build(Scale::Small);
        let mut sim = GpuSim::new(cfg);
        let report = sim.run_kernel(kernel.as_ref()).expect("completes");
        assert!(
            report.stats.l2.ts_rollovers > 0,
            "{}: expected rollovers",
            b.name()
        );
        assert!(
            report.violations.is_empty(),
            "{}: {:?}",
            b.name(),
            &report.violations[..report.violations.len().min(3)]
        );
    }
}

/// Phased benchmarks (one kernel per BFS level, caches flushed between
/// launches) run coherently under every protocol.
#[test]
fn phased_bfs_is_coherent() {
    for p in [ProtocolKind::Gtsc, ProtocolKind::TcWeak, ProtocolKind::NoL1] {
        let cfg = GpuConfig::test_small().with_protocol(p);
        let label = cfg.label();
        let phases = Benchmark::Bfs.build_phases(Scale::Tiny);
        let refs: Vec<&dyn gtsc::gpu::Kernel> = phases.iter().map(|k| k.as_ref()).collect();
        let mut sim = GpuSim::new(cfg);
        let report = sim.run_kernels(&refs).expect("all levels complete");
        assert!(
            report.violations.is_empty(),
            "{label}: {:?}",
            report.violations
        );
        assert!(report.stats.l1.accesses > 0);
    }
}
