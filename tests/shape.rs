//! Paper-shape regression tests: fast, small-scale checks of the
//! *qualitative* results the reproduction must preserve. These guard the
//! headline claims against regressions without re-running the full
//! experiment suite.

use gtsc::gpu::{VecKernel, WarpOp, WarpProgram};
use gtsc::sim::GpuSim;
use gtsc::types::{Addr, ConsistencyModel, GpuConfig, Lease, ProtocolKind, Version};
use gtsc::workloads::{Benchmark, Scale};

fn run(b: Benchmark, p: ProtocolKind, m: ConsistencyModel) -> gtsc::sim::RunReport {
    let cfg = GpuConfig::paper_default()
        .with_protocol(p)
        .with_consistency(m);
    let kernel = b.build(Scale::Small);
    let mut sim = GpuSim::new(cfg);
    sim.run_kernel(kernel.as_ref()).expect("completes")
}

/// The defining property of G-TSC (Section III): writes are scheduled in
/// logical time, so the L2 *never* stalls a write or an atomic — on any
/// benchmark, under any consistency model.
#[test]
fn gtsc_never_stalls_writes() {
    for b in Benchmark::all() {
        for m in [ConsistencyModel::Sc, ConsistencyModel::Rc] {
            let r = run(b, ProtocolKind::Gtsc, m);
            assert_eq!(
                r.stats.l2.write_stall_cycles,
                0,
                "{} {:?}: G-TSC must not stall writes",
                b.name(),
                m
            );
            assert_eq!(
                r.stats.l2.eviction_stall_cycles,
                0,
                "{}: non-inclusive L2 never stalls replacement",
                b.name()
            );
        }
    }
}

/// TC-Strong, by contrast, pays lease-induced write stalls on the
/// sharing benchmarks (Section II-D3).
#[test]
fn tc_strong_pays_write_stalls_on_sharing_workloads() {
    let mut any = 0u64;
    for b in Benchmark::group_a() {
        let r = run(b, ProtocolKind::Tc, ConsistencyModel::Sc);
        any += r.stats.l2.write_stall_cycles;
    }
    assert!(
        any > 0,
        "TC-Strong should have stalled at least some writes"
    );
}

/// STN is the clearest G-TSC win in the paper's Figure 12 shape: TC's
/// fixed physical lease devastates a fence/barrier-synchronized stencil.
#[test]
fn gtsc_beats_tc_on_stn_by_a_wide_margin() {
    let g = run(Benchmark::Stn, ProtocolKind::Gtsc, ConsistencyModel::Rc);
    let t = run(Benchmark::Stn, ProtocolKind::TcWeak, ConsistencyModel::Rc);
    assert!(
        (g.stats.cycles.0 as f64) * 1.5 < t.stats.cycles.0 as f64,
        "G-TSC {} vs TC {}: expected ≥1.5x win on STN",
        g.stats.cycles.0,
        t.stats.cycles.0
    );
}

/// The TC SC↔RC gap is large; the G-TSC gap is small (Figure 12's
/// headline secondary observation).
#[test]
fn sc_gap_is_small_for_gtsc_and_large_for_tc() {
    let mut gtsc_gap = Vec::new();
    let mut tc_gap = Vec::new();
    for b in [Benchmark::Stn, Benchmark::Hs] {
        let g_rc = run(b, ProtocolKind::Gtsc, ConsistencyModel::Rc)
            .stats
            .cycles
            .0 as f64;
        let g_sc = run(b, ProtocolKind::Gtsc, ConsistencyModel::Sc)
            .stats
            .cycles
            .0 as f64;
        let t_rc = run(b, ProtocolKind::TcWeak, ConsistencyModel::Rc)
            .stats
            .cycles
            .0 as f64;
        let t_sc = run(b, ProtocolKind::Tc, ConsistencyModel::Sc)
            .stats
            .cycles
            .0 as f64;
        gtsc_gap.push(g_sc / g_rc);
        tc_gap.push(t_sc / t_rc);
    }
    let geo = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    assert!(
        geo(&tc_gap) > 1.3 * geo(&gtsc_gap),
        "TC SC/RC gap ({:.2}) should clearly exceed G-TSC's ({:.2})",
        geo(&tc_gap),
        geo(&gtsc_gap)
    );
}

/// Figure 14's claim, exactly: G-TSC's cycle count is *identical* across
/// lease values (scale invariance of the timestamp rules).
#[test]
fn gtsc_is_lease_invariant() {
    let base = {
        let cfg = GpuConfig::paper_default().with_protocol(ProtocolKind::Gtsc);
        let kernel = Benchmark::Bh.build(Scale::Small);
        let mut sim = GpuSim::new(cfg);
        sim.run_kernel(kernel.as_ref()).unwrap().stats.cycles
    };
    for lease in [8u64, 20, 64] {
        let cfg = GpuConfig::paper_default()
            .with_protocol(ProtocolKind::Gtsc)
            .with_lease(Lease(lease));
        let kernel = Benchmark::Bh.build(Scale::Small);
        let mut sim = GpuSim::new(cfg);
        let got = sim.run_kernel(kernel.as_ref()).unwrap().stats.cycles;
        assert_eq!(got, base, "lease {lease} changed the cycle count");
    }
}

/// Renewal responses carry no data: the renewal mechanism must make
/// G-TSC's *control*-packet share higher and keep data packets at or
/// below TC's on a renewal-heavy workload.
#[test]
fn renewals_save_data_packets_on_stn() {
    let g = run(Benchmark::Stn, ProtocolKind::Gtsc, ConsistencyModel::Rc);
    let t = run(Benchmark::Stn, ProtocolKind::TcWeak, ConsistencyModel::Rc);
    assert!(g.stats.l1.renewals > 0, "STN must exercise renewals");
    assert!(
        g.stats.noc.data_packets <= t.stats.noc.data_packets,
        "G-TSC data packets ({}) should not exceed TC's ({})",
        g.stats.noc.data_packets,
        t.stats.noc.data_packets
    );
}

/// Demonstrates *why* group A cannot run on the non-coherent baseline:
/// a reader that cached DATA keeps returning the stale copy even after
/// it has observed the writer's FLAG — the forbidden MP outcome.
#[test]
fn noncoherent_l1_exhibits_the_forbidden_outcome() {
    let data = Addr(0);
    let flag = Addr(128);
    let writer = WarpProgram(vec![
        WarpOp::Compute(40), // let the reader cache the old DATA first
        WarpOp::store_coalesced(data, 32),
        WarpOp::Fence,
        WarpOp::store_coalesced(flag, 32),
    ]);
    let reader = WarpProgram(vec![
        WarpOp::load_coalesced(data, 32), // caches stale DATA
        (0..40).fold(WarpOp::Compute(400), |acc, _| acc), // long wait
        WarpOp::load_coalesced(flag, 32), // miss -> sees the new FLAG
        WarpOp::Fence,
        WarpOp::load_coalesced(data, 32), // HITS the stale cached DATA
    ]);
    let kernel = VecKernel::new("stale", 1, vec![vec![writer], vec![reader]]);
    let cfg = GpuConfig::test_small().with_protocol(ProtocolKind::L1NoCoherence);
    let mut sim = GpuSim::new(cfg);
    sim.run_kernel(&kernel).expect("completes");
    let geom = gtsc::types::CacheGeometry::new(1024, 2, 128);
    let flags = sim.checker().load_observations(geom.block_of(flag));
    let datas = sim.checker().load_observations(geom.block_of(data));
    let saw_new_flag = flags.iter().any(|o| o.version != Version::ZERO);
    let last_data = datas
        .iter()
        .filter(|o| o.sm == 1)
        .max_by_key(|o| o.at)
        .unwrap()
        .version;
    assert!(
        saw_new_flag && last_data == Version::ZERO,
        "expected the incoherent L1 to serve stale DATA after the new FLAG \
         (saw_new_flag={saw_new_flag}, last_data={last_data})"
    );
    // And the same shape under G-TSC must NOT exhibit it.
    let kernel2 = VecKernel::new(
        "fresh",
        1,
        vec![
            vec![WarpProgram(vec![
                WarpOp::Compute(40),
                WarpOp::store_coalesced(data, 32),
                WarpOp::Fence,
                WarpOp::store_coalesced(flag, 32),
            ])],
            vec![WarpProgram(vec![
                WarpOp::load_coalesced(data, 32),
                WarpOp::Compute(400),
                WarpOp::load_coalesced(flag, 32),
                WarpOp::Fence,
                WarpOp::load_coalesced(data, 32),
            ])],
        ],
    );
    let cfg = GpuConfig::test_small().with_protocol(ProtocolKind::Gtsc);
    let mut sim = GpuSim::new(cfg);
    let report = sim.run_kernel(&kernel2).expect("completes");
    assert!(report.violations.is_empty());
    let flags = sim.checker().load_observations(geom.block_of(flag));
    let datas = sim.checker().load_observations(geom.block_of(data));
    let saw_new_flag = flags
        .iter()
        .any(|o| o.sm == 1 && o.version != Version::ZERO);
    if saw_new_flag {
        let last_data = datas
            .iter()
            .filter(|o| o.sm == 1)
            .max_by_key(|o| o.at)
            .unwrap()
            .version;
        assert_ne!(
            last_data,
            Version::ZERO,
            "G-TSC must not serve stale DATA after the new FLAG"
        );
    }
}
