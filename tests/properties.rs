//! Property-based end-to-end tests: randomly generated kernels must keep
//! the coherence checker clean under G-TSC, and randomly generated
//! data-race-free kernels must produce identical memory images under
//! every protocol.

use proptest::prelude::*;

use gtsc::gpu::{VecKernel, WarpOp, WarpProgram};
use gtsc::sim::GpuSim;
use gtsc::types::{Addr, ConsistencyModel, GpuConfig, ProtocolKind};

/// A compact op encoding the strategy produces: (selector, block, extra).
fn arb_ops() -> impl Strategy<Value = Vec<(u8, u64, u8)>> {
    proptest::collection::vec((0u8..10, 0u64..24, 0u8..6), 1..40)
}

fn decode(ops: &[(u8, u64, u8)], shared: bool, lane_base: u64) -> WarpProgram {
    let mut out = Vec::new();
    for (sel, block, extra) in ops {
        // Private variants offset the block into a per-warp range.
        let b = if shared { *block } else { lane_base + *block };
        let addr = Addr(b * 128);
        match sel {
            0..=4 => out.push(WarpOp::load_coalesced(addr, 32)),
            5 | 6 => out.push(WarpOp::store_coalesced(addr, 32)),
            7 => out.push(WarpOp::Compute(u32::from(*extra) + 1)),
            8 => out.push(WarpOp::Fence),
            _ => {
                // Divergent gather over a few blocks.
                let addrs = (0..4u64).map(|i| Addr(((b + i * 3) % 64) * 128)).collect();
                out.push(WarpOp::Load(addrs));
            }
        }
    }
    WarpProgram(out)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Arbitrary racy programs: G-TSC must serialize every conflicting
    /// access in logical time — zero checker violations, no deadlock.
    #[test]
    fn random_shared_kernels_stay_coherent_under_gtsc(
        w0 in arb_ops(),
        w1 in arb_ops(),
        w2 in arb_ops(),
        w3 in arb_ops(),
        sc in proptest::bool::ANY,
    ) {
        let kernel = VecKernel::new(
            "prop",
            2,
            vec![
                vec![decode(&w0, true, 0), decode(&w1, true, 0)],
                vec![decode(&w2, true, 0), decode(&w3, true, 0)],
            ],
        );
        let m = if sc { ConsistencyModel::Sc } else { ConsistencyModel::Rc };
        let cfg = GpuConfig::test_small()
            .with_protocol(ProtocolKind::Gtsc)
            .with_consistency(m);
        let mut sim = GpuSim::new(cfg);
        let report = sim.run_kernel(&kernel).expect("no deadlock");
        prop_assert!(report.violations.is_empty(), "{:?}", &report.violations[..report.violations.len().min(2)]);
    }

    /// Arbitrary racy programs under tiny timestamps: the rollover
    /// protocol must hold up under fuzzing too.
    #[test]
    fn random_kernels_survive_rollover(
        w0 in arb_ops(),
        w1 in arb_ops(),
        ts_bits in 7u32..12,
    ) {
        let kernel = VecKernel::new(
            "prop-rollover",
            1,
            vec![vec![decode(&w0, true, 0)], vec![decode(&w1, true, 0)]],
        );
        let mut cfg = GpuConfig::test_small().with_protocol(ProtocolKind::Gtsc);
        cfg.ts_bits = ts_bits;
        let mut sim = GpuSim::new(cfg);
        let report = sim.run_kernel(&kernel).expect("no deadlock");
        prop_assert!(report.violations.is_empty());
    }

    /// Data-race-free programs (disjoint per-warp block ranges): final
    /// memory images agree across all five systems.
    #[test]
    fn random_drf_kernels_agree_across_protocols(
        w0 in arb_ops(),
        w1 in arb_ops(),
        w2 in arb_ops(),
        w3 in arb_ops(),
    ) {
        let build = || VecKernel::new(
            "prop-drf",
            2,
            vec![
                vec![decode(&w0, false, 100), decode(&w1, false, 200)],
                vec![decode(&w2, false, 300), decode(&w3, false, 400)],
            ],
        );
        let mut images = Vec::new();
        for (p, m) in [
            (ProtocolKind::NoL1, ConsistencyModel::Rc),
            (ProtocolKind::Gtsc, ConsistencyModel::Rc),
            (ProtocolKind::Gtsc, ConsistencyModel::Sc),
            (ProtocolKind::Tc, ConsistencyModel::Sc),
            (ProtocolKind::TcWeak, ConsistencyModel::Rc),
            (ProtocolKind::L1NoCoherence, ConsistencyModel::Rc),
        ] {
            let cfg = GpuConfig::test_small().with_protocol(p).with_consistency(m);
            let mut sim = GpuSim::new(cfg);
            let report = sim.run_kernel(&build()).expect("no deadlock");
            prop_assert!(report.violations.is_empty(), "{p:?}/{m:?}");
            let img: std::collections::BTreeMap<_, _> = sim
                .memory_image()
                .into_iter()
                .filter(|(_, v)| *v != gtsc::types::Version::ZERO)
                .collect();
            images.push((p, m, img));
        }
        for w in images.windows(2) {
            prop_assert_eq!(
                &w[0].2,
                &w[1].2,
                "{:?}/{:?} vs {:?}/{:?}",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
    }
}
