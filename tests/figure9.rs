//! The worked example of the paper's Figure 9, executed step by step
//! through the real G-TSC controllers and checked against hand-computed
//! timestamps.
//!
//! Two SMs share blocks X and Y (lease = 10 everywhere; the paper's
//! figure uses a longer lease for Y "for the sake of explanation", so our
//! final reads differ from the figure exactly where that asymmetry
//! mattered — noted inline):
//!
//! ```text
//! SM0 (warp A):  A1: LD X     A2: ST Y     A3: LD X
//! SM1 (warp B):  B1: LD Y     B2: ST X     B3: LD Y
//! ```

use std::collections::VecDeque;

use gtsc::core::{GtscL1, GtscL2, L1Params, L2Params};
use gtsc::protocol::msg::L1ToL2;
use gtsc::protocol::{
    AccessId, AccessKind, Completion, L1Controller, L1Outcome, L2Controller, MemAccess,
};
use gtsc::types::{BlockAddr, Cycle, Lease, SpanId, Timestamp, Version, WarpId};

const X: BlockAddr = BlockAddr(0);
const Y: BlockAddr = BlockAddr(1);

/// Two L1s in front of one L2 bank, messages moved instantaneously but in
/// order (the logical-time assignments do not depend on physical delay).
struct Rig {
    l1: [GtscL1; 2],
    l2: GtscL2,
    now: Cycle,
    next_id: u64,
}

impl Rig {
    fn new() -> Rig {
        let mk = |sm| {
            GtscL1::new(L1Params {
                sm_index: sm,
                ..L1Params::default()
            })
        };
        Rig {
            l1: [mk(0), mk(1)],
            l2: GtscL2::new(L2Params {
                lease: Lease(10),
                latency: 0,
                ..L2Params::default()
            }),
            now: Cycle(0),
            next_id: 0,
        }
    }

    /// Issues one access on `sm` and pumps messages until it completes.
    fn run(&mut self, sm: usize, kind: AccessKind, block: BlockAddr) -> Completion {
        self.next_id += 1;
        let id = AccessId(self.next_id);
        let acc = MemAccess {
            id,
            warp: WarpId(0),
            kind,
            block,
            span: SpanId::NONE,
        };
        match self.l1[sm].access(acc, self.now) {
            L1Outcome::Hit(c) => return c,
            L1Outcome::Queued => {}
            L1Outcome::Reject => panic!("unexpected reject"),
        }
        let mut pending: VecDeque<(usize, L1ToL2)> = VecDeque::new();
        for _ in 0..200 {
            self.now += 1;
            for (i, l1) in self.l1.iter_mut().enumerate() {
                while let Some(req) = l1.take_request() {
                    pending.push_back((i, req));
                }
            }
            while let Some((src, req)) = pending.pop_front() {
                self.l2.on_request(src, req, self.now);
            }
            self.l2.tick(self.now);
            while let Some((b, w)) = self.l2.take_dram_request() {
                self.l2.on_dram_response(b, w, self.now);
            }
            self.l2.tick(self.now);
            let mut done = Vec::new();
            while let Some((dst, resp)) = self.l2.take_response() {
                done.extend(self.l1[dst].on_response(resp, self.now));
            }
            if let Some(c) = done.into_iter().find(|c| c.id == id) {
                return c;
            }
        }
        panic!("access did not complete");
    }
}

#[test]
fn figure9_walkthrough_matches_hand_computed_timestamps() {
    let mut rig = Rig::new();

    // A1: SM0 loads X. Cold fill: lease [mem_ts, mem_ts+10] = [1, 11].
    let a1 = rig.run(0, AccessKind::Load, X);
    assert_eq!(a1.version, Version::ZERO);
    assert_eq!(a1.ts, Some(Timestamp(1)), "A1 executes at warp_ts 1");
    assert_eq!(rig.l1[0].warp_ts(WarpId(0)), Timestamp(1));

    // B1: SM1 loads Y. Same shape: [1, 11].
    let b1 = rig.run(1, AccessKind::Load, Y);
    assert_eq!(b1.ts, Some(Timestamp(1)));

    // A2: SM0 stores Y. Y's lease [1,11] is outstanding at SM1, so the
    // write is logically scheduled after it: wts = max(11+1, 1) = 12 —
    // the paper's step 8 — and SM0's warp moves to 12 (step 9).
    let a2 = rig.run(0, AccessKind::Store, Y);
    assert_eq!(a2.ts, Some(Timestamp(12)), "store Y assigned wts 12");
    assert_eq!(rig.l1[0].warp_ts(WarpId(0)), Timestamp(12));

    // B2: SM1 stores X: symmetric, wts 12 (paper steps 10-12).
    let b2 = rig.run(1, AccessKind::Store, X);
    assert_eq!(b2.ts, Some(Timestamp(12)));
    assert_eq!(rig.l1[1].warp_ts(WarpId(0)), Timestamp(12));

    // A3: SM0 re-reads X. Its cached lease [1,11] cannot serve warp_ts 12
    // (paper step 13): a renewal goes out, the L2 sees wts mismatch
    // (SM1's store made X wts=12) and responds with a *fill* of the new
    // data (step 14-15). With the uniform lease the read lands at ts 12
    // and observes B2's value.
    let a3 = rig.run(0, AccessKind::Load, X);
    assert_eq!(a3.version, b2.version, "A3 observes B2's store");
    assert_eq!(a3.ts, Some(Timestamp(12)));
    assert!(
        rig.l1[0].stats().expired_misses >= 1,
        "A3 was a coherence miss"
    );
    assert!(rig.l1[0].stats().renewals >= 1, "A3 sent a renewal request");

    // B3: SM1 re-reads Y. In the paper Y's longer lease ([1,11] there)
    // still covers warp_ts 7, so B3 *hits on the old value* — the
    // signature trick of timestamp ordering. With our uniform lease B2
    // advanced SM1 to ts 12 > 11, so B3 renews and observes A2's store;
    // either outcome is a legal serialization, and the checker agrees.
    let b3 = rig.run(1, AccessKind::Load, Y);
    assert_eq!(b3.version, a2.version);
    assert_eq!(b3.ts, Some(Timestamp(12)));

    // The resulting logical serialization: A1(1) B1(1) → A2(12) B2(12) →
    // A3(12) B3(12); loads ordered after the stores they observe, exactly
    // the global order the paper derives (A1 → B1 → B2 → B3 → A2 → A3 in
    // their asymmetric-lease variant).
    assert!(a1.ts < a2.ts && b1.ts < b2.ts);
    assert!(a3.ts >= b2.ts && b3.ts >= a2.ts);
}

/// The same interaction with the paper's *asymmetric* leases (Y gets a
/// long lease) reproduces the figure's exact outcome: B3 hits the OLD Y.
#[test]
fn figure9_with_long_y_lease_keeps_b3_on_the_old_value() {
    // Emulate the long Y lease by having SM1 read Y *again* right before
    // B2, extending Y's lease beyond SM1's post-store timestamp... which
    // a renewal would do anyway. Instead, keep the paper's spirit: check
    // that a warp whose timestamp stays within the old lease hits the old
    // value even AFTER the store commits elsewhere.
    let mut rig = Rig::new();
    let _ = rig.run(1, AccessKind::Load, Y); // SM1 caches Y [1, 11]
    let a2 = rig.run(0, AccessKind::Store, Y); // SM0 writes Y at wts 12
    assert_eq!(a2.ts, Some(Timestamp(12)));
    // SM1's warp is still at ts 1 (< 11): the old copy legally serves it,
    // with no message traffic — the read is logically BEFORE the store.
    self_assert_hit(&mut rig, 1, Y, Version::ZERO, Timestamp(1));
}

fn self_assert_hit(rig: &mut Rig, sm: usize, block: BlockAddr, want: Version, ts: Timestamp) {
    rig.next_id += 1;
    let acc = MemAccess {
        id: AccessId(rig.next_id),
        warp: WarpId(0),
        kind: AccessKind::Load,
        block,
        span: SpanId::NONE,
    };
    match rig.l1[sm].access(acc, rig.now) {
        L1Outcome::Hit(c) => {
            assert_eq!(
                c.version, want,
                "stale-but-lease-valid read must serve the old value"
            );
            assert_eq!(c.ts, Some(ts));
        }
        other => panic!("expected an L1 hit, got {other:?}"),
    }
}
