//! A small, offline, API-compatible subset of the `proptest` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the slice of proptest it actually uses: range/tuple/vec/bool strategies,
//! the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!` / `prop_assert_eq!`, and `TestCaseError`. Cases are
//! generated from a deterministic SplitMix64 stream (override the base seed
//! with `PROPTEST_SEED`); failing inputs are printed, but there is no
//! shrinking — rerun with the printed seed to reproduce.

use std::fmt;
use std::ops::Range;

/// Deterministic 64-bit generator (SplitMix64), the case source for every
/// strategy below.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// The case asked to be discarded (unused here, kept for parity).
    Reject(String),
}

impl TestCaseError {
    /// A failed-case error with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected-case error with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result alias matching proptest's case signature.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; ignored (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A value generator. The only requirement is drawing a `Value` from the
/// deterministic [`TestRng`]; proptest's simplification machinery is
/// deliberately absent.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The any-boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

/// Test-runner plumbing used by the `proptest!` expansion.
pub mod test_runner {
    pub use super::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};

    /// Base seed for a named property: `PROPTEST_SEED` if set, else a
    /// fixed constant, mixed with the property name so sibling properties
    /// draw independent streams.
    #[must_use]
    pub fn base_seed(name: &str) -> u64 {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x5EED_CAFE_F00D_D00D);
        name.bytes().fold(base, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3)
        })
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Fails the current case (early-returns a [`TestCaseError`]) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current case unless the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Declares property tests. Each function body runs once per generated
/// case; `prop_assert!`-style failures and `?`-propagated
/// [`TestCaseError`]s abort the case and print its inputs and seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::test_runner::base_seed(stringify!($name));
            let mut rng = $crate::TestRng::new(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                // Render inputs *before* the body runs: the body may move
                // the generated values.
                let inputs = {
                    let mut s = String::new();
                    $(s.push_str(&format!("  {} = {:?}\n", stringify!($arg), $arg));)+
                    s
                };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> $crate::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                ));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panic!(
                        "property {} failed on case {case} (seed {seed}): {e}\ninputs:\n{}",
                        stringify!($name),
                        inputs
                    ),
                    Err(payload) => {
                        eprintln!(
                            "property {} panicked on case {case} (seed {seed})\ninputs:\n{}",
                            stringify!($name),
                            inputs
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::new(7);
        let mut b = crate::TestRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..200 {
            let v = Strategy::generate(&crate::collection::vec(0u8..5, 1..9), &mut rng);
            assert!(!v.is_empty() && v.len() < 9);
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro front-end itself: tuples, vecs, bools, and `?`.
        #[test]
        fn macro_roundtrip(
            xs in crate::collection::vec((0u8..10, 0u64..100), 1..20),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(!xs.is_empty());
            for (a, b) in &xs {
                prop_assert!(*a < 10 && *b < 100, "out of range: {a} {b}");
            }
            prop_assert_eq!(flag as u8 <= 1, true);
            Result::<(), TestCaseError>::Ok(())?;
        }
    }
}
