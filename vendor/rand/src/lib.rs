//! A small, offline, API-compatible subset of the `rand` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! slice it uses: [`Rng::gen_range`] over integer ranges, [`Rng::gen_bool`],
//! and [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`]. The
//! generator is SplitMix64 — statistically fine for workload synthesis,
//! not cryptographic.

use std::ops::Range;

/// Integer types [`Rng::gen_range`] can sample.
pub trait SampleUniform: Copy {
    /// Maps a raw 64-bit draw into `[lo, hi)`.
    fn from_draw(draw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_draw(draw: u64, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "empty gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo + (draw % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// The subset of rand's `Rng` trait the workspace uses.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::from_draw(self.next_u64(), range.start, range.end)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Compare against a 53-bit uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
