//! A small, offline, API-compatible subset of the `criterion` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! slice it uses: [`Criterion::bench_function`], benchmark groups,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a plain
//! wall-clock loop printing mean ns/iter — adequate for relative,
//! same-machine comparisons; no statistics, plots, or baselines.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup; accepted for compatibility, the
/// stub reruns setup per batch regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, timing each call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Runs `routine` over fresh `setup` outputs, timing only `routine`.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(id: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration pass: target enough iterations to be readable without
    // taking seconds per benchmark.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;
    let mut best = f64::MAX;
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64 / iters as f64;
        if ns < best {
            best = ns;
        }
    }
    println!("{id:<40} {best:>12.1} ns/iter (best of {samples} x {iters})");
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    _parent: &'a mut (),
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut f);
        self
    }

    /// Ends the group (no-op; output is printed eagerly).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    unit: (),
}

impl Criterion {
    /// Accepts command-line configuration; the stub ignores it.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, 10, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _parent: &mut self.unit,
        }
    }
}

/// Declares a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_run_batched_bodies() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(|| 3u64, |x| ran += x, BatchSize::SmallInput)
        });
        group.finish();
        assert!(ran > 0);
    }
}
