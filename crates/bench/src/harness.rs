//! Shared experiment plumbing: configuration presets matching the paper's
//! evaluated systems, the run loop, and text-table rendering.

use gtsc_energy::{EnergyBreakdown, EnergyModel, EnergyParams};
use gtsc_faults::FaultStats;
use gtsc_sim::GpuSim;
use gtsc_types::{ConsistencyModel, GpuConfig, ProtocolKind, SimStats};
use gtsc_workloads::{Benchmark, Scale};

/// One evaluated system of Figure 12: a protocol/consistency pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperConfig {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Consistency model.
    pub consistency: ConsistencyModel,
    /// Figure label, e.g. `G-TSC-RC`.
    pub label: &'static str,
}

/// The five systems the paper plots (plus the baseline divisor `BL`):
/// `BL W/L1`, `G-TSC-RC`, `G-TSC-SC`, `TC-RC`, `TC-SC`.
///
/// `TC-RC` is TC-Weak (GWCT fences) and `TC-SC` is write-atomic TC with
/// SC issue rules, as in the original TC paper's pairing.
#[must_use]
pub fn paper_configs() -> [PaperConfig; 5] {
    [
        PaperConfig {
            protocol: ProtocolKind::L1NoCoherence,
            consistency: ConsistencyModel::Rc,
            label: "BL-W/L1",
        },
        PaperConfig {
            protocol: ProtocolKind::Gtsc,
            consistency: ConsistencyModel::Rc,
            label: "G-TSC-RC",
        },
        PaperConfig {
            protocol: ProtocolKind::Gtsc,
            consistency: ConsistencyModel::Sc,
            label: "G-TSC-SC",
        },
        PaperConfig {
            protocol: ProtocolKind::TcWeak,
            consistency: ConsistencyModel::Rc,
            label: "TC-RC",
        },
        PaperConfig {
            protocol: ProtocolKind::Tc,
            consistency: ConsistencyModel::Sc,
            label: "TC-SC",
        },
    ]
}

/// The paper-platform [`GpuConfig`] for a protocol/consistency pair.
#[must_use]
pub fn config_for(protocol: ProtocolKind, consistency: ConsistencyModel) -> GpuConfig {
    GpuConfig::paper_default()
        .with_protocol(protocol)
        .with_consistency(consistency)
}

/// Everything measured from one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Hardware counters.
    pub stats: SimStats,
    /// Energy estimate.
    pub energy: EnergyBreakdown,
    /// Coherence violations (expected nonzero only for the non-coherent
    /// baseline on group-A workloads).
    pub violations: usize,
    /// Aggregated fault-injection counters, when a fault plan was active
    /// (`None` for clean runs). Carries the NoC loss counters that pair
    /// with `stats.transport`.
    pub faults: Option<FaultStats>,
}

/// Runs `benchmark` under an explicit config.
///
/// # Panics
///
/// Panics if the simulation hits its cycle limit (a protocol deadlock —
/// should never happen).
#[must_use]
pub fn run_with_config(benchmark: Benchmark, cfg: GpuConfig, scale: Scale) -> RunOutcome {
    let kernel = benchmark.build(scale);
    let mut sim = GpuSim::new(cfg);
    let report = sim
        .run_kernel(kernel.as_ref())
        .unwrap_or_else(|e| panic!("{} deadlocked: {e}", benchmark.name()));
    let energy = EnergyModel::new(EnergyParams::default()).estimate(&report.stats);
    let faults = sim.fault_stats();
    RunOutcome {
        stats: report.stats,
        energy,
        violations: report.violations.len(),
        faults,
    }
}

/// Runs `benchmark` under a protocol/consistency pair on the paper
/// platform.
#[must_use]
pub fn run_benchmark(
    benchmark: Benchmark,
    protocol: ProtocolKind,
    consistency: ConsistencyModel,
    scale: Scale,
) -> RunOutcome {
    run_with_config(benchmark, config_for(protocol, consistency), scale)
}

/// Parses the common `--scale small|full|tiny` CLI argument
/// (default [`Scale::Full`]).
#[must_use]
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    match args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("tiny") => Scale::Tiny,
        Some("small") => Scale::Small,
        _ => Scale::Full,
    }
}

/// A simple fixed-width text table (benchmarks × configurations),
/// rendered like the paper's figure data.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    /// Named whole-run counters (insertion-ordered, accumulating), e.g.
    /// the transport/loss bins. Rendered as the JSON `counters` object.
    counters: Vec<(String, u64)>,
    precision: usize,
}

impl Table {
    /// Creates an empty table with the given column headers.
    #[must_use]
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            counters: Vec::new(),
            precision: 3,
        }
    }

    /// Adds `value` to the named whole-run counter (creating it at zero
    /// on first use). Counters keep their first-insertion order so the
    /// JSON schema stays byte-stable across runs.
    pub fn counter(&mut self, name: &str, value: u64) {
        if let Some((_, v)) = self.counters.iter_mut().find(|(n, _)| n == name) {
            *v += value;
        } else {
            self.counters.push((name.to_owned(), value));
        }
    }

    /// Accumulates the reliable-transport and NoC-loss bins of one run
    /// into the table's counters, under the stable `transport.*` names.
    /// Fault-free runs contribute zeros, so the schema is identical
    /// whether or not a storm was active.
    pub fn transport_counters(&mut self, out: &RunOutcome) {
        let f = out.faults.unwrap_or_default();
        self.counter("transport.dropped", f.dropped);
        self.counter("transport.corrupted", f.corrupted);
        let t = &out.stats.transport;
        self.counter("transport.delivered", t.delivered);
        self.counter("transport.retransmits", t.retransmits);
        self.counter("transport.timeouts", t.timeouts);
        self.counter("transport.nacks", t.nacks);
        self.counter("transport.acks", t.acks);
        self.counter("transport.dup_dropped", t.dup_dropped);
        self.counter("transport.max_backoff_hits", t.max_backoff_hits);
        self.counter("transport.flows_reset", t.flows_reset);
        self.counter("transport.bank_recoveries", t.bank_recoveries);
    }

    /// Sets the number of decimals (default 3).
    #[must_use]
    pub fn precision(mut self, p: usize) -> Self {
        self.precision = p;
        self
    }

    /// Appends a row.
    pub fn row(&mut self, name: &str, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((name.to_owned(), values));
    }

    /// Appends a geometric-mean row over all current rows.
    pub fn geomean_row(&mut self) {
        if self.rows.is_empty() {
            return;
        }
        let n = self.rows.len() as f64;
        let means: Vec<f64> = (0..self.columns.len())
            .map(|c| {
                let log_sum: f64 = self
                    .rows
                    .iter()
                    .map(|(_, v)| v[c].max(f64::MIN_POSITIVE).ln())
                    .sum();
                (log_sum / n).exp()
            })
            .collect();
        self.rows.push(("GEOMEAN".to_owned(), means));
    }

    /// Renders the table as CSV (header row, then one line per benchmark).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bench");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (name, vals) in &self.rows {
            out.push_str(name);
            for v in vals {
                out.push(',');
                if v.is_nan() {
                    out.push_str("NA");
                } else {
                    out.push_str(&format!("{v:.6}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as JSON with a stable schema: `title`,
    /// `columns`, one object per benchmark row mapping each column
    /// label to its value (`null` for NaN/missing cells), and a
    /// `counters` object of whole-run integer bins (always present,
    /// possibly empty; see [`transport_counters`](Table::transport_counters)).
    #[must_use]
    pub fn to_json(&self) -> String {
        use gtsc_trace::json_escape;
        let mut out = String::from("{\"title\":\"");
        out.push_str(&json_escape(&self.title));
        out.push_str("\",\"columns\":[");
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&json_escape(c));
            out.push('"');
        }
        out.push_str("],\"rows\":[");
        for (r, (name, vals)) in self.rows.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push_str("{\"bench\":\"");
            out.push_str(&json_escape(name));
            out.push('"');
            for (c, v) in self.columns.iter().zip(vals) {
                out.push_str(",\"");
                out.push_str(&json_escape(c));
                out.push_str("\":");
                if v.is_finite() {
                    out.push_str(&format!("{v:.6}"));
                } else {
                    out.push_str("null");
                }
            }
            out.push('}');
        }
        out.push_str("],\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&json_escape(name));
            out.push_str(&format!("\":{v}"));
        }
        out.push_str("}}\n");
        out
    }

    /// Writes the CSV (`--csv <path>`) and/or JSON (`--json <path>`)
    /// renderings next to the experiment outputs; quietly does nothing
    /// when neither flag was given.
    pub fn save_csv_if_requested(&self) {
        let args: Vec<String> = std::env::args().collect();
        for (flag, contents) in [("--csv", self.to_csv()), ("--json", self.to_json())] {
            if let Some(path) = args
                .iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
            {
                if let Err(e) = std::fs::write(path, &contents) {
                    eprintln!("could not write {path}: {e}");
                } else {
                    eprintln!("wrote {path}");
                }
            }
        }
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        out.push_str(&format!("{:<10}", "bench"));
        for c in &self.columns {
            out.push_str(&format!("{c:>12}"));
        }
        out.push('\n');
        for (name, vals) in &self.rows {
            out.push_str(&format!("{name:<10}"));
            for v in vals {
                out.push_str(&format!("{v:>12.prec$}", prec = self.precision));
            }
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_are_the_figure_bars() {
        let labels: Vec<&str> = paper_configs().iter().map(|c| c.label).collect();
        assert_eq!(
            labels,
            vec!["BL-W/L1", "G-TSC-RC", "G-TSC-SC", "TC-RC", "TC-SC"]
        );
    }

    #[test]
    fn csv_round_trips_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row("x", vec![1.0, f64::NAN]);
        let csv = t.to_csv();
        assert!(csv.starts_with("bench,a,b\n"));
        assert!(csv.contains("x,1.000000,NA"));
    }

    #[test]
    fn json_has_stable_schema_and_null_for_non_finite() {
        let mut t = Table::new("demo \"quoted\"", &["a", "b"]);
        t.row("x", vec![1.0, f64::NAN]);
        let json = t.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains(r#""title":"demo \"quoted\"""#));
        assert!(json.contains(r#""columns":["a","b"]"#));
        assert!(json.contains(r#""bench":"x""#));
        assert!(json.contains(r#""a":1.000000"#));
        assert!(json.contains(r#""b":null"#));
        // `counters` is part of the stable schema even when nothing was
        // recorded, so downstream parsers need no feature detection.
        assert!(json.trim_end().ends_with(r#""counters":{}}"#));
    }

    /// The transport bins: stable names, accumulation across runs, and a
    /// schema that is identical with and without an active fault plan.
    #[test]
    fn transport_counters_have_a_stable_json_schema() {
        use gtsc_types::{FaultConfig, GpuConfig, ProtocolKind};

        let mut t = Table::new("demo", &["a"]);
        t.counter("transport.retransmits", 2);
        t.counter("transport.retransmits", 3);
        assert!(
            t.to_json()
                .contains(r#""counters":{"transport.retransmits":5}"#),
            "counters must accumulate: {}",
            t.to_json()
        );

        let cfg = GpuConfig::test_small()
            .with_protocol(ProtocolKind::Gtsc)
            .with_faults(FaultConfig::lossy(11, 50));
        let out = run_with_config(Benchmark::Hs, cfg, Scale::Tiny);
        let mut lossy = Table::new("demo", &["a"]);
        lossy.transport_counters(&out);
        let json = lossy.to_json();
        for key in [
            "transport.dropped",
            "transport.corrupted",
            "transport.delivered",
            "transport.retransmits",
            "transport.timeouts",
            "transport.nacks",
            "transport.acks",
            "transport.dup_dropped",
            "transport.max_backoff_hits",
            "transport.flows_reset",
            "transport.bank_recoveries",
        ] {
            assert!(
                json.contains(&format!("\"{key}\":")),
                "missing {key}: {json}"
            );
        }
        assert!(
            out.stats.transport.delivered > 0,
            "lossy run should exercise the transport"
        );

        // A clean run emits the same bins (all zero), so the schema does
        // not depend on whether faults were configured.
        let clean = run_benchmark(
            Benchmark::Hs,
            ProtocolKind::Gtsc,
            ConsistencyModel::Rc,
            Scale::Tiny,
        );
        let mut zeroes = Table::new("demo", &["a"]);
        zeroes.transport_counters(&clean);
        assert!(zeroes.to_json().contains(r#""transport.dropped":0"#));
    }

    #[test]
    fn table_renders_geomean() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row("x", vec![1.0, 4.0]);
        t.row("y", vec![4.0, 1.0]);
        t.geomean_row();
        let s = t.render();
        assert!(s.contains("GEOMEAN"));
        assert!(s.contains("2.000"), "geomean of 1 and 4 is 2: {s}");
    }

    #[test]
    fn small_run_produces_stats() {
        let out = run_benchmark(
            Benchmark::Hs,
            ProtocolKind::Gtsc,
            ConsistencyModel::Rc,
            Scale::Tiny,
        );
        assert!(out.stats.cycles.0 > 0);
        assert_eq!(out.violations, 0);
        assert!(out.energy.total_nj() > 0.0);
    }
}
