//! Ablation — warp scheduling policy: greedy-then-oldest (GTO, the
//! GPGPU-Sim default) vs loose round-robin, under G-TSC-RC.
//!
//! GTO improves intra-warp locality (a warp keeps its own lease-covered
//! lines hot); round-robin interleaves warps finely, spreading accesses.
//!
//! Run: `cargo run --release -p gtsc-bench --bin ablation_scheduler [-- --scale small]`

use gtsc_bench::harness::scale_from_args;
use gtsc_bench::{config_for, run_with_config, Table};
use gtsc_types::{ConsistencyModel, ProtocolKind, WarpScheduler};
use gtsc_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let mut table = Table::new(
        &format!("scheduler ablation: G-TSC-RC cycles (millions), GTO vs round-robin [{scale:?}]"),
        &["GTO", "RR", "RR/GTO", "L1 hit% GTO", "L1 hit% RR"],
    )
    .precision(3);
    for b in Benchmark::all() {
        let mut cyc = Vec::new();
        let mut hit = Vec::new();
        for sched in [WarpScheduler::Gto, WarpScheduler::RoundRobin] {
            let mut cfg = config_for(ProtocolKind::Gtsc, ConsistencyModel::Rc);
            cfg.scheduler = sched;
            let out = run_with_config(b, cfg, scale);
            assert_eq!(out.violations, 0, "{}", b.name());
            cyc.push(out.stats.cycles.0 as f64 / 1e6);
            hit.push(100.0 * out.stats.l1.hit_rate());
        }
        table.row(
            b.name(),
            vec![cyc[0], cyc[1], cyc[1] / cyc[0], hit[0], hit[1]],
        );
    }
    println!("{table}");
}
