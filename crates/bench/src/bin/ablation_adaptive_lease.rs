//! Extension ablation — Tardis-2.0-style adaptive lease prediction.
//!
//! Read-mostly blocks that keep renewing earn exponentially longer leases
//! (`lease << streak`, capped at 16x); a store resets the prediction.
//! This should cut renewal traffic on read-heavy sharing workloads
//! without the write-stall penalty longer leases would cost TC.
//!
//! Run: `cargo run --release -p gtsc-bench --bin ablation_adaptive_lease [-- --scale small]`

use gtsc_bench::harness::scale_from_args;
use gtsc_bench::{config_for, run_with_config, Table};
use gtsc_types::{ConsistencyModel, ProtocolKind};
use gtsc_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let mut table = Table::new(
        &format!(
            "adaptive-lease ablation: G-TSC-RC fixed vs predicted leases [{scale:?}] \
             (cycles millions; renewals thousands)"
        ),
        &[
            "cyc fixed",
            "cyc adaptive",
            "rnw fixed",
            "rnw adaptive",
            "rnw ratio",
        ],
    )
    .precision(3);
    for b in Benchmark::all() {
        let mut cyc = Vec::new();
        let mut rnw = Vec::new();
        for adaptive in [false, true] {
            let mut cfg = config_for(ProtocolKind::Gtsc, ConsistencyModel::Rc);
            cfg.adaptive_lease = adaptive;
            let out = run_with_config(b, cfg, scale);
            assert_eq!(out.violations, 0, "{} adaptive={adaptive}", b.name());
            cyc.push(out.stats.cycles.0 as f64 / 1e6);
            rnw.push(out.stats.l1.renewals as f64 / 1e3);
        }
        let ratio = if rnw[0] > 0.0 { rnw[1] / rnw[0] } else { 1.0 };
        table.row(b.name(), vec![cyc[0], cyc[1], rnw[0], rnw[1], ratio]);
    }
    println!("{table}");
    println!("Correctness is checker-verified in both modes; see also the\n`gtsc_parameters_do_not_change_results` equivalence test.");
}
