//! `bench_compare` — diffs two `BENCH_*.json` performance baselines.
//!
//! Reads two files in the `gtsc-bench-baseline-v1` schema (written by
//! the `perf_baseline` bin), prints a per-metric delta table, and flags
//! regressions beyond a configurable threshold. For throughput-style
//! metrics (unit ending in `/s`) bigger is better; for latency-style
//! metrics (everything else: `ns`, `s`, ...) smaller is better.
//!
//! By default the exit code is always 0 — CI runs this as a
//! *non-blocking* signal, because single-run wall-clock numbers on
//! shared runners are noisy. Pass `--strict` to exit non-zero on any
//! regression beyond the threshold (for local, quiesced machines).
//!
//! Run: `bench_compare OLD.json NEW.json [--threshold-pct 10] [--strict]`
//!
//! The schema is deliberately flat (nothing deeper than two levels,
//! plain JSON numbers), so this bin parses it with a small hand-rolled
//! scanner instead of pulling in a JSON dependency.

use std::process::ExitCode;

const USAGE: &str = "\
bench_compare: diff two gtsc-bench-baseline-v1 JSON files

usage: bench_compare OLD.json NEW.json [flags]

    --threshold-pct N   flag deltas beyond N percent as regressions (default: 10)
    --strict            exit non-zero if any metric regressed beyond the threshold
    --help              this text
";

/// One metric row pulled out of a baseline file.
#[derive(Debug, Clone, PartialEq)]
struct Metric {
    name: String,
    value: f64,
    unit: String,
}

/// Minimal scanner for the flat `gtsc-bench-baseline-v1` format: finds
/// the `"metrics"` object and extracts each entry's `value` and `unit`.
/// Returns an error on schema mismatch rather than guessing.
fn parse_baseline(text: &str) -> Result<Vec<Metric>, String> {
    if !text.contains("\"schema\"") || !text.contains("gtsc-bench-baseline-v1") {
        return Err("not a gtsc-bench-baseline-v1 file (missing schema marker)".into());
    }
    let metrics_start = text
        .find("\"metrics\"")
        .ok_or("no \"metrics\" object in file")?;
    let body = &text[metrics_start..];
    let open = body.find('{').ok_or("malformed metrics object")?;
    // The schema nests at most two levels under "metrics", so a simple
    // depth counter finds the matching close brace reliably.
    let mut depth = 0usize;
    let mut end = open;
    for (i, c) in body[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = open + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let inner = &body[open + 1..end];
    let mut out = Vec::new();
    let mut rest = inner;
    while let Some(q0) = rest.find('"') {
        let after = &rest[q0 + 1..];
        let q1 = after.find('"').ok_or("unterminated metric name")?;
        let name = &after[..q1];
        let obj_rel = after[q1..]
            .find('{')
            .ok_or("metric entry is not an object")?;
        let obj = &after[q1 + obj_rel..];
        let obj_end = obj.find('}').ok_or("unterminated metric entry")?;
        let entry = &obj[..obj_end];
        let value = field_number(entry, "value")
            .ok_or_else(|| format!("metric {name} has no numeric \"value\""))?;
        let unit = field_string(entry, "unit").unwrap_or_default();
        out.push(Metric {
            name: name.to_string(),
            value,
            unit,
        });
        rest = &after[q1 + obj_rel + obj_end..];
    }
    if out.is_empty() {
        return Err("metrics object is empty".into());
    }
    Ok(out)
}

fn field_number(entry: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let at = entry.find(&pat)?;
    let after = entry[at + pat.len()..].trim_start().strip_prefix(':')?;
    let after = after.trim_start();
    let end = after
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

fn field_string(entry: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let at = entry.find(&pat)?;
    let after = entry[at + pat.len()..].trim_start().strip_prefix(':')?;
    let after = after.trim_start().strip_prefix('"')?;
    Some(after[..after.find('"')?].to_string())
}

/// Percent change from `old` to `new`, signed so that positive always
/// means "worse": throughput units (`*/s`) invert the sign.
fn regression_pct(m: &Metric, old: f64, new: f64) -> f64 {
    if old == 0.0 {
        return 0.0;
    }
    let raw = (new - old) / old * 100.0;
    if m.unit.ends_with("/s") {
        -raw
    } else {
        raw
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut files = Vec::new();
    let mut threshold = 10.0f64;
    let mut strict = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold-pct" => {
                let v = it.next().ok_or("--threshold-pct needs a value")?;
                threshold = v
                    .parse()
                    .map_err(|_| format!("bad value for --threshold-pct: {v}"))?;
            }
            "--strict" => strict = true,
            "--help" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag: {other}\n{USAGE}"))
            }
            path => files.push(path.to_string()),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        return Err(format!("expected exactly two files\n{USAGE}"));
    };
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"));
    let old = parse_baseline(&read(old_path)?).map_err(|e| format!("{old_path}: {e}"))?;
    let new = parse_baseline(&read(new_path)?).map_err(|e| format!("{new_path}: {e}"))?;

    println!(
        "{:<28} {:>14} {:>14} {:>9}  verdict",
        "metric", "old", "new", "delta%"
    );
    let mut regressed = Vec::new();
    for m in &new {
        let Some(o) = old.iter().find(|o| o.name == m.name) else {
            println!(
                "{:<28} {:>14} {:>14.1} {:>9}  new metric",
                m.name, "-", m.value, "-"
            );
            continue;
        };
        let pct = regression_pct(m, o.value, m.value);
        let verdict = if pct > threshold {
            regressed.push(m.name.clone());
            "REGRESSED"
        } else if pct < -threshold {
            "improved"
        } else {
            "ok"
        };
        println!(
            "{:<28} {:>14.1} {:>14.1} {:>+9.1}  {verdict}",
            m.name, o.value, m.value, pct
        );
    }
    for o in &old {
        if !new.iter().any(|m| m.name == o.name) {
            println!(
                "{:<28} {:>14.1} {:>14} {:>9}  dropped",
                o.name, o.value, "-", "-"
            );
        }
    }
    if regressed.is_empty() {
        println!("no regressions beyond {threshold}%");
    } else {
        println!(
            "{} metric(s) regressed beyond {threshold}%: {}",
            regressed.len(),
            regressed.join(", ")
        );
    }
    Ok(strict && !regressed.is_empty())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
      "schema": "gtsc-bench-baseline-v1",
      "date": "2026-08-08",
      "build": "release",
      "host": { "os": "linux", "arch": "x86_64" },
      "metrics": {
        "sim_cycles_per_second": { "value": 1000.0, "unit": "cycles/s", "workload": "x", "runs": 5, "stat": "median" },
        "ns_per_l1_hit": { "value": 400.5, "unit": "ns", "workload": "y", "runs": 5, "stat": "median" }
      }
    }"#;

    #[test]
    fn parses_the_v1_schema() {
        let ms = parse_baseline(SAMPLE).expect("parses");
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].name, "sim_cycles_per_second");
        assert_eq!(ms[0].value, 1000.0);
        assert_eq!(ms[0].unit, "cycles/s");
        assert_eq!(ms[1].value, 400.5);
    }

    #[test]
    fn rejects_other_schemas() {
        assert!(parse_baseline("{\"schema\": \"something-else\"}").is_err());
        assert!(parse_baseline("not json at all").is_err());
    }

    #[test]
    fn throughput_regression_sign_is_inverted() {
        let tput = Metric {
            name: "t".into(),
            value: 0.0,
            unit: "cycles/s".into(),
        };
        // Throughput falling 20% is a +20% regression.
        assert!((regression_pct(&tput, 1000.0, 800.0) - 20.0).abs() < 1e-9);
        let lat = Metric {
            name: "l".into(),
            value: 0.0,
            unit: "ns".into(),
        };
        // Latency rising 20% is a +20% regression.
        assert!((regression_pct(&lat, 100.0, 120.0) - 20.0).abs() < 1e-9);
    }
}
