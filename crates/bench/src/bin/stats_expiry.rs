//! Section VI-E statistic — L1 misses caused by lease expiration,
//! G-TSC vs TC.
//!
//! The paper: "the number of misses due to lease expiration has dropped
//! by around 48%" (G-TSC relative to TC), because logical time rolls
//! slower than physical time for load-dominated kernels.
//!
//! Run: `cargo run --release -p gtsc-bench --bin stats_expiry [-- --scale small]`

use gtsc_bench::harness::scale_from_args;
use gtsc_bench::{config_for, run_benchmark, Table};
use gtsc_gpu::{VecKernel, WarpOp, WarpProgram};
use gtsc_sim::GpuSim;
use gtsc_types::{Addr, ConsistencyModel, ProtocolKind};
use gtsc_workloads::Benchmark;

/// A load-dominated sharing kernel: the regime §VI-E describes ("kernels
/// that have more load instructions than store instructions do not incur
/// cache misses due to lease expiration since their timestamps roll
/// slower"). 32 CTAs of readers sweep a shared table for many rounds;
/// one writer CTA updates it rarely.
fn load_dominated() -> VecKernel {
    let table = |i: u64| Addr((i % 24) * 128);
    // Each reader sweeps the shared table, computes for longer than TC's
    // physical lease, and sweeps again: the re-read distance exceeds the
    // lease, so TC self-invalidates every sweep while G-TSC's logical
    // leases survive (logical time only moves on the writer's rare
    // stores).
    let reader = |seed: u64| {
        WarpProgram(
            (0..8u64)
                .flat_map(|round| {
                    let mut ops: Vec<WarpOp> = (0..24)
                        .map(|i| WarpOp::load_coalesced(table(i + seed), 32))
                        .collect();
                    ops.push(WarpOp::Compute(1500 + (round as u32) * 7));
                    ops
                })
                .collect(),
        )
    };
    let writer = WarpProgram(
        (0..8)
            .flat_map(|i| {
                [
                    WarpOp::Compute(200),
                    WarpOp::store_coalesced(table(i * 3), 32),
                    WarpOp::Fence,
                ]
            })
            .collect(),
    );
    let mut ctas: Vec<Vec<WarpProgram>> =
        (0..32u64).map(|c| vec![reader(c), reader(c + 7)]).collect();
    ctas.push(vec![writer.clone(), writer]);
    VecKernel::new("load-dom", 2, ctas)
}

fn main() {
    let scale = scale_from_args();
    let mut table = Table::new(
        &format!("§VI-E: L1 lease-expiration (coherence) misses [{scale:?}]"),
        &["G-TSC-RC", "TC-RC", "G-TSC/TC"],
    );
    let mut ratios = Vec::new();
    for b in Benchmark::group_a() {
        let g = run_benchmark(b, ProtocolKind::Gtsc, ConsistencyModel::Rc, scale);
        let t = run_benchmark(b, ProtocolKind::TcWeak, ConsistencyModel::Rc, scale);
        let ge = g.stats.l1.expired_misses;
        let te = t.stats.l1.expired_misses.max(1);
        ratios.push(ge.max(1) as f64 / te as f64);
        table.row(b.name(), vec![ge as f64, te as f64, ge as f64 / te as f64]);
    }
    table.geomean_row();
    println!("{table}");
    let n = ratios.len() as f64;
    let geo = (ratios.iter().map(|x| x.ln()).sum::<f64>() / n).exp();
    println!(
        "G-TSC expiration misses vs TC across group A (geomean): {:+.0}%  (paper: about -48%)",
        (geo - 1.0) * 100.0
    );
    println!(
        "NOTE: our group-A generators are more atomic-intensive than the CUDA
         originals appear to be; every atomic advances logical time, which costs
         G-TSC expirations. §VI-E's mechanism concerns *load-dominated* kernels —
         demonstrated directly below."
    );

    // The §VI-E regime: load-dominated sharing.
    let kernel = load_dominated();
    let mut out = Vec::new();
    for p in [ProtocolKind::Gtsc, ProtocolKind::TcWeak] {
        let cfg = config_for(p, ConsistencyModel::Rc);
        let mut sim = GpuSim::new(cfg);
        let report = sim.run_kernel(&kernel).expect("completes");
        assert!(report.violations.is_empty());
        out.push(report.stats.l1.expired_misses);
    }
    println!(
        "
load-dominated sharing kernel: G-TSC expiry misses = {}, TC = {} ({:+.0}%)
         — logical time barely advances between rare writes, so G-TSC's leases
         effectively never expire, while TC self-invalidates every {} cycles.",
        out[0],
        out[1],
        (out[0] as f64 / out[1].max(1) as f64 - 1.0) * 100.0,
        config_for(ProtocolKind::TcWeak, ConsistencyModel::Rc).tc_lease_cycles
    );
}
