//! Performance baseline — machine-readable simulator throughput numbers.
//!
//! Produces `BENCH_<date>.json` (schema `gtsc-bench-baseline-v1`) so
//! future PRs can diff simulator performance against a committed
//! baseline instead of anecdotes. Three metrics:
//!
//! * `sim_cycles_per_second` — simulated cycles per wall-clock second
//!   running KM at small scale under G-TSC/RC on the paper platform
//!   (median of `RUNS` runs). The headline "how fast is the simulator"
//!   number.
//! * `ns_per_l1_hit` — wall nanoseconds per private-L1 hit on an
//!   L1-hit-saturated single-warp microkernel (median of `RUNS`). The
//!   protocol hot path in isolation.
//! * `fig12_wall_seconds` — wall time for a full Figure-12 sweep
//!   (12 benchmarks × BL + 5 systems) at tiny scale, single run. The
//!   end-to-end experiment-harness latency.
//!
//! JSON schema (`gtsc-bench-baseline-v1`): a flat object with `schema`,
//! `date` (ISO, from `--date` or system clock), `build` (`release` or
//! `debug`), `host` {`os`, `arch`}, and `metrics`, where each metric is
//! {`value`, `unit`, `workload`, `runs`, `stat`}. Values are plain JSON
//! numbers; nothing nested deeper than two levels, so `grep`+`jq`-free
//! scripts can parse it.
//!
//! Run: `cargo run --release -p gtsc-bench --bin perf_baseline`
//! (writes `BENCH_<date>.json` in the current directory; pass an
//! argument to change the output path).

use std::time::Instant;

use gtsc_bench::{paper_configs, run_benchmark};
use gtsc_gpu::{VecKernel, WarpOp, WarpProgram};
use gtsc_sim::GpuSim;
use gtsc_types::{Addr, ConsistencyModel, GpuConfig, ProtocolKind};
use gtsc_workloads::{Benchmark, Scale};

/// Runs per timed metric; the median filters scheduler noise.
const RUNS: usize = 5;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Simulated cycles per wall second: KM/small, G-TSC/RC, paper machine.
fn cycles_per_second() -> f64 {
    let mut samples = Vec::new();
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let out = run_benchmark(
            Benchmark::Km,
            ProtocolKind::Gtsc,
            ConsistencyModel::Rc,
            Scale::Small,
        );
        let dt = t0.elapsed().as_secs_f64();
        samples.push(out.stats.cycles.0 as f64 / dt);
    }
    median(samples)
}

/// Wall nanoseconds per private-L1 hit on a hit-saturated microkernel:
/// one warp stores a handful of blocks once, then loads them over and
/// over; virtually every access after warm-up hits the L1.
fn ns_per_l1_hit() -> f64 {
    let blocks = 4u64;
    let mut ops = Vec::new();
    for b in 0..blocks {
        ops.push(WarpOp::store_coalesced(Addr(b * 128), 32));
    }
    for i in 0..4000u64 {
        ops.push(WarpOp::load_coalesced(Addr((i % blocks) * 128), 32));
    }
    let kernel = VecKernel::new("l1-hit-soak", 1, vec![vec![WarpProgram(ops)]]);
    let cfg = GpuConfig::test_small()
        .with_protocol(ProtocolKind::Gtsc)
        .with_consistency(ConsistencyModel::Rc);

    let mut samples = Vec::new();
    for _ in 0..RUNS {
        let mut sim = GpuSim::new(cfg.clone());
        let t0 = Instant::now();
        let report = sim.run_kernel(&kernel).expect("microkernel completes");
        let dt_ns = t0.elapsed().as_nanos() as f64;
        assert!(report.stats.l1.hits > 0, "microkernel produced no L1 hits");
        samples.push(dt_ns / report.stats.l1.hits as f64);
    }
    median(samples)
}

/// Wall seconds for one full Figure-12 sweep at tiny scale.
fn fig12_wall_seconds() -> f64 {
    let t0 = Instant::now();
    for b in Benchmark::all() {
        let _bl = run_benchmark(b, ProtocolKind::NoL1, ConsistencyModel::Rc, Scale::Tiny);
        for pc in paper_configs() {
            if pc.protocol == ProtocolKind::L1NoCoherence && b.requires_coherence() {
                continue;
            }
            let _ = run_benchmark(b, pc.protocol, pc.consistency, Scale::Tiny);
        }
    }
    t0.elapsed().as_secs_f64()
}

/// `days` since 1970-01-01 → (year, month, day). Howard Hinnant's
/// `civil_from_days`, avoiding a date-crate dependency.
fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    (if m <= 2 { y + 1 } else { y }, m as u32, d as u32)
}

fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let (y, m, d) = civil_from_days(secs / 86_400);
    format!("{y:04}-{m:02}-{d:02}")
}

fn metric(name: &str, value: f64, unit: &str, workload: &str, runs: usize, stat: &str) -> String {
    format!(
        "    \"{name}\": {{ \"value\": {value:.1}, \"unit\": \"{unit}\", \"workload\": \"{workload}\", \"runs\": {runs}, \"stat\": \"{stat}\" }}"
    )
}

fn main() {
    let date = today();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| format!("BENCH_{date}.json"));
    let build = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    if build == "debug" {
        eprintln!("warning: baseline from a debug build; use --release for comparable numbers");
    }

    eprintln!("measuring sim_cycles_per_second ({RUNS} runs)...");
    let cps = cycles_per_second();
    eprintln!("measuring ns_per_l1_hit ({RUNS} runs)...");
    let l1 = ns_per_l1_hit();
    eprintln!("measuring fig12_wall_seconds (1 run)...");
    let fig12 = fig12_wall_seconds();

    let json = format!(
        "{{\n  \"schema\": \"gtsc-bench-baseline-v1\",\n  \"date\": \"{date}\",\n  \"build\": \"{build}\",\n  \"host\": {{ \"os\": \"{}\", \"arch\": \"{}\" }},\n  \"metrics\": {{\n{},\n{},\n{}\n  }}\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        metric(
            "sim_cycles_per_second",
            cps,
            "cycles/s",
            "KM small, G-TSC/RC, paper platform",
            RUNS,
            "median"
        ),
        metric(
            "ns_per_l1_hit",
            l1,
            "ns",
            "single-warp L1-hit soak, G-TSC/RC, test platform",
            RUNS,
            "median"
        ),
        metric(
            "fig12_wall_seconds",
            fig12,
            "s",
            "Figure 12 sweep, 12 benchmarks x 6 systems, tiny scale",
            1,
            "single"
        ),
    );
    std::fs::write(&out_path, &json).expect("write baseline");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
