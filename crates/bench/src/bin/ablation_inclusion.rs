//! Ablation of Section V-C — non-inclusive vs inclusive L2 under G-TSC.
//!
//! G-TSC supports non-inclusion via the single `mem_ts` per bank
//! (evictions fold their lease into it). An inclusive hierarchy would
//! instead have to recall every private copy on eviction; this ablation
//! runs G-TSC with such recalls to expose the traffic inclusion would
//! cost. (TC has no choice: it must be inclusive, and additionally stalls
//! replacement on live victims — measured by the TC rows.)
//!
//! Run: `cargo run --release -p gtsc-bench --bin ablation_inclusion [-- --scale small]`

use gtsc_bench::harness::scale_from_args;
use gtsc_bench::{config_for, run_with_config, Table};
use gtsc_types::{ConsistencyModel, InclusionPolicy, ProtocolKind};
use gtsc_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let mut table = Table::new(
        &format!(
            "§V-C ablation: G-TSC-RC non-inclusive vs inclusive (recalls) [{scale:?}] \
             (cycles millions; flits thousands; TC eviction-stall cycles)"
        ),
        &[
            "cyc non-inc",
            "cyc inc",
            "flits non-inc",
            "flits inc",
            "TC evict-stall",
        ],
    )
    .precision(3);
    for b in Benchmark::all() {
        let mut cyc = Vec::new();
        let mut flits = Vec::new();
        for inclusion in [InclusionPolicy::NonInclusive, InclusionPolicy::Inclusive] {
            let mut cfg = config_for(ProtocolKind::Gtsc, ConsistencyModel::Rc);
            cfg.inclusion = inclusion;
            let out = run_with_config(b, cfg, scale);
            assert_eq!(out.violations, 0, "{}", b.name());
            cyc.push(out.stats.cycles.0 as f64 / 1e6);
            flits.push(out.stats.noc.flits as f64 / 1e3);
        }
        let tc = run_with_config(b, config_for(ProtocolKind::Tc, ConsistencyModel::Sc), scale);
        table.row(
            b.name(),
            vec![
                cyc[0],
                cyc[1],
                flits[0],
                flits[1],
                tc.stats.l2.eviction_stall_cycles as f64,
            ],
        );
    }
    println!("{table}");
    println!(
        "Non-inclusion is free for G-TSC (mem_ts); inclusion adds recall traffic.\n\
         TC's inclusive L2 additionally stalls replacement while victims hold live leases."
    );
}
