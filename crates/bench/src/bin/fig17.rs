//! Figure 17 — L1 cache energy, in (micro)joules, per benchmark and
//! configuration (absolute values; the paper plots joules).
//!
//! The paper observes TC consumes slightly less L1 energy than G-TSC
//! (G-TSC probes the L1 on renewals and keeps more accesses on-chip).
//!
//! Run: `cargo run --release -p gtsc-bench --bin fig17 [-- --scale small]`

use gtsc_bench::harness::scale_from_args;
use gtsc_bench::{paper_configs, run_benchmark, Table};
use gtsc_types::ProtocolKind;
use gtsc_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let configs: Vec<_> = paper_configs()
        .into_iter()
        .filter(|c| c.protocol != ProtocolKind::NoL1)
        .collect();
    let labels: Vec<&str> = configs.iter().map(|c| c.label).collect();
    let mut table = Table::new(
        &format!("Figure 17: L1 energy in microjoules [{scale:?}]"),
        &labels,
    )
    .precision(4);
    for b in Benchmark::all() {
        let mut row = Vec::new();
        for pc in &configs {
            if pc.protocol == ProtocolKind::L1NoCoherence && b.requires_coherence() {
                row.push(f64::NAN);
                continue;
            }
            let out = run_benchmark(b, pc.protocol, pc.consistency, scale);
            row.push(out.energy.l1_nj * 1e-3); // nJ -> µJ
        }
        table.row(b.name(), row);
    }
    table.save_csv_if_requested();
    println!("{table}");
    println!("(the no-L1 baseline has zero L1 energy by construction and is omitted)");
}
