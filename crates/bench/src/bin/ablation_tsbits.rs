//! Ablation of Section V-D — hardware timestamp width and rollover cost.
//!
//! The paper uses 16-bit timestamps and argues wrap-around is rare enough
//! for the reset protocol (flush L1s, rebase L2 leases) to be cheap. This
//! ablation shrinks the width until rollovers become frequent, showing
//! the protocol stays *correct* (checker-clean) and measuring the cost.
//!
//! Run: `cargo run --release -p gtsc-bench --bin ablation_tsbits [-- --scale small]`

use gtsc_bench::harness::scale_from_args;
use gtsc_bench::{config_for, run_with_config, Table};
use gtsc_types::{ConsistencyModel, ProtocolKind};
use gtsc_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let widths = [8u32, 10, 12, 16];
    let labels: Vec<String> = widths
        .iter()
        .flat_map(|w| [format!("cyc@{w}b"), format!("resets@{w}b")])
        .collect();
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let mut table = Table::new(
        &format!("§V-D ablation: G-TSC-RC vs timestamp width (cycles in millions) [{scale:?}]"),
        &label_refs,
    )
    .precision(4);
    for b in Benchmark::group_a() {
        let mut row = Vec::new();
        for w in widths {
            let mut cfg = config_for(ProtocolKind::Gtsc, ConsistencyModel::Rc);
            cfg.ts_bits = w;
            let out = run_with_config(b, cfg, scale);
            assert_eq!(
                out.violations,
                0,
                "{} must stay coherent across rollovers at {w} bits",
                b.name()
            );
            row.push(out.stats.cycles.0 as f64 / 1e6);
            row.push(out.stats.l2.ts_rollovers as f64);
        }
        table.row(b.name(), row);
    }
    println!("{table}");
    println!(
        "16-bit timestamps make rollover \"sufficiently rare\" (paper §V-D); the run\n\
         stays coherent even when narrow counters force frequent resets."
    );
}
