//! Figure 13 — pipeline stalls due to memory delay, normalized to the
//! no-L1 baseline (lower is better).
//!
//! "Stalls due to memory delay" counts warp-cycles waiting on
//! outstanding memory operations *including fences* (a fence waiting on
//! write acks or a GWCT is a memory-delay stall — it is where TC-Weak's
//! write latency surfaces). The paper reports TC incurring ~45% more
//! stalls than G-TSC on the coherence benchmarks.
//!
//! Run: `cargo run --release -p gtsc-bench --bin fig13 [-- --scale small]`

use gtsc_bench::harness::scale_from_args;
use gtsc_bench::{paper_configs, run_benchmark, Table};
use gtsc_types::{ConsistencyModel, ProtocolKind};
use gtsc_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let configs: Vec<_> = paper_configs()
        .into_iter()
        .filter(|c| c.protocol != ProtocolKind::L1NoCoherence)
        .collect();
    let labels: Vec<&str> = configs.iter().map(|c| c.label).collect();
    let mut table = Table::new(
        &format!(
            "Figure 13: memory-delay pipeline stalls normalized to BL, lower is better [{scale:?}]"
        ),
        &labels,
    );
    let mut ratio_tc_over_gtsc = Vec::new();
    for b in Benchmark::all() {
        let stalls = |o: &gtsc_bench::RunOutcome| {
            o.stats.sm.memory_stall_cycles + o.stats.sm.fence_stall_cycles
        };
        let bl = run_benchmark(b, ProtocolKind::NoL1, ConsistencyModel::Rc, scale);
        // Some compute-bound kernels stall the baseline (almost) never;
        // a ratio against ~0 is meaningless, so report NaN there.
        let base = stalls(&bl) as f64;
        let mut row = Vec::new();
        let mut by_label = std::collections::HashMap::new();
        for pc in &configs {
            let out = run_benchmark(b, pc.protocol, pc.consistency, scale);
            let s = stalls(&out);
            by_label.insert(pc.label, s);
            row.push(if base >= 1000.0 {
                s as f64 / base
            } else {
                f64::NAN
            });
        }
        if let (Some(&g), Some(&t)) = (by_label.get("G-TSC-RC"), by_label.get("TC-RC")) {
            ratio_tc_over_gtsc.push(t.max(1) as f64 / g.max(1) as f64);
        }
        table.row(b.name(), row);
    }
    table.save_csv_if_requested();
    println!("{table}");
    println!("(NaN rows: the baseline barely stalls there, so the ratio is undefined)");
    let n = ratio_tc_over_gtsc.len() as f64;
    let geo = (ratio_tc_over_gtsc.iter().map(|x| x.ln()).sum::<f64>() / n).exp();
    println!(
        "TC-RC memory stalls relative to G-TSC-RC (geomean): {geo:.2}x \
         (paper: TC has ~1.45x the stalls of G-TSC)"
    );
}
