//! Figure 16 — total energy consumption, normalized to the no-L1
//! baseline (lower is better).
//!
//! The paper reports G-TSC consuming ~11% less energy than TC with RC on
//! the coherence benchmarks, and notes SC can consume *less* energy than
//! RC on some benchmarks despite (or because of) its serialization —
//! idle cores burn only static power.
//!
//! Run: `cargo run --release -p gtsc-bench --bin fig16 [-- --scale small]`

use gtsc_bench::harness::scale_from_args;
use gtsc_bench::{paper_configs, run_benchmark, Table};
use gtsc_types::{ConsistencyModel, ProtocolKind};
use gtsc_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let configs: Vec<_> = paper_configs()
        .into_iter()
        .filter(|c| c.protocol != ProtocolKind::L1NoCoherence)
        .collect();
    let labels: Vec<&str> = configs.iter().map(|c| c.label).collect();
    let mut table = Table::new(
        &format!("Figure 16: total energy normalized to BL, lower is better [{scale:?}]"),
        &labels,
    );
    let mut gtsc_vs_tc = Vec::new();
    for b in Benchmark::all() {
        let bl = run_benchmark(b, ProtocolKind::NoL1, ConsistencyModel::Rc, scale);
        let base = bl.energy.total_nj();
        let mut row = Vec::new();
        let mut e = std::collections::HashMap::new();
        for pc in &configs {
            let out = run_benchmark(b, pc.protocol, pc.consistency, scale);
            e.insert(pc.label, out.energy.total_nj());
            row.push(out.energy.total_nj() / base);
        }
        if b.requires_coherence() {
            if let (Some(&g), Some(&t)) = (e.get("G-TSC-RC"), e.get("TC-RC")) {
                gtsc_vs_tc.push(g / t);
            }
        }
        table.row(b.name(), row);
    }
    table.geomean_row();
    table.save_csv_if_requested();
    println!("{table}");
    let n = gtsc_vs_tc.len() as f64;
    let geo = (gtsc_vs_tc.iter().map(|x| x.ln()).sum::<f64>() / n).exp();
    println!(
        "G-TSC-RC energy relative to TC-RC on coherence benchmarks: {:.0}% (paper: -11%)",
        (geo - 1.0) * 100.0
    );
}
