//! Table II — absolute execution cycles (in millions) of the baseline
//! (BL = no L1) and TC on our simulator, alongside the paper's published
//! values for both its own simulator and the original TC simulator.
//!
//! The paper's columns measured on *the authors' simulators* cannot be
//! regenerated without those artifacts; they are reproduced verbatim as
//! reference. Our columns regenerate the measurable part: BL and TC on
//! this workspace's simulator. Absolute magnitudes differ (our synthetic
//! kernels are smaller than the CUDA originals); the comparison of
//! interest is the BL↔TC relationship per benchmark.
//!
//! `--table1` additionally prints Table I (message contents).
//!
//! Run: `cargo run --release -p gtsc-bench --bin table2 [-- --scale small] [-- --table1]`

use gtsc_bench::harness::scale_from_args;
use gtsc_bench::{run_benchmark, Table};
use gtsc_types::{ConsistencyModel, ProtocolKind};
use gtsc_workloads::Benchmark;

/// Paper Table II values, in millions of cycles:
/// (BL on G-TSC sim, BL on TC sim, TC on G-TSC sim, TC on TC sim).
const PAPER: [(&str, f64, f64, f64, f64); 12] = [
    ("BH", 0.55, 1.26, 0.84, 1.03),
    ("CC", 1.47, 2.99, 1.77, 1.75),
    ("DLP", 1.63, 5.53, 1.63, 1.44),
    ("VPR", 0.85, 1.98, 0.90, 0.77),
    ("STN", 2.00, 4.66, 1.74, 1.62),
    ("BFS", 0.79, 1.95, 2.32, 1.87),
    ("CCP", 13.50, 13.59, 13.50, 13.47),
    ("GE", 2.22, 4.89, 2.49, 3.51),
    ("HS", 0.22, 0.22, 0.23, 0.23),
    ("KM", 28.74, 30.89, 30.78, 34.17),
    ("BP", 0.84, 1.61, 0.69, 0.58),
    ("SGM", 6.08, 5.74, 6.14, 5.91),
];

fn print_table1() {
    println!("\n== Table I: contents of requests and responses ==");
    println!(
        "{:<34}{:>5}{:>5}{:>9}{:>6}",
        "Message", "rts", "wts", "warp_ts", "data"
    );
    let rows = [
        ("Read/Renewal Requests (BusRd)", "", "x", "x", ""),
        ("Write Request (BusWr)", "", "", "x", "x"),
        ("Fill Response (BusFill)", "x", "x", "", "x"),
        ("Renewal Response (BusRnw)", "x", "", "", ""),
        ("Write Acknowledgment (BusWrAck)", "x", "x", "", ""),
    ];
    for (m, a, b, c, d) in rows {
        println!("{m:<34}{a:>5}{b:>5}{c:>9}{d:>6}");
    }
    println!("(field sizes are asserted by gtsc-protocol's `table1_message_fields` test)");
}

fn main() {
    if std::env::args().any(|a| a == "--table1") {
        print_table1();
    }
    let scale = scale_from_args();
    let mut table = Table::new(
        &format!("Table II: absolute execution cycles, millions [{scale:?}]"),
        &[
            "BL(ours)",
            "TC(ours)",
            "BL(paper-G)",
            "BL(paper-T)",
            "TC(paper-G)",
            "TC(paper-T)",
        ],
    )
    .precision(4);
    for (b, paper) in Benchmark::all().iter().zip(PAPER) {
        assert_eq!(b.name(), paper.0, "benchmark order matches the paper");
        let bl = run_benchmark(*b, ProtocolKind::NoL1, ConsistencyModel::Rc, scale);
        // Table II's TC column pairs with the paper's default (RC-ish)
        // reporting: TC-Weak.
        let tc = run_benchmark(*b, ProtocolKind::TcWeak, ConsistencyModel::Rc, scale);
        table.row(
            b.name(),
            vec![
                bl.stats.cycles.0 as f64 / 1e6,
                tc.stats.cycles.0 as f64 / 1e6,
                paper.1,
                paper.2,
                paper.3,
                paper.4,
            ],
        );
    }
    println!("{table}");
    table.save_csv_if_requested();
    println!(
        "\nNote: absolute magnitudes differ (synthetic kernels vs CUDA binaries); compare\n\
         the per-benchmark BL:TC ratio against the paper's."
    );
}
