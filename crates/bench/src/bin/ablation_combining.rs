//! Ablation of Section V-B — request combining.
//!
//! Keeping replicated reads merged in the MSHR (sending renewals when the
//! returned lease misses a waiter) versus forwarding every request to the
//! L2. The paper: forwarding all requests raises memory requests by
//! 12–35%; they chose merging.
//!
//! Run: `cargo run --release -p gtsc-bench --bin ablation_combining [-- --scale small]`

use gtsc_bench::harness::scale_from_args;
use gtsc_bench::{config_for, run_with_config, Table};
use gtsc_types::{CombinePolicy, ConsistencyModel, ProtocolKind};
use gtsc_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let mut table = Table::new(
        &format!(
            "§V-B ablation: G-TSC-RC, merge-in-MSHR vs forward-all [{scale:?}] \
             (cycles in millions; requests = L2 accesses)"
        ),
        &["cyc merge", "cyc fwd", "req merge", "req fwd", "req ratio"],
    )
    .precision(3);
    let mut req_increase = Vec::new();
    for b in Benchmark::group_a() {
        let mut cyc = Vec::new();
        let mut req = Vec::new();
        for policy in [CombinePolicy::MergeInMshr, CombinePolicy::ForwardAll] {
            let mut cfg = config_for(ProtocolKind::Gtsc, ConsistencyModel::Rc);
            cfg.combine = policy;
            let out = run_with_config(b, cfg, scale);
            assert_eq!(out.violations, 0, "{}", b.name());
            cyc.push(out.stats.cycles.0 as f64 / 1e6);
            req.push(out.stats.l2.accesses as f64);
        }
        let ratio = req[1] / req[0];
        req_increase.push(ratio);
        table.row(b.name(), vec![cyc[0], cyc[1], req[0], req[1], ratio]);
    }
    println!("{table}");
    let n = req_increase.len() as f64;
    let geo = (req_increase.iter().map(|x| x.ln()).sum::<f64>() / n).exp();
    println!(
        "Forward-all sends {:.0}% more memory requests (paper: +12%..+35%).",
        (geo - 1.0) * 100.0
    );
}
