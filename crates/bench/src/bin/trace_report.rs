//! Traced run of the message-passing microbenchmark — a worked example
//! of the observability stack: full event log, interval time-series,
//! flight-recorder tail, and Chrome `trace_event` export.
//!
//! The Chrome JSON loads in `chrome://tracing` or
//! <https://ui.perfetto.dev>: SMs, L2 banks, networks, and DRAM
//! partitions appear as processes, protocol events as instants, and the
//! sampled IPC / expired-miss-rate series as counter tracks.
//!
//! The run executes with the online transition sanitizer armed;
//! `--lint` additionally runs the declarative trace lints from
//! `gtsc-check` over the collected event log and exits nonzero on any
//! sanitizer violation or error-severity lint finding, making this the
//! CI sanitize-smoke as well as the worked tracing example. `--races`
//! runs the happens-before race oracle's trace-tier scan
//! ([`gtsc_check::scan_trace`]) over the same log and exits nonzero on
//! any ordering finding.
//!
//! Run: `cargo run --release -p gtsc-bench --bin trace_report
//!       [-- --chrome trace.json] [-- --lines trace.txt] [-- --lint]
//!       [-- --races]`

use std::collections::BTreeMap;

use gtsc_check::lint::lint_events;
use gtsc_check::scan_trace;
use gtsc_sim::GpuSim;
use gtsc_trace::to_lines;
use gtsc_types::{ConsistencyModel, GpuConfig, ProtocolKind, TraceConfig};
use gtsc_workloads::micro;

fn arg_path(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let trace = TraceConfig::full().with_interval(128);
    let cfg = GpuConfig::test_small()
        .with_protocol(ProtocolKind::Gtsc)
        .with_consistency(ConsistencyModel::Sc)
        .with_trace(trace)
        .with_sanitize(true);
    let kernel = micro::message_passing(3);
    let mut sim = GpuSim::new(cfg);
    let report = match sim.run_kernel(&kernel) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    };
    let events = sim.trace_events();

    println!("== trace_report: message-passing microbenchmark under G-TSC-SC ==");
    println!(
        "{} cycles, {} instructions (IPC {:.3}), {} violation(s)",
        report.stats.cycles.0,
        report.stats.sm.issued,
        report.stats.ipc(),
        report.violations.len()
    );

    let mut by_class: BTreeMap<&str, u64> = BTreeMap::new();
    for e in &events {
        *by_class.entry(e.kind.class().name()).or_default() += 1;
    }
    println!("\n{} events by class:", events.len());
    for (class, n) in &by_class {
        println!("  {class:<10}{n:>8}");
    }

    println!("\ninterval time-series (128-cycle samples):");
    println!(
        "  {:<14}{:>8}{:>14}{:>12}",
        "cycles", "ipc", "expired-rate", "noc-flits"
    );
    for s in sim.samples() {
        println!(
            "  {:<14}{:>8.3}{:>14.3}{:>12}",
            format!("{}..{}", s.start.0, s.end.0),
            s.ipc(),
            s.expired_miss_rate(),
            s.delta.noc.flits
        );
    }

    let tail = sim.flight_tail();
    let shown = tail.len().min(12);
    println!("\nflight-recorder tail (what a post-mortem would see):");
    for e in &tail[tail.len() - shown..] {
        println!("  {e}");
    }

    if let Some(path) = arg_path("--chrome") {
        match std::fs::write(&path, sim.chrome_trace()) {
            Ok(()) => println!("\nwrote Chrome trace to {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = arg_path("--lines") {
        match std::fs::write(&path, to_lines(&events)) {
            Ok(()) => println!("wrote line dump to {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if std::env::args().any(|a| a == "--lint") {
        if !report.violations.is_empty() {
            for v in &report.violations {
                println!("  {v}");
            }
            std::process::exit(1);
        }
        let lint = lint_events(&events);
        println!(
            "\ntrace lints: {} event(s) scanned, {} error(s), {} warning(s)",
            lint.scanned,
            lint.errors(),
            lint.warnings()
        );
        for l in lint.lines() {
            println!("  {l}");
        }
        if lint.errors() > 0 {
            std::process::exit(1);
        }
    }
    if std::env::args().any(|a| a == "--races") {
        let races = scan_trace(&events);
        println!(
            "\nrace oracle (trace tier): {} event(s) scanned, {} distinct finding(s)",
            races.events,
            races.findings.len()
        );
        for l in races.lines() {
            println!("  {l}");
        }
        if !races.is_clean() {
            std::process::exit(1);
        }
    }
}
