//! Figure 14 — performance of G-TSC-RC with different lease values.
//!
//! The paper sweeps leases of 8–20 and finds performance unchanged,
//! because the lease is *logical*: our implementation is in fact exactly
//! scale-invariant in the lease (all timestamp updates are max/+lease
//! compositions), so the rows come out identical — a stronger version of
//! the paper's insensitivity claim. The sweep includes 32 and 64 to show
//! the flatness extends beyond the paper's range.
//!
//! Run: `cargo run --release -p gtsc-bench --bin fig14 [-- --scale small]`

use gtsc_bench::harness::scale_from_args;
use gtsc_bench::{config_for, run_with_config, Table};
use gtsc_types::{ConsistencyModel, Lease, ProtocolKind};
use gtsc_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let leases = [8u64, 10, 12, 16, 20, 32, 64];
    let labels: Vec<String> = leases.iter().map(|l| format!("lease={l}")).collect();
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let mut table = Table::new(
        &format!("Figure 14: G-TSC-RC cycles (millions) vs lease [{scale:?}]"),
        &label_refs,
    )
    .precision(4);
    for b in Benchmark::group_a() {
        let mut row = Vec::new();
        for l in leases {
            let cfg = config_for(ProtocolKind::Gtsc, ConsistencyModel::Rc).with_lease(Lease(l));
            let out = run_with_config(b, cfg, scale);
            row.push(out.stats.cycles.0 as f64 / 1e6);
        }
        let spread = row.iter().cloned().fold(f64::MIN, f64::max)
            / row.iter().cloned().fold(f64::MAX, f64::min);
        table.row(b.name(), row);
        if spread > 1.02 {
            println!(
                "note: {} varies {:.1}% across leases",
                b.name(),
                (spread - 1.0) * 100.0
            );
        }
    }
    println!("{table}");
    table.save_csv_if_requested();
    println!("G-TSC is insensitive to the lease value (paper: unchanged over 8-20).");
}
