//! Figure 12 — Performance of GPU coherence protocols with different
//! memory models.
//!
//! Bars: `BL-W/L1` (group B only), `G-TSC-RC`, `G-TSC-SC`, `TC-RC`,
//! `TC-SC`, each normalized to the coherent no-L1 baseline (`BL`):
//! `normalized performance = BL cycles / config cycles` — higher is
//! better, exactly as the paper plots it.
//!
//! Run: `cargo run --release -p gtsc-bench --bin fig12 [-- --scale small]`

use gtsc_bench::harness::scale_from_args;
use gtsc_bench::{paper_configs, run_benchmark, Table};
use gtsc_types::{ConsistencyModel, ProtocolKind};
use gtsc_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let configs = paper_configs();
    let labels: Vec<&str> = configs.iter().map(|c| c.label).collect();
    let mut table = Table::new(
        &format!("Figure 12: performance normalized to BL (no-L1), higher is better [{scale:?}]"),
        &labels,
    );
    let mut group_a_speedup_gtsc_over_tc = Vec::new();
    for b in Benchmark::all() {
        let bl = run_benchmark(b, ProtocolKind::NoL1, ConsistencyModel::Rc, scale);
        let mut row = Vec::new();
        let mut cycles = std::collections::HashMap::new();
        for pc in configs {
            if pc.protocol == ProtocolKind::L1NoCoherence && b.requires_coherence() {
                // The paper reports BL-W/L1 only for benchmarks that do
                // not require coherence.
                row.push(f64::NAN);
                continue;
            }
            let out = run_benchmark(b, pc.protocol, pc.consistency, scale);
            cycles.insert(pc.label, out.stats.cycles.0);
            row.push(bl.stats.cycles.0 as f64 / out.stats.cycles.0 as f64);
            // Transport/loss bins ride the stable --json schema (all
            // zero here: figure runs are fault-free by construction).
            table.transport_counters(&out);
        }
        if b.requires_coherence() {
            if let (Some(g), Some(t)) = (cycles.get("G-TSC-RC"), cycles.get("TC-RC")) {
                group_a_speedup_gtsc_over_tc.push(*t as f64 / *g as f64);
            }
        }
        table.row(b.name(), row);
    }
    table.geomean_row();
    table.save_csv_if_requested();
    println!("{table}");
    if !group_a_speedup_gtsc_over_tc.is_empty() {
        let n = group_a_speedup_gtsc_over_tc.len() as f64;
        let geo: f64 = (group_a_speedup_gtsc_over_tc
            .iter()
            .map(|x| x.ln())
            .sum::<f64>()
            / n)
            .exp();
        println!(
            "G-TSC-RC speedup over TC-RC on coherence benchmarks (geomean): {:.2}x \
             (paper reports ~1.38x)",
            geo
        );
    }
}
