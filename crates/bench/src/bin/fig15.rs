//! Figure 15 — NoC traffic (flits) normalized to the no-L1 baseline
//! (lower is better).
//!
//! The paper reports G-TSC reducing traffic by ~20% vs TC with RC (and
//! 15.7% with SC) on the coherence benchmarks, chiefly because renewal
//! responses carry no data.
//!
//! Run: `cargo run --release -p gtsc-bench --bin fig15 [-- --scale small]`

use gtsc_bench::harness::scale_from_args;
use gtsc_bench::{paper_configs, run_benchmark, Table};
use gtsc_types::{ConsistencyModel, ProtocolKind};
use gtsc_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let configs: Vec<_> = paper_configs()
        .into_iter()
        .filter(|c| c.protocol != ProtocolKind::L1NoCoherence)
        .collect();
    let labels: Vec<&str> = configs.iter().map(|c| c.label).collect();
    let mut table = Table::new(
        &format!("Figure 15: NoC flits normalized to BL, lower is better [{scale:?}]"),
        &labels,
    );
    let mut saving_rc = Vec::new();
    let mut saving_sc = Vec::new();
    for b in Benchmark::all() {
        let bl = run_benchmark(b, ProtocolKind::NoL1, ConsistencyModel::Rc, scale);
        let base = bl.stats.noc.flits.max(1) as f64;
        let mut row = Vec::new();
        let mut flits = std::collections::HashMap::new();
        for pc in &configs {
            let out = run_benchmark(b, pc.protocol, pc.consistency, scale);
            flits.insert(pc.label, out.stats.noc.flits);
            row.push(out.stats.noc.flits as f64 / base);
        }
        if b.requires_coherence() {
            if let (Some(&g), Some(&t)) = (flits.get("G-TSC-RC"), flits.get("TC-RC")) {
                saving_rc.push(g as f64 / t as f64);
            }
            if let (Some(&g), Some(&t)) = (flits.get("G-TSC-SC"), flits.get("TC-SC")) {
                saving_sc.push(g as f64 / t as f64);
            }
        }
        table.row(b.name(), row);
    }
    table.geomean_row();
    table.save_csv_if_requested();
    println!("{table}");
    let geo = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    println!(
        "G-TSC traffic relative to TC on coherence benchmarks: RC {:.0}% (paper: -20%), SC {:.0}% (paper: -15.7%)",
        (geo(&saving_rc) - 1.0) * 100.0,
        (geo(&saving_sc) - 1.0) * 100.0,
    );
}
