//! Extension ablation — interconnect topology and bandwidth sensitivity.
//!
//! The paper repeatedly notes the NoC is the GPU's performance bottleneck
//! (Sections II-A, V-B, VI-B). This ablation runs G-TSC-RC and TC-RC on
//! the sharing benchmarks over (a) a crossbar vs a unidirectional ring,
//! and (b) halved injection bandwidth — showing which protocol's traffic
//! pattern is more NoC-sensitive.
//!
//! Run: `cargo run --release -p gtsc-bench --bin ablation_noc [-- --scale small]`

use gtsc_bench::harness::scale_from_args;
use gtsc_bench::{config_for, run_with_config, Table};
use gtsc_types::{ConsistencyModel, NocTopology, ProtocolKind};
use gtsc_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let mut table = Table::new(
        &format!(
            "NoC ablation: cycles (millions) under crossbar / ring / half-bandwidth [{scale:?}]"
        ),
        &[
            "GTSC xbar",
            "GTSC ring",
            "GTSC half-bw",
            "TC xbar",
            "TC ring",
            "TC half-bw",
        ],
    )
    .precision(4);
    for b in Benchmark::group_a() {
        let mut row = Vec::new();
        for p in [ProtocolKind::Gtsc, ProtocolKind::TcWeak] {
            for variant in 0..3 {
                let mut cfg = config_for(p, ConsistencyModel::Rc);
                match variant {
                    1 => cfg.noc.topology = NocTopology::Ring { hop_latency: 2 },
                    2 => cfg.noc.flits_per_cycle = 2,
                    _ => {}
                }
                let out = run_with_config(b, cfg, scale);
                assert_eq!(out.violations, 0, "{}", b.name());
                row.push(out.stats.cycles.0 as f64 / 1e6);
            }
        }
        table.row(b.name(), row);
    }
    table.save_csv_if_requested();
    println!("{table}");
    println!(
        "Ring adds distance-dependent latency; half bandwidth stresses data traffic.\n\
         TC's full-data refetches suffer more from bandwidth, G-TSC's renewal round\n\
         trips more from latency."
    );
}
