//! Fault-injection soak: hammers G-TSC with seeded chaos storms far past
//! the checked-in test sweep (`tests/faults.rs` covers ~100 seeds; this
//! binary defaults to 256 and CI's nightly job widens it further).
//!
//! Every storm is a pure function of its `u64` seed, so any failure this
//! soak finds is a one-command repro:
//!
//! ```text
//! FAULT_SEED=<seed> cargo run --release -p gtsc-bench --bin stress_faults
//! ```
//!
//! Run: `cargo run --release -p gtsc-bench --bin stress_faults
//!       [-- --seeds N] [-- --start S] [-- --drop-rate PERMILLE]
//!       [-- --gpus N] [-- --fabric-drop-rate PERMILLE] [-- --partition]`
//!
//! `--drop-rate` switches the storm from `FaultConfig::chaos` to
//! `FaultConfig::lossy`: flits are dropped at the given rate (and
//! corrupted at half of it) on top of the chaos perturbations, which
//! arms the reliable-transport layer. `FAULT_SEED` repros compose with
//! it — the failure line prints the exact flag combination to replay.
//!
//! `--gpus N` (N ≥ 2) moves the sweep to the multi-GPU system: the same
//! scenario kernels run with CTAs spread across `N` devices under a
//! shared home node, plus a device-crash/rejoin scenario.
//! `--fabric-drop-rate` injects seeded packet loss on the inter-GPU
//! fabric (independent stream from the on-die `--drop-rate`), and
//! `--partition` schedules link-down windows that sever devices from
//! the home mid-kernel. A failing multi-GPU storm additionally mines
//! per-device fabric hotspots from the flight-recorder tail and prints
//! each device's stall attribution.
//!
//! Every storm's flight-recorder tail is additionally swept by the
//! happens-before race oracle's trace-tier scan
//! ([`gtsc_check::scan_trace`]) — an ordering check independent of the
//! online sanitizer, so a storm that perturbs timing into an ordering
//! bug is caught even when every transition invariant still holds.
//!
//! Exits nonzero if any run produced a checker violation, a race-oracle
//! finding, stalled, or hit the cycle limit.

use gtsc_check::scan_trace;
use gtsc_faults::FaultStats;
use gtsc_gpu::{VecKernel, WarpOp, WarpProgram};
use gtsc_sim::{GpuSim, MultiGpuSim};
use gtsc_trace::{EventKind, Scope, TraceEvent};
use gtsc_types::{
    Addr, ConsistencyModel, FabricConfig, FaultConfig, GpuConfig, Lease, MultiGpuConfig,
    ProtocolKind, SimStats, TraceConfig,
};
use gtsc_workloads::micro;

/// Two CTAs of two warps hammering one block with atomics, stores, and
/// loads — the maximal-sharing workload from the fault test sweep.
fn contended_atomics() -> VecKernel {
    let prog = |s: u64| {
        WarpProgram(
            (0..12)
                .map(|i| match (i + s) % 3 {
                    0 => WarpOp::atomic_coalesced(Addr(0), 32),
                    1 => WarpOp::store_coalesced(Addr(0), 32),
                    _ => WarpOp::load_coalesced(Addr(0), 32),
                })
                .collect(),
        )
    };
    VecKernel::new(
        "contend-atomic",
        2,
        vec![vec![prog(0), prog(1)], vec![prog(2), prog(3)]],
    )
}

struct Scenario {
    name: &'static str,
    model: ConsistencyModel,
    kernel: VecKernel,
    /// Some(bits) shrinks the epoch budget to force rollover storms.
    ts_bits_cap: Option<u32>,
    /// Multi-GPU sweeps only: schedule whole-device crash/rejoin events.
    device_crashes: bool,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "mp-sc",
            model: ConsistencyModel::Sc,
            kernel: micro::message_passing(3),
            ts_bits_cap: None,
            device_crashes: false,
        },
        Scenario {
            name: "mp-rc",
            model: ConsistencyModel::Rc,
            kernel: micro::message_passing(3),
            ts_bits_cap: None,
            device_crashes: false,
        },
        Scenario {
            name: "contend-sc",
            model: ConsistencyModel::Sc,
            kernel: contended_atomics(),
            ts_bits_cap: None,
            device_crashes: false,
        },
        Scenario {
            name: "contend-rc",
            model: ConsistencyModel::Rc,
            kernel: contended_atomics(),
            ts_bits_cap: None,
            device_crashes: false,
        },
        Scenario {
            name: "rollover-storm",
            model: ConsistencyModel::Sc,
            kernel: contended_atomics(),
            ts_bits_cap: Some(6),
            device_crashes: false,
        },
    ]
}

/// The multi-GPU sweep: the single-GPU scenarios (CTAs spread across
/// devices, so the sharing lands on the fabric) plus a whole-device
/// crash/rejoin storm.
fn multi_scenarios() -> Vec<Scenario> {
    let mut all = scenarios();
    all.push(Scenario {
        name: "device-crash",
        model: ConsistencyModel::Sc,
        kernel: contended_atomics(),
        ts_bits_cap: None,
        device_crashes: true,
    });
    all
}

/// One-line per-component hotspot summary: which SM / bank saw the
/// traffic a failing storm implicates.
fn hotspots(stats: &SimStats) -> String {
    let l1: Vec<String> = stats
        .per_l1
        .iter()
        .enumerate()
        .map(|(i, c)| format!("sm{i}={}h/{}e", c.hits, c.expired_misses))
        .collect();
    let l2: Vec<String> = stats
        .per_l2
        .iter()
        .enumerate()
        .map(|(b, c)| format!("bank{b}={}st", c.stores))
        .collect();
    let t = &stats.transport;
    format!(
        "hotspots: l1 [{}], l2 [{}], transport [{}rtx {}nack {}dup {}reset {}rec]",
        l1.join(" "),
        l2.join(" "),
        t.retransmits,
        t.nacks,
        t.dup_dropped,
        t.flows_reset,
        t.bank_recoveries,
    )
}

/// Transport hotspots from the flight-recorder tail: which flows were
/// dropping, NACKing, and retransmitting when the run went wrong. The
/// counter totals say *how much* the transport worked; this says *where*.
fn transport_hotspots(tail: &[TraceEvent]) -> Option<String> {
    use std::collections::BTreeMap;
    // (retransmits, nacks, drops+corruptions) per (src, dst) flow.
    let mut flows: BTreeMap<(u16, u16), (u64, u64, u64)> = BTreeMap::new();
    let mut resets = 0u64;
    for e in tail {
        match e.kind {
            EventKind::Retransmit { src, dst, .. } => flows.entry((src, dst)).or_default().0 += 1,
            EventKind::Nack { src, dst, .. } => flows.entry((src, dst)).or_default().1 += 1,
            EventKind::PacketDrop { src, dst } | EventKind::PacketCorrupt { src, dst } => {
                flows.entry((src, dst)).or_default().2 += 1;
            }
            EventKind::BankReset { .. } => resets += 1,
            _ => {}
        }
    }
    if flows.is_empty() && resets == 0 {
        return None;
    }
    let mut items: Vec<_> = flows.into_iter().collect();
    items.sort_by_key(|&(_, (r, n, d))| std::cmp::Reverse(r + n + d));
    let shown: Vec<String> = items
        .iter()
        .take(6)
        .map(|((s, d), (r, n, d2))| format!("{s}->{d}:{r}rtx/{n}nack/{d2}drop"))
        .collect();
    let reset_note = if resets > 0 {
        format!(", {resets} bank reset(s) in tail")
    } else {
        String::new()
    };
    Some(format!(
        "transport tail hotspots: [{}]{reset_note}",
        shown.join(" ")
    ))
}

/// Runs one (seed, scenario) storm; returns an error description if the
/// run violated coherence or failed to complete. `drop_permille` swaps
/// the chaos storm for a lossy one (drops + corruption + transport).
fn run_one(
    seed: u64,
    sc: &Scenario,
    drop_permille: Option<u16>,
) -> (Option<String>, Option<FaultStats>) {
    let mut faults = match drop_permille {
        Some(p) => FaultConfig::lossy(seed, p),
        None => FaultConfig::chaos(seed),
    };
    if let Some(bits) = sc.ts_bits_cap {
        faults.ts_bits_cap = bits;
    }
    let cfg = GpuConfig::test_small()
        .with_protocol(ProtocolKind::Gtsc)
        .with_consistency(sc.model)
        .with_faults(faults)
        // Flight recorder on: a failing storm prints the event tail that
        // led up to it, not just counters (stall diagnoses carry theirs).
        .with_trace(TraceConfig::flight());
    let mut sim = GpuSim::new(cfg);
    let failure = match sim.run_kernel(&sc.kernel) {
        Ok(report) if report.violations.is_empty() => {
            // Sanitizer-clean is necessary, not sufficient: sweep the
            // flight-recorder tail with the independent ordering oracle.
            let races = scan_trace(&report.trace_tail);
            if races.is_clean() {
                None
            } else {
                let mut why = format!(
                    "race oracle flagged {} distinct ordering finding(s) in the trace tail:",
                    races.findings.len()
                );
                for l in races.lines() {
                    why.push_str(&format!("\n    {l}"));
                }
                why.push_str(&format!("\n  {}", hotspots(&report.stats)));
                Some(why)
            }
        }
        Ok(report) => {
            let mut why = format!(
                "{} violation(s): {:?}",
                report.violations.len(),
                report.violations
            );
            let tail = &report.trace_tail;
            if !tail.is_empty() {
                let shown = tail.len().min(16);
                why.push_str(&format!("\n  last {shown} trace events:"));
                for e in &tail[tail.len() - shown..] {
                    why.push_str(&format!("\n    {e}"));
                }
            }
            why.push_str(&format!("\n  {}", hotspots(&report.stats)));
            if let Some(t) = transport_hotspots(tail) {
                why.push_str(&format!("\n  {t}"));
            }
            Some(why)
        }
        Err(e) => Some(format!("did not complete: {e}")),
    };
    (failure, sim.fault_stats())
}

/// Multi-GPU sweep knobs (`--gpus`, `--fabric-drop-rate`,
/// `--partition`), carried into every storm and the repro line.
#[derive(Clone, Copy)]
struct MultiOpts {
    gpus: usize,
    fabric_drop: Option<u16>,
    partition: bool,
}

impl MultiOpts {
    /// The flag tokens a repro command needs to replay this sweep.
    fn repro_flags(&self) -> String {
        let mut s = format!(" --gpus {}", self.gpus);
        if let Some(p) = self.fabric_drop {
            s.push_str(&format!(" --fabric-drop-rate {p}"));
        }
        if self.partition {
            s.push_str(" --partition");
        }
        s
    }
}

/// Per-device fabric hotspots from the flight-recorder tail: the up/down
/// fabric nets trace under `Scope::Noc(2N)` / `Scope::Noc(2N + 1)`, with
/// the device index as the up-net source and down-net destination. This
/// answers *which device's link* was dropping and retransmitting when
/// the storm went wrong — the transport totals only say how much.
fn device_fabric_hotspots(tail: &[TraceEvent], n_devices: usize) -> Option<String> {
    let up = Scope::Noc(2 * n_devices as u16);
    let down = Scope::Noc(2 * n_devices as u16 + 1);
    // (retransmits, nacks, drops+corruptions) per device.
    let mut devs = vec![(0u64, 0u64, 0u64); n_devices];
    for e in tail {
        let dev = match (e.scope, e.kind) {
            (s, EventKind::Retransmit { src, dst, .. })
            | (s, EventKind::Nack { src, dst, .. })
            | (s, EventKind::PacketDrop { src, dst })
            | (s, EventKind::PacketCorrupt { src, dst })
                if s == up || s == down =>
            {
                usize::from(if s == up { src } else { dst })
            }
            _ => continue,
        };
        let Some(slot) = devs.get_mut(dev) else {
            continue;
        };
        match e.kind {
            EventKind::Retransmit { .. } => slot.0 += 1,
            EventKind::Nack { .. } => slot.1 += 1,
            _ => slot.2 += 1,
        }
    }
    if devs.iter().all(|&(r, n, d)| r + n + d == 0) {
        return None;
    }
    let shown: Vec<String> = devs
        .iter()
        .enumerate()
        .map(|(i, (r, n, d))| format!("dev{i}={r}rtx/{n}nack/{d}drop"))
        .collect();
    Some(format!("fabric hotspots by device: [{}]", shown.join(" ")))
}

/// Runs one (seed, scenario) multi-GPU storm. On-die faults mirror the
/// single-GPU sweep; the fabric gets its own seed-pure fault stream
/// (loss, partitions, device crashes) from the multi knobs.
fn run_one_multi(
    seed: u64,
    sc: &Scenario,
    opts: MultiOpts,
    drop_permille: Option<u16>,
) -> (Option<String>, Option<FaultStats>) {
    let mut faults = match drop_permille {
        Some(p) => FaultConfig::lossy(seed, p),
        None => FaultConfig::chaos(seed),
    };
    let mut fabric = FabricConfig::default();
    if let Some(bits) = sc.ts_bits_cap {
        faults.ts_bits_cap = bits;
        // The rebased grant must leave rollover headroom in the shrunken
        // timestamp budget (`MultiGpuSim::try_build` rejects it
        // otherwise): quarter of the range, mirroring the exhaustive
        // rollover litmus configuration.
        fabric.grant_lease = Lease(((1u64 << bits) / 4).min(fabric.grant_lease.0));
    }
    if let Some(p) = opts.fabric_drop {
        fabric = fabric.lossy(seed, p);
    } else {
        // Partition and crash schedules still derive from the seed even
        // when the loss layer is off.
        fabric.faults.seed = seed;
    }
    if opts.partition {
        fabric = fabric.with_partitions(2, 3_000, 1_500);
    }
    if sc.device_crashes {
        fabric = fabric.with_device_crashes(2, 2_000);
    }
    let cfg = MultiGpuConfig {
        n_devices: opts.gpus,
        gpu: GpuConfig::test_small()
            .with_protocol(ProtocolKind::Gtsc)
            .with_consistency(sc.model)
            .with_faults(faults)
            .with_trace(TraceConfig::flight()),
        fabric,
    };
    let mut sim = MultiGpuSim::new(cfg);
    let failure = match sim.run_kernel(&sc.kernel) {
        Ok(report) if report.violations.is_empty() => {
            let races = scan_trace(&report.trace_tail);
            if races.is_clean() {
                None
            } else {
                let mut why = format!(
                    "race oracle flagged {} distinct ordering finding(s) in the trace tail:",
                    races.findings.len()
                );
                for l in races.lines() {
                    why.push_str(&format!("\n    {l}"));
                }
                Some(why)
            }
        }
        Ok(report) => {
            let mut why = format!(
                "{} violation(s): {:?}",
                report.violations.len(),
                report.violations
            );
            let tail = &report.trace_tail;
            if !tail.is_empty() {
                let shown = tail.len().min(16);
                why.push_str(&format!("\n  last {shown} trace events:"));
                for e in &tail[tail.len() - shown..] {
                    why.push_str(&format!("\n    {e}"));
                }
            }
            why.push_str(&format!("\n  {}", hotspots(&report.stats)));
            if let Some(t) = transport_hotspots(tail) {
                why.push_str(&format!("\n  {t}"));
            }
            Some(why)
        }
        Err(e) => Some(format!("did not complete: {e}")),
    };
    // A failing multi-GPU storm gets the device-scoped post-mortem: which
    // link was hot in the tail, and what each device was stalled on.
    let failure = failure.map(|mut why| {
        if let Some(h) = device_fabric_hotspots(&sim.flight_tail(), opts.gpus) {
            why.push_str(&format!("\n  {h}"));
        }
        for d in sim.device_stalls() {
            why.push_str(&format!("\n  {d}"));
        }
        why
    });
    (failure, sim.fault_stats())
}

fn arg_value(name: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    // FAULT_SEED pins a single seed (the repro path printed on failure);
    // otherwise sweep [start, start + seeds).
    let seeds: Vec<u64> = match std::env::var("FAULT_SEED").ok() {
        Some(raw) => match raw.parse() {
            Ok(seed) => vec![seed],
            Err(_) => {
                eprintln!("error: FAULT_SEED={raw:?} is not a u64");
                std::process::exit(2);
            }
        },
        None => {
            let start = arg_value("--start").unwrap_or(0);
            let n = arg_value("--seeds").unwrap_or(256);
            (start..start + n).collect()
        }
    };
    if seeds.is_empty() {
        eprintln!("error: empty seed sweep (--seeds 0) would vacuously pass");
        std::process::exit(2);
    }
    let permille = |name: &str| {
        arg_value(name).map(|p| {
            u16::try_from(p).unwrap_or_else(|_| {
                eprintln!("error: {name} {p} does not fit in permille (u16)");
                std::process::exit(2);
            })
        })
    };
    let drop_rate = permille("--drop-rate");
    let multi = arg_value("--gpus").map(|n| {
        if n < 2 {
            eprintln!("error: --gpus {n} — the multi-GPU sweep needs at least 2 devices");
            std::process::exit(2);
        }
        MultiOpts {
            gpus: n as usize,
            fabric_drop: permille("--fabric-drop-rate"),
            partition: std::env::args().any(|a| a == "--partition"),
        }
    });
    if multi.is_none()
        && (std::env::args().any(|a| a == "--partition")
            || permille("--fabric-drop-rate").is_some())
    {
        eprintln!("error: --fabric-drop-rate/--partition need --gpus N (they are fabric knobs)");
        std::process::exit(2);
    }
    let scenarios = match multi {
        Some(_) => multi_scenarios(),
        None => scenarios(),
    };
    let mut storm_kind = match drop_rate {
        Some(p) => format!("lossy storms ({p} permille drop)"),
        None => "chaos storms".to_string(),
    };
    if let Some(m) = multi {
        storm_kind.push_str(&format!(" across {} GPUs", m.gpus));
        if let Some(p) = m.fabric_drop {
            storm_kind.push_str(&format!(", fabric loss {p} permille"));
        }
        if m.partition {
            storm_kind.push_str(", partitions scheduled");
        }
    }
    println!(
        "== fault soak: {} seeds x {} scenarios = {} {storm_kind} ==",
        seeds.len(),
        scenarios.len(),
        seeds.len() * scenarios.len()
    );

    let mut total = FaultStats::default();
    let mut runs = 0u64;
    let mut failures = Vec::new();
    for &seed in &seeds {
        for sc in &scenarios {
            let (failure, stats) = match multi {
                Some(opts) => run_one_multi(seed, sc, opts, drop_rate),
                None => run_one(seed, sc, drop_rate),
            };
            runs += 1;
            if let Some(s) = stats {
                total.merge(&s);
            }
            if let Some(why) = failure {
                println!("FAIL seed {seed} [{}]: {why}", sc.name);
                let mut flags = drop_rate
                    .map(|p| format!(" --drop-rate {p}"))
                    .unwrap_or_default();
                if let Some(m) = multi {
                    flags.push_str(&m.repro_flags());
                }
                if !flags.is_empty() {
                    flags = format!(" --{flags}");
                }
                println!(
                    "  repro: FAULT_SEED={seed} cargo run --release -p gtsc-bench --bin stress_faults{flags}"
                );
                failures.push((seed, sc.name));
            }
        }
    }

    println!(
        "{runs} storms: {} packets jittered (+{} cycles), {} reordered, {} duplicated",
        total.jittered, total.extra_cycles, total.reordered, total.duplicated
    );
    if drop_rate.is_some() {
        println!(
            "loss layer: {} dropped, {} corrupted, {} bank reset(s)",
            total.dropped, total.corrupted, total.bank_resets
        );
        if total.dropped == 0 && total.corrupted == 0 {
            println!("WARN: lossy sweep never lost a packet — rate too low for this workload");
        }
    }
    if failures.is_empty() {
        println!("OK: zero coherence violations, zero stalls");
    } else {
        println!("{} FAILING storm(s): {failures:?}", failures.len());
        std::process::exit(1);
    }
}
