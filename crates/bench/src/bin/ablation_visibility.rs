//! Ablation of Section V-A — update-visibility policy.
//!
//! Option 1 (**block the line** until the store ack arrives) versus
//! option 2 (**keep a dual copy** so other warps read the old data
//! meanwhile). The paper evaluated both and found option 1's overhead
//! negligible, avoiding option 2's hardware cost — this binary checks
//! that conclusion holds in this reproduction.
//!
//! Run: `cargo run --release -p gtsc-bench --bin ablation_visibility [-- --scale small]`

use gtsc_bench::harness::scale_from_args;
use gtsc_bench::{config_for, run_with_config, Table};
use gtsc_types::{ConsistencyModel, ProtocolKind, VisibilityPolicy};
use gtsc_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let mut table = Table::new(
        &format!("§V-A ablation: G-TSC-RC cycles (millions), block-line vs dual-copy [{scale:?}]"),
        &["BlockLine", "DualCopy", "DualCopy/Block"],
    )
    .precision(4);
    for b in Benchmark::group_a() {
        let mut row = Vec::new();
        let mut cycles = Vec::new();
        for policy in [VisibilityPolicy::BlockLine, VisibilityPolicy::DualCopy] {
            let mut cfg = config_for(ProtocolKind::Gtsc, ConsistencyModel::Rc);
            cfg.visibility = policy;
            let out = run_with_config(b, cfg, scale);
            assert_eq!(
                out.violations,
                0,
                "{} must stay coherent under {policy:?}",
                b.name()
            );
            cycles.push(out.stats.cycles.0 as f64);
            row.push(out.stats.cycles.0 as f64 / 1e6);
        }
        row.push(cycles[1] / cycles[0]);
        table.row(b.name(), row);
    }
    println!("{table}");
    println!(
        "Paper conclusion: option 1 (block line) gives the better trade-off — the\n\
         performance difference is negligible, so the dual-copy hardware is not worth it."
    );
}
