//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section VI).
//!
//! Each binary in `src/bin/` reproduces one artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table2` | Table II — absolute execution cycles (BL, TC) |
//! | `fig12` | Figure 12 — performance of all protocol/model pairs |
//! | `fig13` | Figure 13 — memory-delay pipeline stalls |
//! | `fig14` | Figure 14 — G-TSC-RC lease sweep (8–20) |
//! | `fig15` | Figure 15 — NoC traffic |
//! | `fig16` | Figure 16 — total energy |
//! | `fig17` | Figure 17 — L1 energy (joules) |
//! | `stats_expiry` | §VI-E — lease-expiration misses, G-TSC vs TC |
//! | `ablation_visibility` | §V-A — block-line vs dual-copy |
//! | `ablation_combining` | §V-B — MSHR merging vs forward-all |
//! | `ablation_inclusion` | §V-C — non-inclusive vs inclusive L2 |
//! | `ablation_tsbits` | §V-D — timestamp width / rollover cost |
//!
//! Run any of them with `cargo run --release -p gtsc-bench --bin fig12`.
//! Use `--scale small|full` (default `full`) to trade fidelity for time.

pub mod harness;

pub use harness::{
    config_for, paper_configs, run_benchmark, run_with_config, PaperConfig, RunOutcome, Table,
};
