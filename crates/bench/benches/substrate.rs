//! Microbenchmarks of the memory-system substrate: tag array, MSHR,
//! DRAM timing model, and NoC throughput — the per-cycle building blocks
//! every protocol shares.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gtsc_mem::{Dram, DramRequest, Mshr, TagArray};
use gtsc_noc::Network;
use gtsc_types::{BlockAddr, CacheGeometry, Cycle, DramConfig, NocConfig};

fn bench_tag_array(c: &mut Criterion) {
    let geom = CacheGeometry::new(16 * 1024, 4, 128);
    let mut tags: TagArray<u64> = TagArray::new(geom);
    for b in 0..128 {
        tags.fill(BlockAddr(b), b);
    }
    let mut i = 0u64;
    c.bench_function("tag_array/probe_hit", |b| {
        b.iter(|| {
            i += 1;
            black_box(tags.probe(BlockAddr(i % 128)).is_some())
        })
    });
    c.bench_function("tag_array/fill_evict", |b| {
        b.iter(|| {
            i += 1;
            black_box(tags.fill(BlockAddr(i % 4096), i))
        })
    });
}

fn bench_mshr(c: &mut Criterion) {
    let mut i = 0u64;
    c.bench_function("mshr/register_take", |b| {
        let mut m: Mshr<u64> = Mshr::new(32, 8);
        b.iter(|| {
            i += 1;
            let block = BlockAddr(i % 16);
            m.register(block, i);
            if i.is_multiple_of(4) {
                black_box(m.take(block).len());
            }
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram/enqueue_tick", |b| {
        let mut d: Dram<u64> = Dram::new(DramConfig::default());
        let mut cyc = 0u64;
        b.iter(|| {
            cyc += 1;
            d.enqueue(DramRequest {
                block: BlockAddr(cyc % 512),
                is_write: cyc.is_multiple_of(5),
                payload: cyc,
            });
            black_box(d.tick(Cycle(cyc)).len())
        })
    });
}

fn bench_noc(c: &mut Criterion) {
    c.bench_function("noc/send_tick_16x8", |b| {
        let mut n: Network<u64> = Network::new(16, 8, NocConfig::default());
        let mut cyc = 0u64;
        b.iter(|| {
            cyc += 1;
            n.send(
                (cyc % 16) as usize,
                (cyc % 8) as usize,
                136,
                cyc,
                Cycle(cyc),
            );
            black_box(n.tick(Cycle(cyc)).len())
        })
    });
}

criterion_group!(benches, bench_tag_array, bench_mshr, bench_dram, bench_noc);
criterion_main!(benches);
