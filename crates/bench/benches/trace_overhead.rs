//! Observatory overhead benchmarks: the latency observatory must be
//! free when it is off.
//!
//! `spans_off` vs `baseline` measure the *same* configuration twice —
//! span sampling disabled is the default — so any systematic gap
//! between them is instrumentation cost leaking into the hot path
//! (`SpanTracker::disabled()` checks, the per-cycle stall accounting,
//! the per-message `span` field). The PR budget is <2% (checked as a
//! CI-friendly smoke assertion in `overhead_budget`, and trackable with
//! precision via `cargo bench trace_overhead`). `spans_on` shows what
//! 1-in-4 sampling costs when somebody turns the observatory on — not
//! budgeted, just tracked.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gtsc_sim::{GpuSim, SimBuilder};
use gtsc_types::{ConsistencyModel, GpuConfig, ProtocolKind};
use gtsc_workloads::{Benchmark, Scale};

fn base_config() -> GpuConfig {
    GpuConfig::test_small()
        .with_protocol(ProtocolKind::Gtsc)
        .with_consistency(ConsistencyModel::Rc)
}

fn spans_on_config() -> GpuConfig {
    let mut cfg = base_config();
    cfg.trace = cfg.trace.with_spans(4, 1);
    cfg
}

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(20);
    for (label, cfg) in [
        ("baseline", base_config()),
        ("spans_off", base_config()),
        ("spans_on_1in4", spans_on_config()),
    ] {
        group.bench_function(label, |b| {
            let kernel = Benchmark::Km.build(Scale::Tiny);
            b.iter_batched(
                || SimBuilder::new(cfg.clone()).build(),
                |mut sim: GpuSim| sim.run_kernel(kernel.as_ref()).expect("completes"),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Smoke assertion on the <2% spans-off budget: interleaved A/B runs of
/// the identical spans-off configuration against itself-with-tracker
/// construction must stay within a generous noise-tolerant multiple of
/// the budget. Criterion gives the precise number; this guard catches
/// gross regressions (an accidental always-on allocation, a hash per
/// access) even on noisy shared runners.
fn overhead_budget(c: &mut Criterion) {
    // Piggyback on the criterion harness so `cargo bench` runs it, but
    // do the measurement with plain interleaved timing: medians of
    // alternating runs cancel slow drift.
    let kernel = Benchmark::Km.build(Scale::Tiny);
    let cfg = base_config();
    let time_run = |cfg: &GpuConfig| {
        let mut sim = SimBuilder::new(cfg.clone()).build();
        let t0 = Instant::now();
        sim.run_kernel(kernel.as_ref()).expect("completes");
        t0.elapsed().as_secs_f64()
    };
    // Warm-up, then interleave.
    for _ in 0..3 {
        time_run(&cfg);
    }
    let mut a = Vec::new(); // reference
    let mut b = Vec::new(); // same config, second stream
    for _ in 0..15 {
        a.push(time_run(&cfg));
        b.push(time_run(&cfg));
    }
    let median = |xs: &mut Vec<f64>| {
        xs.sort_by(|x, y| x.total_cmp(y));
        xs[xs.len() / 2]
    };
    let ma = median(&mut a);
    let mb = median(&mut b);
    let delta_pct = ((mb - ma) / ma * 100.0).abs();
    // Identical configs: the observed gap is pure measurement noise.
    // It must sit well inside the window that would mask a real 2%
    // regression; 10x the budget tolerates shared-runner jitter while
    // still catching order-of-magnitude instrumentation leaks.
    assert!(
        delta_pct < 20.0,
        "spans-off self-noise {delta_pct:.1}% — machine too noisy to enforce the 2% budget"
    );
    let _ = c;
}

criterion_group!(benches, bench_overhead, overhead_budget);
criterion_main!(benches);
