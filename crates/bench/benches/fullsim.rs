//! Whole-simulator throughput benchmarks: one small figure-style run per
//! evaluated system, so `cargo bench` tracks the end-to-end cost of the
//! experiment harness (and regressions in any layer show up here).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gtsc_sim::GpuSim;
use gtsc_types::{ConsistencyModel, GpuConfig, ProtocolKind};
use gtsc_workloads::{Benchmark, Scale};

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("fullsim_bh_tiny");
    group.sample_size(10);
    for (p, m, label) in [
        (ProtocolKind::Gtsc, ConsistencyModel::Rc, "gtsc_rc"),
        (ProtocolKind::Gtsc, ConsistencyModel::Sc, "gtsc_sc"),
        (ProtocolKind::TcWeak, ConsistencyModel::Rc, "tc_rc"),
        (ProtocolKind::Tc, ConsistencyModel::Sc, "tc_sc"),
        (ProtocolKind::NoL1, ConsistencyModel::Rc, "bl"),
    ] {
        group.bench_function(label, |b| {
            let kernel = Benchmark::Bh.build(Scale::Tiny);
            let cfg = GpuConfig::test_small().with_protocol(p).with_consistency(m);
            b.iter_batched(
                || GpuSim::new(cfg.clone()),
                |mut sim| sim.run_kernel(kernel.as_ref()).expect("completes"),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("fullsim_gtsc_rc_tiny");
    group.sample_size(10);
    for bench in Benchmark::all() {
        group.bench_function(bench.name(), |b| {
            let kernel = bench.build(Scale::Tiny);
            let cfg = GpuConfig::test_small()
                .with_protocol(ProtocolKind::Gtsc)
                .with_consistency(ConsistencyModel::Rc);
            b.iter_batched(
                || GpuSim::new(cfg.clone()),
                |mut sim| sim.run_kernel(kernel.as_ref()).expect("completes"),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocols, bench_benchmarks);
criterion_main!(benches);
