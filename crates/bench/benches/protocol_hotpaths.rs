//! Microbenchmarks of the protocol hot paths: the L1 hit/miss checks and
//! the L2 lease/store timestamp assignment that execute once per memory
//! access in the simulator (and correspond to the paper's per-access
//! hardware operations).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gtsc_baselines::{TcL1, TcL1Params};
use gtsc_core::rules::{extend_rts, lease_covers, load_ts, store_wts};
use gtsc_core::{GtscL1, GtscL2, L1Params, L2Params};
use gtsc_protocol::msg::{FillResp, L1ToL2, LeaseInfo, ReadReq};
use gtsc_protocol::{AccessId, AccessKind, L1Controller, L2Controller, MemAccess};
use gtsc_trace::{EventKind, Sanitizer, Scope, Tracer, Transition};
use gtsc_types::{BlockAddr, Cycle, Lease, SpanId, Timestamp, TraceConfig, Version, WarpId};

fn bench_rules(c: &mut Criterion) {
    c.bench_function("rules/store_wts+extend_rts+load_ts", |b| {
        b.iter(|| {
            let wts = store_wts(black_box(Timestamp(1000)), black_box(Timestamp(37)));
            let rts = extend_rts(wts + Lease(10), Timestamp(40), Lease(10));
            let lt = load_ts(Timestamp(12), wts);
            black_box((wts, rts, lt, lease_covers(rts, lt)))
        })
    });
}

fn bench_l1_hit(c: &mut Criterion) {
    let mut l1 = GtscL1::new(L1Params::default());
    // Warm one line with an effectively infinite lease.
    let warm = MemAccess {
        id: AccessId(0),
        warp: WarpId(0),
        kind: AccessKind::Load,
        block: BlockAddr(5),
        span: SpanId::NONE,
    };
    l1.access(warm, Cycle(0));
    l1.take_request();
    l1.on_response(
        gtsc_protocol::msg::L2ToL1::Fill(FillResp {
            block: BlockAddr(5),
            lease: LeaseInfo::Logical {
                wts: Timestamp(1),
                rts: Timestamp(u64::from(u32::MAX)),
            },
            version: Version(9),
            epoch: 0,
            span: SpanId::NONE,
        }),
        Cycle(1),
    );
    let mut id = 1u64;
    c.bench_function("gtsc_l1/load_hit", |b| {
        b.iter(|| {
            id += 1;
            let acc = MemAccess {
                id: AccessId(id),
                warp: WarpId((id % 4) as u16),
                kind: AccessKind::Load,
                block: BlockAddr(5),
                span: SpanId::NONE,
            };
            black_box(l1.access(acc, Cycle(id)))
        })
    });
}

fn bench_l1_miss_roundtrip(c: &mut Criterion) {
    let mut id = 0u64;
    c.bench_function("gtsc_l1/miss_fill_roundtrip", |b| {
        let mut l1 = GtscL1::new(L1Params::default());
        b.iter(|| {
            id += 1;
            let block = BlockAddr(id % 64);
            let acc = MemAccess {
                id: AccessId(id),
                warp: WarpId((id % 4) as u16),
                kind: AccessKind::Load,
                block,
                span: SpanId::NONE,
            };
            l1.access(acc, Cycle(id));
            while l1.take_request().is_some() {}
            let done = l1.on_response(
                gtsc_protocol::msg::L2ToL1::Fill(FillResp {
                    block,
                    lease: LeaseInfo::Logical {
                        wts: Timestamp(1),
                        rts: Timestamp(u64::from(u32::MAX)),
                    },
                    version: Version(1),
                    epoch: 0,
                    span: SpanId::NONE,
                }),
                Cycle(id),
            );
            black_box(done.len())
        })
    });
}

fn bench_l2_serve(c: &mut Criterion) {
    let mut l2 = GtscL2::new(L2Params {
        ts_bits: 48,
        ..L2Params::default()
    });
    // Warm a block.
    l2.on_request(
        0,
        L1ToL2::Read(ReadReq {
            block: BlockAddr(3),
            wts: Timestamp(0),
            warp_ts: Timestamp(1),
            epoch: 0,
            span: SpanId::NONE,
        }),
        Cycle(0),
    );
    for cyc in 0..64 {
        l2.tick(Cycle(cyc));
        while let Some((bl, w)) = l2.take_dram_request() {
            l2.on_dram_response(bl, w, Cycle(cyc));
        }
        while l2.take_response().is_some() {}
    }
    let mut cyc = 100u64;
    c.bench_function("gtsc_l2/renewal_serve", |b| {
        b.iter(|| {
            cyc += 20;
            l2.on_request(
                0,
                L1ToL2::Read(ReadReq {
                    block: BlockAddr(3),
                    wts: Timestamp(1),
                    warp_ts: Timestamp(cyc % 50_000),
                    epoch: 0,
                    span: SpanId::NONE,
                }),
                Cycle(cyc),
            );
            l2.tick(Cycle(cyc + 15));
            black_box(l2.take_response())
        })
    });
}

fn bench_tc_l1_hit(c: &mut Criterion) {
    let mut l1 = TcL1::new(TcL1Params::default());
    let warm = MemAccess {
        id: AccessId(0),
        warp: WarpId(0),
        kind: AccessKind::Load,
        block: BlockAddr(5),
        span: SpanId::NONE,
    };
    l1.access(warm, Cycle(0));
    l1.take_request();
    l1.on_response(
        gtsc_protocol::msg::L2ToL1::Fill(FillResp {
            block: BlockAddr(5),
            lease: LeaseInfo::Physical {
                expires: Cycle(u64::MAX),
            },
            version: Version(9),
            epoch: 0,
            span: SpanId::NONE,
        }),
        Cycle(1),
    );
    let mut id = 1u64;
    c.bench_function("tc_l1/load_hit", |b| {
        b.iter(|| {
            id += 1;
            let acc = MemAccess {
                id: AccessId(id),
                warp: WarpId((id % 4) as u16),
                kind: AccessKind::Load,
                block: BlockAddr(5),
                span: SpanId::NONE,
            };
            black_box(l1.access(acc, Cycle(id)))
        })
    });
}

/// The cost of the tracing hook itself: a disabled [`Tracer::record`]
/// must be a bare branch (this is what keeps the hot paths above within
/// 2% of their pre-tracing numbers), while a flight-mode tracer pays the
/// filter chain plus a ring push.
fn bench_trace_overhead(c: &mut Criterion) {
    let mut off = Tracer::disabled();
    let mut cyc = 0u64;
    c.bench_function("trace_overhead/record_disabled", |b| {
        b.iter(|| {
            cyc += 1;
            off.record(
                Cycle(cyc),
                EventKind::Hit {
                    block: BlockAddr(cyc % 64),
                    warp: (cyc % 4) as u16,
                    warp_ts: cyc,
                    rts: cyc + 10,
                },
            );
            black_box(off.is_enabled())
        })
    });
    c.bench_function("trace_overhead/record_with_disabled", |b| {
        b.iter(|| {
            cyc += 1;
            off.record_with(Cycle(cyc), || EventKind::Hit {
                block: BlockAddr(cyc % 64),
                warp: (cyc % 4) as u16,
                warp_ts: cyc,
                rts: cyc + 10,
            });
            black_box(off.is_enabled())
        })
    });
    let mut flight = Tracer::new(Scope::Sm(0), &TraceConfig::flight());
    c.bench_function("trace_overhead/record_flight", |b| {
        b.iter(|| {
            cyc += 1;
            flight.record(
                Cycle(cyc),
                EventKind::Hit {
                    block: BlockAddr(cyc % 64),
                    warp: (cyc % 4) as u16,
                    warp_ts: cyc,
                    rts: cyc + 10,
                },
            );
            black_box(flight.is_enabled())
        })
    });
}

/// The same budget argument for the sanitizer hook: a disabled
/// [`Sanitizer::check_with`] is one predicted-not-taken branch and never
/// builds the [`Transition`]; an enabled one pays the `RefCell` borrow
/// plus the invariant checks.
fn bench_sanitize_overhead(c: &mut Criterion) {
    let off = Sanitizer::disabled();
    let mut cyc = 0u64;
    c.bench_function("sanitize_overhead/check_with_disabled", |b| {
        b.iter(|| {
            cyc += 1;
            off.check_with(Cycle(cyc), || Transition::WarpTs {
                warp: (cyc % 4) as u16,
                ts: Timestamp(cyc),
            });
            black_box(off.is_enabled())
        })
    });
    let on = Sanitizer::enabled(Scope::Sm(0));
    c.bench_function("sanitize_overhead/check_with_enabled", |b| {
        b.iter(|| {
            cyc += 1;
            on.check_with(Cycle(cyc), || Transition::WarpTs {
                warp: (cyc % 4) as u16,
                ts: Timestamp(cyc),
            });
            black_box(on.checked())
        })
    });
}

/// End-to-end: the L1 hit path with a disabled sanitizer embedded (the
/// configuration every non-sanitized run executes) — compare against
/// `gtsc_l1/load_hit` for the <2% budget.
fn bench_l1_hit_sanitizer_off(c: &mut Criterion) {
    let mut l1 = GtscL1::new(L1Params::default());
    l1.set_sanitizer(Sanitizer::disabled());
    let warm = MemAccess {
        id: AccessId(0),
        warp: WarpId(0),
        kind: AccessKind::Load,
        block: BlockAddr(5),
        span: SpanId::NONE,
    };
    l1.access(warm, Cycle(0));
    l1.take_request();
    l1.on_response(
        gtsc_protocol::msg::L2ToL1::Fill(FillResp {
            block: BlockAddr(5),
            lease: LeaseInfo::Logical {
                wts: Timestamp(1),
                rts: Timestamp(u64::from(u32::MAX)),
            },
            version: Version(9),
            epoch: 0,
            span: SpanId::NONE,
        }),
        Cycle(1),
    );
    let mut id = 1u64;
    c.bench_function("gtsc_l1/load_hit_sanitizer_off", |b| {
        b.iter(|| {
            id += 1;
            let acc = MemAccess {
                id: AccessId(id),
                warp: WarpId((id % 4) as u16),
                kind: AccessKind::Load,
                block: BlockAddr(5),
                span: SpanId::NONE,
            };
            black_box(l1.access(acc, Cycle(id)))
        })
    });
}

/// The end-to-end check for the <2% budget: the L1 hit path with a
/// disabled tracer embedded (the configuration every non-traced run
/// executes) — compare against `gtsc_l1/load_hit`.
fn bench_l1_hit_traced_off(c: &mut Criterion) {
    let mut l1 = GtscL1::new(L1Params::default());
    l1.set_tracer(Tracer::disabled());
    let warm = MemAccess {
        id: AccessId(0),
        warp: WarpId(0),
        kind: AccessKind::Load,
        block: BlockAddr(5),
        span: SpanId::NONE,
    };
    l1.access(warm, Cycle(0));
    l1.take_request();
    l1.on_response(
        gtsc_protocol::msg::L2ToL1::Fill(FillResp {
            block: BlockAddr(5),
            lease: LeaseInfo::Logical {
                wts: Timestamp(1),
                rts: Timestamp(u64::from(u32::MAX)),
            },
            version: Version(9),
            epoch: 0,
            span: SpanId::NONE,
        }),
        Cycle(1),
    );
    let mut id = 1u64;
    c.bench_function("trace_overhead/load_hit_tracer_off", |b| {
        b.iter(|| {
            id += 1;
            let acc = MemAccess {
                id: AccessId(id),
                warp: WarpId((id % 4) as u16),
                kind: AccessKind::Load,
                block: BlockAddr(5),
                span: SpanId::NONE,
            };
            black_box(l1.access(acc, Cycle(id)))
        })
    });
}

criterion_group!(
    benches,
    bench_rules,
    bench_l1_hit,
    bench_l1_miss_roundtrip,
    bench_l2_serve,
    bench_tc_l1_hit,
    bench_trace_overhead,
    bench_l1_hit_traced_off,
    bench_sanitize_overhead,
    bench_l1_hit_sanitizer_off
);
criterion_main!(benches);
