//! End-to-end smoke: every benchmark completes under every evaluated
//! system, and coherence holds wherever it must.

use gtsc_bench::{paper_configs, run_benchmark};
use gtsc_types::{ConsistencyModel, ProtocolKind};
use gtsc_workloads::{Benchmark, Scale};

#[test]
fn all_benchmarks_all_systems_small() {
    for b in Benchmark::all() {
        for pc in paper_configs() {
            if pc.protocol == ProtocolKind::L1NoCoherence && b.requires_coherence() {
                continue; // the paper does not run the incoherent baseline on group A
            }
            let out = run_benchmark(b, pc.protocol, pc.consistency, Scale::Small);
            assert!(out.stats.cycles.0 > 0, "{} {}", b.name(), pc.label);
            assert_eq!(
                out.violations,
                0,
                "{} under {} violated coherence",
                b.name(),
                pc.label
            );
        }
        // And the BL divisor.
        let out = run_benchmark(b, ProtocolKind::NoL1, ConsistencyModel::Rc, Scale::Small);
        assert_eq!(out.violations, 0, "{} under BL", b.name());
    }
}
