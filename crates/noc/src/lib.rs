//! Interconnection-network model for the G-TSC reproduction.
//!
//! GPUs connect SMs to L2 banks over a crossbar-like NoC whose bandwidth is
//! a first-order performance bottleneck (Section II-A of the paper; the
//! request-combining trade-off of Section V-B exists precisely because of
//! it). This crate models one direction of traffic as a [`Network`]: per
//! source port, packets are serialized into flits at a configurable
//! injection bandwidth, then fly for a fixed pipeline latency. The
//! simulator instantiates two networks — requests (SM→L2) and responses
//! (L2→SM) — mirroring GPGPU-Sim's separate virtual networks.
//!
//! The model deliberately omits intermediate-hop contention (a crossbar has
//! none) but does capture the quantities the paper reports: flit counts
//! (Figure 15's "NoC traffic"), queueing under bandwidth pressure, and
//! per-packet latency growth with load.
//!
//! # Examples
//!
//! ```
//! use gtsc_noc::Network;
//! use gtsc_types::{Cycle, NocConfig};
//!
//! let mut net: Network<&str> = Network::new(2, 4, NocConfig::default());
//! net.send(0, 3, 8, "hello", Cycle(0));
//! let mut arrived = Vec::new();
//! for c in 0..=30 {
//!     arrived.extend(net.tick(Cycle(c)));
//! }
//! assert_eq!(arrived, vec![(3, "hello")]);
//! ```

use std::collections::VecDeque;

use gtsc_types::{Cycle, NocConfig, NocStats, NocTopology};

/// A queued or in-flight packet.
#[derive(Debug, Clone)]
struct Packet<T> {
    dst: usize,
    bytes: usize,
    payload: T,
    enqueued: Cycle,
}

#[derive(Debug, Clone)]
struct InFlight<T> {
    arrives: Cycle,
    dst: usize,
    payload: T,
    enqueued: Cycle,
}

/// One direction of the SM ⇄ L2 interconnect.
///
/// `T` is the message type carried. Packets injected by the same source
/// port share that port's injection bandwidth
/// ([`NocConfig::flits_per_cycle`]); once injected they arrive after
/// [`NocConfig::latency`] cycles.
#[derive(Debug)]
pub struct Network<T> {
    cfg: NocConfig,
    n_srcs: usize,
    n_dsts: usize,
    /// Per-source waiting packets.
    queues: Vec<VecDeque<Packet<T>>>,
    /// Cycle at which each source port finishes its current injection.
    port_free: Vec<Cycle>,
    inflight: Vec<InFlight<T>>,
    stats: NocStats,
}

impl<T> Network<T> {
    /// Creates a network with `n_srcs` source ports and `n_dsts`
    /// destination ports.
    ///
    /// # Panics
    ///
    /// Panics if a port count is zero or `cfg.flit_bytes`/
    /// `cfg.flits_per_cycle` is zero.
    #[must_use]
    pub fn new(n_srcs: usize, n_dsts: usize, cfg: NocConfig) -> Self {
        assert!(n_srcs > 0 && n_dsts > 0, "port counts must be nonzero");
        assert!(cfg.flit_bytes > 0 && cfg.flits_per_cycle > 0, "NoC bandwidth must be nonzero");
        Network {
            cfg,
            n_srcs,
            n_dsts,
            queues: (0..n_srcs).map(|_| VecDeque::new()).collect(),
            port_free: vec![Cycle(0); n_srcs],
            inflight: Vec::new(),
            stats: NocStats::default(),
        }
    }

    /// Wire latency from source port `src` to destination port `dst`:
    /// the pipeline latency, plus per-hop distance on a ring.
    #[must_use]
    pub fn wire_latency(&self, src: usize, dst: usize) -> u64 {
        match self.cfg.topology {
            NocTopology::Crossbar => self.cfg.latency,
            NocTopology::Ring { hop_latency } => {
                let ring = (self.n_srcs + self.n_dsts) as u64;
                let from = src as u64;
                let to = (self.n_srcs + dst) as u64;
                let hops = (to + ring - from) % ring;
                self.cfg.latency + hops * hop_latency
            }
        }
    }

    /// Number of flits a `bytes`-sized packet occupies.
    #[must_use]
    pub fn flits_for(&self, bytes: usize) -> u64 {
        (bytes.max(1)).div_ceil(self.cfg.flit_bytes) as u64
    }

    /// Enqueues a packet of `bytes` from source port `src` to destination
    /// port `dst` at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn send(&mut self, src: usize, dst: usize, bytes: usize, payload: T, now: Cycle) {
        assert!(dst < self.n_dsts, "destination {dst} out of range");
        let flits = self.flits_for(bytes);
        self.stats.packets += 1;
        self.stats.flits += flits;
        if bytes > self.cfg.control_bytes {
            self.stats.data_packets += 1;
        } else {
            self.stats.control_packets += 1;
        }
        self.queues[src].push_back(Packet { dst, bytes, payload, enqueued: now });
    }

    /// Advances to cycle `now`: injects queued packets as port bandwidth
    /// frees up and returns `(dst, payload)` for every packet arriving at
    /// or before `now`.
    pub fn tick(&mut self, now: Cycle) -> Vec<(usize, T)> {
        let (cfg, n_srcs, n_dsts) = (self.cfg, self.n_srcs, self.n_dsts);
        let wire = |src: usize, dst: usize| match cfg.topology {
            NocTopology::Crossbar => cfg.latency,
            NocTopology::Ring { hop_latency } => {
                let ring = (n_srcs + n_dsts) as u64;
                let hops = ((n_srcs + dst) as u64 + ring - src as u64) % ring;
                cfg.latency + hops * hop_latency
            }
        };
        // Injection: each source port serializes its queue head-of-line.
        for (src, q) in self.queues.iter_mut().enumerate() {
            while let Some(head) = q.front() {
                let start = self.port_free[src].max(head.enqueued).max(now);
                if start > now {
                    break;
                }
                let flits = (head.bytes.max(1)).div_ceil(self.cfg.flit_bytes) as u64;
                let inject_cycles = flits.div_ceil(self.cfg.flits_per_cycle as u64);
                let pkt = q.pop_front().expect("front checked above");
                self.stats.queue_cycles += start - pkt.enqueued;
                let done = start + inject_cycles;
                self.port_free[src] = done;
                self.inflight.push(InFlight {
                    arrives: done + wire(src, pkt.dst),
                    dst: pkt.dst,
                    payload: pkt.payload,
                    enqueued: pkt.enqueued,
                });
            }
        }
        // Delivery.
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].arrives <= now {
                let p = self.inflight.swap_remove(i);
                self.stats.total_packet_latency += now - p.enqueued;
                out.push((p.dst, p.payload));
            } else {
                i += 1;
            }
        }
        out
    }

    /// Whether all queues and wires are drained.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.inflight.is_empty() && self.queues.iter().all(VecDeque::is_empty)
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> NocStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn run<T>(net: &mut Network<T>, horizon: u64) -> Vec<(u64, usize, T)> {
        let mut out = Vec::new();
        for c in 0..horizon {
            for (dst, p) in net.tick(Cycle(c)) {
                out.push((c, dst, p));
            }
        }
        out
    }

    #[test]
    fn control_packet_latency_is_inject_plus_pipeline() {
        let cfg = NocConfig::default(); // 20 cyc, 32B flits, 1 flit/cyc
        let mut net: Network<u32> = Network::new(1, 1, cfg);
        net.send(0, 0, 8, 42, Cycle(0));
        let got = run(&mut net, 100);
        // 8B = 1 flit = 1 cycle injection + 20 latency = arrives at 21.
        assert_eq!(got, vec![(21, 0, 42)]);
    }

    fn one_flit_cfg() -> NocConfig {
        NocConfig { flits_per_cycle: 1, ..NocConfig::default() }
    }

    #[test]
    fn data_packets_take_more_flits() {
        let cfg = one_flit_cfg();
        let mut net: Network<u32> = Network::new(1, 1, cfg);
        net.send(0, 0, 136, 1, Cycle(0)); // 136B -> 5 flits
        assert_eq!(net.stats().flits, 5);
        assert_eq!(net.stats().data_packets, 1);
        let got = run(&mut net, 100);
        assert_eq!(got[0].0, 25); // 5 cycles inject + 20 latency
    }

    #[test]
    fn same_port_serializes_different_ports_overlap() {
        let cfg = one_flit_cfg();
        let mut a: Network<u32> = Network::new(2, 1, cfg);
        a.send(0, 0, 136, 1, Cycle(0));
        a.send(0, 0, 136, 2, Cycle(0));
        let got_serial = run(&mut a, 200);
        assert_eq!(got_serial[0].0, 25);
        assert_eq!(got_serial[1].0, 30); // +5 cycles behind

        let mut b: Network<u32> = Network::new(2, 1, cfg);
        b.send(0, 0, 136, 1, Cycle(0));
        b.send(1, 0, 136, 2, Cycle(0));
        let got_par = run(&mut b, 200);
        assert_eq!(got_par[0].0, 25);
        assert_eq!(got_par[1].0, 25); // independent ports
    }

    #[test]
    fn queue_cycles_accumulate_under_load() {
        let cfg = one_flit_cfg();
        let mut net: Network<u32> = Network::new(1, 1, cfg);
        for i in 0..4 {
            net.send(0, 0, 136, i, Cycle(0));
        }
        run(&mut net, 300);
        assert!(net.stats().queue_cycles > 0);
        assert!(net.stats().avg_latency() > 25.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_destination_panics() {
        let mut net: Network<u32> = Network::new(1, 1, NocConfig::default());
        net.send(0, 5, 8, 0, Cycle(0));
    }

    #[test]
    fn ring_latency_grows_with_distance() {
        let cfg = NocConfig {
            topology: gtsc_types::NocTopology::Ring { hop_latency: 3 },
            ..NocConfig::default()
        };
        let net: Network<u32> = Network::new(4, 4, cfg);
        // src 0 -> dst 0 is 4 hops (past srcs 1..3); src 3 -> dst 0 is 1.
        assert_eq!(net.wire_latency(3, 0), cfg.latency + 3);
        assert_eq!(net.wire_latency(0, 0), cfg.latency + 4 * 3);
        assert_eq!(net.wire_latency(0, 3), cfg.latency + 7 * 3);
        // Crossbar is distance-independent.
        let xbar: Network<u32> = Network::new(4, 4, NocConfig::default());
        assert_eq!(xbar.wire_latency(0, 0), xbar.wire_latency(3, 3));
    }

    #[test]
    fn ring_packets_arrive_after_hop_delay() {
        let cfg = NocConfig {
            topology: gtsc_types::NocTopology::Ring { hop_latency: 10 },
            flits_per_cycle: 1,
            ..NocConfig::default()
        };
        let mut net: Network<u32> = Network::new(2, 2, cfg);
        net.send(1, 0, 8, 42, Cycle(0)); // 1 hop
        let got = run(&mut net, 200);
        // 1 cycle inject + 20 base + 1*10 hops = 31.
        assert_eq!(got, vec![(31, 0, 42)]);
    }

    proptest! {
        /// Conservation: every packet sent arrives exactly once, at the
        /// right destination, and never before `latency` has elapsed.
        #[test]
        fn conservation(
            sends in proptest::collection::vec((0usize..4, 0usize..4, 1usize..200, 0u64..50), 1..80)
        ) {
            let cfg = NocConfig::default();
            let mut net: Network<usize> = Network::new(4, 4, cfg);
            let mut expected = Vec::new();
            let mut got = Vec::new();
            let mut cycle = 0u64;
            for (i, (src, dst, bytes, delay)) in sends.iter().enumerate() {
                cycle += delay;
                for c in cycle - delay..cycle {
                    for (d, p) in net.tick(Cycle(c)) { got.push((d, p)); }
                }
                net.send(*src, *dst, *bytes, i, Cycle(cycle));
                expected.push((*dst, i));
            }
            for c in cycle..cycle + 100_000 {
                for (d, p) in net.tick(Cycle(c)) { got.push((d, p)); }
                if net.is_idle() { break; }
            }
            got.sort_unstable();
            expected.sort_unstable();
            prop_assert_eq!(expected, got);
        }
    }
}
