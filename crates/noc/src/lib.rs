//! Interconnection-network model for the G-TSC reproduction.
//!
//! GPUs connect SMs to L2 banks over a crossbar-like NoC whose bandwidth is
//! a first-order performance bottleneck (Section II-A of the paper; the
//! request-combining trade-off of Section V-B exists precisely because of
//! it). This crate models one direction of traffic as a [`Network`]: per
//! source port, packets are serialized into flits at a configurable
//! injection bandwidth, then fly for a fixed pipeline latency. The
//! simulator instantiates two networks — requests (SM→L2) and responses
//! (L2→SM) — mirroring GPGPU-Sim's separate virtual networks.
//!
//! The model deliberately omits intermediate-hop contention (a crossbar has
//! none) but does capture the quantities the paper reports: flit counts
//! (Figure 15's "NoC traffic"), queueing under bandwidth pressure, and
//! per-packet latency growth with load.
//!
//! # Examples
//!
//! ```
//! use gtsc_noc::Network;
//! use gtsc_types::{Cycle, NocConfig};
//!
//! let mut net: Network<&str> = Network::new(2, 4, NocConfig::default());
//! net.send(0, 3, 8, "hello", Cycle(0));
//! let mut arrived = Vec::new();
//! for c in 0..=30 {
//!     arrived.extend(net.tick(Cycle(c)));
//! }
//! assert_eq!(arrived, vec![(3, "hello")]);
//! ```

pub mod transport;

pub use transport::{FlowDiag, ReliableNet};

use std::collections::VecDeque;

use gtsc_faults::{FaultStats, LinkFaults, NocFaults};
use gtsc_trace::{EventKind, Tracer};
use gtsc_types::{Cycle, NocConfig, NocStats, NocTopology};

/// A queued or in-flight packet.
#[derive(Debug, Clone)]
struct Packet<T> {
    dst: usize,
    bytes: usize,
    payload: T,
    enqueued: Cycle,
}

#[derive(Debug, Clone)]
struct InFlight<T> {
    arrives: Cycle,
    src: usize,
    dst: usize,
    payload: T,
    enqueued: Cycle,
    /// Fault-injected duplicate: delivered like any packet but excluded
    /// from the latency counters (it is not a real packet).
    is_dup: bool,
    /// Fault-injected corruption: the payload is unusable on arrival;
    /// only the `(src, dst)` header is surfaced, via
    /// [`Network::take_corrupted`].
    is_corrupt: bool,
}

/// One direction of the SM ⇄ L2 interconnect.
///
/// `T` is the message type carried. Packets injected by the same source
/// port share that port's injection bandwidth
/// ([`NocConfig::flits_per_cycle`]); once injected they arrive after
/// [`NocConfig::latency`] cycles.
#[derive(Debug)]
pub struct Network<T> {
    cfg: NocConfig,
    n_srcs: usize,
    n_dsts: usize,
    /// Per-source waiting packets.
    queues: Vec<VecDeque<Packet<T>>>,
    /// Cycle at which each source port finishes its current injection.
    port_free: Vec<Cycle>,
    inflight: Vec<InFlight<T>>,
    stats: NocStats,
    /// Optional fault injector (latency jitter, bounded reordering,
    /// duplicate delivery); `None` on the fault-free fast path.
    faults: Option<NocFaults>,
    /// Latest scheduled arrival per `(src, dst)` flow, indexed
    /// `src * n_dsts + dst`. Only consulted under fault injection: faults
    /// may delay or replay packets but never let one overtake earlier
    /// traffic of its own flow — deterministic-routing NoCs deliver each
    /// flow in FIFO order, and the coherence protocols soundly rely on
    /// that (e.g. two stores from one L1 to one block must reach the L2
    /// in program order).
    flow_last: Vec<u64>,
    /// Headers of corrupted packets that arrived since the last
    /// [`Network::take_corrupted`] call.
    corrupted: Vec<(usize, usize)>,
    /// Scheduled link-down windows per `(src, dst)` flow (fabric
    /// partitions), indexed `src * n_dsts + dst`. Empty when no
    /// partition is scheduled (the common case — the inner `Vec` stays
    /// unallocated). Pure schedules: reconstructed from the fault plan
    /// at build time, not snapshotted.
    link_faults: Vec<Option<LinkFaults>>,
    /// Packets that vanished inside a link-down window.
    link_dropped: u64,
    tracer: Tracer,
}

impl<T> Network<T> {
    /// Creates a network with `n_srcs` source ports and `n_dsts`
    /// destination ports.
    ///
    /// # Panics
    ///
    /// Panics if a port count is zero or `cfg.flit_bytes`/
    /// `cfg.flits_per_cycle` is zero.
    #[must_use]
    pub fn new(n_srcs: usize, n_dsts: usize, cfg: NocConfig) -> Self {
        assert!(n_srcs > 0 && n_dsts > 0, "port counts must be nonzero");
        assert!(
            cfg.flit_bytes > 0 && cfg.flits_per_cycle > 0,
            "NoC bandwidth must be nonzero"
        );
        Network {
            cfg,
            n_srcs,
            n_dsts,
            queues: (0..n_srcs).map(|_| VecDeque::new()).collect(),
            port_free: vec![Cycle(0); n_srcs],
            inflight: Vec::new(),
            stats: NocStats::default(),
            faults: None,
            flow_last: vec![0; n_srcs * n_dsts],
            corrupted: Vec::new(),
            link_faults: Vec::new(),
            link_dropped: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a configured tracer (packet send/deliver events).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// This network's tracer (disabled unless the simulator installed
    /// one).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Installs (or clears) a fault injector. The classic faults only
    /// ever *add* latency or duplicate deliveries — a packet still
    /// arrives no earlier than its fault-free schedule. Loss faults
    /// (drop/corrupt permille in the config) may additionally make a
    /// packet vanish at injection or arrive with an unusable payload
    /// (surfaced via [`Network::take_corrupted`]); a raw `Network`
    /// under loss faults is *not* live — wrap it in
    /// [`ReliableNet`](crate::ReliableNet) for that.
    pub fn set_faults(&mut self, faults: Option<NocFaults>) {
        self.faults = faults;
    }

    /// Installs (or clears) a scheduled link-down window set for the
    /// `(src, dst)` flow: every packet injected on the flow while a
    /// window is open vanishes at the wire, modelling a fabric
    /// partition. Like packet drops, partitions starve a raw `Network`
    /// of traffic permanently — wrap it in
    /// [`ReliableNet`](crate::ReliableNet), whose retransmit/backoff
    /// machinery redelivers once the window closes.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn set_link_faults(&mut self, src: usize, dst: usize, faults: Option<LinkFaults>) {
        assert!(
            src < self.n_srcs && dst < self.n_dsts,
            "link ({src}, {dst}) out of range"
        );
        if self.link_faults.is_empty() {
            if faults.is_none() {
                return;
            }
            self.link_faults = vec![None; self.n_srcs * self.n_dsts];
        }
        self.link_faults[src * self.n_dsts + dst] = faults;
    }

    /// Whether the `(src, dst)` link is inside a scheduled down window
    /// at `now`.
    #[must_use]
    pub fn link_down(&self, src: usize, dst: usize, now: Cycle) -> bool {
        self.link_faults
            .get(src * self.n_dsts + dst)
            .and_then(Option::as_ref)
            .is_some_and(|lf| lf.down(now.0))
    }

    /// Packets that vanished inside a link-down window so far.
    #[must_use]
    pub fn link_dropped(&self) -> u64 {
        self.link_dropped
    }

    /// Drains the headers `(src, dst)` of corrupted packets that
    /// arrived since the last call. The payloads are gone — the
    /// reliable-transport layer uses the headers to NACK the flows.
    pub fn take_corrupted(&mut self) -> Vec<(usize, usize)> {
        std::mem::take(&mut self.corrupted)
    }

    /// Fault-injection counters, when an injector is installed.
    #[must_use]
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(NocFaults::stats)
    }

    /// Packets injected and currently on a wire (stall diagnostics).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Packets still waiting in source-port queues (stall diagnostics).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Wire latency from source port `src` to destination port `dst`:
    /// the pipeline latency, plus per-hop distance on a ring.
    #[must_use]
    pub fn wire_latency(&self, src: usize, dst: usize) -> u64 {
        match self.cfg.topology {
            NocTopology::Crossbar => self.cfg.latency,
            NocTopology::Ring { hop_latency } => {
                let ring = (self.n_srcs + self.n_dsts) as u64;
                let from = src as u64;
                let to = (self.n_srcs + dst) as u64;
                let hops = (to + ring - from) % ring;
                self.cfg.latency + hops * hop_latency
            }
        }
    }

    /// Number of flits a `bytes`-sized packet occupies.
    #[must_use]
    pub fn flits_for(&self, bytes: usize) -> u64 {
        (bytes.max(1)).div_ceil(self.cfg.flit_bytes) as u64
    }

    /// Enqueues a packet of `bytes` from source port `src` to destination
    /// port `dst` at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn send(&mut self, src: usize, dst: usize, bytes: usize, payload: T, now: Cycle) {
        assert!(dst < self.n_dsts, "destination {dst} out of range");
        let flits = self.flits_for(bytes);
        self.stats.packets += 1;
        self.stats.flits += flits;
        if bytes > self.cfg.control_bytes {
            self.stats.data_packets += 1;
        } else {
            self.stats.control_packets += 1;
        }
        self.tracer.record_with(now, || EventKind::PacketSend {
            src: src as u16,
            dst: dst as u16,
            bytes: bytes as u32,
        });
        // The raw injection queue: every other send in the tree must go
        // through `ReliableNet` — this is the one legitimate producer.
        // lint: allow(noc-inject)
        self.queues[src].push_back(Packet {
            dst,
            bytes,
            payload,
            enqueued: now,
        });
    }

    /// Whether all queues and wires are drained.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.inflight.is_empty() && self.queues.iter().all(VecDeque::is_empty)
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> NocStats {
        self.stats
    }
}

impl<T: Clone> Network<T> {
    /// Advances to cycle `now`: injects queued packets as port bandwidth
    /// frees up and returns `(dst, payload)` for every packet arriving at
    /// or before `now`.
    ///
    /// `T: Clone` because an installed fault injector may deliver a
    /// packet twice (duplicate-delivery fault); the fault-free path
    /// never clones.
    pub fn tick(&mut self, now: Cycle) -> Vec<(usize, T)> {
        let (cfg, n_srcs, n_dsts) = (self.cfg, self.n_srcs, self.n_dsts);
        let wire = |src: usize, dst: usize| match cfg.topology {
            NocTopology::Crossbar => cfg.latency,
            NocTopology::Ring { hop_latency } => {
                let ring = (n_srcs + n_dsts) as u64;
                let hops = ((n_srcs + dst) as u64 + ring - src as u64) % ring;
                cfg.latency + hops * hop_latency
            }
        };
        // Injection: each source port serializes its queue head-of-line.
        for (src, q) in self.queues.iter_mut().enumerate() {
            while let Some(head) = q.front() {
                let start = self.port_free[src].max(head.enqueued).max(now);
                if start > now {
                    break;
                }
                let flits = (head.bytes.max(1)).div_ceil(self.cfg.flit_bytes) as u64;
                let inject_cycles = flits.div_ceil(self.cfg.flits_per_cycle as u64);
                let pkt = q.pop_front().expect("front checked above");
                self.stats.queue_cycles += start - pkt.enqueued;
                let done = start + inject_cycles;
                self.port_free[src] = done;
                // Scheduled partition: the link is down, the packet (and
                // any duplicate a fault would have spawned) vanishes at
                // the wire. Bandwidth was still consumed.
                if self
                    .link_faults
                    .get(src * n_dsts + pkt.dst)
                    .and_then(Option::as_ref)
                    .is_some_and(|lf| lf.down(start.0))
                {
                    self.link_dropped += 1;
                    self.tracer.record_with(now, || EventKind::PacketDrop {
                        src: src as u16,
                        dst: pkt.dst as u16,
                    });
                    continue;
                }
                let mut arrives = done + wire(src, pkt.dst);
                let mut corrupt = false;
                if let Some(f) = &mut self.faults {
                    let fate = f.perturb();
                    if fate.dropped {
                        // Loss fault: the packet (and any duplicate it
                        // would have spawned) vanishes on the wire. The
                        // injection bandwidth was still consumed.
                        self.tracer.record_with(now, || EventKind::PacketDrop {
                            src: src as u16,
                            dst: pkt.dst as u16,
                        });
                        continue;
                    }
                    corrupt = fate.corrupted;
                    arrives += fate.extra_delay;
                    // Per-flow FIFO clamp: delayed or replayed, a packet
                    // never overtakes earlier traffic of its own flow
                    // (see the `flow_last` field).
                    let flow = src * n_dsts + pkt.dst;
                    arrives = arrives.max(Cycle(self.flow_last[flow] + 1));
                    self.flow_last[flow] = arrives.0;
                    if let Some(lag) = fate.duplicate {
                        let dup_at = arrives + lag.max(1);
                        self.flow_last[flow] = dup_at.0;
                        self.inflight.push(InFlight {
                            arrives: dup_at,
                            src,
                            dst: pkt.dst,
                            payload: pkt.payload.clone(),
                            enqueued: pkt.enqueued,
                            is_dup: true,
                            // Corruption hits the original copy only.
                            is_corrupt: false,
                        });
                    }
                }
                self.inflight.push(InFlight {
                    arrives,
                    src,
                    dst: pkt.dst,
                    payload: pkt.payload,
                    enqueued: pkt.enqueued,
                    is_dup: false,
                    is_corrupt: corrupt,
                });
            }
        }
        // Delivery.
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].arrives <= now {
                let p = self.inflight.swap_remove(i);
                if p.is_corrupt {
                    // The header survives; the payload does not.
                    self.tracer.record_with(now, || EventKind::PacketCorrupt {
                        src: p.src as u16,
                        dst: p.dst as u16,
                    });
                    self.corrupted.push((p.src, p.dst));
                    continue;
                }
                if !p.is_dup {
                    self.stats.total_packet_latency += now - p.enqueued;
                    self.tracer.record_with(now, || EventKind::PacketDeliver {
                        src: p.src as u16,
                        dst: p.dst as u16,
                    });
                }
                out.push((p.dst, p.payload));
            } else {
                i += 1;
            }
        }
        out
    }
}

use gtsc_types::snap::{Snap, SnapReader, SnapWriter, SnapshotError};

impl<T: Snap> Snap for Packet<T> {
    fn save(&self, w: &mut SnapWriter) {
        self.dst.save(w);
        self.bytes.save(w);
        self.payload.save(w);
        self.enqueued.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Packet {
            dst: Snap::load(r)?,
            bytes: Snap::load(r)?,
            payload: Snap::load(r)?,
            enqueued: Snap::load(r)?,
        })
    }
}

impl<T: Snap> Snap for InFlight<T> {
    fn save(&self, w: &mut SnapWriter) {
        self.arrives.save(w);
        self.src.save(w);
        self.dst.save(w);
        self.payload.save(w);
        self.enqueued.save(w);
        self.is_dup.save(w);
        self.is_corrupt.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(InFlight {
            arrives: Snap::load(r)?,
            src: Snap::load(r)?,
            dst: Snap::load(r)?,
            payload: Snap::load(r)?,
            enqueued: Snap::load(r)?,
            is_dup: Snap::load(r)?,
            is_corrupt: Snap::load(r)?,
        })
    }
}

impl<T: Snap> Network<T> {
    /// Serializes the dynamic state: queues, port schedules, wire
    /// traffic, counters, fault-injector streams, flow clamps, and
    /// pending corruption headers. The geometry (`cfg`, port counts)
    /// and tracer are config-derived and come from the network being
    /// restored into. `inflight` is written in its exact `Vec` order —
    /// delivery uses `swap_remove`, so the order is observable and must
    /// survive a round trip byte-for-byte.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.queues.save(w);
        self.port_free.save(w);
        self.inflight.save(w);
        self.stats.save(w);
        self.faults.save(w);
        self.flow_last.save(w);
        self.corrupted.save(w);
        // Link-down *schedules* are pure config (rebuilt from the fault
        // plan on restore); only the drop counter is dynamic.
        self.link_dropped.save(w);
    }

    /// Restores dynamic state saved by [`Network::save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Mismatch`] if the snapshot's port geometry does
    /// not match this network's; any decoding error on corrupt input.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        let queues: Vec<VecDeque<Packet<T>>> = Snap::load(r)?;
        let port_free: Vec<Cycle> = Snap::load(r)?;
        let inflight: Vec<InFlight<T>> = Snap::load(r)?;
        let stats: NocStats = Snap::load(r)?;
        let faults: Option<NocFaults> = Snap::load(r)?;
        let flow_last: Vec<u64> = Snap::load(r)?;
        let corrupted: Vec<(usize, usize)> = Snap::load(r)?;
        let link_dropped: u64 = Snap::load(r)?;
        if queues.len() != self.n_srcs
            || port_free.len() != self.n_srcs
            || flow_last.len() != self.n_srcs * self.n_dsts
        {
            return Err(SnapshotError::Mismatch {
                what: "network port geometry".into(),
            });
        }
        self.queues = queues;
        self.port_free = port_free;
        self.inflight = inflight;
        self.stats = stats;
        self.faults = faults;
        self.flow_last = flow_last;
        self.corrupted = corrupted;
        self.link_dropped = link_dropped;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn run<T: Clone>(net: &mut Network<T>, horizon: u64) -> Vec<(u64, usize, T)> {
        let mut out = Vec::new();
        for c in 0..horizon {
            for (dst, p) in net.tick(Cycle(c)) {
                out.push((c, dst, p));
            }
        }
        out
    }

    #[test]
    fn control_packet_latency_is_inject_plus_pipeline() {
        let cfg = NocConfig::default(); // 20 cyc, 32B flits, 1 flit/cyc
        let mut net: Network<u32> = Network::new(1, 1, cfg);
        net.send(0, 0, 8, 42, Cycle(0));
        let got = run(&mut net, 100);
        // 8B = 1 flit = 1 cycle injection + 20 latency = arrives at 21.
        assert_eq!(got, vec![(21, 0, 42)]);
    }

    fn one_flit_cfg() -> NocConfig {
        NocConfig {
            flits_per_cycle: 1,
            ..NocConfig::default()
        }
    }

    #[test]
    fn data_packets_take_more_flits() {
        let cfg = one_flit_cfg();
        let mut net: Network<u32> = Network::new(1, 1, cfg);
        net.send(0, 0, 136, 1, Cycle(0)); // 136B -> 5 flits
        assert_eq!(net.stats().flits, 5);
        assert_eq!(net.stats().data_packets, 1);
        let got = run(&mut net, 100);
        assert_eq!(got[0].0, 25); // 5 cycles inject + 20 latency
    }

    #[test]
    fn same_port_serializes_different_ports_overlap() {
        let cfg = one_flit_cfg();
        let mut a: Network<u32> = Network::new(2, 1, cfg);
        a.send(0, 0, 136, 1, Cycle(0));
        a.send(0, 0, 136, 2, Cycle(0));
        let got_serial = run(&mut a, 200);
        assert_eq!(got_serial[0].0, 25);
        assert_eq!(got_serial[1].0, 30); // +5 cycles behind

        let mut b: Network<u32> = Network::new(2, 1, cfg);
        b.send(0, 0, 136, 1, Cycle(0));
        b.send(1, 0, 136, 2, Cycle(0));
        let got_par = run(&mut b, 200);
        assert_eq!(got_par[0].0, 25);
        assert_eq!(got_par[1].0, 25); // independent ports
    }

    #[test]
    fn queue_cycles_accumulate_under_load() {
        let cfg = one_flit_cfg();
        let mut net: Network<u32> = Network::new(1, 1, cfg);
        for i in 0..4 {
            net.send(0, 0, 136, i, Cycle(0));
        }
        run(&mut net, 300);
        assert!(net.stats().queue_cycles > 0);
        assert!(net.stats().avg_latency() > 25.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_destination_panics() {
        let mut net: Network<u32> = Network::new(1, 1, NocConfig::default());
        net.send(0, 5, 8, 0, Cycle(0));
    }

    #[test]
    fn ring_latency_grows_with_distance() {
        let cfg = NocConfig {
            topology: gtsc_types::NocTopology::Ring { hop_latency: 3 },
            ..NocConfig::default()
        };
        let net: Network<u32> = Network::new(4, 4, cfg);
        // src 0 -> dst 0 is 4 hops (past srcs 1..3); src 3 -> dst 0 is 1.
        assert_eq!(net.wire_latency(3, 0), cfg.latency + 3);
        assert_eq!(net.wire_latency(0, 0), cfg.latency + 4 * 3);
        assert_eq!(net.wire_latency(0, 3), cfg.latency + 7 * 3);
        // Crossbar is distance-independent.
        let xbar: Network<u32> = Network::new(4, 4, NocConfig::default());
        assert_eq!(xbar.wire_latency(0, 0), xbar.wire_latency(3, 3));
    }

    #[test]
    fn ring_packets_arrive_after_hop_delay() {
        let cfg = NocConfig {
            topology: gtsc_types::NocTopology::Ring { hop_latency: 10 },
            flits_per_cycle: 1,
            ..NocConfig::default()
        };
        let mut net: Network<u32> = Network::new(2, 2, cfg);
        net.send(1, 0, 8, 42, Cycle(0)); // 1 hop
        let got = run(&mut net, 200);
        // 1 cycle inject + 20 base + 1*10 hops = 31.
        assert_eq!(got, vec![(31, 0, 42)]);
    }

    proptest! {
        /// Conservation: every packet sent arrives exactly once, at the
        /// right destination, and never before `latency` has elapsed.
        #[test]
        fn conservation(
            sends in proptest::collection::vec((0usize..4, 0usize..4, 1usize..200, 0u64..50), 1..80)
        ) {
            let cfg = NocConfig::default();
            let mut net: Network<usize> = Network::new(4, 4, cfg);
            let mut expected = Vec::new();
            let mut got = Vec::new();
            let mut cycle = 0u64;
            for (i, (src, dst, bytes, delay)) in sends.iter().enumerate() {
                cycle += delay;
                for c in cycle - delay..cycle {
                    for (d, p) in net.tick(Cycle(c)) { got.push((d, p)); }
                }
                net.send(*src, *dst, *bytes, i, Cycle(cycle));
                expected.push((*dst, i));
            }
            for c in cycle..cycle + 100_000 {
                for (d, p) in net.tick(Cycle(c)) { got.push((d, p)); }
                if net.is_idle() { break; }
            }
            got.sort_unstable();
            expected.sort_unstable();
            prop_assert_eq!(expected, got);
        }

        /// FIFO ordering: without faults, two packets with the same
        /// (src, dst) are never reordered — per-port injection is
        /// serialized and the wire latency per pair is constant.
        #[test]
        fn fault_free_fifo_per_src_dst_pair(
            sends in proptest::collection::vec((0usize..3, 0usize..3, 1usize..200, 0u64..20), 1..60)
        ) {
            let mut net: Network<usize> = Network::new(3, 3, NocConfig::default());
            let mut cycle = 0u64;
            let mut sent: Vec<(usize, usize, usize)> = Vec::new(); // (src, dst, seq)
            let mut delivered: Vec<usize> = Vec::new();
            for (seq, (src, dst, bytes, delay)) in sends.iter().enumerate() {
                for c in cycle..cycle + delay {
                    delivered.extend(net.tick(Cycle(c)).into_iter().map(|(_, p)| p));
                }
                cycle += delay;
                net.send(*src, *dst, *bytes, seq, Cycle(cycle));
                sent.push((*src, *dst, seq));
            }
            for c in cycle..cycle + 200_000 {
                delivered.extend(net.tick(Cycle(c)).into_iter().map(|(_, p)| p));
                if net.is_idle() { break; }
            }
            prop_assert!(net.is_idle());
            // Per (src, dst) pair, sequence numbers arrive in send order.
            for a in 0..delivered.len() {
                for b in a + 1..delivered.len() {
                    let (sa, da, qa) = sent[delivered[a]];
                    let (sb, db, qb) = sent[delivered[b]];
                    if sa == sb && da == db {
                        prop_assert!(qa < qb, "pair ({}, {}) reordered: {} after {}", sa, da, qa, qb);
                    }
                }
            }
        }

        /// With reordering faults enabled, delivery may be shuffled but a
        /// packet's latency never drops below the configured pipeline
        /// latency — faults only ever delay.
        #[test]
        fn faulted_latency_never_below_wire_latency(
            sends in proptest::collection::vec((0usize..3, 0usize..3, 1usize..200), 1..60),
            seed in 0u64..1000,
        ) {
            use gtsc_faults::FaultPlan;
            use gtsc_types::FaultConfig;
            let cfg = NocConfig::default();
            let mut net: Network<usize> = Network::new(3, 3, cfg);
            net.set_faults(FaultPlan::new(FaultConfig::chaos(seed)).noc(0));
            for (seq, (src, dst, bytes)) in sends.iter().enumerate() {
                net.send(*src, *dst, *bytes, seq, Cycle(0));
            }
            let mut seen = vec![0u32; sends.len()];
            for c in 0..500_000u64 {
                for (_, p) in net.tick(Cycle(c)) {
                    // Sent at cycle 0, so the delivery cycle IS the latency;
                    // injection takes >= 1 cycle on top of the pipeline.
                    prop_assert!(c > cfg.latency, "packet {} arrived at {} <= latency {}", p, c, cfg.latency);
                    seen[p] += 1;
                }
                if net.is_idle() { break; }
            }
            prop_assert!(net.is_idle(), "faults must preserve liveness");
            // Every packet delivered at least once; duplicates at most double.
            for (p, n) in seen.iter().enumerate() {
                prop_assert!((1..=2).contains(n), "packet {} delivered {} times", p, n);
            }
        }

        /// Even under fault storms, per-flow FIFO holds: within one
        /// (src, dst) pair, delivered sequence numbers never decrease
        /// (duplicates repeat a number; nothing ever overtakes). Faults
        /// may shuffle traffic *across* flows only — the ordering
        /// contract a deterministic-routing NoC gives the protocols.
        #[test]
        fn faulted_flow_order_is_preserved(
            sends in proptest::collection::vec((0usize..3, 0usize..3, 1usize..200, 0u64..10), 1..60),
            seed in 0u64..1000,
        ) {
            use gtsc_types::FaultConfig;
            // Classic perturbations (jitter/reorder/duplicate) preserve
            // eventual delivery; loss faults drop packets outright. The
            // per-flow FIFO clamp must hold in both regimes: whatever
            // *does* arrive on a flow arrives in send order.
            for cfg in [FaultConfig::chaos(seed), FaultConfig::lossy(seed, 100)] {
                let lossless = !cfg.lossy_active();
                let delivered = run_faulted(&sends, cfg);
                if lossless {
                    // Without drops, every payload arrives at least once.
                    let mut uniq: Vec<usize> = delivered.clone();
                    uniq.sort_unstable();
                    uniq.dedup();
                    prop_assert_eq!(uniq.len(), sends.len(), "lossless faults must deliver all");
                }
                for a in 0..delivered.len() {
                    for b in a + 1..delivered.len() {
                        let (qa, qb) = (delivered[a], delivered[b]);
                        if flows_of(&sends)[qa] == flows_of(&sends)[qb] {
                            prop_assert!(
                                qa <= qb,
                                "flow {:?} order broken under seed {}: {} after {}",
                                flows_of(&sends)[qa], seed, qa, qb
                            );
                        }
                    }
                }
            }
        }
    }

    fn flows_of(sends: &[(usize, usize, usize, u64)]) -> Vec<(usize, usize)> {
        sends.iter().map(|&(src, dst, _, _)| (src, dst)).collect()
    }

    /// Pushes `sends` through a faulted 3x3 network and returns the
    /// payloads that survive, in delivery order. Panics if the network
    /// fails to drain (dropped packets must vanish, not linger).
    fn run_faulted(
        sends: &[(usize, usize, usize, u64)],
        cfg: gtsc_types::FaultConfig,
    ) -> Vec<usize> {
        use gtsc_faults::FaultPlan;
        let mut net: Network<usize> = Network::new(3, 3, NocConfig::default());
        net.set_faults(FaultPlan::new(cfg).noc(0));
        let mut cycle = 0u64;
        let mut delivered: Vec<usize> = Vec::new();
        for (seq, (src, dst, bytes, delay)) in sends.iter().enumerate() {
            for c in cycle..cycle + delay {
                delivered.extend(net.tick(Cycle(c)).into_iter().map(|(_, p)| p));
            }
            cycle += delay;
            net.send(*src, *dst, *bytes, seq, Cycle(cycle));
        }
        for c in cycle..cycle + 500_000 {
            delivered.extend(net.tick(Cycle(c)).into_iter().map(|(_, p)| p));
            if net.is_idle() {
                break;
            }
        }
        assert!(net.is_idle(), "faults must preserve network drain");
        delivered
    }

    #[test]
    fn faulted_tick_is_deterministic_per_seed() {
        use gtsc_faults::FaultPlan;
        use gtsc_types::FaultConfig;
        let run = |seed: u64| {
            let mut net: Network<u32> = Network::new(2, 2, NocConfig::default());
            net.set_faults(FaultPlan::new(FaultConfig::chaos(seed)).noc(0));
            for i in 0..40 {
                net.send(
                    (i % 2) as usize,
                    ((i / 2) % 2) as usize,
                    8 + (i as usize % 160),
                    i,
                    Cycle(u64::from(i)),
                );
            }
            let mut log = Vec::new();
            for c in 0..100_000 {
                for (d, p) in net.tick(Cycle(c)) {
                    log.push((c, d, p));
                }
                if net.is_idle() {
                    break;
                }
            }
            (log, net.fault_stats().unwrap())
        };
        let (log_a, stats_a) = run(11);
        let (log_b, stats_b) = run(11);
        assert_eq!(log_a, log_b, "same seed replays byte-for-byte");
        assert_eq!(stats_a, stats_b);
        let (log_c, _) = run(12);
        assert_ne!(log_a, log_c, "different seeds should differ");
    }

    #[test]
    fn duplicates_are_delivered_and_counted() {
        use gtsc_faults::FaultPlan;
        use gtsc_types::FaultConfig;
        // Duplication only, at 100%: every packet arrives exactly twice.
        let cfg = FaultConfig {
            seed: 3,
            noc_duplicate_permille: 1000,
            noc_duplicate_lag: 10,
            ..FaultConfig::default()
        };
        let mut net: Network<u32> = Network::new(1, 1, NocConfig::default());
        net.set_faults(FaultPlan::new(cfg).noc(0));
        net.send(0, 0, 8, 7, Cycle(0));
        let got = run(&mut net, 200);
        assert_eq!(got.len(), 2, "original + duplicate");
        assert_eq!(got[0].2, 7);
        assert_eq!(got[1].2, 7);
        assert_eq!(
            got[1].0 - got[0].0,
            10,
            "duplicate lags by the configured gap"
        );
        assert_eq!(net.fault_stats().unwrap().duplicated, 1);
        // The real-packet latency counters are unaffected by the duplicate.
        assert_eq!(net.stats().packets, 1);
        assert_eq!(net.stats().total_packet_latency, 21);
    }

    #[test]
    fn occupancy_accessors_track_queue_and_wire() {
        let cfg = one_flit_cfg();
        let mut net: Network<u32> = Network::new(1, 1, cfg);
        for i in 0..3 {
            net.send(0, 0, 136, i, Cycle(0)); // 5 flits each: serialized
        }
        assert_eq!(net.queued(), 3);
        assert_eq!(net.in_flight(), 0);
        net.tick(Cycle(0));
        assert!(net.in_flight() >= 1, "head of line injected");
        assert!(net.queued() <= 2);
        for c in 1..100 {
            net.tick(Cycle(c));
        }
        assert_eq!(net.queued() + net.in_flight(), 0);
    }
}
