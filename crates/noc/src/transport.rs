//! Reliable transport over a lossy NoC.
//!
//! The raw [`Network`] is only live when every packet eventually
//! arrives. The loss faults in `gtsc-faults` (drop, payload corruption,
//! L2-bank crash) break that assumption on purpose; [`ReliableNet`]
//! restores it with the classic machinery — per-flow sequence numbers,
//! a receiver-side dedup/reorder window, cumulative ACKs on a reverse
//! control network, explicit NACKs for observed gaps and corrupted
//! arrivals, and sender retransmit queues driven by cycle-based
//! timeouts with exponential backoff plus seeded jitter. The coherence
//! protocols above see **exactly-once, per-flow-FIFO** delivery no
//! matter what the wire does.
//!
//! Two properties matter beyond correctness:
//!
//! * **Passthrough is free.** Until [`ReliableNet::enable`] is called
//!   (the simulator calls it only when a loss fault is configured), the
//!   wrapper forwards straight to the data network: no sequence
//!   numbers, no control traffic, no per-flow state — the fault-free
//!   hot path is byte-identical to the raw network's.
//! * **Determinism.** All jitter comes from a [`SplitMix64`] stream
//!   seeded by the caller, and all timeouts are cycle-based, so a
//!   `(config, kernel, seed)` triple replays byte-for-byte.
//!
//! Crash/recovery: when an endpoint loses its transport state (an L2
//! bank reset), [`ReliableNet::reset_flows_to_dst`] /
//! [`ReliableNet::reset_flows_from_src`] reset *both* ends of every
//! affected flow and bump the flow generation; segments and control
//! messages of older generations still in flight are discarded on
//! arrival, so a reset can never wedge a flow on mismatched sequence
//! numbers. Messages unacked at reset time are dropped — re-issuing
//! them is the job of the end-to-end retry in the L1 (see DESIGN.md
//! §13).

use std::collections::{BTreeMap, VecDeque};

use gtsc_faults::{FaultStats, LinkFaults, NocFaults, SplitMix64};
use gtsc_trace::{merge_tails, CloseReason, EventKind, SpanTracker, TraceEvent, Tracer};
use gtsc_types::{Cycle, NocConfig, NocStats, SpanId, TransportConfig, TransportStats};

use crate::Network;

/// A payload plus the transport header riding the data network.
///
/// `src` repeats the source port (the raw network hands receivers only
/// the destination), `gen` is the flow generation (bumped on flow
/// reset), `seq` the per-flow sequence number. The header fields fit
/// the existing per-packet header byte budget (`NocConfig::
/// control_bytes`), so wire sizes are unchanged — see DESIGN.md §13.
#[derive(Debug, Clone)]
struct DataSeg<T> {
    src: usize,
    gen: u32,
    seq: u64,
    payload: T,
}

/// What a control message says about its flow.
#[derive(Debug, Clone, Copy)]
enum CtlKind {
    /// Cumulative: every `seq <= cum` was delivered.
    Ack { cum: u64 },
    /// The receiver is missing `expected` (gap or corrupted payload).
    Nack { expected: u64 },
}

/// A control message on the reverse network, addressed by *data-flow*
/// `(src, dst)` so the sender can find the right retransmit queue.
#[derive(Debug, Clone, Copy)]
struct CtlMsg {
    flow_src: usize,
    flow_dst: usize,
    gen: u32,
    kind: CtlKind,
}

/// One unacked segment in a sender's retransmit queue.
#[derive(Debug, Clone)]
struct Sent<T> {
    seq: u64,
    bytes: usize,
    payload: T,
    /// First transmission cycle (for oldest-unacked diagnostics).
    first_sent: Cycle,
    /// When the retransmit timer fires next (backoff + jitter applied).
    deadline: Cycle,
    retries: u32,
}

/// Sender-side state of one `(src, dst)` flow.
#[derive(Debug, Clone)]
struct TxFlow<T> {
    gen: u32,
    next_seq: u64,
    unacked: VecDeque<Sent<T>>,
}

impl<T> TxFlow<T> {
    fn new() -> Self {
        TxFlow {
            gen: 0,
            next_seq: 0,
            unacked: VecDeque::new(),
        }
    }
}

/// Receiver-side state of one `(src, dst)` flow.
#[derive(Debug, Clone)]
struct RxFlow<T> {
    gen: u32,
    next_expected: u64,
    /// Out-of-order arrivals waiting for the gap to fill.
    buffer: BTreeMap<u64, T>,
    /// Last cycle a NACK went out (rate limiting).
    last_nack: Option<Cycle>,
}

impl<T> RxFlow<T> {
    fn new() -> Self {
        RxFlow {
            gen: 0,
            next_expected: 0,
            buffer: BTreeMap::new(),
            last_nack: None,
        }
    }
}

/// Per-flow sender diagnostics for watchdog stall reports: lets a
/// retransmit storm be told apart from a genuine protocol deadlock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowDiag {
    /// Source port of the flow.
    pub src: usize,
    /// Destination port of the flow.
    pub dst: usize,
    /// Segments awaiting an ACK.
    pub unacked: usize,
    /// Cycles since the oldest unacked segment was first sent.
    pub oldest_age: u64,
    /// Largest retry count among the unacked segments.
    pub max_retries: u32,
}

impl std::fmt::Display for FlowDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "flow {} -> {}: {} unacked, oldest {} cycles, {} retries",
            self.src, self.dst, self.unacked, self.oldest_age, self.max_retries
        )
    }
}

/// One direction of the interconnect with exactly-once, per-flow-FIFO
/// delivery over a lossy wire: a data [`Network`] carrying sequenced
/// segments plus a reverse control [`Network`] carrying ACKs/NACKs.
///
/// # Examples
///
/// ```
/// use gtsc_noc::ReliableNet;
/// use gtsc_types::{Cycle, NocConfig, TransportConfig};
///
/// let mut net: ReliableNet<&str> =
///     ReliableNet::new(2, 2, NocConfig::default(), TransportConfig::default());
/// // Passthrough until enabled: behaves exactly like a raw Network.
/// net.send(0, 1, 8, "hello", Cycle(0));
/// let mut got = Vec::new();
/// for c in 0..=30 {
///     got.extend(net.tick(Cycle(c)));
/// }
/// assert_eq!(got, vec![(1, "hello")]);
/// assert_eq!(net.transport_stats(), Default::default());
/// ```
#[derive(Debug)]
pub struct ReliableNet<T> {
    data: Network<DataSeg<T>>,
    ctl: Network<CtlMsg>,
    n_dsts: usize,
    enabled: bool,
    tcfg: TransportConfig,
    ctl_bytes: usize,
    tx: Vec<TxFlow<T>>,
    rx: Vec<RxFlow<T>>,
    rng: SplitMix64,
    stats: TransportStats,
    tracer: Tracer,
    /// Latency-observatory handle plus a probe extracting the payload's
    /// causal [`SpanId`] (a plain fn pointer keeps `ReliableNet` generic
    /// over payloads that know nothing about spans).
    spans: SpanTracker,
    span_probe: Option<fn(&T) -> SpanId>,
}

impl<T: Clone> ReliableNet<T> {
    /// Creates the wrapper in passthrough mode: data traffic flows
    /// `n_srcs` source ports to `n_dsts` destination ports, control
    /// traffic the other way.
    #[must_use]
    pub fn new(n_srcs: usize, n_dsts: usize, cfg: NocConfig, tcfg: TransportConfig) -> Self {
        ReliableNet {
            data: Network::new(n_srcs, n_dsts, cfg),
            ctl: Network::new(n_dsts, n_srcs, cfg),
            n_dsts,
            enabled: false,
            tcfg,
            ctl_bytes: cfg.control_bytes,
            tx: (0..n_srcs * n_dsts).map(|_| TxFlow::new()).collect(),
            rx: (0..n_srcs * n_dsts).map(|_| RxFlow::new()).collect(),
            rng: SplitMix64::new(0),
            stats: TransportStats::default(),
            tracer: Tracer::disabled(),
            spans: SpanTracker::disabled(),
            span_probe: None,
        }
    }

    /// Installs the span tracker and the payload-to-span probe: sampled
    /// payloads get retransmit overlays noted, and payloads discarded by
    /// a flow reset get their spans closed with
    /// [`CloseReason::Dropped`].
    pub fn set_span_probe(&mut self, spans: SpanTracker, probe: fn(&T) -> SpanId) {
        self.spans = spans;
        self.span_probe = Some(probe);
    }

    /// Switches from passthrough to reliable delivery, seeding the
    /// backoff-jitter stream. Call before any traffic is injected (the
    /// simulator enables at build time when a loss fault is active).
    pub fn enable(&mut self, seed: u64) {
        self.enabled = true;
        self.rng = SplitMix64::new(seed);
    }

    /// Whether reliable delivery (vs passthrough) is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Installs fault injectors: `data` perturbs the forward segments,
    /// `ctl` the reverse ACK/NACK channel (they must be distinct
    /// streams or the two networks would fault in lockstep).
    pub fn set_faults(&mut self, data: Option<NocFaults>, ctl: Option<NocFaults>) {
        self.data.set_faults(data);
        self.ctl.set_faults(ctl);
    }

    /// Installs a scheduled link-down window (a fabric partition) on the
    /// `(src, dst)` data flow *and* its reverse control flow: while the
    /// link is down, segments in one direction and ACK/NACKs in the
    /// other both vanish at injection. The retransmit machinery rides
    /// out the window; traffic resumes when it closes.
    pub fn set_link_faults(&mut self, src: usize, dst: usize, faults: Option<LinkFaults>) {
        self.data.set_link_faults(src, dst, faults.clone());
        self.ctl.set_link_faults(dst, src, faults);
    }

    /// Whether the `(src, dst)` data link is inside a scheduled down
    /// window at `now`.
    #[must_use]
    pub fn link_down(&self, src: usize, dst: usize, now: Cycle) -> bool {
        self.data.link_down(src, dst, now)
    }

    /// Installs a tracer: a clone goes to the data network (packet
    /// send/deliver/drop/corrupt events) and one stays here for the
    /// transport events (retransmits, NACKs).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.data.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Combined flight-recorder tail of the data network and the
    /// transport layer, cycle-ordered.
    #[must_use]
    pub fn flight_tail(&self) -> Vec<TraceEvent> {
        merge_tails(&[self.data.tracer().flight_tail(), self.tracer.flight_tail()])
    }

    /// The full in-order transport event log (empty unless tracing in
    /// `Full` mode).
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self.data.tracer().events().to_vec();
        all.extend_from_slice(self.tracer.events());
        all.sort_by_key(|e| e.cycle);
        all
    }

    /// Merged NoC counters (data + control traffic).
    #[must_use]
    pub fn stats(&self) -> NocStats {
        let mut s = self.data.stats();
        s.merge(&self.ctl.stats());
        s
    }

    /// Transport counters (all zero in passthrough mode).
    #[must_use]
    pub fn transport_stats(&self) -> TransportStats {
        self.stats
    }

    /// Merged fault counters of both underlying networks, when any
    /// injector is installed.
    #[must_use]
    pub fn fault_stats(&self) -> Option<FaultStats> {
        match (self.data.fault_stats(), self.ctl.fault_stats()) {
            (None, None) => None,
            (a, b) => {
                let mut s = a.unwrap_or_default();
                s.merge(&b.unwrap_or_default());
                Some(s)
            }
        }
    }

    /// Packets on a wire in either direction (stall diagnostics).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.data.in_flight() + self.ctl.in_flight()
    }

    /// Packets queued for injection in either direction.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.data.queued() + self.ctl.queued()
    }

    /// Segments awaiting an ACK across all flows.
    #[must_use]
    pub fn unacked(&self) -> usize {
        self.tx.iter().map(|f| f.unacked.len()).sum()
    }

    /// A monotone progress mark for the forward-progress watchdog:
    /// advances on exactly-once deliveries, retired ACKs, and flow
    /// resets — deliberately *not* on retransmits, so an unproductive
    /// retransmit storm still counts as a stall.
    #[must_use]
    pub fn progress_mark(&self) -> u64 {
        self.stats.delivered + self.stats.acks + self.stats.flows_reset
    }

    /// Per-flow retransmit-queue diagnostics, busiest flows first
    /// (flows with nothing unacked are omitted).
    #[must_use]
    pub fn flow_diagnostics(&self, now: Cycle) -> Vec<FlowDiag> {
        let mut out: Vec<FlowDiag> = self
            .tx
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.unacked.is_empty())
            .map(|(i, f)| FlowDiag {
                src: i / self.n_dsts,
                dst: i % self.n_dsts,
                unacked: f.unacked.len(),
                oldest_age: f
                    .unacked
                    .iter()
                    .map(|s| now.0.saturating_sub(s.first_sent.0))
                    .max()
                    .unwrap_or(0),
                max_retries: f.unacked.iter().map(|s| s.retries).max().unwrap_or(0),
            })
            .collect();
        out.sort_by_key(|d| (std::cmp::Reverse(d.oldest_age), d.src, d.dst));
        out
    }

    /// Whether every queue, wire, retransmit queue, and reorder buffer
    /// is drained. Only then has every sent payload been delivered and
    /// acknowledged.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.data.is_idle()
            && self.ctl.is_idle()
            && (!self.enabled
                || (self.tx.iter().all(|f| f.unacked.is_empty())
                    && self.rx.iter().all(|f| f.buffer.is_empty())))
    }

    /// Resets both ends of every flow *into* destination port `dst`
    /// (e.g. the request net's flows into a crashed L2 bank). Returns
    /// the number of flows that carried state.
    pub fn reset_flows_to_dst(&mut self, dst: usize, now: Cycle) -> usize {
        let n_dsts = self.n_dsts;
        let flows: Vec<usize> = (0..self.tx.len()).filter(|f| f % n_dsts == dst).collect();
        self.reset_flows(&flows, now)
    }

    /// Resets both ends of every flow *out of* source port `src` (e.g.
    /// the response net's flows from a crashed L2 bank).
    pub fn reset_flows_from_src(&mut self, src: usize, now: Cycle) -> usize {
        let n_dsts = self.n_dsts;
        let flows: Vec<usize> = (0..self.tx.len()).filter(|f| f / n_dsts == src).collect();
        self.reset_flows(&flows, now)
    }

    fn reset_flows(&mut self, flows: &[usize], now: Cycle) -> usize {
        let mut touched = 0;
        for &f in flows {
            let tx = &mut self.tx[f];
            let rx = &mut self.rx[f];
            let had_state = tx.next_seq > 0 || rx.next_expected > 0 || !rx.buffer.is_empty();
            // A flow reset is the one place the transport abandons
            // payloads for good (everywhere else a lost segment is
            // retransmitted), so it is the one terminal `Dropped` site.
            if let Some(probe) = self.span_probe {
                for sent in &tx.unacked {
                    self.spans
                        .close(probe(&sent.payload), CloseReason::Dropped, now);
                }
                for payload in rx.buffer.values() {
                    self.spans.close(probe(payload), CloseReason::Dropped, now);
                }
            }
            // Generation bump: segments and control messages of the old
            // generation still in flight are discarded on arrival, so
            // the restarted sequence space can never collide with them.
            tx.gen += 1;
            tx.next_seq = 0;
            tx.unacked.clear();
            rx.gen += 1;
            rx.next_expected = 0;
            rx.buffer.clear();
            rx.last_nack = None;
            if had_state {
                touched += 1;
                self.stats.flows_reset += 1;
            }
        }
        touched
    }

    /// Sends `payload` from `src` to `dst`. In passthrough mode this is
    /// a plain [`Network::send`]; when enabled, the payload is
    /// sequenced and tracked until acknowledged.
    pub fn send(&mut self, src: usize, dst: usize, bytes: usize, payload: T, now: Cycle) {
        if !self.enabled {
            let seg = DataSeg {
                src,
                gen: 0,
                seq: 0,
                payload,
            };
            self.data.send(src, dst, bytes, seg, now);
            return;
        }
        let flow = src * self.n_dsts + dst;
        let f = &mut self.tx[flow];
        let seq = f.next_seq;
        f.next_seq += 1;
        let seg = DataSeg {
            src,
            gen: f.gen,
            seq,
            payload: payload.clone(),
        };
        let deadline = now + self.tcfg.retransmit_timeout + self.jitter();
        self.tx[flow].unacked.push_back(Sent {
            seq,
            bytes,
            payload,
            first_sent: now,
            deadline,
            retries: 0,
        });
        self.data.send(src, dst, bytes, seg, now);
    }

    /// Seeded retransmit-timer jitter (decorrelates flows that would
    /// otherwise back off in lockstep).
    fn jitter(&mut self) -> u64 {
        self.rng.below(self.tcfg.retransmit_timeout / 8 + 1)
    }

    fn send_ack(&mut self, flow_src: usize, flow_dst: usize, gen: u32, cum: u64, now: Cycle) {
        let msg = CtlMsg {
            flow_src,
            flow_dst,
            gen,
            kind: CtlKind::Ack { cum },
        };
        self.ctl.send(flow_dst, flow_src, self.ctl_bytes, msg, now);
    }

    /// Sends a rate-limited NACK for the flow's next expected sequence
    /// number.
    fn send_nack(&mut self, flow_src: usize, flow_dst: usize, now: Cycle) {
        let flow = flow_src * self.n_dsts + flow_dst;
        let gap = self.tcfg.nack_min_gap;
        let rxf = &mut self.rx[flow];
        if rxf.last_nack.is_some_and(|t| now.0 - t.0 < gap) {
            return;
        }
        rxf.last_nack = Some(now);
        let expected = rxf.next_expected;
        let gen = rxf.gen;
        self.stats.nacks += 1;
        self.tracer.record_with(now, || EventKind::Nack {
            src: flow_src as u16,
            dst: flow_dst as u16,
            expected,
        });
        let msg = CtlMsg {
            flow_src,
            flow_dst,
            gen,
            kind: CtlKind::Nack { expected },
        };
        self.ctl.send(flow_dst, flow_src, self.ctl_bytes, msg, now);
    }

    /// Re-sends one unacked segment of `flow` (found by `seq`), either
    /// NACK-driven (`timeout == 0`) or after its timer expired.
    fn retransmit(&mut self, flow: usize, seq: u64, now: Cycle, via_nack: bool) {
        let (src, dst) = (flow / self.n_dsts, flow % self.n_dsts);
        let jitter = self.jitter();
        let gen = self.tx[flow].gen;
        let max_exp = self.tcfg.max_backoff_exp;
        let base = self.tcfg.retransmit_timeout;
        let Some(entry) = self.tx[flow].unacked.iter_mut().find(|s| s.seq == seq) else {
            return; // already acked or flow was reset
        };
        let expired_timeout = base << entry.retries.min(max_exp);
        entry.retries += 1;
        if entry.retries >= max_exp {
            self.stats.max_backoff_hits += 1;
        }
        entry.deadline = now + (base << entry.retries.min(max_exp)) + jitter;
        let age = now.0.saturating_sub(entry.first_sent.0);
        let (bytes, payload) = (entry.bytes, entry.payload.clone());
        if let Some(probe) = self.span_probe {
            self.spans.note_retransmit(probe(&payload), now);
        }
        self.stats.retransmits += 1;
        if !via_nack {
            self.stats.timeouts += 1;
        }
        self.tracer.record_with(now, || EventKind::Retransmit {
            src: src as u16,
            dst: dst as u16,
            seq,
            age,
            timeout: if via_nack { 0 } else { expired_timeout },
            nack: via_nack,
        });
        let seg = DataSeg {
            src,
            gen,
            seq,
            payload,
        };
        self.data.send(src, dst, bytes, seg, now);
    }

    /// Advances both networks to `now` and returns the payloads the
    /// transport releases this cycle: exactly once each, in per-flow
    /// FIFO order, as `(dst, payload)`.
    pub fn tick(&mut self, now: Cycle) -> Vec<(usize, T)> {
        if !self.enabled {
            return self
                .data
                .tick(now)
                .into_iter()
                .map(|(dst, seg)| (dst, seg.payload))
                .collect();
        }
        // 1. Control plane first: ACKs retire retransmit state before
        //    the timer scan below, NACKs trigger immediate resends.
        let ctl_msgs = self.ctl.tick(now);
        for (_, msg) in ctl_msgs {
            let flow = msg.flow_src * self.n_dsts + msg.flow_dst;
            if msg.gen != self.tx[flow].gen {
                continue; // stale generation: flow was reset since
            }
            match msg.kind {
                CtlKind::Ack { cum } => {
                    let f = &mut self.tx[flow];
                    while f.unacked.front().is_some_and(|s| s.seq <= cum) {
                        f.unacked.pop_front();
                        self.stats.acks += 1;
                    }
                }
                CtlKind::Nack { expected } => {
                    self.retransmit(flow, expected, now, true);
                }
            }
        }
        // Corrupted control messages carry nothing actionable; the
        // retransmit timers cover the lost ACK/NACK.
        let _ = self.ctl.take_corrupted();

        // 2. Data plane: sequence-check every arrival.
        let mut out = Vec::new();
        let arrivals = self.data.tick(now);
        for (dst, seg) in arrivals {
            let flow = seg.src * self.n_dsts + dst;
            if seg.gen != self.rx[flow].gen {
                self.stats.dup_dropped += 1; // stale generation
                continue;
            }
            let next = self.rx[flow].next_expected;
            if seg.seq < next {
                // Duplicate of something already released: the ACK may
                // have been lost, so re-ACK cumulatively.
                self.stats.dup_dropped += 1;
                let gen = seg.gen;
                self.send_ack(seg.src, dst, gen, next - 1, now);
            } else if seg.seq == next {
                // In-order: release it and everything it unblocks.
                let src = seg.src;
                let gen = seg.gen;
                out.push((dst, seg.payload));
                self.stats.delivered += 1;
                let rxf = &mut self.rx[flow];
                rxf.next_expected += 1;
                while let Some(payload) = rxf.buffer.remove(&rxf.next_expected) {
                    out.push((dst, payload));
                    rxf.next_expected += 1;
                    self.stats.delivered += 1;
                }
                let cum = self.rx[flow].next_expected - 1;
                self.send_ack(src, dst, gen, cum, now);
            } else {
                // Gap: hold out-of-order arrival, ask for the missing
                // segment (rate-limited).
                let src = seg.src;
                let rxf = &mut self.rx[flow];
                if rxf.buffer.insert(seg.seq, seg.payload).is_some() {
                    self.stats.dup_dropped += 1;
                }
                self.send_nack(src, dst, now);
            }
        }
        // 3. Corrupted data arrivals: header survives, payload did not
        //    — NACK so the sender re-sends without waiting a timeout.
        for (src, dst) in self.data.take_corrupted() {
            self.send_nack(src, dst, now);
        }
        // 4. Retransmit timers (after ACK processing so nothing just
        //    acked re-fires).
        let mut due: Vec<(usize, u64)> = Vec::new();
        for (flow, f) in self.tx.iter().enumerate() {
            for s in &f.unacked {
                if now >= s.deadline {
                    due.push((flow, s.seq));
                }
            }
        }
        for (flow, seq) in due {
            self.retransmit(flow, seq, now, false);
        }
        out
    }
}

use gtsc_types::snap::{Snap, SnapReader, SnapWriter, SnapshotError};

impl<T: Snap> Snap for DataSeg<T> {
    fn save(&self, w: &mut SnapWriter) {
        self.src.save(w);
        self.gen.save(w);
        self.seq.save(w);
        self.payload.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(DataSeg {
            src: Snap::load(r)?,
            gen: Snap::load(r)?,
            seq: Snap::load(r)?,
            payload: Snap::load(r)?,
        })
    }
}

impl Snap for CtlKind {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            CtlKind::Ack { cum } => {
                w.u8(0);
                cum.save(w);
            }
            CtlKind::Nack { expected } => {
                w.u8(1);
                expected.save(w);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(CtlKind::Ack {
                cum: Snap::load(r)?,
            }),
            1 => Ok(CtlKind::Nack {
                expected: Snap::load(r)?,
            }),
            t => Err(SnapshotError::Malformed {
                context: format!("CtlKind tag {t}"),
            }),
        }
    }
}

gtsc_types::snap_fields!(CtlMsg {
    flow_src,
    flow_dst,
    gen,
    kind,
});

impl<T: Snap> Snap for Sent<T> {
    fn save(&self, w: &mut SnapWriter) {
        self.seq.save(w);
        self.bytes.save(w);
        self.payload.save(w);
        self.first_sent.save(w);
        self.deadline.save(w);
        self.retries.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Sent {
            seq: Snap::load(r)?,
            bytes: Snap::load(r)?,
            payload: Snap::load(r)?,
            first_sent: Snap::load(r)?,
            deadline: Snap::load(r)?,
            retries: Snap::load(r)?,
        })
    }
}

impl<T: Snap> Snap for TxFlow<T> {
    fn save(&self, w: &mut SnapWriter) {
        self.gen.save(w);
        self.next_seq.save(w);
        self.unacked.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TxFlow {
            gen: Snap::load(r)?,
            next_seq: Snap::load(r)?,
            unacked: Snap::load(r)?,
        })
    }
}

impl<T: Snap> Snap for RxFlow<T> {
    fn save(&self, w: &mut SnapWriter) {
        self.gen.save(w);
        self.next_expected.save(w);
        self.buffer.save(w);
        self.last_nack.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(RxFlow {
            gen: Snap::load(r)?,
            next_expected: Snap::load(r)?,
            buffer: Snap::load(r)?,
            last_nack: Snap::load(r)?,
        })
    }
}

impl<T: Snap> ReliableNet<T> {
    /// Serializes the dynamic transport state: both underlying networks,
    /// the enabled flag, every sender/receiver flow (retransmit queues,
    /// reorder buffers, generations), the backoff-jitter RNG stream, and
    /// the counters. `tcfg`, `ctl_bytes`, the port geometry, and the
    /// tracers are config-derived and come from the wrapper being
    /// restored into.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.data.save_state(w);
        self.ctl.save_state(w);
        self.enabled.save(w);
        self.tx.save(w);
        self.rx.save(w);
        self.rng.save(w);
        self.stats.save(w);
    }

    /// Restores state saved by [`ReliableNet::save_state`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Mismatch`] if the flow geometry differs; any
    /// decoding error on corrupt input.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.data.load_state(r)?;
        self.ctl.load_state(r)?;
        let enabled: bool = Snap::load(r)?;
        let tx: Vec<TxFlow<T>> = Snap::load(r)?;
        let rx: Vec<RxFlow<T>> = Snap::load(r)?;
        let rng: SplitMix64 = Snap::load(r)?;
        let stats: TransportStats = Snap::load(r)?;
        if tx.len() != self.tx.len() || rx.len() != self.rx.len() {
            return Err(SnapshotError::Mismatch {
                what: "transport flow geometry".into(),
            });
        }
        self.enabled = enabled;
        self.tx = tx;
        self.rx = rx;
        self.rng = rng;
        self.stats = stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_faults::FaultPlan;
    use gtsc_types::FaultConfig;
    use proptest::prelude::*;

    /// Small timeouts so drained test runs stay fast.
    fn test_tcfg() -> TransportConfig {
        TransportConfig {
            retransmit_timeout: 64,
            max_backoff_exp: 4,
            nack_min_gap: 32,
            retry_timeout: 2048,
        }
    }

    fn lossy_net(seed: u64, drop_permille: u16) -> ReliableNet<usize> {
        let mut net = ReliableNet::new(3, 3, NocConfig::default(), test_tcfg());
        let plan = FaultPlan::new(FaultConfig::lossy(seed, drop_permille));
        net.set_faults(plan.noc(0), plan.noc(2));
        net.enable(seed ^ 0x7261_6E64);
        net
    }

    /// Drives `net` until idle (or the horizon trips), collecting
    /// deliveries as `(cycle, dst, payload)`.
    fn drain(net: &mut ReliableNet<usize>, from: u64, horizon: u64) -> Vec<(u64, usize, usize)> {
        let mut out = Vec::new();
        for c in from..from + horizon {
            for (d, p) in net.tick(Cycle(c)) {
                out.push((c, d, p));
            }
            if net.is_idle() {
                break;
            }
        }
        out
    }

    /// The satellite contract: across many seeds, heavy drop/corrupt
    /// storms still deliver every payload exactly once, in per-flow
    /// FIFO order, and the transport drains to idle.
    fn exactly_once_one_seed(seed: u64, drop_permille: u16) {
        let mut net = lossy_net(seed, drop_permille);
        let mut flows = Vec::new();
        for i in 0..40usize {
            let (src, dst) = (i % 3, (i / 3) % 3);
            net.send(src, dst, 8 + (i % 160), i, Cycle(i as u64));
            flows.push((src, dst));
        }
        let got = drain(&mut net, 40, 2_000_000);
        assert!(net.is_idle(), "seed {seed}: transport failed to drain");
        let mut seen = vec![0u32; flows.len()];
        for &(_, dst, p) in &got {
            assert_eq!(dst, flows[p].1, "seed {seed}: misrouted payload {p}");
            seen[p] += 1;
        }
        for (p, &n) in seen.iter().enumerate() {
            assert_eq!(n, 1, "seed {seed}: payload {p} delivered {n} times");
        }
        // Per-flow FIFO: payload indices are send-ordered per flow.
        let order: Vec<usize> = got.iter().map(|&(_, _, p)| p).collect();
        for a in 0..order.len() {
            for b in a + 1..order.len() {
                if flows[order[a]] == flows[order[b]] {
                    assert!(
                        order[a] < order[b],
                        "seed {seed}: flow {:?} reordered — {} after {}",
                        flows[order[a]],
                        order[a],
                        order[b],
                    );
                }
            }
        }
        let ts = net.transport_stats();
        assert_eq!(ts.delivered, flows.len() as u64);
    }

    #[test]
    fn exactly_once_across_100_plus_seeds_at_5_percent_drop() {
        for seed in 0..104u64 {
            exactly_once_one_seed(seed, 50);
        }
    }

    #[test]
    fn exactly_once_survives_30_percent_drop() {
        for seed in 0..8u64 {
            exactly_once_one_seed(seed, 300);
        }
    }

    #[test]
    fn passthrough_mode_is_transparent_and_silent() {
        let mut net: ReliableNet<usize> =
            ReliableNet::new(2, 2, NocConfig::default(), TransportConfig::default());
        assert!(!net.is_enabled());
        for i in 0..10 {
            net.send(i % 2, (i / 2) % 2, 64, i, Cycle(0));
        }
        let got = drain(&mut net, 0, 10_000);
        assert_eq!(got.len(), 10);
        assert!(net.is_idle());
        assert_eq!(net.transport_stats(), TransportStats::default());
        assert_eq!(net.unacked(), 0);
        // No control traffic was ever generated.
        assert_eq!(net.stats().packets, 10);
        assert!(net.flow_diagnostics(Cycle(10_000)).is_empty());
    }

    #[test]
    fn enabled_fault_free_path_stays_exact_with_acks() {
        let mut net: ReliableNet<usize> = ReliableNet::new(2, 2, NocConfig::default(), test_tcfg());
        net.enable(7);
        for i in 0..12 {
            net.send(i % 2, (i / 2) % 2, 64, i, Cycle(0));
        }
        let got = drain(&mut net, 0, 100_000);
        assert_eq!(got.len(), 12, "each payload exactly once");
        assert!(net.is_idle(), "all segments acked");
        let ts = net.transport_stats();
        assert_eq!(ts.delivered, 12);
        assert_eq!(ts.acks, 12);
        assert_eq!(ts.dup_dropped, 0);
        // Data + ACK packets both count as NoC traffic.
        assert!(net.stats().packets >= 24);
    }

    #[test]
    fn corruption_triggers_nack_driven_retransmit() {
        // Corrupt-only faults (no drops): every corrupted arrival must
        // be recovered via NACK + retransmit.
        let cfg = FaultConfig {
            seed: 5,
            noc_corrupt_permille: 400,
            ..FaultConfig::default()
        };
        let mut net: ReliableNet<usize> = ReliableNet::new(2, 2, NocConfig::default(), test_tcfg());
        let plan = FaultPlan::new(cfg);
        net.set_faults(plan.noc(0), None);
        net.enable(5);
        for i in 0..30 {
            net.send(i % 2, (i / 2) % 2, 64, i, Cycle(i as u64));
        }
        let got = drain(&mut net, 30, 1_000_000);
        assert_eq!(got.len(), 30);
        assert!(net.is_idle());
        let ts = net.transport_stats();
        assert!(ts.retransmits > 0, "corruption must force retransmits");
        assert!(ts.nacks > 0, "corrupted arrivals must be NACKed");
        let fs = net.fault_stats().unwrap();
        assert!(fs.corrupted > 0, "the injector must actually corrupt");
    }

    #[test]
    fn flow_reset_discards_stale_traffic_and_recovers() {
        let mut net = lossy_net(3, 100);
        for i in 0..12usize {
            net.send(i % 3, 1, 64, i, Cycle(0)); // everything to dst 1
        }
        // Let some (but not necessarily all) traffic land, then crash
        // destination port 1 mid-flight.
        let mut pre = Vec::new();
        for c in 0..200u64 {
            pre.extend(net.tick(Cycle(c)));
        }
        let touched = net.reset_flows_to_dst(1, Cycle(0));
        assert!(touched > 0, "flows into dst 1 carried state");
        assert!(net.transport_stats().flows_reset > 0);
        // Post-reset traffic restarts at seq 0 on a new generation and
        // must still deliver exactly once despite stale in-flight
        // segments and ACKs of the old generation.
        for i in 100..112usize {
            net.send(i % 3, 1, 64, i, Cycle(200));
        }
        let post = drain(&mut net, 200, 2_000_000);
        assert!(net.is_idle(), "reset must not wedge the transport");
        let fresh: Vec<usize> = post
            .iter()
            .map(|&(_, _, p)| p)
            .filter(|&p| p >= 100)
            .collect();
        let mut uniq = fresh.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 12, "every post-reset payload arrives");
        assert_eq!(fresh.len(), 12, "exactly once each");
    }

    #[test]
    fn reset_from_src_clears_response_flows() {
        let mut net = lossy_net(11, 80);
        for i in 0..9usize {
            net.send(1, i % 3, 64, i, Cycle(0)); // everything from src 1
        }
        for c in 0..150u64 {
            net.tick(Cycle(c));
        }
        net.reset_flows_from_src(1, Cycle(0));
        for i in 50..59usize {
            net.send(1, i % 3, 64, i, Cycle(150));
        }
        let post = drain(&mut net, 150, 2_000_000);
        assert!(net.is_idle());
        let fresh: Vec<usize> = post
            .iter()
            .map(|&(_, _, p)| p)
            .filter(|&p| p >= 50)
            .collect();
        assert_eq!(fresh.len(), 9, "exactly once each after src reset");
    }

    #[test]
    fn partition_window_is_ridden_out_by_retransmits() {
        use gtsc_faults::LinkFaults;
        // Fault-free wire, but the (0 -> 1) link goes down for cycles
        // [100, 2000): everything injected inside the window vanishes,
        // yet the transport delivers all of it once the window closes.
        let mut net: ReliableNet<usize> = ReliableNet::new(2, 2, NocConfig::default(), test_tcfg());
        net.enable(9);
        let lf = LinkFaults::from_windows(&[(100, 2000)]);
        net.set_link_faults(0, 1, Some(lf));
        assert!(!net.link_down(0, 1, Cycle(99)));
        assert!(net.link_down(0, 1, Cycle(100)));
        assert!(net.link_down(0, 1, Cycle(1999)));
        assert!(!net.link_down(0, 1, Cycle(2000)));
        // Send straight into the down window, on both the partitioned
        // flow and a healthy one.
        for i in 0..10usize {
            net.send(0, 1, 64, i, Cycle(150 + i as u64));
        }
        net.send(1, 0, 64, 99, Cycle(150));
        let got = drain(&mut net, 150, 1_000_000);
        assert!(net.is_idle(), "partition must not wedge the transport");
        let to_1: Vec<usize> = got
            .iter()
            .filter(|&&(_, d, _)| d == 1)
            .map(|&(_, _, p)| p)
            .collect();
        assert_eq!(to_1, (0..10).collect::<Vec<_>>(), "FIFO across the window");
        // Nothing can cross before the window closes.
        let first_arrival = got
            .iter()
            .filter(|&&(_, d, _)| d == 1)
            .map(|&(c, _, _)| c)
            .min()
            .unwrap();
        assert!(
            first_arrival >= 2000,
            "payload crossed a down link at cycle {first_arrival}"
        );
        // The healthy reverse flow was never disturbed.
        let to_0: Vec<(u64, usize)> = got
            .iter()
            .filter(|&&(_, d, _)| d == 0)
            .map(|&(c, _, p)| (c, p))
            .collect();
        assert_eq!(to_0.len(), 1);
        assert_eq!(to_0[0].1, 99);
        assert!(to_0[0].0 < 2000, "healthy flow delayed by the partition");
        let ts = net.transport_stats();
        assert!(ts.retransmits > 0, "the window must force retransmits");
    }

    #[test]
    fn partition_drops_reverse_acks_too() {
        use gtsc_faults::LinkFaults;
        // A delivered payload whose ACK falls inside the (reverse) down
        // window: the sender times out and re-sends, the receiver dedups
        // and re-ACKs after the window — still exactly once.
        let mut net: ReliableNet<usize> = ReliableNet::new(2, 2, NocConfig::default(), test_tcfg());
        net.enable(31);
        // Window opens right after the data packet lands (~latency 12),
        // so the segment crosses but its ACK is partitioned away.
        let lf = LinkFaults::from_windows(&[(10, 1500)]);
        net.set_link_faults(0, 1, Some(lf));
        net.send(0, 1, 64, 7, Cycle(0));
        let got = drain(&mut net, 0, 1_000_000);
        assert!(net.is_idle());
        let payloads: Vec<usize> = got.iter().map(|&(_, _, p)| p).collect();
        assert_eq!(payloads, vec![7], "exactly once despite lost ACKs");
        let ts = net.transport_stats();
        assert!(
            ts.dup_dropped > 0 || ts.retransmits > 0,
            "the lost ACK must surface in the stats: {ts:?}"
        );
    }

    #[test]
    fn backoff_escalates_and_is_capped() {
        // 100% drop on data: nothing ever arrives, every timeout fires,
        // retries climb into the backoff cap.
        let cfg = FaultConfig {
            seed: 2,
            noc_drop_permille: 1000,
            ..FaultConfig::default()
        };
        let mut net: ReliableNet<usize> = ReliableNet::new(2, 2, NocConfig::default(), test_tcfg());
        let plan = FaultPlan::new(cfg);
        net.set_faults(plan.noc(0), None);
        net.enable(2);
        net.send(0, 1, 64, 9, Cycle(0));
        for c in 0..30_000u64 {
            let out = net.tick(Cycle(c));
            assert!(out.is_empty(), "nothing can arrive at 100% drop");
        }
        let ts = net.transport_stats();
        assert!(ts.timeouts >= 3, "timer must keep firing");
        assert!(ts.max_backoff_hits > 0, "cap must be reached");
        // Backoff bounds the storm: with base 64 and cap 2^4, 30k
        // cycles admit at most ~35 sends of this one segment.
        assert!(ts.retransmits < 40, "backoff failed: {ts:?}");
        let diags = net.flow_diagnostics(Cycle(30_000));
        assert_eq!(diags.len(), 1);
        assert_eq!((diags[0].src, diags[0].dst), (0, 1));
        assert_eq!(diags[0].unacked, 1);
        assert!(diags[0].oldest_age >= 29_000);
        assert!(diags[0].max_retries > 3);
        assert!(!net.is_idle(), "unacked segment holds idle off");
    }

    proptest! {
        /// Proptest form of the exactly-once contract: random traffic
        /// patterns, random seeds, random loss rates.
        #[test]
        fn exactly_once_delivery_proptest(
            sends in proptest::collection::vec((0usize..3, 0usize..3, 1usize..200, 0u64..20), 1..50),
            seed in 0u64..10_000,
            drop in 1u16..200,
        ) {
            let mut net = lossy_net(seed, drop);
            let mut cycle = 0u64;
            let mut flows = Vec::new();
            let mut got = Vec::new();
            for (p, (src, dst, bytes, gap)) in sends.iter().enumerate() {
                for c in cycle..cycle + gap {
                    got.extend(net.tick(Cycle(c)).into_iter().map(|(d, x)| (c, d, x)));
                }
                cycle += gap;
                net.send(*src, *dst, *bytes, p, Cycle(cycle));
                flows.push((*src, *dst));
            }
            got.extend(drain(&mut net, cycle, 3_000_000));
            prop_assert!(net.is_idle(), "transport failed to drain");
            let mut seen = vec![0u32; flows.len()];
            for &(_, dst, p) in &got {
                prop_assert_eq!(dst, flows[p].1);
                seen[p] += 1;
            }
            for (p, &n) in seen.iter().enumerate() {
                prop_assert_eq!(n, 1, "payload {} delivered {} times", p, n);
            }
            // Per-flow FIFO over the released order.
            let order: Vec<usize> = got.iter().map(|&(_, _, p)| p).collect();
            for a in 0..order.len() {
                for b in a + 1..order.len() {
                    if flows[order[a]] == flows[order[b]] {
                        prop_assert!(order[a] < order[b]);
                    }
                }
            }
        }
    }

    #[test]
    fn snapshot_mid_storm_resumes_byte_identically() {
        use gtsc_types::snap::{SnapReader, SnapWriter};
        // Drive a lossy transport into the middle of a retransmit storm,
        // snapshot, restore into a freshly-built wrapper, and check that
        // both copies replay the identical future.
        let build = || lossy_net(23, 200);
        let mut orig = build();
        for i in 0..30usize {
            orig.send(i % 3, (i / 3) % 3, 8 + i, i, Cycle(i as u64));
        }
        for c in 30..400u64 {
            orig.tick(Cycle(c)); // leave unacked segments + reorder state
        }
        let mut w = SnapWriter::new();
        orig.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut copy = build();
        let mut r = SnapReader::new(&bytes);
        copy.load_state(&mut r).expect("restore");
        r.expect_end("transport snapshot").expect("fully consumed");

        // A second save must be byte-identical (the S3 contract).
        let mut w2 = SnapWriter::new();
        copy.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "save -> load -> save is stable");

        let mut log_a = Vec::new();
        let mut log_b = Vec::new();
        for c in 400..2_000_400u64 {
            log_a.extend(orig.tick(Cycle(c)).into_iter().map(|(d, p)| (c, d, p)));
            log_b.extend(copy.tick(Cycle(c)).into_iter().map(|(d, p)| (c, d, p)));
            if orig.is_idle() && copy.is_idle() {
                break;
            }
        }
        assert!(orig.is_idle() && copy.is_idle());
        assert_eq!(log_a, log_b, "restored transport replays the future");
        assert_eq!(orig.transport_stats(), copy.transport_stats());
        assert_eq!(orig.fault_stats(), copy.fault_stats());
        // Everything sent pre-snapshot is delivered exactly once across
        // the pre-snapshot and post-restore halves combined.
        let ts = copy.transport_stats();
        assert_eq!(ts.delivered, 30);
    }

    #[test]
    fn snapshot_geometry_mismatch_is_rejected() {
        use gtsc_types::snap::{SnapReader, SnapWriter, SnapshotError};
        let orig = lossy_net(1, 100); // 3x3
        let mut w = SnapWriter::new();
        orig.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut other: ReliableNet<usize> =
            ReliableNet::new(2, 2, NocConfig::default(), test_tcfg());
        let mut r = SnapReader::new(&bytes);
        let err = other.load_state(&mut r);
        assert!(
            matches!(
                err,
                Err(SnapshotError::Mismatch { .. } | SnapshotError::Malformed { .. })
            ),
            "wrong geometry must be rejected: {err:?}"
        );
    }

    #[test]
    fn transport_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut net = lossy_net(seed, 120);
            for i in 0..30usize {
                net.send(i % 3, (i / 3) % 3, 8 + i, i, Cycle(i as u64));
            }
            let log = drain(&mut net, 30, 2_000_000);
            (log, net.transport_stats(), net.fault_stats().unwrap())
        };
        let (la, ta, fa) = run(17);
        let (lb, tb, fb) = run(17);
        assert_eq!(la, lb, "same seed replays byte-for-byte");
        assert_eq!(ta, tb);
        assert_eq!(fa, fb);
        let (lc, _, _) = run(18);
        assert_ne!(la, lc, "different seeds should differ");
    }
}
