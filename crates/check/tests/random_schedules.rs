//! Random-schedule fallback for shapes too large to explore
//! exhaustively: proptest drives [`gtsc_check::explore::run_schedule`]
//! with arbitrary choice vectors and checks that every outcome the real
//! controllers produce is one the reference model can also produce, and
//! that no schedule trips the transition sanitizer.
//!
//! The shape here (3 threads × 3 ops, two contended blocks) is larger
//! than anything in the exhaustive catalog; its *reference* exploration
//! is still cheap (atomic steps), so the spec outcome set is computed
//! exhaustively once and the implementation is sampled against it.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use gtsc_check::explore::{explore_all, run_schedule};
use gtsc_check::harness::{HarnessCfg, MicroGtsc};
use gtsc_check::litmus::Op;
use gtsc_check::multi::{MicroMultiGtsc, MultiHarnessCfg};
use gtsc_check::spec::SpecMachine;
use proptest::prelude::*;

fn ld(id: u32, block: u64) -> Op {
    Op::Load { id, block }
}
fn st(block: u64, label: u32) -> Op {
    Op::Store { block, label }
}

/// Three threads hammering blocks 0 and 1: a writer, a reader, and a
/// mixed thread that reads then overwrites. 1680 serve orders — beyond
/// what the exhaustive suite runs per shape, ideal for sampling.
fn shape() -> Vec<Vec<Op>> {
    vec![
        vec![st(0, 1), st(1, 2), st(0, 3)],
        vec![ld(10, 0), ld(11, 1), ld(12, 0)],
        vec![ld(20, 1), st(1, 4), ld(21, 0)],
    ]
}

/// All outcomes the reference model allows for the shape, computed once.
fn spec_outcomes() -> &'static std::collections::BTreeSet<BTreeMap<u32, u32>> {
    static SPEC: OnceLock<std::collections::BTreeSet<BTreeMap<u32, u32>>> = OnceLock::new();
    SPEC.get_or_init(|| {
        let r = explore_all(
            || SpecMachine::new(&shape(), HarnessCfg::default().lease),
            1_000_000,
        );
        assert!(!r.truncated, "reference exploration must be exhaustive");
        r.outcomes
    })
}

proptest! {
    /// Any serve order of the real controllers lands inside the
    /// reference model's outcome set, with a clean sanitizer.
    #[test]
    fn random_impl_schedule_is_within_spec(choices in proptest::collection::vec(0usize..4, 0..24)) {
        let mut m = MicroGtsc::new(&shape(), HarnessCfg::default());
        let (observations, violations, races) = run_schedule(&mut m, &choices);
        prop_assert!(violations.is_empty(), "sanitizer violations: {violations:?}");
        prop_assert!(races.is_empty(), "race-oracle findings: {races:?}");
        prop_assert!(
            spec_outcomes().contains(&observations),
            "outcome not producible by the reference model: {observations:?}"
        );
    }

    /// Replay determinism at the harness level: the same choice vector
    /// must yield the same outcome (the explorer's core assumption).
    #[test]
    fn same_choices_same_outcome(choices in proptest::collection::vec(0usize..4, 0..24)) {
        let mut a = MicroGtsc::new(&shape(), HarnessCfg::default());
        let mut b = MicroGtsc::new(&shape(), HarnessCfg::default());
        prop_assert_eq!(run_schedule(&mut a, &choices), run_schedule(&mut b, &choices));
    }
}

/// The multi-GPU twin of [`shape`]: three threads spread over two
/// devices contending on blocks 0 and 1 through the shared home node.
fn multi_shape() -> Vec<(u16, Vec<Op>)> {
    vec![
        (0, vec![st(0, 1), st(1, 2), st(0, 3)]),
        (1, vec![ld(10, 0), ld(11, 1), ld(12, 0)]),
        (1, vec![ld(20, 1), st(1, 4), ld(21, 0)]),
    ]
}

/// Reference outcomes for the multi-GPU shape: the flat spec with the
/// effective lease (grant and L1 leases both bound read visibility).
fn multi_spec_outcomes(cfg: MultiHarnessCfg) -> std::collections::BTreeSet<BTreeMap<u32, u32>> {
    let flat: Vec<Vec<Op>> = multi_shape().into_iter().map(|(_, p)| p).collect();
    let r = explore_all(
        || SpecMachine::new(&flat, cfg.grant_lease.max(cfg.lease)),
        1_000_000,
    );
    assert!(!r.truncated, "reference exploration must be exhaustive");
    r.outcomes
}

fn multi_spec_default() -> &'static std::collections::BTreeSet<BTreeMap<u32, u32>> {
    static SPEC: OnceLock<std::collections::BTreeSet<BTreeMap<u32, u32>>> = OnceLock::new();
    SPEC.get_or_init(|| multi_spec_outcomes(MultiHarnessCfg::default()))
}

proptest! {
    /// Satellite property for hierarchical delegation: on any random
    /// serve order of the multi-GPU harness, every L2 lease handed to an
    /// L1 nests inside a live inter-GPU grant (the race oracle's
    /// `lease-outside-grant` rule fires otherwise), the sanitizer stays
    /// clean, and the outcome is one the flat reference model allows.
    #[test]
    fn random_multi_gpu_schedule_nests_leases_and_stays_within_spec(
        choices in proptest::collection::vec(0usize..4, 0..24),
    ) {
        let mut m = MicroMultiGtsc::new(&multi_shape(), MultiHarnessCfg::default());
        let (observations, violations, races) = run_schedule(&mut m, &choices);
        prop_assert!(violations.is_empty(), "sanitizer violations: {violations:?}");
        prop_assert!(
            !races.iter().any(|f| f.contains("lease-outside-grant")),
            "an L2 lease escaped its inter-GPU grant: {races:?}"
        );
        prop_assert!(races.is_empty(), "race-oracle findings: {races:?}");
        prop_assert!(
            multi_spec_default().contains(&observations),
            "outcome not producible by the reference model: {observations:?}"
        );
    }

    /// Replay determinism holds for the multi-GPU harness too — the
    /// explorer's resume/caching machinery depends on it.
    #[test]
    fn same_choices_same_multi_gpu_outcome(
        choices in proptest::collection::vec(0usize..4, 0..24),
    ) {
        let mut a = MicroMultiGtsc::new(&multi_shape(), MultiHarnessCfg::default());
        let mut b = MicroMultiGtsc::new(&multi_shape(), MultiHarnessCfg::default());
        prop_assert_eq!(run_schedule(&mut a, &choices), run_schedule(&mut b, &choices));
    }
}

/// Lease nesting holds under stress configurations as well: a short
/// inter-GPU grant with a long L1 lease (the clamp is load-bearing on
/// every serve), a tiny timestamp width forcing global rollovers, and a
/// mid-run device crash. Deterministic pseudo-schedules keep failures
/// byte-for-byte reproducible.
#[test]
fn multi_gpu_lease_nesting_holds_under_stress_configs() {
    let cfgs = [
        MultiHarnessCfg {
            lease: 64,
            grant_lease: 16,
            ..MultiHarnessCfg::default()
        },
        MultiHarnessCfg {
            lease: 10,
            grant_lease: 16,
            ts_bits: 6,
            ..MultiHarnessCfg::default()
        },
        MultiHarnessCfg {
            crash_device_after_serves: Some((3, 0)),
            ..MultiHarnessCfg::default()
        },
    ];
    for seed in 0u64..60 {
        let cfg = cfgs[(seed % 3) as usize];
        let choices: Vec<usize> = (0u64..24)
            .map(|i| {
                ((seed.wrapping_mul(2_654_435_761).wrapping_add(i * 97_453)) >> 11) as usize % 4
            })
            .collect();
        let mut m = MicroMultiGtsc::new(&multi_shape(), cfg);
        let (_, violations, races) = run_schedule(&mut m, &choices);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        assert!(races.is_empty(), "seed {seed}: {races:?}");
    }
}

/// The rollover configuration holds under random schedules too: 4-bit
/// timestamps force a Section V-D reset in essentially every run, and
/// the outcome must still be explainable by the never-rolling reference.
#[test]
fn random_rollover_schedules_stay_within_spec() {
    let cfg = HarnessCfg {
        lease: 10,
        ts_bits: 4,
        ..HarnessCfg::default()
    };
    let spec = {
        let r = explore_all(|| SpecMachine::new(&shape(), cfg.lease), 1_000_000);
        assert!(!r.truncated);
        r.outcomes
    };
    // A fixed spread of deterministic pseudo-schedules (no wall-clock or
    // RNG dependence keeps failures reproducible byte-for-byte).
    for seed in 0u64..64 {
        let choices: Vec<usize> = (0u64..24)
            .map(|i| {
                ((seed.wrapping_mul(2_654_435_761).wrapping_add(i * 40_503)) >> 7) as usize % 4
            })
            .collect();
        let mut m = MicroGtsc::new(&shape(), cfg);
        let (observations, violations, races) = run_schedule(&mut m, &choices);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        assert!(races.is_empty(), "seed {seed}: {races:?}");
        assert!(
            spec.contains(&observations),
            "seed {seed}: rollover manufactured outcome {observations:?}"
        );
    }
}

/// The race oracle stays silent across 100 seeded random schedules of
/// the large shape, under the default, rollover, crash, and duplicate
/// configurations — no false positives outside the exhaustive catalog.
#[test]
fn race_oracle_clean_on_100_random_schedules() {
    let cfgs = [
        HarnessCfg::default(),
        HarnessCfg {
            lease: 10,
            ts_bits: 4,
            ..HarnessCfg::default()
        },
        HarnessCfg {
            crash_after_serves: Some(3),
            ..HarnessCfg::default()
        },
        HarnessCfg {
            duplicate_serves: true,
            ..HarnessCfg::default()
        },
    ];
    for seed in 0u64..100 {
        let cfg = cfgs[(seed % 4) as usize];
        let choices: Vec<usize> = (0u64..24)
            .map(|i| {
                ((seed.wrapping_mul(2_246_822_519).wrapping_add(i * 68_041)) >> 9) as usize % 4
            })
            .collect();
        let mut m = MicroGtsc::new(&shape(), cfg);
        let (_, violations, races) = run_schedule(&mut m, &choices);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        assert!(races.is_empty(), "seed {seed}: {races:?}");
    }
}
