//! Migration gate for the `src_lint` engine swap: the token engine
//! (`gtsc_lint`) and the legacy line-regex engine
//! (`gtsc_check::srclint`) must agree that the real workspace is clean,
//! and the new determinism rules must be demonstrably live on the real
//! sources — the sanctioned hash-iteration sites fire the moment their
//! `lint: allow(hash-iter)` annotations are stripped.

use std::path::Path;

use gtsc_check::srclint::lint_sources;
use gtsc_lint::{lint_text, lint_tree, RuleSet};

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// Both engines, zero findings, same tree. This is the strongest parity
/// statement available on a clean repository; per-rule behavioural
/// parity is pinned by the fixture suites in each crate.
#[test]
fn token_and_legacy_engines_agree_tree_is_clean() {
    let legacy = lint_sources(workspace_root()).expect("legacy scan");
    let token = lint_tree(workspace_root()).expect("token scan");
    assert!(
        legacy.is_empty(),
        "legacy engine fired:\n{}",
        legacy
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        token.is_empty(),
        "token engine fired:\n{}",
        token
            .iter()
            .map(|d| d.spanned())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The clean tree is not vacuous: every `lint: allow(hash-iter)`
/// annotation in the simulation-state crates marks a site the rule
/// really catches. Strip the annotations and the rule must fire once
/// per site.
#[test]
fn hash_iter_rule_is_live_on_the_real_sources() {
    let dirs_with_sanctioned_sites = [("crates/mem/src/mshr.rs", 1), ("crates/core/src/l2.rs", 1)];
    for (rel, sites) in dirs_with_sanctioned_sites {
        let path = workspace_root().join(rel);
        let text = std::fs::read_to_string(&path).expect("source file");
        assert!(
            text.contains("lint: allow(hash-iter)"),
            "{rel}: expected a sanctioned hash-iter site"
        );
        let stripped = text.replace("lint: allow(hash-iter)", "lint: annotation-stripped");
        let findings: Vec<_> = lint_text(
            &path,
            &stripped,
            RuleSet {
                determinism: true,
                ..RuleSet::default()
            },
        )
        .into_iter()
        .filter(|d| d.rule == "hash-iter")
        .collect();
        assert_eq!(
            findings.len(),
            sites,
            "{rel}: hash-iter must fire on the de-annotated site(s): {findings:?}"
        );
    }
}
