//! End-to-end check of the analysis stack against the full simulator:
//! a traced `GpuSim` run under G-TSC must come back clean from both the
//! online transition sanitizer and the offline trace lints — including
//! under 6-bit timestamps, where Section V-D rollovers exercise the
//! `rollover-ordering` lint on a real event stream.

use gtsc_check::lint::lint_events;
use gtsc_gpu::{VecKernel, WarpOp, WarpProgram};
use gtsc_sim::GpuSim;
use gtsc_types::{Addr, ConsistencyModel, GpuConfig, ProtocolKind, TraceConfig};
use gtsc_workloads::micro;

#[test]
fn traced_gtsc_run_passes_sanitizer_and_lints() {
    for m in [ConsistencyModel::Sc, ConsistencyModel::Rc] {
        let cfg = GpuConfig::test_small()
            .with_protocol(ProtocolKind::Gtsc)
            .with_consistency(m)
            .with_trace(TraceConfig::full())
            .with_sanitize(true);
        let mut sim = GpuSim::new(cfg);
        let report = sim
            .run_kernel(&micro::message_passing(3))
            .unwrap_or_else(|e| panic!("{m:?}: {e}"));
        assert!(
            report.violations.is_empty(),
            "{m:?}: {:?}",
            report.violations
        );
        assert!(sim.sanitizer().checked() > 0, "{m:?}: sanitizer idle");

        let events = sim.trace_events();
        assert!(!events.is_empty(), "{m:?}: tracing produced no events");
        let lint = lint_events(&events);
        assert!(
            lint.errors() == 0,
            "{m:?}: trace lints fired:\n{}",
            lint.findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(lint.scanned > 0);
    }
}

#[test]
fn traced_rollover_run_passes_lints() {
    // 6-bit timestamps roll the L2 banks over repeatedly; the Rollover
    // events land in the trace and the per-scope epoch-monotonicity lint
    // (plus all timestamp lints across the resets) must stay quiet.
    let mut cfg = GpuConfig::test_small()
        .with_protocol(ProtocolKind::Gtsc)
        .with_trace(TraceConfig::full())
        .with_sanitize(true);
    cfg.ts_bits = 6;
    let prog = |s: u64| {
        WarpProgram(
            (0..30)
                .map(|i| {
                    if (i + s).is_multiple_of(4) {
                        WarpOp::store_coalesced(Addr((i % 3) * 128), 32)
                    } else {
                        WarpOp::load_coalesced(Addr((i % 3) * 128), 32)
                    }
                })
                .collect(),
        )
    };
    let kernel = VecKernel::new("rollover", 1, vec![vec![prog(0)], vec![prog(1)]]);
    let mut sim = GpuSim::new(cfg);
    let report = sim.run_kernel(&kernel).expect("completes");
    assert!(report.stats.l2.ts_rollovers > 0, "rollover never fired");
    assert!(report.violations.is_empty(), "{:?}", report.violations);

    let events = sim.trace_events();
    let saw_rollover = events
        .iter()
        .any(|e| matches!(e.kind, gtsc_trace::EventKind::Rollover { .. }));
    assert!(saw_rollover, "no Rollover event reached the trace");
    let lint = lint_events(&events);
    assert!(
        lint.errors() == 0,
        "trace lints fired across rollover:\n{}",
        lint.findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
