//! Oracle validation against seeded protocol mutants.
//!
//! Each [`ProtocolMutation`] disables exactly one protocol guard in the
//! real controllers (behind a test-only hook; production code never
//! sets it). These tests assert the contract the race oracle claims:
//!
//! * every mutant is flagged on at least one exhaustively-explored
//!   schedule of a small litmus shape, and
//! * at least one mutant is invisible to the online transition
//!   sanitizer on *every* schedule — the oracle catches bugs the
//!   sanitizer structurally cannot see, because the sanitizer checks
//!   local transition invariants while the oracle checks global
//!   ordering against message causality.
//!
//! A healthy control run of every shape is included so a flag can never
//! be a false positive of the shape itself.

use gtsc_check::explore::explore_all;
use gtsc_check::harness::{HarnessCfg, MicroGtsc};
use gtsc_check::litmus::Op;
use gtsc_check::multi::{MicroMultiGtsc, MultiHarnessCfg};
use gtsc_core::ProtocolMutation;

fn ld(id: u32, block: u64) -> Op {
    Op::Load { id, block }
}
fn st(block: u64, label: u32) -> Op {
    Op::Store { block, label }
}

/// Explores every schedule; returns (any schedule had a race finding
/// matching `rule`, any schedule had a sanitizer violation).
fn explore(progs: &[Vec<Op>], cfg: HarnessCfg, rule: &str) -> (bool, bool) {
    let r = explore_all(|| MicroGtsc::new(progs, cfg), 200_000);
    assert!(!r.truncated, "mutant exploration must stay exhaustive");
    let flagged = r
        .outcomes
        .iter()
        .any(|(_, _, races)| races.iter().any(|f| f.contains(rule)));
    let sanitizer_fired = r.outcomes.iter().any(|(_, v, _)| !v.is_empty());
    (flagged, sanitizer_fired)
}

/// A reader whose third load hits a resident-but-expired line: T1
/// re-reads block 0 after its warp timestamp was dragged past the
/// original lease by T0's stores.
fn expired_hit_shape() -> Vec<Vec<Op>> {
    vec![
        vec![st(0, 1), st(1, 2)],
        vec![ld(10, 0), ld(11, 1), ld(12, 0)],
    ]
}

/// A reader leases a block, then a writer stores to it.
fn lease_then_store_shape() -> Vec<Vec<Op>> {
    vec![vec![st(0, 9)], vec![ld(10, 0), ld(11, 0)]]
}

/// Message passing across a bank crash (the crash lands before the
/// second serve on every schedule).
fn crash_shape() -> (Vec<Vec<Op>>, HarnessCfg) {
    (
        vec![vec![st(0, 1), st(1, 2)], vec![ld(10, 1), ld(11, 0)]],
        HarnessCfg {
            crash_after_serves: Some(2),
            ..HarnessCfg::default()
        },
    )
}

#[test]
fn healthy_controls_are_clean() {
    for (progs, cfg) in [
        (expired_hit_shape(), HarnessCfg::default()),
        (lease_then_store_shape(), HarnessCfg::default()),
        crash_shape(),
    ] {
        let r = explore_all(|| MicroGtsc::new(&progs, cfg), 200_000);
        assert!(!r.truncated);
        for (_, violations, races) in &r.outcomes {
            assert!(violations.is_empty(), "{violations:?}");
            assert!(races.is_empty(), "{races:?}");
        }
    }
}

/// Mutant 1: the L1 serves hits past the lease's `rts`. The sanitizer
/// (which only checks warp-timestamp monotonicity and per-line
/// invariants) stays silent on every schedule; the oracle flags the
/// read serialized outside its granted interval.
#[test]
fn serve_read_past_rts_is_flagged_by_oracle_not_sanitizer() {
    let cfg = HarnessCfg {
        mutation: ProtocolMutation::ServeReadPastRts,
        ..HarnessCfg::default()
    };
    let (flagged, sanitizer_fired) = explore(&expired_hit_shape(), cfg, "read-past-lease");
    assert!(flagged, "oracle must flag the expired-lease hit");
    assert!(
        !sanitizer_fired,
        "this mutant must be invisible to the sanitizer — if it became \
         visible, the 'oracle catches what the sanitizer misses' claim \
         needs a new witness"
    );
}

/// Mutant 2: the L2 stamps stores with `max(wts+1, warp_ts)` instead of
/// `max(rts+1, warp_ts)`, landing commits inside outstanding read
/// leases. Per-block `wts` stays strictly increasing, so the sanitizer's
/// monotonicity checks pass on every schedule; the oracle compares the
/// commit against the granted-lease high-water mark and flags it.
#[test]
fn skip_lease_expiry_on_store_is_flagged_by_oracle_not_sanitizer() {
    let cfg = HarnessCfg {
        mutation: ProtocolMutation::SkipLeaseExpiryOnStore,
        ..HarnessCfg::default()
    };
    let (flagged, sanitizer_fired) = explore(&lease_then_store_shape(), cfg, "store-inside-lease");
    assert!(
        flagged,
        "oracle must flag the commit inside a granted lease"
    );
    assert!(
        !sanitizer_fired,
        "this mutant must be invisible to the sanitizer — if it became \
         visible, the 'oracle catches what the sanitizer misses' claim \
         needs a new witness"
    );
}

/// Cross-GPU shape for the delegation mutant: device L1 leases longer
/// than the inter-GPU grant, so a healthy device must clamp every lease
/// it hands out (`nest_rts`) while the mutant's uncapped extension
/// escapes the grant on the very first forwarded read.
fn delegation_shape() -> (Vec<(u16, Vec<Op>)>, MultiHarnessCfg) {
    (
        vec![(0, vec![st(0, 1)]), (1, vec![ld(10, 0), ld(11, 0)])],
        MultiHarnessCfg {
            lease: 64,
            grant_lease: 16,
            ..MultiHarnessCfg::default()
        },
    )
}

#[test]
fn healthy_delegation_control_is_clean() {
    let (threads, cfg) = delegation_shape();
    let r = explore_all(|| MicroMultiGtsc::new(&threads, cfg), 200_000);
    assert!(!r.truncated);
    for (_, violations, races) in &r.outcomes {
        assert!(violations.is_empty(), "{violations:?}");
        assert!(races.is_empty(), "{races:?}");
    }
}

/// Mutant 4 (multi-GPU): the device serves local reads with the
/// uncapped lease extension instead of nesting it inside its inter-GPU
/// grant, handing L1s leases the home never promised to protect. The
/// race oracle's `lease-outside-grant` rule — which models the device's
/// held grants from its own install stream — must flag it on some
/// exhaustively-explored schedule.
#[test]
fn serve_past_grant_rts_is_flagged_by_oracle() {
    let (threads, cfg) = delegation_shape();
    let cfg = MultiHarnessCfg {
        mutation: ProtocolMutation::ServePastGrantRts,
        ..cfg
    };
    let r = explore_all(|| MicroMultiGtsc::new(&threads, cfg), 200_000);
    assert!(!r.truncated, "mutant exploration must stay exhaustive");
    let flagged = r
        .outcomes
        .iter()
        .any(|(_, _, races)| races.iter().any(|f| f.contains("lease-outside-grant")));
    assert!(
        flagged,
        "oracle must flag the lease escaping its inter-GPU grant"
    );
}

/// Mutant 3: bank recovery keeps the old epoch, so orphaned L1 leases
/// are never invalidated. The oracle's crash rule demands a strictly
/// newer epoch on the bank's first post-crash grant.
#[test]
fn skip_epoch_bump_on_recovery_is_flagged_by_oracle() {
    let (progs, cfg) = crash_shape();
    let cfg = HarnessCfg {
        mutation: ProtocolMutation::SkipEpochBumpOnRecovery,
        ..cfg
    };
    let (flagged, _) = explore(&progs, cfg, "missing-epoch-bump");
    assert!(flagged, "oracle must flag the un-bumped recovery epoch");
}
