//! Exhaustive model checking of the full litmus catalog — the test-suite
//! twin of the `model_check` binary. Every schedule of every shape runs
//! through the real `GtscL1`/`GtscL2` controllers and the operational
//! reference model; a failure prints the full run summary so the
//! offending outcome is visible in CI logs.

use gtsc_check::litmus::{all_litmus, run_litmus};

/// Plenty for the current catalog (the largest shape, iriw-sc, explores
/// 180 schedules); a new shape that blows past this should raise the cap
/// deliberately, not silently truncate.
const MAX_SCHEDULES: u64 = 1_000_000;

#[test]
fn every_litmus_shape_passes_exhaustively() {
    let mut failures = Vec::new();
    for litmus in all_litmus() {
        let r = run_litmus(&litmus, MAX_SCHEDULES);
        assert!(
            !r.truncated,
            "{}: truncated at {} schedules — raise MAX_SCHEDULES deliberately",
            r.name, r.schedules
        );
        if !r.ok() {
            failures.push(format!(
                "{}\n  unexplained: {:?}\n  forbidden hits: {:?}\n  missing required: {:?}\n  \
                 sanitizer: {:?}",
                r.summary(),
                r.unexplained,
                r.forbidden_hits,
                r.missing_required,
                r.sanitizer_violations
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "litmus failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn suite_covers_both_modes_and_rollover() {
    // Guard the catalog's breadth: dropping the RC shapes or the tiny
    // timestamp-width shapes would quietly shrink what CI proves.
    let suite = all_litmus();
    assert!(suite.len() >= 10, "catalog shrank to {}", suite.len());
    assert!(suite
        .iter()
        .any(|l| matches!(l.mode, gtsc_check::litmus::Mode::Rc)));
    assert!(
        suite.iter().any(|l| l.cfg.ts_bits <= 5),
        "no shape forces Section V-D rollover any more"
    );
}
