//! Exhaustive model checking of the full litmus catalog — the test-suite
//! twin of the `model_check` binary. Every schedule of every shape runs
//! through the real `GtscL1`/`GtscL2` controllers and the operational
//! reference model; a failure prints the full run summary so the
//! offending outcome is visible in CI logs.

use gtsc_check::litmus::{all_litmus, all_litmus_multi, run_litmus, run_litmus_multi};

/// Plenty for the current catalog (the largest shape, iriw-sc, explores
/// 180 schedules); a new shape that blows past this should raise the cap
/// deliberately, not silently truncate.
const MAX_SCHEDULES: u64 = 1_000_000;

#[test]
fn every_litmus_shape_passes_exhaustively() {
    let mut failures = Vec::new();
    for litmus in all_litmus() {
        let r = run_litmus(&litmus, MAX_SCHEDULES);
        assert!(
            !r.truncated,
            "{}: truncated at {} schedules — raise MAX_SCHEDULES deliberately",
            r.name, r.schedules
        );
        if !r.ok() {
            failures.push(format!(
                "{}\n  unexplained: {:?}\n  forbidden hits: {:?}\n  missing required: {:?}\n  \
                 sanitizer: {:?}",
                r.summary(),
                r.unexplained,
                r.forbidden_hits,
                r.missing_required,
                r.sanitizer_violations
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "litmus failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn every_cross_gpu_litmus_shape_passes_exhaustively() {
    let mut failures = Vec::new();
    for litmus in all_litmus_multi() {
        let r = run_litmus_multi(&litmus, MAX_SCHEDULES);
        assert!(
            !r.truncated,
            "{}: truncated at {} schedules — raise MAX_SCHEDULES deliberately",
            r.name, r.schedules
        );
        if !r.ok() {
            failures.push(format!(
                "{}\n  unexplained: {:?}\n  forbidden hits: {:?}\n  missing required: {:?}\n  \
                 sanitizer: {:?}\n  races: {:?}",
                r.summary(),
                r.unexplained,
                r.forbidden_hits,
                r.missing_required,
                r.sanitizer_violations,
                r.race_findings
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "cross-GPU litmus failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn cross_gpu_suite_covers_the_required_shapes() {
    // Guard the catalog's breadth: MP across devices, IRIW across four
    // devices, and a device-crash variant must all stay in the suite.
    let suite = all_litmus_multi();
    assert!(suite.len() >= 3, "catalog shrank to {}", suite.len());
    assert!(suite.iter().any(|l| l.name == "xmp-sc"));
    assert!(
        suite
            .iter()
            .any(|l| l.threads.iter().map(|(d, _)| *d).max().unwrap_or(0) >= 3),
        "no shape spans four devices any more"
    );
    assert!(
        suite
            .iter()
            .any(|l| l.cfg.crash_device_after_serves.is_some()),
        "no shape crashes a device mid-litmus any more"
    );
}

#[test]
fn suite_covers_both_modes_and_rollover() {
    // Guard the catalog's breadth: dropping the RC shapes or the tiny
    // timestamp-width shapes would quietly shrink what CI proves.
    let suite = all_litmus();
    assert!(suite.len() >= 10, "catalog shrank to {}", suite.len());
    assert!(suite
        .iter()
        .any(|l| matches!(l.mode, gtsc_check::litmus::Mode::Rc)));
    assert!(
        suite.iter().any(|l| l.cfg.ts_bits <= 5),
        "no shape forces Section V-D rollover any more"
    );
}
