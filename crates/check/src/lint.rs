//! Declarative lints over recorded protocol trace streams.
//!
//! The online sanitizer checks transitions as they happen, but it must
//! be enabled *before* the run. Trace lints close the other half: any
//! event stream captured by `gtsc-trace` (full logs, flight-recorder
//! tails, merged multi-component dumps) can be checked after the fact
//! with [`lint_events`] — including traces from runs where nobody
//! anticipated a problem. The `trace_report --lint` flag and the
//! crate's integration tests both go through this pass.
//!
//! Each lint is a named rule with a fixed severity (see [`LINTS`]);
//! state is tracked per [`Scope`] and reset at that scope's rollover
//! events, mirroring the Section V-D timestamp reset.

use std::collections::HashMap;

use gtsc_trace::{EventKind, Scope, TraceEvent};
use gtsc_types::{BlockAddr, Cycle};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but potentially benign (e.g. wasted work).
    Warning,
    /// A protocol invariant was violated.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A lint rule's identity: name, severity, and what it means.
#[derive(Debug, Clone, Copy)]
pub struct LintSpec {
    /// Stable kebab-case rule name.
    pub name: &'static str,
    /// Fixed severity of its findings.
    pub severity: Severity,
    /// One-line description.
    pub description: &'static str,
}

/// The lint catalog.
pub const LINTS: &[LintSpec] = &[
    LintSpec {
        name: "load-past-rts",
        severity: Severity::Error,
        description: "a hit was served to a warp whose timestamp exceeds the line's rts \
                      (Figure 2 hit condition violated)",
    },
    LintSpec {
        name: "wts-gt-rts",
        severity: Severity::Error,
        description: "a lease was granted with wts > rts (inverted interval)",
    },
    LintSpec {
        name: "store-before-lease-expiry",
        severity: Severity::Error,
        description: "a store committed at a wts inside a previously granted read lease \
                      (Figure 5 requires wts > every granted rts)",
    },
    LintSpec {
        name: "rollover-ordering",
        severity: Severity::Error,
        description: "a component's rollover epochs did not strictly increase",
    },
    LintSpec {
        name: "evict-live-lease",
        severity: Severity::Warning,
        description: "an L1 evicted a line whose lease still covered every local warp \
                      (renewal traffic will follow; tune geometry or lease)",
    },
    LintSpec {
        name: "retransmit-without-timeout",
        severity: Severity::Error,
        description: "the transport re-sent a segment that had neither timed out nor been \
                      NACKed (a spurious retransmission masks timer bugs and wastes NoC \
                      bandwidth)",
    },
];

/// Cap on distinct findings a rendered report keeps (see
/// [`LintReport::lines`]); matches the race oracle's cap so stuck-run
/// logs stay bounded everywhere.
pub const MAX_LINT_FINDINGS: usize = 256;

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that fired (a [`LINTS`] name).
    pub lint: &'static str,
    /// The rule's severity.
    pub severity: Severity,
    /// Cycle of the offending event.
    pub cycle: Cycle,
    /// Component that recorded it.
    pub scope: Scope,
    /// Block the finding is about, when the event names one — the
    /// dedup key for rendered reports, and structured context for
    /// diagnosis tooling (which block, which SM/bank, which cycle).
    pub block: Option<BlockAddr>,
    /// Human explanation with the relevant timestamps.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: [{}] {}: {} ({})",
            self.severity, self.cycle, self.scope, self.message, self.lint
        )
    }
}

/// The result of linting one event stream.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Findings in event order.
    pub findings: Vec<Finding>,
    /// Events examined.
    pub scanned: usize,
}

impl LintReport {
    /// Number of error-severity findings.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }

    /// Whether no *errors* were found (warnings allowed).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Renders the findings with duplicates collapsed *before* the
    /// [`MAX_LINT_FINDINGS`] cap: a stuck protocol repeating one
    /// violation per access must not evict distinct findings from the
    /// report. Findings are deduplicated by (rule, scope, block) with a
    /// `(xN)` multiplicity on the first occurrence; distinct findings
    /// past the cap are summarized in a final line.
    #[must_use]
    pub fn lines(&self) -> Vec<String> {
        let mut index: std::collections::BTreeMap<(&str, Scope, Option<BlockAddr>), usize> =
            std::collections::BTreeMap::new();
        let mut kept: Vec<(&Finding, u64)> = Vec::new();
        for f in &self.findings {
            match index.entry((f.lint, f.scope, f.block)) {
                std::collections::btree_map::Entry::Occupied(e) => kept[*e.get()].1 += 1,
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(kept.len());
                    kept.push((f, 1));
                }
            }
        }
        let mut out: Vec<String> = kept
            .iter()
            .take(MAX_LINT_FINDINGS)
            .map(|(f, n)| {
                if *n > 1 {
                    format!("{f} (x{n})")
                } else {
                    f.to_string()
                }
            })
            .collect();
        if kept.len() > MAX_LINT_FINDINGS {
            out.push(format!(
                "... {} further distinct finding(s) suppressed past the {MAX_LINT_FINDINGS}-entry cap",
                kept.len() - MAX_LINT_FINDINGS
            ));
        }
        out
    }
}

#[derive(Debug, Default)]
struct LintState {
    /// Per (scope, block): the largest rts granted (fill or renewal)
    /// since that scope's last rollover.
    granted_rts: HashMap<(Scope, BlockAddr), u64>,
    /// Per scope: last rollover epoch seen.
    last_epoch: HashMap<Scope, u64>,
    /// Per SM scope: the largest warp timestamp observed in a hit since
    /// the last rollover (a lower bound on how far the SM's warps have
    /// advanced).
    max_warp_ts: HashMap<Scope, u64>,
    /// Transport flows (scope, flow src, flow dst) that have been NACKed
    /// at least once — the only flows allowed NACK-driven retransmits.
    nacked_flows: std::collections::HashSet<(Scope, u16, u16)>,
}

/// Runs every lint over `events` (one pass, event order).
///
/// The stream may interleave scopes (e.g. [`gtsc_trace::merge_tails`]
/// output); all state is scope-keyed. Events the rules do not consume
/// are skipped, so partial streams (filtered classes, flight-recorder
/// tails) are fine — lints simply see less.
#[must_use]
pub fn lint_events(events: &[TraceEvent]) -> LintReport {
    let mut st = LintState::default();
    let mut report = LintReport {
        findings: Vec::new(),
        scanned: events.len(),
    };
    let mut emit =
        |lint: &'static str, e: &TraceEvent, block: Option<BlockAddr>, message: String| {
            let spec = LINTS
                .iter()
                .find(|s| s.name == lint)
                .expect("emit uses a catalogued lint name");
            report.findings.push(Finding {
                lint,
                severity: spec.severity,
                cycle: e.cycle,
                scope: e.scope,
                block,
                message,
            });
        };
    for e in events {
        match e.kind {
            EventKind::Hit {
                block,
                warp,
                warp_ts,
                rts,
            } => {
                if warp_ts > rts {
                    emit(
                        "load-past-rts",
                        e,
                        Some(block),
                        format!(
                            "hit on block {block} served to warp {warp} at warp_ts \
                             {warp_ts} past the line's rts {rts}"
                        ),
                    );
                }
                let m = st.max_warp_ts.entry(e.scope).or_insert(warp_ts);
                *m = (*m).max(warp_ts);
            }
            EventKind::LeaseGrant { block, wts, rts } => {
                if wts > rts {
                    emit(
                        "wts-gt-rts",
                        e,
                        Some(block),
                        format!("lease on block {block} granted with wts {wts} > rts {rts}"),
                    );
                }
                let g = st.granted_rts.entry((e.scope, block)).or_insert(rts);
                *g = (*g).max(rts);
            }
            EventKind::Renewal { block, rts } => {
                let g = st.granted_rts.entry((e.scope, block)).or_insert(rts);
                *g = (*g).max(rts);
            }
            EventKind::StoreCommit { block, wts } => {
                if let Some(&granted) = st.granted_rts.get(&(e.scope, block)) {
                    if wts <= granted {
                        emit(
                            "store-before-lease-expiry",
                            e,
                            Some(block),
                            format!(
                                "store on block {block} committed at wts {wts} inside \
                                 the granted read lease (rts high-water {granted})"
                            ),
                        );
                    }
                }
            }
            // L1 scopes only: an L2 eviction folding a live lease
            // into mem_ts is the designed non-inclusion mechanism.
            EventKind::Eviction { block, rts } if matches!(e.scope, Scope::Sm(_)) && rts > 0 => {
                let seen = st.max_warp_ts.get(&e.scope).copied().unwrap_or(0);
                if rts > seen {
                    emit(
                        "evict-live-lease",
                        e,
                        Some(block),
                        format!(
                            "evicted block {block} with rts {rts} still covering \
                             every local warp (max observed warp_ts {seen})"
                        ),
                    );
                }
            }
            EventKind::Nack { src, dst, .. } => {
                st.nacked_flows.insert((e.scope, src, dst));
            }
            EventKind::Retransmit {
                src,
                dst,
                seq,
                age,
                timeout,
                nack,
            } => {
                if nack {
                    // NACK-driven: legitimate only after the receiver
                    // actually asked (a Nack on the same flow, earlier in
                    // the stream).
                    if !st.nacked_flows.contains(&(e.scope, src, dst)) {
                        emit(
                            "retransmit-without-timeout",
                            e,
                            None,
                            format!(
                                "nack-driven retransmit of {src} -> {dst} seq {seq} with \
                                 no preceding NACK on that flow"
                            ),
                        );
                    }
                } else if timeout == 0 || age < timeout {
                    // Timer-driven: the (backed-off) deadline must really
                    // have elapsed.
                    emit(
                        "retransmit-without-timeout",
                        e,
                        None,
                        format!(
                            "retransmit of {src} -> {dst} seq {seq} at age {age}, before \
                             its timeout {timeout} elapsed"
                        ),
                    );
                }
            }
            EventKind::Rollover { epoch } => {
                if let Some(&prev) = st.last_epoch.get(&e.scope) {
                    if epoch <= prev {
                        emit(
                            "rollover-ordering",
                            e,
                            None,
                            format!("rollover to epoch {epoch} after epoch {prev}"),
                        );
                    }
                }
                st.last_epoch.insert(e.scope, epoch);
                // The reset rebases every timestamp in this scope.
                st.granted_rts.retain(|(s, _), _| *s != e.scope);
                st.max_warp_ts.remove(&e.scope);
            }
            _ => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, scope: Scope, kind: EventKind) -> TraceEvent {
        TraceEvent {
            cycle: Cycle(cycle),
            scope,
            kind,
        }
    }
    fn b(n: u64) -> BlockAddr {
        BlockAddr(n)
    }

    #[test]
    fn lines_dedup_before_the_cap() {
        // One repeated finding (same rule/scope/block, MAX+10 times)
        // plus MAX+4 distinct ones: the repeats must collapse to a
        // single counted line *before* the cap, so distinct findings
        // survive and only the true overflow is suppressed.
        let mut events = Vec::new();
        for i in 0..u64::try_from(MAX_LINT_FINDINGS).unwrap() + 10 {
            events.push(ev(
                i,
                Scope::Sm(0),
                EventKind::Hit {
                    block: b(7),
                    warp: 0,
                    warp_ts: 99,
                    rts: 10,
                },
            ));
        }
        for i in 0..u64::try_from(MAX_LINT_FINDINGS).unwrap() + 4 {
            events.push(ev(
                1000 + i,
                Scope::Sm(1),
                EventKind::Hit {
                    block: b(i),
                    warp: 0,
                    warp_ts: 99,
                    rts: 10,
                },
            ));
        }
        let r = lint_events(&events);
        let lines = r.lines();
        assert_eq!(lines.len(), MAX_LINT_FINDINGS + 1, "cap plus summary");
        assert!(
            lines[0].ends_with(&format!("(x{})", MAX_LINT_FINDINGS + 10)),
            "repeats collapse with a multiplicity: {}",
            lines[0]
        );
        assert!(
            lines.last().unwrap().contains("5 further distinct"),
            "overflow summarized: {}",
            lines.last().unwrap()
        );
    }

    #[test]
    fn catalog_names_are_unique() {
        for (i, a) in LINTS.iter().enumerate() {
            for b in &LINTS[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn clean_stream_yields_no_findings() {
        let l2 = Scope::L2Bank(0);
        let events = vec![
            ev(
                1,
                l2,
                EventKind::LeaseGrant {
                    block: b(1),
                    wts: 1,
                    rts: 11,
                },
            ),
            ev(
                2,
                Scope::Sm(0),
                EventKind::Hit {
                    block: b(1),
                    warp: 0,
                    warp_ts: 5,
                    rts: 11,
                },
            ),
            ev(
                3,
                l2,
                EventKind::StoreCommit {
                    block: b(1),
                    wts: 12,
                },
            ),
            ev(4, l2, EventKind::Rollover { epoch: 1 }),
            ev(5, l2, EventKind::Rollover { epoch: 2 }),
        ];
        let r = lint_events(&events);
        assert_eq!(r.scanned, 5);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(r.is_clean());
    }

    #[test]
    fn hit_past_rts_is_an_error() {
        let events = vec![ev(
            3,
            Scope::Sm(1),
            EventKind::Hit {
                block: b(2),
                warp: 1,
                warp_ts: 20,
                rts: 10,
            },
        )];
        let r = lint_events(&events);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.findings[0].lint, "load-past-rts");
        assert!(r.findings[0].to_string().contains("warp_ts 20"));
    }

    #[test]
    fn store_inside_granted_lease_is_an_error() {
        let l2 = Scope::L2Bank(0);
        let events = vec![
            ev(
                1,
                l2,
                EventKind::LeaseGrant {
                    block: b(3),
                    wts: 1,
                    rts: 15,
                },
            ),
            ev(
                2,
                l2,
                EventKind::Renewal {
                    block: b(3),
                    rts: 25,
                },
            ),
            ev(
                3,
                l2,
                EventKind::StoreCommit {
                    block: b(3),
                    wts: 20,
                },
            ),
        ];
        let r = lint_events(&events);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.findings[0].lint, "store-before-lease-expiry");
        // A store safely past the high-water lease is fine.
        let ok = vec![
            ev(
                1,
                l2,
                EventKind::LeaseGrant {
                    block: b(3),
                    wts: 1,
                    rts: 15,
                },
            ),
            ev(
                2,
                l2,
                EventKind::StoreCommit {
                    block: b(3),
                    wts: 16,
                },
            ),
        ];
        assert!(lint_events(&ok).is_clean());
    }

    #[test]
    fn rollover_resets_lease_state_per_scope() {
        let l2 = Scope::L2Bank(0);
        let other = Scope::L2Bank(1);
        let events = vec![
            ev(
                1,
                l2,
                EventKind::LeaseGrant {
                    block: b(1),
                    wts: 1,
                    rts: 30,
                },
            ),
            ev(
                1,
                other,
                EventKind::LeaseGrant {
                    block: b(1),
                    wts: 1,
                    rts: 30,
                },
            ),
            ev(2, l2, EventKind::Rollover { epoch: 1 }),
            // Post-reset timestamps restart small: not a violation here...
            ev(
                3,
                l2,
                EventKind::StoreCommit {
                    block: b(1),
                    wts: 11,
                },
            ),
            // ...but the bank that did not roll over still holds its lease.
            ev(
                4,
                other,
                EventKind::StoreCommit {
                    block: b(1),
                    wts: 11,
                },
            ),
        ];
        let r = lint_events(&events);
        assert_eq!(r.errors(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].scope, other);
    }

    #[test]
    fn rollover_epochs_must_strictly_increase() {
        let l2 = Scope::L2Bank(0);
        let events = vec![
            ev(1, l2, EventKind::Rollover { epoch: 1 }),
            ev(2, l2, EventKind::Rollover { epoch: 1 }),
            ev(3, Scope::L2Bank(1), EventKind::Rollover { epoch: 1 }),
        ];
        let r = lint_events(&events);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.findings[0].lint, "rollover-ordering");
    }

    #[test]
    fn retransmit_lint_demands_a_timeout_or_a_nack() {
        let noc = Scope::Noc(0);
        // Legitimate: a timer-driven retransmit past its deadline, and a
        // NACK-driven one preceded by the receiver's NACK.
        let clean = vec![
            ev(
                300,
                noc,
                EventKind::Retransmit {
                    src: 0,
                    dst: 1,
                    seq: 4,
                    age: 280,
                    timeout: 256,
                    nack: false,
                },
            ),
            ev(
                310,
                noc,
                EventKind::Nack {
                    src: 2,
                    dst: 1,
                    expected: 9,
                },
            ),
            ev(
                311,
                noc,
                EventKind::Retransmit {
                    src: 2,
                    dst: 1,
                    seq: 9,
                    age: 20,
                    timeout: 0,
                    nack: true,
                },
            ),
        ];
        assert!(
            lint_events(&clean).is_clean(),
            "{:?}",
            lint_events(&clean).findings
        );

        // Spurious: fired before the deadline.
        let early = vec![ev(
            100,
            noc,
            EventKind::Retransmit {
                src: 0,
                dst: 1,
                seq: 4,
                age: 100,
                timeout: 256,
                nack: false,
            },
        )];
        let r = lint_events(&early);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.findings[0].lint, "retransmit-without-timeout");
        assert!(
            r.findings[0].message.contains("before"),
            "{:?}",
            r.findings[0]
        );

        // Spurious: claims a NACK that never happened (or on another flow).
        let phantom = vec![
            ev(
                50,
                noc,
                EventKind::Nack {
                    src: 0,
                    dst: 2,
                    expected: 1,
                },
            ),
            ev(
                60,
                noc,
                EventKind::Retransmit {
                    src: 0,
                    dst: 1,
                    seq: 4,
                    age: 10,
                    timeout: 0,
                    nack: true,
                },
            ),
        ];
        let r = lint_events(&phantom);
        assert_eq!(r.errors(), 1);
        assert!(
            r.findings[0].message.contains("no preceding NACK"),
            "{:?}",
            r.findings[0]
        );
    }

    #[test]
    fn wts_above_rts_and_live_eviction_fire() {
        let events = vec![
            ev(
                1,
                Scope::L2Bank(0),
                EventKind::LeaseGrant {
                    block: b(9),
                    wts: 12,
                    rts: 4,
                },
            ),
            ev(
                2,
                Scope::Sm(0),
                EventKind::Hit {
                    block: b(1),
                    warp: 0,
                    warp_ts: 3,
                    rts: 50,
                },
            ),
            ev(
                3,
                Scope::Sm(0),
                EventKind::Eviction {
                    block: b(1),
                    rts: 50,
                },
            ),
            // rts 0 means unknown: never flagged.
            ev(
                4,
                Scope::Sm(0),
                EventKind::Eviction {
                    block: b(2),
                    rts: 0,
                },
            ),
            // L2 evictions are the designed non-inclusion path.
            ev(
                5,
                Scope::L2Bank(0),
                EventKind::Eviction {
                    block: b(1),
                    rts: 50,
                },
            ),
        ];
        let r = lint_events(&events);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert_eq!(r.findings[0].lint, "wts-gt-rts");
        assert_eq!(r.findings[1].lint, "evict-live-lease");
        assert!(!r.is_clean());
    }
}
