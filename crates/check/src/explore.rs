//! Exhaustive schedule exploration by stateless replay.
//!
//! The model checker needs *every* interleaving of a small program, but
//! the simulator's controllers are not snapshottable (and cloning them
//! mid-run would quietly diverge from what the real simulator executes).
//! So the explorer never checkpoints: it re-runs the machine from
//! scratch for each schedule, following a recorded prefix of choices and
//! extending it greedily. Depth-first with an explicit
//! `(choice, fanout)` stack, this enumerates the full schedule tree in
//! O(schedules × run-length) machine steps — fine for litmus-sized
//! configurations where a run is a few dozen serve events.

use std::collections::BTreeSet;

/// A deterministic machine whose only nondeterminism is an explicit
/// scheduler choice at each step.
///
/// The contract: from a fresh machine, any sequence of `choose(i)` with
/// `i < fanout()` is valid; `fanout() == 0` means the run is complete
/// and [`Schedulable::outcome`] may be read. Replaying the same choice
/// sequence on a fresh machine must reproduce the same fanouts and
/// outcome (no hidden randomness, no wall-clock dependence).
pub trait Schedulable {
    /// The observable result of a completed run.
    type Outcome: Ord + Clone;

    /// Number of scheduler choices currently enabled; `0` when done.
    fn fanout(&self) -> usize;

    /// Takes choice `idx` (must be `< fanout()`).
    fn choose(&mut self, idx: usize);

    /// The outcome of a completed run (`fanout() == 0`).
    fn outcome(&self) -> Self::Outcome;
}

/// Result of an exhaustive exploration.
#[derive(Debug, Clone)]
pub struct Explored<O> {
    /// Every distinct outcome over the explored schedules.
    pub outcomes: BTreeSet<O>,
    /// Number of complete schedules executed.
    pub schedules: u64,
    /// Whether exploration stopped at the schedule cap before covering
    /// the whole tree.
    pub truncated: bool,
}

/// Runs every schedule of the machine produced by `mk`, up to
/// `max_schedules` complete runs.
///
/// `mk` must build a fresh, deterministic machine each call; the
/// explorer replays choice prefixes into fresh machines rather than
/// snapshotting.
pub fn explore_all<S, F>(mk: F, max_schedules: u64) -> Explored<S::Outcome>
where
    S: Schedulable,
    F: Fn() -> S,
{
    let mut outcomes = BTreeSet::new();
    let mut schedules = 0u64;
    // The current schedule as (choice taken, fanout seen) pairs.
    let mut path: Vec<(usize, usize)> = Vec::new();
    loop {
        if schedules >= max_schedules {
            return Explored {
                outcomes,
                schedules,
                truncated: true,
            };
        }
        // Replay the prefix, then extend greedily with choice 0.
        let mut m = mk();
        for (depth, &(c, recorded)) in path.iter().enumerate() {
            let f = m.fanout();
            assert_eq!(
                f, recorded,
                "non-deterministic machine: fanout changed on replay at depth {depth}"
            );
            m.choose(c);
        }
        loop {
            let f = m.fanout();
            if f == 0 {
                break;
            }
            path.push((0, f));
            m.choose(0);
        }
        outcomes.insert(m.outcome());
        schedules += 1;
        // Backtrack to the deepest branch point with an untried choice.
        loop {
            match path.pop() {
                None => {
                    return Explored {
                        outcomes,
                        schedules,
                        truncated: false,
                    };
                }
                Some((c, f)) if c + 1 < f => {
                    path.push((c + 1, f));
                    break;
                }
                Some(_) => {}
            }
        }
    }
}

/// Runs one schedule drawn from `choices`: at each step take
/// `choices[i] % fanout`, falling back to choice 0 once `choices` is
/// exhausted. The random-schedule fallback for configurations too large
/// to explore exhaustively (driven from proptest in the crate's tests).
pub fn run_schedule<S: Schedulable>(machine: &mut S, choices: &[usize]) -> S::Outcome {
    let mut i = 0;
    loop {
        let f = machine.fanout();
        if f == 0 {
            return machine.outcome();
        }
        let c = choices.get(i).map_or(0, |c| c % f);
        i += 1;
        machine.choose(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A machine that interleaves two token streams and reports the
    /// merge order: outcomes must be exactly the binomial interleavings.
    struct Merge {
        a: usize,
        b: usize,
        out: Vec<u8>,
    }

    impl Merge {
        fn new() -> Self {
            Merge {
                a: 2,
                b: 2,
                out: Vec::new(),
            }
        }
    }

    impl Schedulable for Merge {
        type Outcome = Vec<u8>;
        fn fanout(&self) -> usize {
            usize::from(self.a > 0) + usize::from(self.b > 0)
        }
        fn choose(&mut self, idx: usize) {
            // Enabled choices in order: stream a (if nonempty), stream b.
            if self.a > 0 && idx == 0 {
                self.a -= 1;
                self.out.push(b'a');
            } else {
                assert!(self.b > 0);
                self.b -= 1;
                self.out.push(b'b');
            }
        }
        fn outcome(&self) -> Vec<u8> {
            self.out.clone()
        }
    }

    #[test]
    fn explores_all_interleavings_of_two_streams() {
        let r = explore_all(Merge::new, 1_000);
        // C(4, 2) = 6 interleavings of aabb.
        assert_eq!(r.schedules, 6);
        assert!(!r.truncated);
        assert_eq!(r.outcomes.len(), 6);
        assert!(r.outcomes.contains(b"abab".as_slice()));
        assert!(r.outcomes.contains(b"bbaa".as_slice()));
    }

    #[test]
    fn schedule_cap_truncates() {
        let r = explore_all(Merge::new, 3);
        assert_eq!(r.schedules, 3);
        assert!(r.truncated);
        assert!(r.outcomes.len() <= 3);
    }

    #[test]
    fn run_schedule_follows_choices_then_defaults() {
        let mut m = Merge::new();
        let out = run_schedule(&mut m, &[1]);
        // First step picks stream b, then defaults to a, a, b.
        assert_eq!(out, b"baab".to_vec());
    }
}
