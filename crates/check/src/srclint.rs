//! Source-level lints over the protocol crates — the **legacy**
//! line-regex engine, kept as the `src_lint --legacy` fallback and as
//! a parity baseline while the token-level engine in `gtsc-lint`
//! (string/comment aware, span-accurate, plus determinism rules) is
//! the default. New rules land in `gtsc-lint`, not here.
//!
//! Four rules, all protecting review invariants that `rustc` cannot:
//!
//! * `raw-ts-arith` — logical-timestamp arithmetic (`.succ()`,
//!   `+ lease`, `max` over `wts`/`rts`/`warp_ts`/`mem_ts`) belongs in
//!   `gtsc_core::rules`, where each rule cites its figure and carries
//!   property tests. Scattered copies are how subtly-divergent
//!   timestamp math creeps in. Scanned: `crates/core/src`, minus
//!   `rules.rs` itself.
//! * `unwrap` / `panic` — the protocol and simulator crates
//!   (`crates/core`, `crates/sim`, `crates/noc`, `crates/fabric`) must
//!   surface errors
//!   through results or documented invariants, not ad-hoc panics, so
//!   the fault-injection harness can exercise error paths.
//! * `noc-inject` — inside `crates/noc/src`, pushing directly onto a
//!   network injection queue bypasses the reliable-transport layer's
//!   sequencing and retransmit bookkeeping; the only legitimate
//!   producer is `Network::send` itself (which carries the allow
//!   comment).
//! * `raw-network` — the simulator (`crates/sim/src`) must talk to the
//!   interconnect through `ReliableNet`, never the raw `Network`; a raw
//!   network silently loses packets under fault injection with no
//!   recovery path.
//!
//! Suppression: a `// lint: allow(<rule>)` comment on the offending
//! line or one of the two lines above it. Test modules (everything
//! after the file's `#[cfg(test)]` marker, which this workspace keeps
//! at the bottom of each file) and comment-only lines are skipped.
//!
//! Deliberately line-based and dependency-free (no syn in the vendored
//! set): crude, but auditable, fast, and good enough for the
//! whitelisted directories it scans. The `src_lint` binary wires it
//! into CI; a unit test keeps the repo itself clean.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One source-lint finding.
#[derive(Debug, Clone)]
pub struct SrcFinding {
    /// File containing the offending line.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (`raw-ts-arith`, `unwrap`, `panic`, `noc-inject`,
    /// `raw-network`).
    pub rule: &'static str,
    /// The offending line, trimmed.
    pub snippet: String,
}

impl std::fmt::Display for SrcFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.snippet
        )
    }
}

/// Directories (relative to the repo root) scanned for raw timestamp
/// arithmetic, and the files inside them that are allowed to have it.
const TS_ARITH_DIRS: &[&str] = &["crates/core/src"];
const TS_ARITH_ALLOWED_FILES: &[&str] = &["rules.rs"];

/// Directories scanned for `unwrap()` / `panic!` in non-test code.
const NO_PANIC_DIRS: &[&str] = &[
    "crates/core/src",
    "crates/sim/src",
    "crates/noc/src",
    "crates/fabric/src",
    "crates/sweep/src",
    "crates/types/src",
];

/// Directories where direct pushes onto NoC injection queues are banned:
/// everything must route through `ReliableNet` so sequencing, dedup, and
/// retransmit state stay coherent. `Network::send` is the one sanctioned
/// producer and carries the allow comment.
const NOC_INJECT_DIRS: &[&str] = &["crates/noc/src"];

/// Directories that must build on `ReliableNet` rather than the raw,
/// lossy `Network` type.
const RAW_NETWORK_DIRS: &[&str] = &["crates/sim/src"];

/// Timestamp-bearing identifiers whose combination with arithmetic
/// marks a line as timestamp math.
const TS_WORDS: &[&str] = &["wts", "rts", "warp_ts", "mem_ts"];

fn mentions_ts(line: &str) -> bool {
    TS_WORDS.iter().any(|w| line.contains(w))
}

fn is_ts_arith(line: &str) -> bool {
    if line.contains(".succ()") || line.contains("+ lease") || line.contains("+ Lease") {
        return true;
    }
    mentions_ts(line) && (line.contains(".max(") || line.contains("+ 1"))
}

/// A direct push onto a network injection queue (`queues[..].push*`),
/// sidestepping the transport layer's sequence numbers.
fn is_noc_inject(line: &str) -> bool {
    line.contains("queues[") && line.contains(".push")
}

/// A use of the raw `Network` type. `ReliableNet` does not contain the
/// substring `Network`, so transport-based code never trips this.
fn is_raw_network(line: &str) -> bool {
    line.contains("Network<") || line.contains("Network::") || line.contains("gtsc_noc::Network")
}

/// Whether `lines[idx]` (or one of the two lines above) carries a
/// `// lint: allow(<rule>)` suppression for `rule`.
fn allowed(lines: &[&str], idx: usize, rule: &str) -> bool {
    let lo = idx.saturating_sub(2);
    lines[lo..=idx].iter().any(|l| {
        l.find("lint: allow(").is_some_and(|start| {
            let rest = &l[start + "lint: allow(".len()..];
            rest.split(')').next() == Some(rule)
        })
    })
}

/// Which rules a scan pass applies. `core/src` sits in several
/// whitelists; each pass applies only its own rules so findings stay
/// attributable to the directory list that requested them.
#[derive(Clone, Copy, Default)]
struct RuleSet {
    ts_arith: bool,
    no_panic: bool,
    noc_inject: bool,
    raw_network: bool,
}

fn lint_file(path: &Path, rules: RuleSet, out: &mut Vec<SrcFinding>) {
    let Ok(text) = fs::read_to_string(path) else {
        return;
    };
    let lines: Vec<&str> = text.lines().collect();
    // This workspace keeps test modules at the bottom of each file; stop
    // scanning at the first test-configuration marker.
    let end = lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(lines.len());
    for (idx, raw) in lines[..end].iter().enumerate() {
        let line = raw.trim();
        if line.starts_with("//") {
            continue;
        }
        let mut push = |rule: &'static str| {
            if !allowed(&lines, idx, rule) {
                out.push(SrcFinding {
                    file: path.to_path_buf(),
                    line: idx + 1,
                    rule,
                    snippet: line.to_string(),
                });
            }
        };
        if rules.ts_arith && is_ts_arith(line) {
            push("raw-ts-arith");
        }
        if rules.no_panic {
            if line.contains(".unwrap()") {
                push("unwrap");
            }
            if line.contains("panic!(") {
                push("panic");
            }
        }
        if rules.noc_inject && is_noc_inject(line) {
            push("noc-inject");
        }
        if rules.raw_network && is_raw_network(line) {
            push("raw-network");
        }
    }
}

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the repository rooted at `root`. Findings are sorted by file
/// then line.
///
/// # Errors
///
/// Propagates directory-walk failures; a scanned directory that does
/// not exist is an error (the whitelist above must track the layout).
pub fn lint_sources(root: &Path) -> io::Result<Vec<SrcFinding>> {
    let mut findings = Vec::new();
    let passes = [
        (
            TS_ARITH_DIRS,
            RuleSet {
                ts_arith: true,
                ..RuleSet::default()
            },
        ),
        (
            NO_PANIC_DIRS,
            RuleSet {
                no_panic: true,
                ..RuleSet::default()
            },
        ),
        (
            NOC_INJECT_DIRS,
            RuleSet {
                noc_inject: true,
                ..RuleSet::default()
            },
        ),
        (
            RAW_NETWORK_DIRS,
            RuleSet {
                raw_network: true,
                ..RuleSet::default()
            },
        ),
    ];
    for (dirs, rules) in passes {
        for dir in dirs {
            let mut files = Vec::new();
            rs_files(&root.join(dir), &mut files)?;
            for f in files {
                if rules.ts_arith
                    && TS_ARITH_ALLOWED_FILES
                        .iter()
                        .any(|a| f.file_name().is_some_and(|n| n == *a))
                {
                    continue;
                }
                lint_file(&f, rules, &mut findings);
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ts_arith_heuristics() {
        assert!(is_ts_arith("let wts = rts.succ().max(warp_ts);"));
        assert!(is_ts_arith("line.meta.rts = wts + lease;"));
        assert!(is_ts_arith("let r = x + Lease(10);"));
        assert!(is_ts_arith("self.mem_ts = self.mem_ts.max(evicted);"));
        assert!(!is_ts_arith("let count = count + 1;"));
        assert!(!is_ts_arith("self.clock = self.clock.max(now);"));
        assert!(!is_ts_arith("let rts = line.meta.rts;"));
    }

    #[test]
    fn noc_inject_and_raw_network_heuristics() {
        assert!(is_noc_inject("self.queues[src].push_back(Packet {"));
        assert!(is_noc_inject("net.queues[0].push(p);"));
        assert!(!is_noc_inject("self.queues[src].pop_front()"));
        assert!(!is_noc_inject("out.push((dst, payload));"));

        assert!(is_raw_network("req_net: Network<(usize, L1ToL2)>,"));
        assert!(is_raw_network("let net = Network::new(4, 8, cfg);"));
        assert!(is_raw_network("use gtsc_noc::Network;"));
        assert!(!is_raw_network("req_net: ReliableNet<(usize, L1ToL2)>,"));
        assert!(!is_raw_network(
            "let net = ReliableNet::new(4, 8, cfg, tp);"
        ));
    }

    #[test]
    fn allow_comment_suppresses_on_line_or_above() {
        let lines = vec![
            "// lint: allow(panic): documented invariant.",
            "panic!(\"boom\");",
            "",
            "panic!(\"boom\");",
            "x.unwrap(); // lint: allow(unwrap): length checked above",
        ];
        assert!(allowed(&lines, 1, "panic"));
        assert!(!allowed(&lines, 3, "panic"));
        assert!(allowed(&lines, 4, "unwrap"));
        assert!(!allowed(&lines, 1, "unwrap"), "rule names must match");
    }

    /// The gate itself: the protocol crates stay clean. Run from the
    /// crate directory, the workspace root is two levels up.
    #[test]
    fn repo_sources_are_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = lint_sources(&root).expect("workspace layout matches whitelists");
        assert!(
            findings.is_empty(),
            "source lints fired:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
