//! Source lints for the protocol crates. The default engine is the
//! token-level linter in [`gtsc_lint`] (span-accurate, string/comment
//! aware, plus the determinism rules `hash-iter` / `std-time` /
//! `unseeded-rng` / `thread-id`); `--legacy` falls back to the original
//! line-regex engine in [`gtsc_check::srclint`] during the migration.
//! Output format and exit codes are identical for both engines: one
//! `file:line: [rule] snippet` line per finding, then a one-line
//! summary; exit 1 when anything fires, 2 when a whitelisted directory
//! cannot be scanned. `--spans` adds the column and rationale to each
//! finding (token engine only).
//!
//! ```text
//! src_lint [--legacy] [--spans] [repo-root]   # default root: current directory
//! ```

use std::path::PathBuf;

use gtsc_check::srclint::lint_sources;
use gtsc_lint::lint_tree;

fn main() {
    let mut legacy = false;
    let mut spans = false;
    let mut root = PathBuf::from(".");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--legacy" => legacy = true,
            "--spans" => spans = true,
            _ => root = PathBuf::from(arg),
        }
    }

    // Both engines print findings in the same `file:line: [rule] snippet`
    // format, so CI's contract is engine-independent.
    let rendered: Result<Vec<String>, std::io::Error> = if legacy {
        lint_sources(&root).map(|fs| fs.iter().map(ToString::to_string).collect())
    } else {
        lint_tree(&root).map(|ds| {
            ds.iter()
                .map(|d| if spans { d.spanned() } else { d.to_string() })
                .collect()
        })
    };

    match rendered {
        Ok(findings) if findings.is_empty() => {
            println!("src_lint: clean");
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("src_lint: {} finding(s)", findings.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("src_lint: cannot scan {}: {e}", root.display());
            std::process::exit(2);
        }
    }
}
