//! Source lints for the protocol crates (see
//! [`gtsc_check::srclint`]): raw timestamp arithmetic outside
//! `gtsc_core::rules`, and `unwrap()`/`panic!` in the core, simulator,
//! and NoC crates. Exits nonzero when anything fires.
//!
//! ```text
//! src_lint [repo-root]      # default: current directory
//! ```

use std::path::PathBuf;

use gtsc_check::srclint::lint_sources;

fn main() {
    let root = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    match lint_sources(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("src_lint: clean");
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("src_lint: {} finding(s)", findings.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("src_lint: cannot scan {}: {e}", root.display());
            std::process::exit(2);
        }
    }
}
