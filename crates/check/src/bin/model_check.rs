//! Exhaustive litmus model checking of the G-TSC controllers.
//!
//! Runs every schedule of every suite shape (including IRIW) through
//! the real `GtscL1`/`GtscL2` controllers and the operational reference
//! model, then every cross-GPU shape (threads pinned to devices under a
//! shared home node, including IRIW-across-devices and a device-crash
//! variant) through the hierarchical fabric harness. Prints per-shape
//! schedule counts and outcome sets. Exits nonzero if any shape fails
//! soundness (`impl ⊆ spec`), shows a forbidden outcome, misses a
//! required outcome, trips the transition sanitizer, or is flagged by
//! the happens-before race oracle on any schedule. `--races` prints the
//! oracle's verdict per shape even when clean.
//!
//! ```text
//! model_check [--verbose] [--races] [--max-schedules N]
//! ```

use gtsc_check::litmus::{all_litmus, all_litmus_multi, run_litmus, run_litmus_multi, LitmusRun};

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// Prints one run's report; returns whether it failed.
fn report(r: &LitmusRun, verbose: bool, races: bool) -> bool {
    println!("{}", r.summary());
    if verbose || !r.ok() {
        for o in &r.impl_outcomes {
            let tag = if r.spec_outcomes.contains(o) {
                "ok  "
            } else {
                "UNEXPLAINED"
            };
            println!("    {tag} {o:?}");
        }
    }
    if races {
        if r.race_findings.is_empty() {
            println!("    race oracle: clean on every schedule");
        } else {
            println!(
                "    race oracle: {} distinct finding(s)",
                r.race_findings.len()
            );
        }
    }
    if r.ok() {
        return false;
    }
    if r.truncated {
        println!(
            "    FAIL: exploration truncated at {} schedules",
            r.schedules
        );
    }
    for o in &r.unexplained {
        println!("    FAIL: outcome not producible by the reference model: {o:?}");
    }
    for (name, o) in &r.forbidden_hits {
        println!("    FAIL: forbidden outcome `{name}` observed: {o:?}");
    }
    for name in &r.missing_required {
        println!("    FAIL: required outcome `{name}` never observed");
    }
    for v in &r.sanitizer_violations {
        println!("    FAIL: {v}");
    }
    for f in &r.race_findings {
        println!("    FAIL: race oracle: {f}");
    }
    true
}

fn main() {
    let verbose = std::env::args().any(|a| a == "--verbose");
    let races = std::env::args().any(|a| a == "--races");
    let max_schedules = arg_value("--max-schedules").map_or(1_000_000, |v| {
        v.parse().expect("--max-schedules takes a number")
    });

    let mut failed = 0usize;
    println!("G-TSC litmus model check (every schedule, real controllers vs reference model)");
    println!();
    for litmus in all_litmus() {
        let r = run_litmus(&litmus, max_schedules);
        failed += usize::from(report(&r, verbose, races));
    }
    println!();
    println!("cross-GPU shapes (devices under a shared home node, flat reference model):");
    for litmus in all_litmus_multi() {
        let r = run_litmus_multi(&litmus, max_schedules);
        failed += usize::from(report(&r, verbose, races));
    }
    println!();
    if failed > 0 {
        println!("model check FAILED for {failed} litmus shape(s)");
        std::process::exit(1);
    }
    println!("model check passed");
}
