//! A model-checking harness around the real `GtscL1`/`GtscL2`
//! controllers.
//!
//! [`MicroGtsc`] runs one tiny program per thread (one single-warp SM
//! and private L1 each) against a single shared L2 bank, exposing
//! scheduler nondeterminism through [`crate::Schedulable`] so
//! [`crate::explore_all`] can enumerate every interleaving.
//!
//! The key soundness reduction: with one outstanding access per thread,
//! the *content* of a thread's next request depends only on that
//! thread's own architectural state — so the only scheduling decision
//! that can change an outcome is the order in which the L2 bank
//! **serves** the outstanding requests. The harness therefore issues
//! eagerly (each thread always has its next access queued) and makes
//! "serve thread `t`'s pending request to completion" the one scheduler
//! choice, pumping the L2 (with zero-latency DRAM and the simulator's
//! rollover protocol) until the response lands back in the requesting
//! L1. This collapses the schedule space from every per-cycle
//! interleaving to the per-bank serialization order — exactly the
//! nondeterminism the protocol's timestamp rules must tolerate.
//!
//! Every run executes with an enabled [`Sanitizer`] shared across all
//! components; its violations are part of the run's outcome, so a
//! transition-invariant breach on *any* schedule fails the litmus test.
//! Independently, every message handed over and every retired access is
//! fed to a [`RaceOracle`], whose findings are also part of the outcome
//! — the oracle derives ordering from message causality alone, so it
//! cross-examines the timestamps rather than trusting them.

use std::collections::BTreeMap;

use gtsc_core::{GtscL1, GtscL2, L1Params, L2Params, ProtocolMutation};
use gtsc_protocol::msg::{Epoch, L2ToL1, LeaseInfo};
use gtsc_protocol::{
    AccessId, AccessKind, Completion, L1Controller, L1Outcome, L2Controller, MemAccess,
};
use gtsc_trace::{Sanitizer, Scope};
use gtsc_types::{BlockAddr, Cycle, Lease, Version, WarpId};

use crate::explore::Schedulable;
use crate::litmus::Op;
use crate::races::{RaceEventKind, RaceOracle, RaceReport, RespMeta};

/// Iteration guard for one L2 serve pump; generously above the bank
/// latency plus a rollover round.
const PUMP_CAP: u32 = 10_000;

/// Configuration of a [`MicroGtsc`] run.
#[derive(Debug, Clone, Copy)]
pub struct HarnessCfg {
    /// Lease length granted by the L2.
    pub lease: u64,
    /// Hardware timestamp width; small values force rollover resets
    /// mid-litmus (Section V-D).
    pub ts_bits: u32,
    /// Crash the L2 bank once, just before this many requests have been
    /// served: tags, MSHRs, and queues are wiped (data survives via
    /// DRAM) and recovery runs the global epoch bump. `None` never
    /// crashes.
    pub crash_after_serves: Option<u32>,
    /// Deliver every served request to the L2 twice — an end-to-end
    /// retry racing its original. The protocol must stay idempotent
    /// under duplicated reads, stores, and their doubled responses.
    pub duplicate_serves: bool,
    /// Seeded protocol mutant to run the controllers with (test-only;
    /// used to validate that the race oracle actually detects bugs).
    pub mutation: ProtocolMutation,
}

impl Default for HarnessCfg {
    fn default() -> Self {
        HarnessCfg {
            lease: Lease::default().0,
            ts_bits: 16,
            crash_after_serves: None,
            duplicate_serves: false,
            mutation: ProtocolMutation::None,
        }
    }
}

/// The micro-simulator: one single-warp `GtscL1` per thread, one
/// `GtscL2` bank, instant DRAM, and an explicit serve order.
#[derive(Debug)]
pub struct MicroGtsc {
    l1s: Vec<GtscL1>,
    l2: GtscL2,
    now: Cycle,
    epoch: Epoch,
    programs: Vec<Vec<Op>>,
    pc: Vec<usize>,
    /// Whether thread `t` has an access in flight (issued, ack not yet
    /// delivered).
    outstanding: Vec<bool>,
    /// Load id → observed store label.
    observed: BTreeMap<u32, u32>,
    /// Per thread: labels of its stores in issue order, aligned with the
    /// L1's per-warp version counter (see [`MicroGtsc::decode_label`]).
    store_labels: Vec<Vec<u32>>,
    sanitizer: Sanitizer,
    /// Serves performed so far (the crash trigger counts these).
    serves: u32,
    /// Remaining crash trigger, from [`HarnessCfg::crash_after_serves`].
    crash_after: Option<u32>,
    /// Whether every serve is delivered twice
    /// ([`HarnessCfg::duplicate_serves`]).
    duplicate: bool,
    /// Independent ordering checker fed from the message stream.
    oracle: RaceOracle,
    /// Unique id source for oracle send/receive causality edges.
    next_msg: u64,
}

impl MicroGtsc {
    /// Builds the machine and eagerly issues each thread's first access.
    #[must_use]
    pub fn new(programs: &[Vec<Op>], cfg: HarnessCfg) -> Self {
        let n = programs.len();
        assert!(n > 0, "need at least one thread");
        let sanitizer = Sanitizer::enabled(Scope::Sm(0));
        let l1s: Vec<GtscL1> = (0..n)
            .map(|t| {
                let mut l1 = GtscL1::new(L1Params {
                    n_warps: 1,
                    sm_index: t,
                    ..L1Params::default()
                });
                l1.set_sanitizer(sanitizer.for_scope(Scope::Sm(t as u16)));
                l1.set_mutation(cfg.mutation);
                l1
            })
            .collect();
        let mut l2 = GtscL2::new(L2Params {
            lease: Lease(cfg.lease),
            ts_bits: cfg.ts_bits,
            n_sms: n,
            ..L2Params::default()
        });
        l2.set_sanitizer(sanitizer.for_scope(Scope::L2Bank(0)));
        l2.set_mutation(cfg.mutation);
        let mut m = MicroGtsc {
            l1s,
            l2,
            now: Cycle(0),
            epoch: 0,
            programs: programs.to_vec(),
            pc: vec![0; n],
            outstanding: vec![false; n],
            observed: BTreeMap::new(),
            store_labels: vec![Vec::new(); n],
            sanitizer,
            serves: 0,
            crash_after: cfg.crash_after_serves,
            duplicate: cfg.duplicate_serves,
            oracle: RaceOracle::new(),
            next_msg: 0,
        };
        m.auto_issue();
        m
    }

    /// Threads whose pending request is waiting to be served, in thread
    /// order (the scheduler's enabled choices).
    #[must_use]
    pub fn enabled(&self) -> Vec<usize> {
        (0..self.l1s.len())
            .filter(|&t| self.outstanding[t])
            .collect()
    }

    /// Sanitizer violations recorded so far across all components.
    #[must_use]
    pub fn sanitizer_violations(&self) -> Vec<String> {
        self.sanitizer.violations()
    }

    /// The race oracle's verdict over everything observed so far.
    #[must_use]
    pub fn race_report(&self) -> RaceReport {
        self.oracle.report()
    }

    /// Load observations recorded so far (load id → label).
    #[must_use]
    pub fn observations(&self) -> &BTreeMap<u32, u32> {
        &self.observed
    }

    /// Issues ops for every thread until it either has an access in
    /// flight or its program is exhausted. L1 hits (and fences, which
    /// are trivially ready with one outstanding access per thread)
    /// complete inline without touching shared state, so they are not
    /// scheduler choices.
    fn auto_issue(&mut self) {
        for t in 0..self.l1s.len() {
            while !self.outstanding[t] && self.pc[t] < self.programs[t].len() {
                let op = self.programs[t][self.pc[t]];
                self.pc[t] += 1;
                let (kind, block, id) = match op {
                    Op::Fence => continue,
                    Op::Load { id, block } => (AccessKind::Load, block, u64::from(id)),
                    Op::Store { block, label } => {
                        self.store_labels[t].push(label);
                        // Stores have no load id; give them a token out
                        // of the label space (never recorded).
                        (
                            AccessKind::Store,
                            block,
                            u64::from(u32::MAX) + u64::from(label),
                        )
                    }
                };
                self.now.0 += 1;
                let acc = MemAccess {
                    id: AccessId(id),
                    warp: WarpId(0),
                    kind,
                    block: BlockAddr(block),
                    span: gtsc_types::SpanId::NONE,
                };
                match self.l1s[t].access(acc, self.now) {
                    L1Outcome::Hit(c) => self.record(t, &c),
                    L1Outcome::Queued => self.outstanding[t] = true,
                    L1Outcome::Reject => {
                        unreachable!("litmus configs never fill the MSHR")
                    }
                }
            }
        }
    }

    /// Serves thread `t`'s pending request at the L2: hands the request
    /// over, then pumps the bank — advancing time, completing DRAM
    /// fetches instantly, and applying the simulator's rollover protocol
    /// — until a response is delivered back to an L1. One serve is one
    /// L2 round trip; a stale-epoch retry leaves the thread outstanding
    /// with a fresh request, to be served by a later choice.
    fn serve(&mut self, t: usize) {
        assert!(self.outstanding[t], "serve of an idle thread");
        self.serves += 1;
        if self.crash_after == Some(self.serves) {
            // The bank dies between serves: tags, MSHRs, and queues are
            // wiped (data survives via DRAM) and the simulator's global
            // rollover protocol rebuilds coherence behind an epoch bump.
            // The L1s keep their (now orphaned) leases — logical time
            // only moves forward, so they stay safe until renewal.
            self.crash_after = None;
            self.now.0 += 1;
            self.l2.crash(self.now);
            self.oracle
                .observe(self.now, Scope::L2Bank(0), RaceEventKind::Crash);
            if self.l2.needs_reset() {
                self.epoch += 1;
                self.l2.apply_reset(self.epoch);
            }
        }
        let req = self.l1s[t]
            .take_request()
            .expect("outstanding thread has a queued request");
        self.now.0 += 1;
        let sm = Scope::Sm(t as u16);
        let msg = self.next_msg;
        self.next_msg += 1;
        self.oracle.observe(
            self.now,
            sm,
            RaceEventKind::Send {
                dst: Scope::L2Bank(0),
                msg,
            },
        );
        self.oracle.observe(
            self.now,
            Scope::L2Bank(0),
            RaceEventKind::Recv { src: sm, msg },
        );
        self.l2.on_request(t, req, self.now);
        if self.duplicate {
            // An end-to-end retry racing its original: the bank sees the
            // byte-identical request twice and must stay idempotent.
            self.oracle.observe(
                self.now,
                Scope::L2Bank(0),
                RaceEventKind::Recv { src: sm, msg },
            );
            self.l2.on_request(t, req, self.now);
        }
        let mut pumped = 0u32;
        loop {
            pumped += 1;
            assert!(pumped < PUMP_CAP, "L2 pump diverged serving thread {t}");
            self.now.0 += 1;
            self.l2.tick(self.now);
            while let Some((block, is_write)) = self.l2.take_dram_request() {
                self.l2.on_dram_response(block, is_write, self.now);
            }
            // The simulator's rollover protocol: any bank requesting a
            // reset moves every bank (here: the only bank) to the next
            // epoch. L1s learn of the epoch from response metadata.
            if self.l2.needs_reset() {
                self.epoch += 1;
                self.l2.apply_reset(self.epoch);
            }
            let mut delivered = false;
            while let Some((dst, msg)) = self.l2.take_response() {
                delivered = true;
                self.observe_response(dst, msg);
                let done = self.l1s[dst].on_response(msg, self.now);
                for c in done {
                    self.record(dst, &c);
                }
            }
            if delivered {
                break;
            }
        }
        if self.duplicate {
            // Drain the duplicate's response too: the doubled fill or
            // ack must be a no-op at the L1 (the first one already
            // completed the access).
            let mut pumped = 0u32;
            while !self.l2.is_idle() {
                pumped += 1;
                assert!(pumped < PUMP_CAP, "duplicate drain diverged for thread {t}");
                self.now.0 += 1;
                self.l2.tick(self.now);
                while let Some((block, is_write)) = self.l2.take_dram_request() {
                    self.l2.on_dram_response(block, is_write, self.now);
                }
                if self.l2.needs_reset() {
                    self.epoch += 1;
                    self.l2.apply_reset(self.epoch);
                }
                while let Some((dst, msg)) = self.l2.take_response() {
                    self.observe_response(dst, msg);
                    let done = self.l1s[dst].on_response(msg, self.now);
                    for c in done {
                        self.record(dst, &c);
                    }
                }
            }
        }
        self.auto_issue();
    }

    /// Feeds one L2→L1 response to the oracle: a grant at the bank, a
    /// send/receive causality edge, and an install at the consuming SM.
    /// The oracle applies the L1's epoch-gating itself, so stale-epoch
    /// responses dropped by the L1 are dropped here too.
    fn observe_response(&mut self, dst: usize, resp: L2ToL1) {
        let Some(meta) = resp_meta(resp) else { return };
        let bank = Scope::L2Bank(0);
        let sm = Scope::Sm(u16::try_from(dst).expect("SM index fits"));
        let msg = self.next_msg;
        self.next_msg += 1;
        self.oracle
            .observe(self.now, bank, RaceEventKind::Grant(meta));
        self.oracle
            .observe(self.now, bank, RaceEventKind::Send { dst: sm, msg });
        self.oracle
            .observe(self.now, sm, RaceEventKind::Recv { src: bank, msg });
        self.oracle
            .observe(self.now, sm, RaceEventKind::Install(meta));
    }

    /// Records a completion: loads store their decoded label; any
    /// completion clears the thread's in-flight marker. The retired
    /// operation (with its logical serialization point) is fed to the
    /// race oracle.
    fn record(&mut self, t: usize, c: &Completion) {
        if let Some(ts) = c.ts {
            let kind = if c.kind == AccessKind::Load {
                RaceEventKind::Read {
                    block: c.block,
                    version: c.version.0,
                    ts: ts.0,
                    epoch: c.epoch,
                }
            } else {
                RaceEventKind::StoreDone {
                    block: c.block,
                    version: c.version.0,
                    wts: ts.0,
                    epoch: c.epoch,
                }
            };
            let sm = Scope::Sm(u16::try_from(t).expect("SM index fits"));
            self.oracle.observe(self.now, sm, kind);
        }
        if c.kind == AccessKind::Load {
            let label = self.decode_label(c.version);
            let id = u32::try_from(c.id.0).expect("load ids fit in u32");
            self.observed.insert(id, label);
        }
        self.outstanding[t] = false;
    }

    /// Maps an observed [`Version`] back to the litmus store label that
    /// minted it. `GtscL1::mint_version` encodes
    /// `((sm + 1) << 40) | (warp << 28) | per-warp store index`, and the
    /// harness issues thread `t`'s stores through SM `t` warp 0 in
    /// program order, so the index selects from `store_labels[t]`.
    fn decode_label(&self, v: Version) -> u32 {
        if v == Version::ZERO {
            return 0;
        }
        let sm = usize::try_from((v.0 >> 40) - 1).expect("version encodes a valid SM");
        let nth = usize::try_from(v.0 & ((1 << 28) - 1)).expect("store index fits");
        assert!(
            sm < self.store_labels.len() && nth >= 1 && nth <= self.store_labels[sm].len(),
            "observed version {v:?} does not decode to an issued store"
        );
        self.store_labels[sm][nth - 1]
    }
}

/// Extracts the race-oracle view of an L2→L1 (or home→device) response:
/// the logical lease interval it carries, or `None` for responses with
/// no timestamp content (physical-lease baselines, invalidations).
pub(crate) fn resp_meta(resp: L2ToL1) -> Option<RespMeta> {
    fn logical(lease: LeaseInfo) -> Option<(u64, u64)> {
        match lease {
            LeaseInfo::Logical { wts, rts } => Some((wts.0, rts.0)),
            LeaseInfo::Physical { .. } | LeaseInfo::None => None,
        }
    }
    match resp {
        L2ToL1::Fill(f) => logical(f.lease).map(|(wts, rts)| RespMeta::Fill {
            block: f.block,
            version: f.version.0,
            wts,
            rts,
            epoch: f.epoch,
        }),
        L2ToL1::Renew {
            block,
            lease,
            epoch,
            ..
        } => logical(lease).map(|(wts, rts)| RespMeta::Renew {
            block,
            wts,
            rts,
            epoch,
        }),
        L2ToL1::WriteAck(a) | L2ToL1::AtomicAck { ack: a, .. } => {
            logical(a.lease).map(|(wts, rts)| RespMeta::WriteAck {
                block: a.block,
                version: a.version.0,
                wts,
                rts,
                epoch: a.epoch,
            })
        }
        L2ToL1::Invalidate { .. } => None,
    }
}

impl Schedulable for MicroGtsc {
    /// Load observations, sanitizer violations, and race-oracle
    /// findings — the two checkers' verdicts are part of the outcome so
    /// a breach on any schedule surfaces in the explored set.
    type Outcome = (BTreeMap<u32, u32>, Vec<String>, Vec<String>);

    fn fanout(&self) -> usize {
        self.enabled().len()
    }

    fn choose(&mut self, idx: usize) {
        let t = self.enabled()[idx];
        self.serve(t);
    }

    fn outcome(&self) -> Self::Outcome {
        // A finished run must have retired every op.
        for (t, p) in self.programs.iter().enumerate() {
            assert!(
                self.pc[t] == p.len() && !self.outstanding[t],
                "run ended with thread {t} blocked at pc {}",
                self.pc[t]
            );
        }
        (
            self.observed.clone(),
            self.sanitizer.violations(),
            self.oracle.report().lines(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore_all;
    use crate::litmus::Op;

    fn ld(id: u32, block: u64) -> Op {
        Op::Load { id, block }
    }
    fn st(block: u64, label: u32) -> Op {
        Op::Store { block, label }
    }

    #[test]
    fn single_thread_runs_to_completion_and_reads_back() {
        let progs = vec![vec![st(0, 3), ld(1, 0), ld(2, 0)]];
        let mut m = MicroGtsc::new(&progs, HarnessCfg::default());
        while m.fanout() > 0 {
            m.choose(0);
        }
        let (obs, violations, races) = m.outcome();
        assert_eq!(obs.get(&1), Some(&3));
        assert_eq!(obs.get(&2), Some(&3));
        assert!(violations.is_empty(), "{violations:?}");
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn two_threads_expose_serve_order_nondeterminism() {
        // T0 stores, T1 loads: depending on serve order the load sees
        // 0 or 9 — exactly two outcomes, all sanitizer-clean.
        let progs = vec![vec![st(0, 9)], vec![ld(1, 0)]];
        let r = explore_all(|| MicroGtsc::new(&progs, HarnessCfg::default()), 1_000);
        assert!(!r.truncated);
        assert_eq!(r.schedules, 2, "one store serve × one load serve");
        let labels: Vec<u32> = r.outcomes.iter().map(|(o, _, _)| o[&1]).collect();
        assert_eq!(labels, vec![0, 9]);
        assert!(r.outcomes.iter().all(|(_, v, _)| v.is_empty()));
        assert!(r.outcomes.iter().all(|(_, _, races)| races.is_empty()));
    }

    #[test]
    fn tiny_ts_bits_force_rollover_and_stay_clean() {
        // lease 10 pushes rts past 2^4 = 16 on the first store, forcing
        // the Section V-D reset mid-run on every schedule.
        let progs = vec![vec![st(0, 1), st(1, 2)], vec![ld(10, 1), ld(11, 0)]];
        let cfg = HarnessCfg {
            lease: 10,
            ts_bits: 4,
            ..HarnessCfg::default()
        };
        let r = explore_all(|| MicroGtsc::new(&progs, cfg), 100_000);
        assert!(!r.truncated);
        for (o, violations, races) in &r.outcomes {
            assert!(violations.is_empty(), "{violations:?}");
            assert!(races.is_empty(), "{races:?}");
            assert!(
                !(o[&10] == 2 && o[&11] == 0),
                "rollover leaked the forbidden MP outcome: {o:?}"
            );
        }
    }

    #[test]
    fn bank_crash_mid_run_recovers_and_stays_clean() {
        // T0 stores then re-reads its own block; T1 reads it cold. The
        // crash lands before the second serve on every schedule; the
        // rebuilt bank must still serve T0's committed store.
        let progs = vec![vec![st(0, 3), ld(1, 0)], vec![ld(2, 0)]];
        let cfg = HarnessCfg {
            crash_after_serves: Some(2),
            ..HarnessCfg::default()
        };
        let r = explore_all(|| MicroGtsc::new(&progs, cfg), 10_000);
        assert!(!r.truncated);
        assert!(r.schedules >= 2);
        for (o, violations, races) in &r.outcomes {
            assert!(violations.is_empty(), "{violations:?}");
            assert!(races.is_empty(), "{races:?}");
            assert_eq!(o[&1], 3, "own store must survive the crash: {o:?}");
            assert!(o[&2] == 0 || o[&2] == 3, "{o:?}");
        }
    }

    #[test]
    fn duplicate_serves_are_idempotent() {
        // Every request (reads, stores) reaches the L2 twice, so every
        // response comes back doubled: the replay filter and the L1s'
        // waiter bookkeeping must absorb the copies.
        let progs = vec![vec![st(0, 3), ld(1, 0)], vec![ld(2, 0), st(0, 4)]];
        let cfg = HarnessCfg {
            duplicate_serves: true,
            ..HarnessCfg::default()
        };
        let r = explore_all(|| MicroGtsc::new(&progs, cfg), 10_000);
        assert!(!r.truncated);
        for (o, violations, races) in &r.outcomes {
            assert!(violations.is_empty(), "{violations:?}");
            assert!(races.is_empty(), "{races:?}");
            // T0 reads its own store back — or T1's later one — but can
            // never slide back to the initial value.
            assert!(o[&1] == 3 || o[&1] == 4, "{o:?}");
        }
    }
}
