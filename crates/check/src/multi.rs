//! A model-checking harness for the hierarchical multi-GPU protocol.
//!
//! [`MicroMultiGtsc`] extends the single-bank [`crate::MicroGtsc`]
//! reduction to the fabric topology: every thread (one single-warp SM
//! with a private `GtscL1`) is pinned to a **device**, each device owns
//! one [`gtsc_fabric::DeviceL2`], and all devices share one
//! [`gtsc_fabric::HomeNode`] directory. A serve pumps the full chain —
//! L1 → device → home → device → L1 — to completion with unit
//! latencies, so the one scheduler choice is still the order in which
//! outstanding requests are serialized, now by the *home* for
//! cross-device traffic and by the local device for covered reads.
//!
//! The soundness reduction carries over unchanged: with one outstanding
//! access per thread, the content of a thread's next request depends
//! only on its own architectural state, so enumerating serve orders
//! covers every outcome the timestamp rules admit. What is new is the
//! hierarchy: the device is simultaneously a lease *consumer* (it
//! installs inter-GPU grants from the home) and a lease *producer* (it
//! hands nested leases to L1s). The shared [`Sanitizer`] checks the
//! nesting online (`DeviceServe`), and the [`RaceOracle`] checks it
//! independently from the message stream (`lease-outside-grant`),
//! observing the device as both an installing SM-like actor and a
//! granting bank-like actor.
//!
//! Device crashes are first-class: [`MultiHarnessCfg`] can wipe one
//! device just before the Nth serve. The home is authoritative (stores
//! are written through end-to-end), so recovery is a global epoch bump
//! after which the device reacquires grants from scratch — the oracle's
//! `missing-epoch-bump` and cleared-grant rules police exactly that.

use std::collections::BTreeMap;

use gtsc_core::{GtscL1, L1Params, ProtocolMutation};
use gtsc_fabric::{DeviceL2, DeviceParams, HomeNode, HomeParams};
use gtsc_protocol::msg::{Epoch, L2ToL1};
use gtsc_protocol::{AccessId, AccessKind, Completion, L1Controller, L1Outcome, MemAccess};
use gtsc_trace::{Sanitizer, Scope};
use gtsc_types::{BlockAddr, Cycle, Lease, Version, WarpId};

use crate::explore::Schedulable;
use crate::harness::resp_meta;
use crate::litmus::Op;
use crate::races::{RaceEventKind, RaceOracle, RaceReport};

/// Iteration guard for one serve pump; generously above the device and
/// home latencies plus a grant-refetch round.
const PUMP_CAP: u32 = 10_000;

/// Configuration of a [`MicroMultiGtsc`] run.
#[derive(Debug, Clone, Copy)]
pub struct MultiHarnessCfg {
    /// Lease length the device hands to local L1s (nested inside the
    /// inter-GPU grant).
    pub lease: u64,
    /// Lease length of the inter-GPU grants the home hands to devices.
    pub grant_lease: u64,
    /// Hardware timestamp width at the home; small values force global
    /// rollover resets mid-litmus (Section V-D).
    pub ts_bits: u32,
    /// Crash device `.1` once, just before `.0` serves have been
    /// performed: its tags, grants, and queues are wiped (committed
    /// data survives at the home) and recovery runs the global epoch
    /// bump. `None` never crashes.
    pub crash_device_after_serves: Option<(u32, u16)>,
    /// Seeded protocol mutant to run the controllers with (test-only;
    /// used to validate that the checkers actually detect bugs).
    pub mutation: ProtocolMutation,
}

impl Default for MultiHarnessCfg {
    fn default() -> Self {
        MultiHarnessCfg {
            lease: Lease::default().0,
            grant_lease: 64,
            ts_bits: 16,
            crash_device_after_serves: None,
            mutation: ProtocolMutation::None,
        }
    }
}

/// The multi-GPU micro-simulator: one single-warp `GtscL1` per thread,
/// one `DeviceL2` per device, one shared `HomeNode`, and an explicit
/// serve order.
#[derive(Debug)]
pub struct MicroMultiGtsc {
    l1s: Vec<GtscL1>,
    /// Thread → owning device.
    device_of: Vec<u16>,
    devices: Vec<DeviceL2>,
    home: HomeNode,
    now: Cycle,
    epoch: Epoch,
    programs: Vec<Vec<Op>>,
    pc: Vec<usize>,
    /// Whether thread `t` has an access in flight.
    outstanding: Vec<bool>,
    /// Load id → observed store label.
    observed: BTreeMap<u32, u32>,
    /// Per thread: labels of its stores in issue order (see
    /// [`MicroMultiGtsc::decode_label`]).
    store_labels: Vec<Vec<u32>>,
    sanitizer: Sanitizer,
    serves: u32,
    crash_after: Option<(u32, u16)>,
    oracle: RaceOracle,
    next_msg: u64,
}

impl MicroMultiGtsc {
    /// Builds the machine from `(device, program)` pairs and eagerly
    /// issues each thread's first access.
    #[must_use]
    pub fn new(threads: &[(u16, Vec<Op>)], cfg: MultiHarnessCfg) -> Self {
        let n = threads.len();
        assert!(n > 0, "need at least one thread");
        let n_devices = usize::from(threads.iter().map(|(d, _)| *d).max().unwrap_or(0)) + 1;
        let sanitizer = Sanitizer::enabled(Scope::Sm(0));
        let l1s: Vec<GtscL1> = (0..n)
            .map(|t| {
                let mut l1 = GtscL1::new(L1Params {
                    n_warps: 1,
                    sm_index: t,
                    ..L1Params::default()
                });
                l1.set_sanitizer(sanitizer.for_scope(Scope::Sm(t as u16)));
                l1.set_mutation(cfg.mutation);
                l1
            })
            .collect();
        let devices: Vec<DeviceL2> = (0..n_devices)
            .map(|d| {
                let mut dev = DeviceL2::new(DeviceParams {
                    lease: Lease(cfg.lease),
                    latency: 1,
                    ports: 4,
                });
                dev.set_sanitizer(sanitizer.for_scope(Scope::Device(d as u16)));
                dev.set_mutation(cfg.mutation);
                dev
            })
            .collect();
        let mut home = HomeNode::new(HomeParams {
            lease: Lease(cfg.grant_lease),
            ts_bits: cfg.ts_bits,
            latency: 1,
        });
        home.set_sanitizer(sanitizer.for_scope(Scope::Home(0)));
        let mut m = MicroMultiGtsc {
            l1s,
            device_of: threads.iter().map(|(d, _)| *d).collect(),
            devices,
            home,
            now: Cycle(0),
            epoch: 0,
            programs: threads.iter().map(|(_, p)| p.clone()).collect(),
            pc: vec![0; n],
            outstanding: vec![false; n],
            observed: BTreeMap::new(),
            store_labels: vec![Vec::new(); n],
            sanitizer,
            serves: 0,
            crash_after: cfg.crash_device_after_serves,
            oracle: RaceOracle::new(),
            next_msg: 0,
        };
        m.auto_issue();
        m
    }

    /// Threads whose pending request is waiting to be served, in thread
    /// order (the scheduler's enabled choices).
    #[must_use]
    pub fn enabled(&self) -> Vec<usize> {
        (0..self.l1s.len())
            .filter(|&t| self.outstanding[t])
            .collect()
    }

    /// Sanitizer violations recorded so far across all components.
    #[must_use]
    pub fn sanitizer_violations(&self) -> Vec<String> {
        self.sanitizer.violations()
    }

    /// The race oracle's verdict over everything observed so far.
    #[must_use]
    pub fn race_report(&self) -> RaceReport {
        self.oracle.report()
    }

    /// Load observations recorded so far (load id → label).
    #[must_use]
    pub fn observations(&self) -> &BTreeMap<u32, u32> {
        &self.observed
    }

    fn fresh_msg(&mut self) -> u64 {
        let m = self.next_msg;
        self.next_msg += 1;
        m
    }

    /// Issues ops for every thread until it either has an access in
    /// flight or its program is exhausted (L1 hits and fences complete
    /// inline and are not scheduler choices).
    fn auto_issue(&mut self) {
        for t in 0..self.l1s.len() {
            while !self.outstanding[t] && self.pc[t] < self.programs[t].len() {
                let op = self.programs[t][self.pc[t]];
                self.pc[t] += 1;
                let (kind, block, id) = match op {
                    Op::Fence => continue,
                    Op::Load { id, block } => (AccessKind::Load, block, u64::from(id)),
                    Op::Store { block, label } => {
                        self.store_labels[t].push(label);
                        (
                            AccessKind::Store,
                            block,
                            u64::from(u32::MAX) + u64::from(label),
                        )
                    }
                };
                self.now.0 += 1;
                let acc = MemAccess {
                    id: AccessId(id),
                    warp: WarpId(0),
                    kind,
                    block: BlockAddr(block),
                    span: gtsc_types::SpanId::NONE,
                };
                match self.l1s[t].access(acc, self.now) {
                    L1Outcome::Hit(c) => self.record(t, &c),
                    L1Outcome::Queued => self.outstanding[t] = true,
                    L1Outcome::Reject => {
                        unreachable!("litmus configs never fill the MSHR")
                    }
                }
            }
        }
    }

    /// The simulator's global rollover protocol: a home overflow or a
    /// crashed device moves *every* component to the next epoch in the
    /// same step.
    fn maybe_reset(&mut self) {
        if self.home.needs_reset() || self.devices.iter().any(DeviceL2::needs_reset) {
            self.epoch += 1;
            self.home.apply_reset(self.epoch);
            for dev in &mut self.devices {
                dev.apply_reset(self.epoch);
            }
        }
    }

    /// Serves thread `t`'s pending request: hands it to the thread's
    /// device, then pumps device and home — forwarding fabric requests,
    /// delivering grants, and applying the global rollover protocol —
    /// until a response lands back at an L1. A stale-epoch retry leaves
    /// the thread outstanding with a fresh request, to be served by a
    /// later choice.
    fn serve(&mut self, t: usize) {
        assert!(self.outstanding[t], "serve of an idle thread");
        self.serves += 1;
        if let Some((after, dev)) = self.crash_after {
            if after == self.serves {
                // The device dies between serves: tags, grants, and
                // queues are wiped (committed data survives at the
                // home) and recovery runs the global epoch bump. The
                // L1s keep their (now orphaned) leases — logical time
                // only moves forward, so they stay safe until renewal.
                self.crash_after = None;
                self.now.0 += 1;
                self.devices[usize::from(dev)].crash(self.now);
                self.oracle
                    .observe(self.now, Scope::Device(dev), RaceEventKind::Crash);
                self.maybe_reset();
            }
        }
        let d = usize::from(self.device_of[t]);
        let req = self.l1s[t]
            .take_request()
            .expect("outstanding thread has a queued request");
        self.now.0 += 1;
        let sm = Scope::Sm(t as u16);
        let dev_scope = Scope::Device(self.device_of[t]);
        let msg = self.fresh_msg();
        self.oracle.observe(
            self.now,
            sm,
            RaceEventKind::Send {
                dst: dev_scope,
                msg,
            },
        );
        self.oracle
            .observe(self.now, dev_scope, RaceEventKind::Recv { src: sm, msg });
        self.devices[d].on_request(t, req, self.now);
        let mut pumped = 0u32;
        loop {
            pumped += 1;
            assert!(pumped < PUMP_CAP, "fabric pump diverged serving thread {t}");
            self.now.0 += 1;
            self.devices[d].tick(self.now);
            while let Some(up) = self.devices[d].take_fabric_request() {
                let msg = self.fresh_msg();
                self.oracle.observe(
                    self.now,
                    dev_scope,
                    RaceEventKind::Send {
                        dst: Scope::Home(0),
                        msg,
                    },
                );
                self.oracle.observe(
                    self.now,
                    Scope::Home(0),
                    RaceEventKind::Recv {
                        src: dev_scope,
                        msg,
                    },
                );
                self.home.on_request(d, up, self.now);
            }
            self.home.tick(self.now);
            self.maybe_reset();
            while let Some((dst, resp)) = self.home.take_response() {
                self.observe_home_response(dst, resp);
                self.devices[dst].on_fabric_response(resp, self.now);
            }
            let mut delivered = false;
            while let Some((dst, resp)) = self.devices[d].take_response() {
                delivered = true;
                self.observe_device_response(d, dst, resp);
                let done = self.l1s[dst].on_response(resp, self.now);
                for c in done {
                    self.record(dst, &c);
                }
            }
            if delivered {
                break;
            }
        }
        self.auto_issue();
    }

    /// Feeds one home→device grant to the oracle: a grant at the home
    /// (the authoritative bank) and an install at the consuming device.
    fn observe_home_response(&mut self, dst: usize, resp: L2ToL1) {
        let Some(meta) = resp_meta(resp) else { return };
        let home = Scope::Home(0);
        let dev = Scope::Device(u16::try_from(dst).expect("device index fits"));
        let msg = self.fresh_msg();
        self.oracle
            .observe(self.now, home, RaceEventKind::Grant(meta));
        self.oracle
            .observe(self.now, home, RaceEventKind::Send { dst: dev, msg });
        self.oracle
            .observe(self.now, dev, RaceEventKind::Recv { src: home, msg });
        self.oracle
            .observe(self.now, dev, RaceEventKind::Install(meta));
    }

    /// Feeds one device→L1 response to the oracle: a grant at the
    /// device (checked for nesting inside its installed inter-GPU
    /// grant) and an install at the consuming SM.
    fn observe_device_response(&mut self, d: usize, dst: usize, resp: L2ToL1) {
        let Some(meta) = resp_meta(resp) else { return };
        let dev = Scope::Device(u16::try_from(d).expect("device index fits"));
        let sm = Scope::Sm(u16::try_from(dst).expect("SM index fits"));
        let msg = self.fresh_msg();
        // A stale-epoch ack forwarded after a reset certifies the
        // commit at the L1 without installing anything; it is not a
        // device grant (the L1's epoch gate drops its lease too).
        if meta.epoch() >= self.devices[d].epoch() {
            self.oracle
                .observe(self.now, dev, RaceEventKind::Grant(meta));
        }
        self.oracle
            .observe(self.now, dev, RaceEventKind::Send { dst: sm, msg });
        self.oracle
            .observe(self.now, sm, RaceEventKind::Recv { src: dev, msg });
        self.oracle
            .observe(self.now, sm, RaceEventKind::Install(meta));
    }

    /// Records a completion: loads store their decoded label; any
    /// completion clears the thread's in-flight marker. The retired
    /// operation is fed to the race oracle with its serialization point.
    fn record(&mut self, t: usize, c: &Completion) {
        if let Some(ts) = c.ts {
            let kind = if c.kind == AccessKind::Load {
                RaceEventKind::Read {
                    block: c.block,
                    version: c.version.0,
                    ts: ts.0,
                    epoch: c.epoch,
                }
            } else {
                RaceEventKind::StoreDone {
                    block: c.block,
                    version: c.version.0,
                    wts: ts.0,
                    epoch: c.epoch,
                }
            };
            let sm = Scope::Sm(u16::try_from(t).expect("SM index fits"));
            self.oracle.observe(self.now, sm, kind);
        }
        if c.kind == AccessKind::Load {
            let label = self.decode_label(c.version);
            let id = u32::try_from(c.id.0).expect("load ids fit in u32");
            self.observed.insert(id, label);
        }
        self.outstanding[t] = false;
    }

    /// Maps an observed [`Version`] back to the litmus store label that
    /// minted it (same encoding as [`crate::MicroGtsc`]: thread `t`
    /// issues through SM `t` warp 0 in program order).
    fn decode_label(&self, v: Version) -> u32 {
        if v == Version::ZERO {
            return 0;
        }
        let sm = usize::try_from((v.0 >> 40) - 1).expect("version encodes a valid SM");
        let nth = usize::try_from(v.0 & ((1 << 28) - 1)).expect("store index fits");
        assert!(
            sm < self.store_labels.len() && nth >= 1 && nth <= self.store_labels[sm].len(),
            "observed version {v:?} does not decode to an issued store"
        );
        self.store_labels[sm][nth - 1]
    }
}

impl Schedulable for MicroMultiGtsc {
    /// Load observations, sanitizer violations, and race-oracle
    /// findings — the checkers' verdicts are part of the outcome so a
    /// breach on any schedule surfaces in the explored set.
    type Outcome = (BTreeMap<u32, u32>, Vec<String>, Vec<String>);

    fn fanout(&self) -> usize {
        self.enabled().len()
    }

    fn choose(&mut self, idx: usize) {
        let t = self.enabled()[idx];
        self.serve(t);
    }

    fn outcome(&self) -> Self::Outcome {
        for (t, p) in self.programs.iter().enumerate() {
            assert!(
                self.pc[t] == p.len() && !self.outstanding[t],
                "run ended with thread {t} blocked at pc {}",
                self.pc[t]
            );
        }
        (
            self.observed.clone(),
            self.sanitizer.violations(),
            self.oracle.report().lines(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore_all;

    fn ld(id: u32, block: u64) -> Op {
        Op::Load { id, block }
    }
    fn st(block: u64, label: u32) -> Op {
        Op::Store { block, label }
    }

    #[test]
    fn cross_device_store_then_load_completes() {
        let threads = vec![(0u16, vec![st(0, 3)]), (1u16, vec![ld(1, 0)])];
        let mut m = MicroMultiGtsc::new(&threads, MultiHarnessCfg::default());
        while m.fanout() > 0 {
            m.choose(0);
        }
        let (obs, violations, races) = m.outcome();
        assert_eq!(obs.get(&1), Some(&3), "serve order store-first reads 3");
        assert!(violations.is_empty(), "{violations:?}");
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn two_devices_expose_home_serialization_nondeterminism() {
        let threads = vec![(0u16, vec![st(0, 9)]), (1u16, vec![ld(1, 0)])];
        let r = explore_all(
            || MicroMultiGtsc::new(&threads, MultiHarnessCfg::default()),
            1_000,
        );
        assert!(!r.truncated);
        assert_eq!(r.schedules, 2, "one store serve × one load serve");
        let labels: Vec<u32> = r.outcomes.iter().map(|(o, _, _)| o[&1]).collect();
        assert_eq!(labels, vec![0, 9]);
        assert!(r.outcomes.iter().all(|(_, v, _)| v.is_empty()));
        assert!(r.outcomes.iter().all(|(_, _, races)| races.is_empty()));
    }

    #[test]
    fn same_device_threads_share_the_device_l2() {
        // Both threads on device 0: the second read is served from the
        // device's held grant on some schedules; all stay clean.
        let threads = vec![(0u16, vec![st(0, 5)]), (0u16, vec![ld(1, 0), ld(2, 0)])];
        let r = explore_all(
            || MicroMultiGtsc::new(&threads, MultiHarnessCfg::default()),
            10_000,
        );
        assert!(!r.truncated);
        for (o, violations, races) in &r.outcomes {
            assert!(violations.is_empty(), "{violations:?}");
            assert!(races.is_empty(), "{races:?}");
            assert!(
                !(o[&1] == 5 && o[&2] == 0),
                "coherence went backwards: {o:?}"
            );
        }
    }

    #[test]
    fn device_crash_mid_run_recovers_and_stays_clean() {
        // T0 (device 0) stores then re-reads; T1 (device 1) reads cold.
        // Device 0 crashes before the second serve on every schedule;
        // the home's committed copy must survive.
        let threads = vec![(0u16, vec![st(0, 3), ld(1, 0)]), (1u16, vec![ld(2, 0)])];
        let cfg = MultiHarnessCfg {
            crash_device_after_serves: Some((2, 0)),
            ..MultiHarnessCfg::default()
        };
        let r = explore_all(|| MicroMultiGtsc::new(&threads, cfg), 10_000);
        assert!(!r.truncated);
        assert!(r.schedules >= 2);
        for (o, violations, races) in &r.outcomes {
            assert!(violations.is_empty(), "{violations:?}");
            assert!(races.is_empty(), "{races:?}");
            assert_eq!(o[&1], 3, "own store must survive the device crash: {o:?}");
            assert!(o[&2] == 0 || o[&2] == 3, "{o:?}");
        }
    }

    #[test]
    fn tiny_ts_bits_force_global_rollover_and_stay_clean() {
        let threads = vec![
            (0u16, vec![st(0, 1), st(1, 2)]),
            (1u16, vec![ld(10, 1), ld(11, 0)]),
        ];
        let cfg = MultiHarnessCfg {
            lease: 10,
            grant_lease: 16,
            ts_bits: 6,
            ..MultiHarnessCfg::default()
        };
        let r = explore_all(|| MicroMultiGtsc::new(&threads, cfg), 100_000);
        assert!(!r.truncated);
        for (o, violations, races) in &r.outcomes {
            assert!(violations.is_empty(), "{violations:?}");
            assert!(races.is_empty(), "{races:?}");
            assert!(
                !(o[&10] == 2 && o[&11] == 0),
                "rollover leaked the forbidden MP outcome: {o:?}"
            );
        }
    }
}
