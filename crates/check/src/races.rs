//! Independent happens-before race oracle.
//!
//! The online [`gtsc_trace::Sanitizer`] checks *local* transition
//! invariants (per-line monotonicity, `wts <= rts`, epoch freshness).
//! This module checks the *global* ordering claims of the protocol, and
//! it does so independently: happens-before is derived from **message
//! causality only** — program order within an actor plus send/receive
//! edges between actors — never from the protocol's own timestamp
//! values. The timestamps under test therefore cannot vouch for
//! themselves.
//!
//! Two families of checks:
//!
//! * **Conflicting-access coverage.** Every load must be covered by a
//!   lease interval the bank actually granted (`read-unleased`,
//!   `read-past-lease`, `read-before-write`), and its logical
//!   serialization point must not overlap a later commit to the same
//!   block (`read-overlaps-write`). A store must land logically after
//!   every outstanding read lease (`store-inside-lease`).
//! * **Timestamp order extends happens-before.** Commits to one block
//!   are serialized by the bank, so their `wts` must strictly increase
//!   in bank order (`write-write-order`); per-warp operation timestamps
//!   must extend program order (`warp-ts-regression`); and a read may
//!   never causally precede the commit that produced its data
//!   (`read-from-future`, checked with vector clocks). Epoch resets
//!   must move forward (`epoch-regression`), and a bank crash must be
//!   followed by a bumped epoch before the bank speaks again
//!   (`missing-epoch-bump`). In hierarchical (multi-GPU) runs a device
//!   acts as both lease consumer and lease producer: every lease it
//!   hands an L1 must nest inside an inter-GPU grant it actually holds
//!   (`lease-outside-grant`), with the held grants modelled from the
//!   device's own install stream.
//!
//! # Why the obvious check would be wrong
//!
//! In a Tardis-style protocol, causality does **not** imply observation
//! freshness: a read that is physically after a write may legally
//! return the old version, because it *serializes logically earlier*
//! inside a granted lease. A naive "commit happens-before read, so the
//! read must see it" rule would flag correct executions. The sound
//! formulation used here is interval-based: a read of version `v`
//! serializes at its post-load warp timestamp `ts_R ∈ [wts_v, rts_v]`,
//! and a violation exists iff some commit `C` to the same block has
//! `wts_v < wts_C <= ts_R` — i.e. the lease the read relied on was not
//! actually exclusive up to its serialization point.
//!
//! Findings are deduplicated by `(rule, actor, block)` with an
//! occurrence count *before* the [`MAX_RACE_FINDINGS`] cap, so a
//! pathological run cannot crowd distinct failure modes out of the
//! report.

use std::collections::BTreeMap;
use std::fmt;

use gtsc_trace::{EventKind, Scope, TraceEvent};
use gtsc_types::{BlockAddr, Cycle};

/// Cap on *distinct* findings kept in a report. Duplicates of an
/// already-reported `(rule, actor, block)` key only bump its count and
/// never consume a slot.
pub const MAX_RACE_FINDINGS: usize = 256;

/// A vector clock over protocol actors.
pub type VClock = BTreeMap<Scope, u64>;

/// Whether `a` happens-before-or-equals `b` (componentwise `<=`).
#[must_use]
pub fn clock_leq(a: &VClock, b: &VClock) -> bool {
    a.iter().all(|(s, &v)| b.get(s).copied().unwrap_or(0) >= v)
}

fn clock_join(into: &mut VClock, other: &VClock) {
    for (s, &v) in other {
        let e = into.entry(*s).or_insert(0);
        if *e < v {
            *e = v;
        }
    }
}

/// Timestamp content of an L2→L1 response, in raw logical-time values.
///
/// The oracle models the receiving L1's lease table from these, so it
/// never has to trust the L1's own bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespMeta {
    /// Data fill carrying a lease `[wts, rts]` for `version`.
    Fill {
        /// Filled block.
        block: BlockAddr,
        /// Data version supplied.
        version: u64,
        /// Write timestamp of the version.
        wts: u64,
        /// Lease upper bound.
        rts: u64,
        /// Producing bank's epoch.
        epoch: u64,
    },
    /// Lease extension without data; applies to the copy whose `wts`
    /// matches.
    Renew {
        /// Renewed block.
        block: BlockAddr,
        /// `wts` of the copy being renewed.
        wts: u64,
        /// New lease upper bound.
        rts: u64,
        /// Producing bank's epoch.
        epoch: u64,
    },
    /// Store acknowledgment: `version` committed at `wts` with read
    /// lease up to `rts`.
    WriteAck {
        /// Written block.
        block: BlockAddr,
        /// Committed version.
        version: u64,
        /// Assigned write timestamp.
        wts: u64,
        /// Lease upper bound granted to the new version.
        rts: u64,
        /// Producing bank's epoch.
        epoch: u64,
    },
}

impl RespMeta {
    /// Block the response concerns.
    #[must_use]
    pub fn block(self) -> BlockAddr {
        match self {
            RespMeta::Fill { block, .. }
            | RespMeta::Renew { block, .. }
            | RespMeta::WriteAck { block, .. } => block,
        }
    }

    /// Epoch the producing component stamped on the response.
    #[must_use]
    pub fn epoch(self) -> u64 {
        match self {
            RespMeta::Fill { epoch, .. }
            | RespMeta::Renew { epoch, .. }
            | RespMeta::WriteAck { epoch, .. } => epoch,
        }
    }

    fn rts(self) -> u64 {
        match self {
            RespMeta::Fill { rts, .. }
            | RespMeta::Renew { rts, .. }
            | RespMeta::WriteAck { rts, .. } => rts,
        }
    }
}

/// One observation fed to the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceEventKind {
    /// A message with unique id `msg` left the acting component for
    /// `dst`. The sender's clock is snapshotted here.
    Send {
        /// Destination actor.
        dst: Scope,
        /// Unique message id.
        msg: u64,
    },
    /// Message `msg` arrived at the acting component from `src`. Joins
    /// the sender's snapshotted clock into the receiver's.
    Recv {
        /// Source actor.
        src: Scope,
        /// Unique message id.
        msg: u64,
    },
    /// The acting bank produced a response (lease grant or store
    /// commit). Drives the bank-side interval and ordering checks.
    Grant(RespMeta),
    /// The acting SM consumed a response. Drives the oracle's model of
    /// that SM's lease table (with the L1's epoch-gating semantics:
    /// newer epochs flush, older epochs are dropped).
    Install(RespMeta),
    /// A load retired at the acting SM: it read `version` of `block`,
    /// serializing at logical time `ts` (the post-load warp timestamp).
    Read {
        /// Block read.
        block: BlockAddr,
        /// Observed data version.
        version: u64,
        /// Logical serialization point of the read.
        ts: u64,
        /// Epoch the load retired in.
        epoch: u64,
    },
    /// A store retired at the acting SM with assigned `wts`.
    StoreDone {
        /// Block written.
        block: BlockAddr,
        /// Version published.
        version: u64,
        /// Assigned write timestamp.
        wts: u64,
        /// Epoch the store retired in.
        epoch: u64,
    },
    /// The acting bank crashed and lost its coherence state; its next
    /// response must carry a strictly newer epoch.
    Crash,
}

/// One deduplicated oracle finding, with the block/actor/cycle context
/// a post-mortem needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceFinding {
    /// Stable rule name (`read-past-lease`, `write-write-order`, ...).
    pub rule: &'static str,
    /// Cycle of the first occurrence.
    pub cycle: Cycle,
    /// Component the first occurrence happened at.
    pub actor: Scope,
    /// Block involved, when the rule is block-scoped.
    pub block: Option<BlockAddr>,
    /// Occurrences folded into this entry.
    pub count: u64,
    /// Human-readable detail of the first occurrence.
    pub detail: String,
}

impl fmt::Display for RaceFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.cycle, self.actor, self.rule)?;
        if let Some(b) = self.block {
            write!(f, " block {b}")?;
        }
        write!(f, ": {}", self.detail)?;
        if self.count > 1 {
            write!(f, " (x{})", self.count)?;
        }
        Ok(())
    }
}

/// The oracle's verdict over everything it observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RaceReport {
    /// Distinct findings, deduplicated by `(rule, actor, block)` and
    /// sorted by first-occurrence cycle.
    pub findings: Vec<RaceFinding>,
    /// Distinct findings dropped after [`MAX_RACE_FINDINGS`] was hit.
    pub suppressed: u64,
    /// Events observed.
    pub events: u64,
}

impl RaceReport {
    /// Whether no ordering violation was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.suppressed == 0
    }

    /// The findings rendered one per line (plus a suppression note),
    /// for embedding in an explored outcome.
    #[must_use]
    pub fn lines(&self) -> Vec<String> {
        let mut out: Vec<String> = self.findings.iter().map(ToString::to_string).collect();
        if self.suppressed > 0 {
            out.push(format!(
                "... {} further distinct finding(s) suppressed past the {MAX_RACE_FINDINGS}-entry cap",
                self.suppressed
            ));
        }
        out
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "race oracle: clean ({} events)", self.events);
        }
        writeln!(
            f,
            "race oracle: {} finding(s) over {} events",
            self.findings.len(),
            self.events
        )?;
        for line in self.lines() {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Dedup-before-cap accumulator shared by the online and batch passes.
#[derive(Debug, Clone, Default)]
struct FindingSet {
    by_key: BTreeMap<(&'static str, Scope, Option<BlockAddr>), usize>,
    findings: Vec<RaceFinding>,
    suppressed: u64,
}

impl FindingSet {
    fn push(
        &mut self,
        rule: &'static str,
        cycle: Cycle,
        actor: Scope,
        block: Option<BlockAddr>,
        detail: String,
    ) {
        let key = (rule, actor, block);
        if let Some(&i) = self.by_key.get(&key) {
            self.findings[i].count += 1;
            return;
        }
        if self.findings.len() >= MAX_RACE_FINDINGS {
            self.suppressed += 1;
            return;
        }
        self.by_key.insert(key, self.findings.len());
        self.findings.push(RaceFinding {
            rule,
            cycle,
            actor,
            block,
            count: 1,
            detail,
        });
    }
}

/// A committed store as the bank serialized it.
#[derive(Debug, Clone)]
struct Commit {
    version: u64,
    wts: u64,
    cycle: Cycle,
    clock: VClock,
}

/// Per-`(epoch, block)` bank-side state.
#[derive(Debug, Clone, Default)]
struct BankBlock {
    /// Commits in bank serialization order.
    commits: Vec<Commit>,
    /// version → committed `wts` (replay detection).
    by_version: BTreeMap<u64, u64>,
    /// High-water mark of every `rts` the bank granted for this block.
    granted_rts: u64,
}

#[derive(Debug, Clone, Default)]
struct BankState {
    epoch: u64,
    /// Epoch at crash time, until the bank's next grant proves the bump.
    pending_crash: Option<u64>,
    blocks: BTreeMap<(u64, BlockAddr), BankBlock>,
}

#[derive(Debug, Clone, Default)]
struct SmState {
    epoch: u64,
    /// Per-epoch warp-timestamp frontier (program order must extend
    /// timestamp order).
    frontier: u64,
    /// `(block, version)` → granted `[wts, rts]`. A lenient superset of
    /// the L1's real residency (evictions are invisible), which can
    /// only hide bugs, never invent them.
    leases: BTreeMap<(BlockAddr, u64), (u64, u64)>,
}

/// A retired load, queued for the batch interval checks.
#[derive(Debug, Clone)]
struct ReadRec {
    version: u64,
    ts: u64,
    actor: Scope,
    cycle: Cycle,
    clock: VClock,
}

/// The happens-before race oracle. Feed it [`RaceEventKind`]s via
/// [`RaceOracle::observe`]; collect the verdict with
/// [`RaceOracle::report`].
#[derive(Debug, Clone, Default)]
pub struct RaceOracle {
    clocks: BTreeMap<Scope, VClock>,
    in_flight: BTreeMap<u64, VClock>,
    sms: BTreeMap<Scope, SmState>,
    banks: BTreeMap<Scope, BankState>,
    reads: BTreeMap<(u64, BlockAddr), Vec<ReadRec>>,
    findings: FindingSet,
    events: u64,
}

impl RaceOracle {
    /// A fresh oracle with no history.
    #[must_use]
    pub fn new() -> Self {
        RaceOracle::default()
    }

    /// Feeds one observation. Online rules fire immediately; interval
    /// rules are evaluated in [`RaceOracle::report`].
    pub fn observe(&mut self, cycle: Cycle, actor: Scope, kind: RaceEventKind) {
        self.events += 1;
        // Program order: every local event ticks the actor's own
        // component.
        *self
            .clocks
            .entry(actor)
            .or_default()
            .entry(actor)
            .or_insert(0) += 1;
        match kind {
            RaceEventKind::Send { msg, .. } => {
                let snapshot = self.clocks.get(&actor).cloned().unwrap_or_default();
                self.in_flight.insert(msg, snapshot);
            }
            RaceEventKind::Recv { src, msg } => {
                if let Some(snapshot) = self.in_flight.get(&msg).cloned() {
                    clock_join(self.clocks.entry(actor).or_default(), &snapshot);
                } else {
                    self.findings.push(
                        "unmatched-recv",
                        cycle,
                        actor,
                        None,
                        format!("received message {msg} from {src} that was never sent"),
                    );
                }
            }
            RaceEventKind::Grant(meta) => self.on_grant(cycle, actor, meta),
            RaceEventKind::Install(meta) => self.on_install(actor, meta),
            RaceEventKind::Read {
                block,
                version,
                ts,
                epoch,
            } => self.on_read(cycle, actor, block, version, ts, epoch),
            RaceEventKind::StoreDone {
                block, wts, epoch, ..
            } => self.on_op_ts(cycle, actor, block, wts, epoch),
            RaceEventKind::Crash => {
                let bank = self.banks.entry(actor).or_default();
                bank.pending_crash = Some(bank.epoch);
                // A crashed device also loses every inter-GPU grant it
                // held; anything it serves before reacquiring one is a
                // `lease-outside-grant` violation.
                if let Some(sm) = self.sms.get_mut(&actor) {
                    sm.leases.clear();
                }
            }
        }
    }

    fn on_grant(&mut self, cycle: Cycle, actor: Scope, meta: RespMeta) {
        let block = meta.block();
        let epoch = meta.epoch();
        // Hierarchical delegation (multi-GPU): a device may only hand
        // out a lease that nests inside an inter-GPU grant it actually
        // holds. Held grants are modelled from the device's own Install
        // stream (what the home delivered to it), so the device's
        // internal bookkeeping cannot vouch for itself.
        if matches!(actor, Scope::Device(_)) {
            let held = self
                .sms
                .get(&actor)
                .into_iter()
                .flat_map(|sm| sm.leases.iter())
                .filter(|((b, _), _)| *b == block)
                .map(|(_, &(_, grts))| grts)
                .max();
            let rts = meta.rts();
            match held {
                None => self.findings.push(
                    "lease-outside-grant",
                    cycle,
                    actor,
                    Some(block),
                    format!(
                        "device granted a lease with rts {rts} without holding any \
                         inter-GPU grant for the block"
                    ),
                ),
                Some(grts) if rts > grts => self.findings.push(
                    "lease-outside-grant",
                    cycle,
                    actor,
                    Some(block),
                    format!(
                        "device granted a lease with rts {rts}, outside its inter-GPU \
                         grant (rts high-water {grts}) — L2-lease ⊄ device-grant"
                    ),
                ),
                Some(_) => {}
            }
        }
        let bank = self.banks.entry(actor).or_default();
        if epoch < bank.epoch {
            self.findings.push(
                "epoch-regression",
                cycle,
                actor,
                Some(block),
                format!(
                    "bank granted in epoch {epoch} after reaching epoch {}",
                    bank.epoch
                ),
            );
        } else {
            bank.epoch = epoch;
        }
        if let Some(at) = bank.pending_crash.take() {
            if epoch <= at {
                self.findings.push(
                    "missing-epoch-bump",
                    cycle,
                    actor,
                    Some(block),
                    format!(
                        "first grant after a crash in epoch {at} still carries epoch {epoch}; \
                         orphaned leases were never invalidated"
                    ),
                );
            }
        }
        let bb = bank.blocks.entry((epoch, block)).or_default();
        match meta {
            RespMeta::Fill { rts, .. } | RespMeta::Renew { rts, .. } => {
                bb.granted_rts = bb.granted_rts.max(rts);
            }
            RespMeta::WriteAck {
                version, wts, rts, ..
            } => {
                if let Some(&w0) = bb.by_version.get(&version) {
                    if w0 != wts {
                        self.findings.push(
                            "write-write-order",
                            cycle,
                            actor,
                            Some(block),
                            format!(
                                "replayed commit of version {version} re-stamped wts {w0} as {wts}"
                            ),
                        );
                    }
                } else {
                    if let Some(last) = bb.commits.last() {
                        if wts <= last.wts {
                            self.findings.push(
                                "write-write-order",
                                cycle,
                                actor,
                                Some(block),
                                format!(
                                    "commit wts {wts} (version {version}) not after the \
                                     previous commit wts {} (version {})",
                                    last.wts, last.version
                                ),
                            );
                        }
                    }
                    if wts <= bb.granted_rts {
                        self.findings.push(
                            "store-inside-lease",
                            cycle,
                            actor,
                            Some(block),
                            format!(
                                "commit wts {wts} is inside a granted read lease \
                                 (rts high-water {})",
                                bb.granted_rts
                            ),
                        );
                    }
                    let clock = self.clocks.get(&actor).cloned().unwrap_or_default();
                    bank.blocks
                        .entry((epoch, block))
                        .or_default()
                        .commits
                        .push(Commit {
                            version,
                            wts,
                            cycle,
                            clock,
                        });
                    bank.blocks
                        .entry((epoch, block))
                        .or_default()
                        .by_version
                        .insert(version, wts);
                }
                let bb = bank.blocks.entry((epoch, block)).or_default();
                bb.granted_rts = bb.granted_rts.max(rts);
            }
        }
    }

    fn on_install(&mut self, actor: Scope, meta: RespMeta) {
        let epoch = meta.epoch();
        let sm = self.sms.entry(actor).or_default();
        if epoch > sm.epoch {
            // The L1 flushes and rebases on first contact with a newer
            // epoch; mirror that.
            sm.epoch = epoch;
            sm.frontier = 0;
            sm.leases.clear();
        } else if epoch < sm.epoch {
            // Stale-epoch responses are dropped by the L1.
            return;
        }
        match meta {
            RespMeta::Fill {
                block,
                version,
                wts,
                rts,
                ..
            }
            | RespMeta::WriteAck {
                block,
                version,
                wts,
                rts,
                ..
            } => {
                sm.leases.insert((block, version), (wts, rts));
            }
            RespMeta::Renew {
                block, wts, rts, ..
            } => {
                for ((b, _), lease) in &mut sm.leases {
                    if *b == block && lease.0 == wts {
                        lease.1 = lease.1.max(rts);
                    }
                }
            }
        }
    }

    fn on_read(
        &mut self,
        cycle: Cycle,
        actor: Scope,
        block: BlockAddr,
        version: u64,
        ts: u64,
        epoch: u64,
    ) {
        self.on_op_ts(cycle, actor, block, ts, epoch);
        let sm = self.sms.entry(actor).or_default();
        match sm.leases.get(&(block, version)) {
            None => self.findings.push(
                "read-unleased",
                cycle,
                actor,
                Some(block),
                format!("load observed version {version} without any granted lease for it"),
            ),
            Some(&(wts, rts)) => {
                if ts > rts {
                    self.findings.push(
                        "read-past-lease",
                        cycle,
                        actor,
                        Some(block),
                        format!(
                            "load serialized at ts {ts}, past the granted lease \
                             [{wts}, {rts}] of version {version}"
                        ),
                    );
                }
                if ts < wts {
                    self.findings.push(
                        "read-before-write",
                        cycle,
                        actor,
                        Some(block),
                        format!(
                            "load serialized at ts {ts}, before version {version} \
                             was written at wts {wts}"
                        ),
                    );
                }
            }
        }
        let clock = self.clocks.get(&actor).cloned().unwrap_or_default();
        self.reads.entry((epoch, block)).or_default().push(ReadRec {
            version,
            ts,
            actor,
            cycle,
            clock,
        });
    }

    /// Shared Read/StoreDone bookkeeping: epoch sanity and the per-warp
    /// timestamp frontier.
    fn on_op_ts(&mut self, cycle: Cycle, actor: Scope, block: BlockAddr, ts: u64, epoch: u64) {
        let sm = self.sms.entry(actor).or_default();
        if epoch < sm.epoch {
            self.findings.push(
                "epoch-regression",
                cycle,
                actor,
                Some(block),
                format!(
                    "operation retired in epoch {epoch} after the SM reached {}",
                    sm.epoch
                ),
            );
            return;
        }
        if epoch > sm.epoch {
            sm.epoch = epoch;
            sm.frontier = 0;
            sm.leases.clear();
        }
        let sm = self.sms.entry(actor).or_default();
        if ts < sm.frontier {
            self.findings.push(
                "warp-ts-regression",
                cycle,
                actor,
                Some(block),
                format!(
                    "operation timestamp {ts} moved backwards from the warp frontier {}",
                    sm.frontier
                ),
            );
        } else {
            sm.frontier = ts;
        }
    }

    /// Runs the batch interval checks over everything observed and
    /// returns the full verdict. Callable mid-run; the oracle keeps
    /// accumulating afterwards.
    #[must_use]
    pub fn report(&self) -> RaceReport {
        let mut f = self.findings.clone();
        for ((epoch, block), reads) in &self.reads {
            // In a flat run a block is owned by exactly one bank; in a
            // multi-GPU run the home node *and* the forwarding device
            // both record the same commits. Merge every bank's history
            // for this (epoch, block), deduplicating by version and
            // keeping the causally earliest copy (the authoritative
            // home-side serialization — a forwarder's clock strictly
            // contains it), so reads are checked against the full
            // commit order and never against one component's partial
            // view, and `read-from-future` measures the path from the
            // true commit point rather than from a forwarder.
            let mut by_version: BTreeMap<u64, u64> = BTreeMap::new();
            let mut merged: BTreeMap<u64, &Commit> = BTreeMap::new();
            for b in self.banks.values() {
                if let Some(bb) = b.blocks.get(&(*epoch, *block)) {
                    for (&v, &w) in &bb.by_version {
                        by_version.entry(v).or_insert(w);
                    }
                    for c in &bb.commits {
                        merged
                            .entry(c.version)
                            .and_modify(|e| {
                                if clock_leq(&c.clock, &e.clock) {
                                    *e = c;
                                }
                            })
                            .or_insert(c);
                    }
                }
            }
            if by_version.is_empty() && merged.is_empty() {
                continue;
            }
            let mut commits: Vec<&Commit> = merged.into_values().collect();
            commits.sort_by_key(|c| (c.wts, c.cycle));
            for r in reads {
                // Versions never committed in this epoch are the
                // epoch's base data (initial contents or rollover
                // carry-over): they serialize from logical time 0.
                let wts_v = by_version.get(&r.version).copied().unwrap_or(0);
                if let Some(c) = commits.iter().find(|c| c.wts > wts_v && c.wts <= r.ts) {
                    f.push(
                        "read-overlaps-write",
                        r.cycle,
                        r.actor,
                        Some(*block),
                        format!(
                            "load of version {} serialized at ts {}, at or after the \
                             commit of version {} (wts {}, cycle {}) — the lease was \
                             not exclusive",
                            r.version, r.ts, c.version, c.wts, c.cycle
                        ),
                    );
                }
                if let Some(c) = commits.iter().find(|c| c.version == r.version) {
                    if !clock_leq(&c.clock, &r.clock) {
                        f.push(
                            "read-from-future",
                            r.cycle,
                            r.actor,
                            Some(*block),
                            format!(
                                "load observed version {} without a causal path from \
                                 its commit",
                                r.version
                            ),
                        );
                    }
                }
            }
        }
        let mut findings = f.findings;
        findings.sort_by(|a, b| a.cycle.cmp(&b.cycle).then(a.rule.cmp(b.rule)));
        RaceReport {
            findings,
            suppressed: f.suppressed,
            events: self.events,
        }
    }
}

/// Offline trace-tier scan: the same ordering rules, reconstructed from
/// a recorded [`TraceEvent`] stream (best-effort — traces may be
/// sampled, so this tier is lenient and per-scope; the harness tier is
/// the exhaustive one). Assumes a timestamp-coherence (G-TSC) trace.
#[must_use]
pub fn scan_trace(events: &[TraceEvent]) -> RaceReport {
    let mut f = FindingSet::default();
    let mut epochs: BTreeMap<Scope, u64> = BTreeMap::new();
    // (bank scope, block) → (last commit wts, granted rts high-water),
    // reset whenever the scope rolls over.
    let mut blocks: BTreeMap<(Scope, BlockAddr), (Option<u64>, u64)> = BTreeMap::new();
    for e in events {
        match e.kind {
            EventKind::Hit {
                block,
                warp_ts,
                rts,
                ..
            } if matches!(e.scope, Scope::Sm(_)) && warp_ts > rts => {
                f.push(
                    "read-past-lease",
                    e.cycle,
                    e.scope,
                    Some(block),
                    format!("hit served at warp_ts {warp_ts} past the lease rts {rts}"),
                );
            }
            EventKind::Rollover { epoch } => {
                let cur = epochs.entry(e.scope).or_insert(0);
                if epoch < *cur {
                    f.push(
                        "epoch-regression",
                        e.cycle,
                        e.scope,
                        None,
                        format!("rollover into epoch {epoch} after reaching {cur}"),
                    );
                } else {
                    *cur = epoch;
                }
                blocks.retain(|(s, _), _| *s != e.scope);
            }
            EventKind::BankReset { epoch, .. } => {
                let cur = epochs.entry(e.scope).or_insert(0);
                if epoch <= *cur {
                    f.push(
                        "missing-epoch-bump",
                        e.cycle,
                        e.scope,
                        None,
                        format!("bank reset re-entered epoch {epoch} (already at {cur})"),
                    );
                } else {
                    *cur = epoch;
                }
                blocks.retain(|(s, _), _| *s != e.scope);
            }
            EventKind::LeaseGrant { block, rts, .. } | EventKind::Renewal { block, rts } => {
                if matches!(e.scope, Scope::L2Bank(_)) {
                    let s = blocks.entry((e.scope, block)).or_default();
                    s.1 = s.1.max(rts);
                }
            }
            EventKind::StoreCommit { block, wts } => {
                if matches!(e.scope, Scope::L2Bank(_)) {
                    let s = blocks.entry((e.scope, block)).or_default();
                    if let Some(w0) = s.0 {
                        if wts <= w0 {
                            f.push(
                                "write-write-order",
                                e.cycle,
                                e.scope,
                                Some(block),
                                format!("commit wts {wts} not after the previous commit wts {w0}"),
                            );
                        }
                    }
                    if wts <= s.1 {
                        f.push(
                            "store-inside-lease",
                            e.cycle,
                            e.scope,
                            Some(block),
                            format!(
                                "commit wts {wts} is inside a granted read lease \
                                 (rts high-water {})",
                                s.1
                            ),
                        );
                    }
                    s.0 = Some(s.0.unwrap_or(0).max(wts));
                }
            }
            _ => {}
        }
    }
    let mut findings = f.findings;
    findings.sort_by(|a, b| a.cycle.cmp(&b.cycle).then(a.rule.cmp(b.rule)));
    RaceReport {
        findings,
        suppressed: f.suppressed,
        events: events.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SM0: Scope = Scope::Sm(0);
    const SM1: Scope = Scope::Sm(1);
    const BANK: Scope = Scope::L2Bank(0);
    const B: BlockAddr = BlockAddr(7);

    fn fill(version: u64, wts: u64, rts: u64, epoch: u64) -> RespMeta {
        RespMeta::Fill {
            block: B,
            version,
            wts,
            rts,
            epoch,
        }
    }

    fn ack(version: u64, wts: u64, rts: u64, epoch: u64) -> RespMeta {
        RespMeta::WriteAck {
            block: B,
            version,
            wts,
            rts,
            epoch,
        }
    }

    /// Grants a response at the bank and installs it at `sm`, with the
    /// send/recv causality edge in between.
    fn deliver(o: &mut RaceOracle, c: u64, sm: Scope, meta: RespMeta, msg: u64) {
        o.observe(Cycle(c), BANK, RaceEventKind::Grant(meta));
        o.observe(Cycle(c), BANK, RaceEventKind::Send { dst: sm, msg });
        o.observe(Cycle(c + 1), sm, RaceEventKind::Recv { src: BANK, msg });
        o.observe(Cycle(c + 1), sm, RaceEventKind::Install(meta));
    }

    fn rules(r: &RaceReport) -> Vec<&'static str> {
        r.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn clock_join_and_leq() {
        let mut a = VClock::new();
        a.insert(SM0, 3);
        let mut b = VClock::new();
        b.insert(SM0, 2);
        b.insert(BANK, 5);
        assert!(!clock_leq(&a, &b));
        clock_join(&mut b, &a);
        assert_eq!(b[&SM0], 3);
        assert_eq!(b[&BANK], 5);
        assert!(clock_leq(&a, &b));
    }

    #[test]
    fn clean_lease_read_is_clean() {
        let mut o = RaceOracle::new();
        deliver(&mut o, 0, SM0, fill(0, 0, 10, 0), 1);
        o.observe(
            Cycle(2),
            SM0,
            RaceEventKind::Read {
                block: B,
                version: 0,
                ts: 4,
                epoch: 0,
            },
        );
        // A later store lands past the lease, as the protocol requires.
        deliver(&mut o, 3, SM1, ack(9, 11, 21, 0), 2);
        let r = o.report();
        assert!(r.is_clean(), "{r}");
        assert!(r.events > 0);
    }

    #[test]
    fn read_past_lease_and_unleased_fire() {
        let mut o = RaceOracle::new();
        deliver(&mut o, 0, SM0, fill(0, 0, 10, 0), 1);
        o.observe(
            Cycle(2),
            SM0,
            RaceEventKind::Read {
                block: B,
                version: 0,
                ts: 11,
                epoch: 0,
            },
        );
        o.observe(
            Cycle(3),
            SM0,
            RaceEventKind::Read {
                block: B,
                version: 42,
                ts: 12,
                epoch: 0,
            },
        );
        let r = o.report();
        assert!(rules(&r).contains(&"read-past-lease"), "{r}");
        assert!(rules(&r).contains(&"read-unleased"), "{r}");
    }

    #[test]
    fn store_inside_lease_fires() {
        let mut o = RaceOracle::new();
        deliver(&mut o, 0, SM0, fill(0, 0, 10, 0), 1);
        // Commit wts 5 lands inside the granted [0, 10] read lease.
        deliver(&mut o, 1, SM1, ack(9, 5, 15, 0), 2);
        let r = o.report();
        assert!(rules(&r).contains(&"store-inside-lease"), "{r}");
    }

    #[test]
    fn write_write_order_fires_on_non_monotone_commits() {
        let mut o = RaceOracle::new();
        deliver(&mut o, 0, SM0, ack(1, 5, 15, 0), 1);
        deliver(&mut o, 1, SM1, ack(2, 16, 26, 0), 2);
        deliver(&mut o, 2, SM0, ack(3, 16, 26, 0), 3);
        let r = o.report();
        assert!(rules(&r).contains(&"write-write-order"), "{r}");
    }

    #[test]
    fn read_overlaps_write_fires_via_batch_check() {
        let mut o = RaceOracle::new();
        // Reader leased [0, 10] for the base version...
        deliver(&mut o, 0, SM0, fill(0, 0, 10, 0), 1);
        // ...but a commit lands at wts 5 (already inside the lease), and
        // the reader then serializes at ts 8 >= 5 while observing the
        // base version.
        deliver(&mut o, 1, SM1, ack(9, 5, 15, 0), 2);
        o.observe(
            Cycle(3),
            SM0,
            RaceEventKind::Read {
                block: B,
                version: 0,
                ts: 8,
                epoch: 0,
            },
        );
        let r = o.report();
        assert!(rules(&r).contains(&"read-overlaps-write"), "{r}");
    }

    #[test]
    fn read_from_future_fires_without_causal_path() {
        let mut o = RaceOracle::new();
        // SM1's store commits at the bank, but SM0 claims to read the
        // version with no message ever delivered to it.
        deliver(&mut o, 0, SM1, ack(9, 11, 21, 0), 1);
        o.observe(Cycle(1), SM0, RaceEventKind::Install(fill(9, 11, 21, 0)));
        o.observe(
            Cycle(2),
            SM0,
            RaceEventKind::Read {
                block: B,
                version: 9,
                ts: 12,
                epoch: 0,
            },
        );
        let r = o.report();
        assert!(rules(&r).contains(&"read-from-future"), "{r}");
    }

    #[test]
    fn unmatched_recv_fires() {
        let mut o = RaceOracle::new();
        o.observe(Cycle(0), SM0, RaceEventKind::Recv { src: BANK, msg: 99 });
        let r = o.report();
        assert_eq!(rules(&r), vec!["unmatched-recv"]);
    }

    #[test]
    fn warp_ts_regression_fires() {
        let mut o = RaceOracle::new();
        deliver(&mut o, 0, SM0, fill(0, 0, 10, 0), 1);
        for (c, ts) in [(2, 8), (3, 4)] {
            o.observe(
                Cycle(c),
                SM0,
                RaceEventKind::Read {
                    block: B,
                    version: 0,
                    ts,
                    epoch: 0,
                },
            );
        }
        let r = o.report();
        assert!(rules(&r).contains(&"warp-ts-regression"), "{r}");
    }

    #[test]
    fn crash_without_epoch_bump_fires() {
        let mut o = RaceOracle::new();
        deliver(&mut o, 0, SM0, fill(0, 0, 10, 0), 1);
        o.observe(Cycle(1), BANK, RaceEventKind::Crash);
        deliver(&mut o, 2, SM0, fill(0, 0, 10, 0), 2);
        let r = o.report();
        assert!(rules(&r).contains(&"missing-epoch-bump"), "{r}");

        // With a proper bump the same shape is clean.
        let mut o = RaceOracle::new();
        deliver(&mut o, 0, SM0, fill(0, 0, 10, 0), 1);
        o.observe(Cycle(1), BANK, RaceEventKind::Crash);
        deliver(&mut o, 2, SM0, fill(0, 0, 10, 1), 2);
        assert!(o.report().is_clean());
    }

    #[test]
    fn epoch_reset_clears_sm_leases_and_frontier() {
        let mut o = RaceOracle::new();
        deliver(&mut o, 0, SM0, fill(0, 0, 10, 0), 1);
        o.observe(
            Cycle(1),
            SM0,
            RaceEventKind::Read {
                block: B,
                version: 0,
                ts: 9,
                epoch: 0,
            },
        );
        // Epoch 1: timestamps rebase; the old lease is gone, a fresh
        // one is granted, and a smaller ts is fine again.
        deliver(&mut o, 2, SM0, fill(0, 0, 10, 1), 2);
        o.observe(
            Cycle(3),
            SM0,
            RaceEventKind::Read {
                block: B,
                version: 0,
                ts: 2,
                epoch: 1,
            },
        );
        let r = o.report();
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn findings_dedup_before_cap() {
        let mut o = RaceOracle::new();
        deliver(&mut o, 0, SM0, fill(0, 0, 10, 0), 1);
        for c in 0..300u64 {
            o.observe(
                Cycle(10 + c),
                SM0,
                RaceEventKind::Read {
                    block: B,
                    version: 0,
                    ts: 11 + c,
                    epoch: 0,
                },
            );
        }
        let r = o.report();
        // 300 violating reads at one (rule, actor, block) fold into a
        // single entry with a count, far below the cap.
        let past: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == "read-past-lease")
            .collect();
        assert_eq!(past.len(), 1);
        assert_eq!(past[0].count, 300);
        assert_eq!(r.suppressed, 0);
        assert!(past[0].to_string().contains("(x300)"), "{}", past[0]);
    }

    #[test]
    fn distinct_findings_past_cap_are_counted_not_dropped_silently() {
        let mut f = FindingSet::default();
        for i in 0..(MAX_RACE_FINDINGS as u64 + 40) {
            f.push(
                "read-unleased",
                Cycle(i),
                SM0,
                Some(BlockAddr(i)),
                String::new(),
            );
        }
        assert_eq!(f.findings.len(), MAX_RACE_FINDINGS);
        assert_eq!(f.suppressed, 40);
        let r = RaceReport {
            findings: f.findings,
            suppressed: f.suppressed,
            events: 0,
        };
        assert!(!r.is_clean());
        assert!(
            r.lines().last().expect("has lines").contains("suppressed"),
            "{r}"
        );
    }

    const DEV: Scope = Scope::Device(0);
    const HOME: Scope = Scope::Home(0);

    #[test]
    fn device_lease_inside_grant_is_clean_and_escape_is_flagged() {
        // The device installs an inter-GPU grant [1, 17] for the block,
        // then hands an L1 a lease capped at the grant: clean.
        let mut o = RaceOracle::new();
        o.observe(Cycle(0), DEV, RaceEventKind::Install(fill(0, 1, 17, 0)));
        o.observe(Cycle(1), DEV, RaceEventKind::Grant(fill(0, 1, 17, 0)));
        assert!(o.report().is_clean(), "{}", o.report());

        // The same grant, but the handed lease overshoots the grant's
        // rts — the ServePastGrantRts failure mode.
        let mut o = RaceOracle::new();
        o.observe(Cycle(0), DEV, RaceEventKind::Install(fill(0, 1, 17, 0)));
        o.observe(Cycle(1), DEV, RaceEventKind::Grant(fill(0, 1, 65, 0)));
        let r = o.report();
        assert!(rules(&r).contains(&"lease-outside-grant"), "{r}");
    }

    #[test]
    fn device_grant_without_any_held_grant_is_flagged() {
        let mut o = RaceOracle::new();
        o.observe(Cycle(0), DEV, RaceEventKind::Grant(fill(0, 1, 10, 0)));
        let r = o.report();
        assert!(rules(&r).contains(&"lease-outside-grant"), "{r}");
    }

    #[test]
    fn device_crash_clears_held_grants() {
        let mut o = RaceOracle::new();
        o.observe(Cycle(0), DEV, RaceEventKind::Install(fill(0, 1, 17, 0)));
        o.observe(Cycle(1), DEV, RaceEventKind::Crash);
        // Serving from the (lost) grant after the crash is a violation
        // even though the lease would have nested before.
        o.observe(Cycle(2), DEV, RaceEventKind::Grant(fill(0, 1, 17, 1)));
        let r = o.report();
        assert!(rules(&r).contains(&"lease-outside-grant"), "{r}");

        // Reacquiring the grant first makes the same serve clean.
        let mut o = RaceOracle::new();
        o.observe(Cycle(0), DEV, RaceEventKind::Install(fill(0, 1, 17, 0)));
        o.observe(Cycle(1), DEV, RaceEventKind::Crash);
        o.observe(Cycle(2), DEV, RaceEventKind::Install(fill(0, 1, 17, 1)));
        o.observe(Cycle(3), DEV, RaceEventKind::Grant(fill(0, 1, 17, 1)));
        assert!(o.report().is_clean(), "{}", o.report());
    }

    #[test]
    fn report_merges_commit_history_across_banks() {
        // Multi-GPU shape: the home records the commit, the device only
        // records the fill it forwarded (no commit history). The read
        // overlapping the commit must still be found even though the
        // device's BankBlock for the key has an empty commit list — the
        // old single-bank lookup could land on the device and miss it.
        let mut o = RaceOracle::new();
        // Home grants the reader's fill (via the device) and commits a
        // later store inside that lease.
        o.observe(Cycle(0), HOME, RaceEventKind::Grant(fill(0, 0, 10, 0)));
        o.observe(Cycle(1), DEV, RaceEventKind::Install(fill(0, 0, 10, 0)));
        o.observe(Cycle(1), DEV, RaceEventKind::Grant(fill(0, 0, 10, 0)));
        o.observe(Cycle(2), SM0, RaceEventKind::Install(fill(0, 0, 10, 0)));
        o.observe(Cycle(3), HOME, RaceEventKind::Grant(ack(9, 5, 15, 0)));
        o.observe(
            Cycle(4),
            SM0,
            RaceEventKind::Read {
                block: B,
                version: 0,
                ts: 8,
                epoch: 0,
            },
        );
        let r = o.report();
        assert!(rules(&r).contains(&"read-overlaps-write"), "{r}");
        // The clean variant — read serialized before the commit — stays
        // clean under the merged view.
        let mut o = RaceOracle::new();
        o.observe(Cycle(0), HOME, RaceEventKind::Grant(fill(0, 0, 10, 0)));
        o.observe(Cycle(1), DEV, RaceEventKind::Install(fill(0, 0, 10, 0)));
        o.observe(Cycle(1), DEV, RaceEventKind::Grant(fill(0, 0, 10, 0)));
        o.observe(Cycle(2), SM0, RaceEventKind::Install(fill(0, 0, 10, 0)));
        o.observe(Cycle(3), HOME, RaceEventKind::Grant(ack(9, 11, 21, 0)));
        o.observe(
            Cycle(4),
            SM0,
            RaceEventKind::Read {
                block: B,
                version: 0,
                ts: 8,
                epoch: 0,
            },
        );
        assert!(o.report().is_clean(), "{}", o.report());
    }

    #[test]
    fn scan_trace_flags_synthetic_violations_and_passes_clean_stream() {
        use gtsc_trace::TraceEvent;
        let clean = [
            TraceEvent {
                cycle: Cycle(1),
                scope: BANK,
                kind: EventKind::LeaseGrant {
                    block: B,
                    wts: 0,
                    rts: 10,
                },
            },
            TraceEvent {
                cycle: Cycle(2),
                scope: SM0,
                kind: EventKind::Hit {
                    block: B,
                    warp: 0,
                    warp_ts: 4,
                    rts: 10,
                },
            },
            TraceEvent {
                cycle: Cycle(3),
                scope: BANK,
                kind: EventKind::StoreCommit { block: B, wts: 11 },
            },
            TraceEvent {
                cycle: Cycle(4),
                scope: BANK,
                kind: EventKind::Rollover { epoch: 1 },
            },
            TraceEvent {
                cycle: Cycle(5),
                scope: BANK,
                kind: EventKind::StoreCommit { block: B, wts: 1 },
            },
        ];
        assert!(scan_trace(&clean).is_clean(), "{}", scan_trace(&clean));

        let dirty = [
            TraceEvent {
                cycle: Cycle(1),
                scope: BANK,
                kind: EventKind::LeaseGrant {
                    block: B,
                    wts: 0,
                    rts: 10,
                },
            },
            TraceEvent {
                cycle: Cycle(2),
                scope: BANK,
                kind: EventKind::StoreCommit { block: B, wts: 5 },
            },
            TraceEvent {
                cycle: Cycle(3),
                scope: BANK,
                kind: EventKind::StoreCommit { block: B, wts: 5 },
            },
            TraceEvent {
                cycle: Cycle(4),
                scope: SM0,
                kind: EventKind::Hit {
                    block: B,
                    warp: 0,
                    warp_ts: 12,
                    rts: 10,
                },
            },
            TraceEvent {
                cycle: Cycle(5),
                scope: BANK,
                kind: EventKind::BankReset { bank: 0, epoch: 0 },
            },
        ];
        let r = scan_trace(&dirty);
        for rule in [
            "store-inside-lease",
            "write-write-order",
            "read-past-lease",
            "missing-epoch-bump",
        ] {
            assert!(rules(&r).contains(&rule), "missing {rule} in {r}");
        }
    }
}
