//! Correctness analyses for the G-TSC reproduction.
//!
//! Three layers, each catching bugs the others cannot:
//!
//! * **Online transition sanitizer** — re-exported from
//!   [`gtsc_trace::sanitize`]: per-transition invariant checks hooked
//!   into every GtscL1/GtscL2 (and TC baseline) state change, enabled
//!   with `GpuConfig::sanitize`. Catches *transient* violations that
//!   self-heal before the end-of-run value checker looks.
//! * **Declarative trace lints** ([`lint`]) — an offline rule pass over
//!   recorded [`gtsc_trace::TraceEvent`] streams. Catches protocol-flow
//!   mistakes (a hit past its lease, a store scheduled inside one) in
//!   any trace, including ones captured from full-scale runs where the
//!   sanitizer was off.
//! * **Exhaustive litmus model checking** ([`litmus`], [`harness`],
//!   [`spec`], [`explore`]) — every schedule of tiny two-to-four-thread
//!   programs driven through the real `GtscL1`/`GtscL2` controllers and
//!   compared against an operational reference model of the paper's
//!   timestamp rules. Catches ordering bugs that need a particular
//!   interleaving the random-traffic tests never draw.
//!
//! The crate also ships two binaries: `model_check` (runs the litmus
//! suites, including IRIW) and `src_lint` (a source-level lint keeping
//! raw timestamp arithmetic confined to `gtsc_core::rules`).

pub mod explore;
pub mod harness;
pub mod lint;
pub mod litmus;
pub mod spec;
pub mod srclint;

pub use explore::{explore_all, Explored, Schedulable};
pub use gtsc_trace::{Sanitizer, Transition};
pub use harness::{HarnessCfg, MicroGtsc};
pub use lint::{lint_events, Finding, LintReport, LintSpec, Severity, LINTS};
pub use litmus::{all_litmus, run_litmus, Litmus, LitmusRun, Mode, Op};
pub use spec::SpecMachine;
pub use srclint::{lint_sources, SrcFinding};
