//! Correctness analyses for the G-TSC reproduction.
//!
//! Three layers, each catching bugs the others cannot:
//!
//! * **Online transition sanitizer** — re-exported from
//!   [`gtsc_trace::sanitize`]: per-transition invariant checks hooked
//!   into every GtscL1/GtscL2 (and TC baseline) state change, enabled
//!   with `GpuConfig::sanitize`. Catches *transient* violations that
//!   self-heal before the end-of-run value checker looks.
//! * **Declarative trace lints** ([`lint`]) — an offline rule pass over
//!   recorded [`gtsc_trace::TraceEvent`] streams. Catches protocol-flow
//!   mistakes (a hit past its lease, a store scheduled inside one) in
//!   any trace, including ones captured from full-scale runs where the
//!   sanitizer was off.
//! * **Exhaustive litmus model checking** ([`litmus`], [`harness`],
//!   [`spec`], [`explore`]) — every schedule of tiny two-to-four-thread
//!   programs driven through the real `GtscL1`/`GtscL2` controllers and
//!   compared against an operational reference model of the paper's
//!   timestamp rules. Catches ordering bugs that need a particular
//!   interleaving the random-traffic tests never draw. The [`multi`]
//!   harness extends this to the multi-GPU topology: threads pinned to
//!   devices, one `DeviceL2` per device, a shared `HomeNode`, with
//!   cross-GPU shapes (`xmp-sc`, `xiriw-sc`, a device-crash variant)
//!   checked against the same flat reference model — hierarchical
//!   lease delegation must not admit anything single-level G-TSC
//!   forbids.
//! * **Happens-before race oracle** ([`races`]) — an independent
//!   ordering checker that derives happens-before from message
//!   causality alone (vector clocks over send/receive edges, never the
//!   protocol's own timestamps) and verifies that every load is covered
//!   by a genuinely exclusive lease interval and that timestamp order
//!   extends happens-before. Runs inside every litmus exploration and,
//!   in a lenient trace-tier form ([`races::scan_trace`]), over
//!   recorded event streams.
//!
//! The crate also ships two binaries: `model_check` (runs the litmus
//! suites, including IRIW, with the race oracle attached) and
//! `src_lint` (the AST-driven source lint from `gtsc-lint`, keeping raw
//! timestamp arithmetic confined to `gtsc_core::rules` and simulator
//! state deterministic).

pub mod explore;
pub mod harness;
pub mod lint;
pub mod litmus;
pub mod multi;
pub mod races;
pub mod spec;
pub mod srclint;

pub use explore::{explore_all, Explored, Schedulable};
pub use gtsc_trace::{Sanitizer, Transition};
pub use harness::{HarnessCfg, MicroGtsc};
pub use lint::{lint_events, Finding, LintReport, LintSpec, Severity, LINTS};
pub use litmus::{
    all_litmus, all_litmus_multi, run_litmus, run_litmus_multi, Litmus, LitmusRun, Mode,
    MultiLitmus, Op,
};
pub use multi::{MicroMultiGtsc, MultiHarnessCfg};
pub use races::{
    scan_trace, RaceEventKind, RaceFinding, RaceOracle, RaceReport, RespMeta, MAX_RACE_FINDINGS,
};
pub use spec::SpecMachine;
pub use srclint::{lint_sources, SrcFinding};
