//! Litmus shapes and the checker that runs them.
//!
//! Each [`Litmus`] is a tiny multi-threaded program (the classical
//! shapes: message passing, store buffering, load buffering, coherent
//! read-read, IRIW) plus the outcomes its consistency model forbids.
//! [`run_litmus`] explores **every** schedule of the shape through the
//! real controllers ([`crate::MicroGtsc`]) and through the reference
//! model ([`crate::SpecMachine`]), then checks:
//!
//! * **soundness** — every implementation outcome is producible by the
//!   reference model (`impl ⊆ spec`);
//! * **forbidden-outcome disjointness** — none of the shape's forbidden
//!   outcomes appears in any schedule;
//! * **required outcomes** — designated outcomes (e.g. the sequential
//!   execution) actually occur, guarding against vacuous passes;
//! * **sanitizer cleanliness** — the online transition sanitizer stayed
//!   silent on every schedule.
//!
//! # Consistency modes
//!
//! Under [`Mode::Sc`] each thread issues in program order (the
//! simulator's SC issue rule: one outstanding access per warp). Under
//! [`Mode::Rc`] relaxed issue is modelled by running every per-thread
//! reordering that respects fences and same-block program order — the
//! reorderings an RC core may perform — and taking the union of
//! outcomes on both the implementation and the reference model. A
//! fenced RC litmus therefore collapses back to its SC schedule set.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::explore::explore_all;
use crate::harness::{HarnessCfg, MicroGtsc};
use crate::multi::{MicroMultiGtsc, MultiHarnessCfg};
use crate::spec::SpecMachine;

/// One thread operation in a litmus program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Load from `block`; the observed store label is recorded under
    /// `id` (unique across the whole litmus).
    Load {
        /// Outcome key for this load.
        id: u32,
        /// Block read.
        block: u64,
    },
    /// Store `label` to `block` (labels are unique and nonzero; `0` is
    /// the initial contents of every block).
    Store {
        /// Block written.
        block: u64,
        /// The value, for outcome reporting.
        label: u32,
    },
    /// Ordering fence: under [`Mode::Rc`], ops never reorder across it.
    Fence,
}

/// An observed execution: load id → store label (0 = initial value).
pub type Outcome = BTreeMap<u32, u32>;

/// A named predicate over an [`Outcome`].
pub type OutcomePred = (&'static str, fn(&Outcome) -> bool);

/// Issue model to check a litmus under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Sequential consistency: program order, one outstanding access.
    Sc,
    /// Release consistency: fence-respecting per-thread reorderings.
    Rc,
}

/// A litmus shape.
#[derive(Debug, Clone)]
pub struct Litmus {
    /// Shape name (e.g. `mp-sc`).
    pub name: &'static str,
    /// One program per thread.
    pub threads: Vec<Vec<Op>>,
    /// Issue model.
    pub mode: Mode,
    /// Harness configuration (lease, timestamp width).
    pub cfg: HarnessCfg,
    /// Outcomes that must never appear.
    pub forbidden: Vec<OutcomePred>,
    /// Outcomes that must appear in the implementation's explored set.
    pub required: Vec<OutcomePred>,
}

/// The result of checking one litmus.
#[derive(Debug, Clone)]
pub struct LitmusRun {
    /// Shape name.
    pub name: &'static str,
    /// Distinct implementation outcomes over all schedules.
    pub impl_outcomes: BTreeSet<Outcome>,
    /// Distinct reference-model outcomes over all schedules.
    pub spec_outcomes: BTreeSet<Outcome>,
    /// Implementation schedules executed.
    pub schedules: u64,
    /// Reference-model schedules executed.
    pub spec_schedules: u64,
    /// Whether either exploration hit the schedule cap.
    pub truncated: bool,
    /// Implementation outcomes the reference model cannot produce.
    pub unexplained: Vec<Outcome>,
    /// `(predicate name, outcome)` for forbidden outcomes that appeared.
    pub forbidden_hits: Vec<(&'static str, Outcome)>,
    /// Names of required outcomes that never appeared.
    pub missing_required: Vec<&'static str>,
    /// Sanitizer violations from any schedule (deduplicated).
    pub sanitizer_violations: Vec<String>,
    /// Race-oracle findings from any schedule (deduplicated).
    pub race_findings: Vec<String>,
}

impl LitmusRun {
    /// Whether every check passed.
    #[must_use]
    pub fn ok(&self) -> bool {
        !self.truncated
            && self.unexplained.is_empty()
            && self.forbidden_hits.is_empty()
            && self.missing_required.is_empty()
            && self.sanitizer_violations.is_empty()
            && self.race_findings.is_empty()
    }

    /// A one-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{:18} {:4} impl schedules, {:4} spec, {:2} outcomes ⊆ {:2} … {}",
            self.name,
            self.schedules,
            self.spec_schedules,
            self.impl_outcomes.len(),
            self.spec_outcomes.len(),
            if self.ok() { "ok" } else { "FAIL" }
        )
    }
}

/// Every fence-respecting order of one segment that preserves the
/// relative order of same-block ops (per-block coherence is kept even
/// by relaxed GPU cores: accesses to one address from one thread stay
/// ordered).
fn segment_orders(seg: &[Op]) -> Vec<Vec<Op>> {
    // One FIFO per block, in first-touch order.
    let mut queues: Vec<VecDeque<Op>> = Vec::new();
    let mut block_of: Vec<u64> = Vec::new();
    for op in seg {
        let b = match op {
            Op::Load { block, .. } | Op::Store { block, .. } => *block,
            Op::Fence => unreachable!("segments are fence-free"),
        };
        if let Some(i) = block_of.iter().position(|&x| x == b) {
            queues[i].push_back(*op);
        } else {
            block_of.push(b);
            queues.push(VecDeque::from([*op]));
        }
    }
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(seg.len());
    fn rec(queues: &mut [VecDeque<Op>], cur: &mut Vec<Op>, out: &mut Vec<Vec<Op>>) {
        let mut advanced = false;
        for i in 0..queues.len() {
            if let Some(op) = queues[i].pop_front() {
                advanced = true;
                cur.push(op);
                rec(queues, cur, out);
                cur.pop();
                queues[i].push_front(op);
            }
        }
        if !advanced {
            out.push(cur.clone());
        }
    }
    rec(&mut queues, &mut cur, &mut out);
    out
}

/// All per-thread issue orders allowed by `mode`: the program itself
/// under SC; under RC, the cross product of each fence-delimited
/// segment's same-block-preserving permutations.
fn thread_orders(prog: &[Op], mode: Mode) -> Vec<Vec<Op>> {
    if mode == Mode::Sc {
        return vec![prog.to_vec()];
    }
    let mut segments: Vec<Vec<Op>> = vec![Vec::new()];
    for op in prog {
        if matches!(op, Op::Fence) {
            segments.push(Vec::new());
        } else if let Some(last) = segments.last_mut() {
            last.push(*op);
        }
    }
    let mut orders: Vec<Vec<Op>> = vec![Vec::new()];
    for seg in &segments {
        let seg_orders = segment_orders(seg);
        let mut next = Vec::with_capacity(orders.len() * seg_orders.len());
        for prefix in &orders {
            for so in &seg_orders {
                let mut p = prefix.clone();
                p.extend_from_slice(so);
                next.push(p);
            }
        }
        orders = next;
    }
    orders
}

/// Explores every schedule of every allowed issue order of `l`, on the
/// implementation and the reference model, and evaluates all checks.
/// `max_schedules` bounds each exploration (per issue-order combination).
#[must_use]
pub fn run_litmus(l: &Litmus, max_schedules: u64) -> LitmusRun {
    // Cross product of per-thread issue orders.
    let per_thread: Vec<Vec<Vec<Op>>> =
        l.threads.iter().map(|p| thread_orders(p, l.mode)).collect();
    let mut combos: Vec<Vec<Vec<Op>>> = vec![Vec::new()];
    for orders in &per_thread {
        let mut next = Vec::with_capacity(combos.len() * orders.len());
        for prefix in &combos {
            for o in orders {
                let mut c = prefix.clone();
                c.push(o.clone());
                next.push(c);
            }
        }
        combos = next;
    }

    let mut impl_outcomes = BTreeSet::new();
    let mut spec_outcomes = BTreeSet::new();
    let mut sanitizer_violations = BTreeSet::new();
    let mut race_findings = BTreeSet::new();
    let mut schedules = 0;
    let mut spec_schedules = 0;
    let mut truncated = false;
    for programs in &combos {
        let r = explore_all(|| MicroGtsc::new(programs, l.cfg), max_schedules);
        truncated |= r.truncated;
        schedules += r.schedules;
        for (obs, violations, races) in r.outcomes {
            impl_outcomes.insert(obs);
            sanitizer_violations.extend(violations);
            race_findings.extend(races);
        }
        let s = explore_all(|| SpecMachine::new(programs, l.cfg.lease), max_schedules);
        truncated |= s.truncated;
        spec_schedules += s.schedules;
        spec_outcomes.extend(s.outcomes);
    }

    let unexplained: Vec<Outcome> = impl_outcomes.difference(&spec_outcomes).cloned().collect();
    let mut forbidden_hits = Vec::new();
    for (name, pred) in &l.forbidden {
        for o in &impl_outcomes {
            if pred(o) {
                forbidden_hits.push((*name, o.clone()));
            }
        }
    }
    let missing_required: Vec<&'static str> = l
        .required
        .iter()
        .filter(|(_, pred)| !impl_outcomes.iter().any(pred))
        .map(|(name, _)| *name)
        .collect();
    LitmusRun {
        name: l.name,
        impl_outcomes,
        spec_outcomes,
        schedules,
        spec_schedules,
        truncated,
        unexplained,
        forbidden_hits,
        missing_required,
        sanitizer_violations: sanitizer_violations.into_iter().collect(),
        race_findings: race_findings.into_iter().collect(),
    }
}

fn ld(id: u32, block: u64) -> Op {
    Op::Load { id, block }
}
fn st(block: u64, label: u32) -> Op {
    Op::Store { block, label }
}

/// Message passing: T0 stores data (x=1) then flag (y=2); T1 loads flag
/// then data. Seeing the flag without the data is forbidden under SC.
#[must_use]
pub fn mp_sc() -> Litmus {
    Litmus {
        name: "mp-sc",
        threads: vec![vec![st(0, 1), st(1, 2)], vec![ld(10, 1), ld(11, 0)]],
        mode: Mode::Sc,
        cfg: HarnessCfg::default(),
        forbidden: vec![("flag-without-data", |o| o[&10] == 2 && o[&11] == 0)],
        required: vec![
            ("sequential", |o| o[&10] == 2 && o[&11] == 1),
            ("both-early", |o| o[&10] == 0 && o[&11] == 0),
        ],
    }
}

/// Message passing with fences under RC: the fence restores the SC
/// guarantee.
#[must_use]
pub fn mp_rc_fenced() -> Litmus {
    Litmus {
        name: "mp-rc-fenced",
        threads: vec![
            vec![st(0, 1), Op::Fence, st(1, 2)],
            vec![ld(10, 1), Op::Fence, ld(11, 0)],
        ],
        mode: Mode::Rc,
        cfg: HarnessCfg::default(),
        forbidden: vec![("flag-without-data", |o| o[&10] == 2 && o[&11] == 0)],
        required: vec![("sequential", |o| o[&10] == 2 && o[&11] == 1)],
    }
}

/// Message passing without fences under RC: the relaxed reordering must
/// actually be observable (otherwise the RC model is vacuously strong).
#[must_use]
pub fn mp_rc_relaxed() -> Litmus {
    Litmus {
        name: "mp-rc-relaxed",
        threads: vec![vec![st(0, 1), st(1, 2)], vec![ld(10, 1), ld(11, 0)]],
        mode: Mode::Rc,
        cfg: HarnessCfg::default(),
        forbidden: vec![],
        required: vec![
            ("sequential", |o| o[&10] == 2 && o[&11] == 1),
            ("relaxed-reorder", |o| o[&10] == 2 && o[&11] == 0),
        ],
    }
}

/// Store buffering: both threads store then load the other's block.
/// Both loads returning the initial value is forbidden under SC.
#[must_use]
pub fn sb_sc() -> Litmus {
    Litmus {
        name: "sb-sc",
        threads: vec![vec![st(0, 1), ld(20, 1)], vec![st(1, 2), ld(21, 0)]],
        mode: Mode::Sc,
        cfg: HarnessCfg::default(),
        forbidden: vec![("both-zero", |o| o[&20] == 0 && o[&21] == 0)],
        required: vec![("one-sided", |o| o[&20] == 2 || o[&21] == 1)],
    }
}

/// Store buffering under relaxed RC: both-zero becomes observable.
#[must_use]
pub fn sb_rc_relaxed() -> Litmus {
    Litmus {
        name: "sb-rc-relaxed",
        threads: vec![vec![st(0, 1), ld(20, 1)], vec![st(1, 2), ld(21, 0)]],
        mode: Mode::Rc,
        cfg: HarnessCfg::default(),
        forbidden: vec![],
        required: vec![("both-zero", |o| o[&20] == 0 && o[&21] == 0)],
    }
}

/// Load buffering: loads first, stores to the other block after. Both
/// loads seeing the other thread's (later) store is forbidden under SC.
#[must_use]
pub fn lb_sc() -> Litmus {
    Litmus {
        name: "lb-sc",
        threads: vec![vec![ld(30, 0), st(1, 3)], vec![ld(31, 1), st(0, 4)]],
        mode: Mode::Sc,
        cfg: HarnessCfg::default(),
        forbidden: vec![("both-late", |o| o[&30] == 4 && o[&31] == 3)],
        required: vec![("both-zero", |o| o[&30] == 0 && o[&31] == 0)],
    }
}

/// Coherent read-read: two stores to one block; a reader must never
/// observe them moving backwards, in any mode (same-block order is kept
/// even under RC).
#[must_use]
pub fn corr_rc() -> Litmus {
    fn rank(label: u32) -> u32 {
        match label {
            0 => 0,
            5 => 1,
            6 => 2,
            _ => unreachable!("corr labels are 0/5/6"),
        }
    }
    Litmus {
        name: "corr-rc",
        threads: vec![vec![st(0, 5), st(0, 6)], vec![ld(40, 0), ld(41, 0)]],
        mode: Mode::Rc,
        cfg: HarnessCfg::default(),
        forbidden: vec![("read-backwards", |o| rank(o[&41]) < rank(o[&40]))],
        required: vec![
            ("final", |o| o[&40] == 6 && o[&41] == 6),
            ("initial", |o| o[&40] == 0 && o[&41] == 0),
        ],
    }
}

/// IRIW: two writers to independent blocks, two readers observing them
/// in opposite orders. Disagreement on the store order is forbidden
/// under SC. The largest shape in the suite (multinomial(1,1,2,2) = 180
/// base schedules plus renewal-retry branching).
#[must_use]
pub fn iriw_sc() -> Litmus {
    Litmus {
        name: "iriw-sc",
        threads: vec![
            vec![st(0, 7)],
            vec![st(1, 8)],
            vec![ld(50, 0), ld(51, 1)],
            vec![ld(52, 1), ld(53, 0)],
        ],
        mode: Mode::Sc,
        cfg: HarnessCfg::default(),
        forbidden: vec![("readers-disagree", |o| {
            o[&50] == 7 && o[&51] == 0 && o[&52] == 8 && o[&53] == 0
        })],
        required: vec![("sequential", |o| {
            o[&50] == 7 && o[&51] == 8 && o[&52] == 8 && o[&53] == 7
        })],
    }
}

/// Message passing across timestamp rollover: a 4-bit timestamp space
/// with the default lease forces a Section V-D reset on the very first
/// store, on every schedule. The reference model never rolls over, so
/// `impl ⊆ spec` proves the reset cannot manufacture new outcomes.
#[must_use]
pub fn mp_rollover_sc() -> Litmus {
    Litmus {
        name: "mp-rollover-sc",
        threads: vec![vec![st(0, 1), st(1, 2)], vec![ld(10, 1), ld(11, 0)]],
        mode: Mode::Sc,
        cfg: HarnessCfg {
            lease: 10,
            ts_bits: 4,
            ..HarnessCfg::default()
        },
        forbidden: vec![("flag-without-data", |o| o[&10] == 2 && o[&11] == 0)],
        required: vec![("sequential", |o| o[&10] == 2 && o[&11] == 1)],
    }
}

/// Coherent read-read across repeated rollovers: four stores with a
/// 5-bit timestamp space reset the bank several times mid-run; reads
/// must still never move backwards.
#[must_use]
pub fn corr_rollover_sc() -> Litmus {
    fn rank(label: u32) -> u32 {
        match label {
            0 => 0,
            5 => 1,
            6 => 2,
            7 => 3,
            8 => 4,
            _ => unreachable!("corr-rollover labels are 0/5/6/7/8"),
        }
    }
    Litmus {
        name: "corr-rollover-sc",
        threads: vec![
            vec![st(0, 5), st(0, 6), st(0, 7), st(0, 8)],
            vec![ld(40, 0), ld(41, 0), ld(42, 0)],
        ],
        mode: Mode::Sc,
        cfg: HarnessCfg {
            lease: 10,
            ts_bits: 5,
            ..HarnessCfg::default()
        },
        forbidden: vec![("read-backwards", |o| {
            rank(o[&41]) < rank(o[&40]) || rank(o[&42]) < rank(o[&41])
        })],
        required: vec![("final", |o| o[&42] == 8)],
    }
}

/// Message passing across an L2 bank crash: just before the second
/// serve the bank loses its tag array and in-flight state mid-litmus.
/// Recovery (DRAM rebuild behind a global epoch bump) must neither let
/// the forbidden MP outcome through nor manufacture any outcome the
/// never-crashing reference model cannot produce (`impl ⊆ spec` across
/// the reset).
#[must_use]
pub fn mp_bank_crash_sc() -> Litmus {
    Litmus {
        name: "mp-crash-sc",
        threads: vec![vec![st(0, 1), st(1, 2)], vec![ld(10, 1), ld(11, 0)]],
        mode: Mode::Sc,
        cfg: HarnessCfg {
            crash_after_serves: Some(2),
            ..HarnessCfg::default()
        },
        forbidden: vec![("flag-without-data", |o| o[&10] == 2 && o[&11] == 0)],
        required: vec![("sequential", |o| o[&10] == 2 && o[&11] == 1)],
    }
}

/// Coherent read-read across an L2 bank crash: the reader's two loads
/// straddle the reset and must still never observe the two stores
/// moving backwards — the recovered bank serves only versions at least
/// as new as what DRAM durably holds.
#[must_use]
pub fn corr_bank_crash_sc() -> Litmus {
    fn rank(label: u32) -> u32 {
        match label {
            0 => 0,
            5 => 1,
            6 => 2,
            _ => unreachable!("corr-crash labels are 0/5/6"),
        }
    }
    Litmus {
        name: "corr-crash-sc",
        threads: vec![vec![st(0, 5), st(0, 6)], vec![ld(40, 0), ld(41, 0)]],
        mode: Mode::Sc,
        cfg: HarnessCfg {
            crash_after_serves: Some(2),
            ..HarnessCfg::default()
        },
        forbidden: vec![("read-backwards", |o| rank(o[&41]) < rank(o[&40]))],
        required: vec![("final", |o| o[&40] == 6 && o[&41] == 6)],
    }
}

/// Message passing under a retransmit storm: every request reaches the
/// bank twice (an end-to-end retry racing its original), so every ack
/// and fill comes back doubled. The replay filter and waiter
/// bookkeeping must keep the duplicates invisible — same outcome set as
/// plain `mp-sc`.
#[must_use]
pub fn mp_retransmit_storm_sc() -> Litmus {
    Litmus {
        name: "mp-dup-sc",
        threads: vec![vec![st(0, 1), st(1, 2)], vec![ld(10, 1), ld(11, 0)]],
        mode: Mode::Sc,
        cfg: HarnessCfg {
            duplicate_serves: true,
            ..HarnessCfg::default()
        },
        forbidden: vec![("flag-without-data", |o| o[&10] == 2 && o[&11] == 0)],
        required: vec![
            ("sequential", |o| o[&10] == 2 && o[&11] == 1),
            ("both-early", |o| o[&10] == 0 && o[&11] == 0),
        ],
    }
}

/// A litmus shape over multiple devices joined by the inter-GPU fabric:
/// each thread is pinned to a device, and the whole shape runs through
/// [`MicroMultiGtsc`] (per-device `DeviceL2`s under a shared
/// `HomeNode`). The reference model stays the *flat* [`SpecMachine`] —
/// hierarchical delegation must not admit any outcome the single-level
/// timestamp rules forbid, so `impl ⊆ spec` is checked against the flat
/// model with the grant lease (the widest interval any copy can hold).
///
/// Multi-device shapes are SC-only: per-thread issue stays in program
/// order, and the nondeterminism under test is the home's serialization
/// of cross-device traffic.
#[derive(Debug, Clone)]
pub struct MultiLitmus {
    /// Shape name (e.g. `xmp-sc`).
    pub name: &'static str,
    /// One `(device, program)` pair per thread.
    pub threads: Vec<(u16, Vec<Op>)>,
    /// Harness configuration (leases, timestamp width, device crash).
    pub cfg: MultiHarnessCfg,
    /// Outcomes that must never appear.
    pub forbidden: Vec<OutcomePred>,
    /// Outcomes that must appear in the implementation's explored set.
    pub required: Vec<OutcomePred>,
}

/// Explores every schedule of a multi-device litmus on the hierarchical
/// implementation and the flat reference model, and evaluates the same
/// checks as [`run_litmus`].
#[must_use]
pub fn run_litmus_multi(l: &MultiLitmus, max_schedules: u64) -> LitmusRun {
    let mut impl_outcomes = BTreeSet::new();
    let mut sanitizer_violations = BTreeSet::new();
    let mut race_findings = BTreeSet::new();
    let r = explore_all(|| MicroMultiGtsc::new(&l.threads, l.cfg), max_schedules);
    let mut truncated = r.truncated;
    let schedules = r.schedules;
    for (obs, violations, races) in r.outcomes {
        impl_outcomes.insert(obs);
        sanitizer_violations.extend(violations);
        race_findings.extend(races);
    }
    let flat: Vec<Vec<Op>> = l.threads.iter().map(|(_, p)| p.clone()).collect();
    let s = explore_all(
        || SpecMachine::new(&flat, l.cfg.grant_lease.max(l.cfg.lease)),
        max_schedules,
    );
    truncated |= s.truncated;
    let spec_schedules = s.schedules;
    let spec_outcomes = s.outcomes;

    let unexplained: Vec<Outcome> = impl_outcomes.difference(&spec_outcomes).cloned().collect();
    let mut forbidden_hits = Vec::new();
    for (name, pred) in &l.forbidden {
        for o in &impl_outcomes {
            if pred(o) {
                forbidden_hits.push((*name, o.clone()));
            }
        }
    }
    let missing_required: Vec<&'static str> = l
        .required
        .iter()
        .filter(|(_, pred)| !impl_outcomes.iter().any(pred))
        .map(|(name, _)| *name)
        .collect();
    LitmusRun {
        name: l.name,
        impl_outcomes,
        spec_outcomes,
        schedules,
        spec_schedules,
        truncated,
        unexplained,
        forbidden_hits,
        missing_required,
        sanitizer_violations: sanitizer_violations.into_iter().collect(),
        race_findings: race_findings.into_iter().collect(),
    }
}

/// Cross-device message passing: the writer's two stores commit at the
/// home via device 0, the reader observes through device 1's grants.
/// Seeing the flag without the data is forbidden — hierarchical leases
/// must keep the SC guarantee across the fabric.
#[must_use]
pub fn xmp_sc() -> MultiLitmus {
    MultiLitmus {
        name: "xmp-sc",
        threads: vec![
            (0, vec![st(0, 1), st(1, 2)]),
            (1, vec![ld(10, 1), ld(11, 0)]),
        ],
        cfg: MultiHarnessCfg::default(),
        forbidden: vec![("flag-without-data", |o| o[&10] == 2 && o[&11] == 0)],
        required: vec![
            ("sequential", |o| o[&10] == 2 && o[&11] == 1),
            ("both-early", |o| o[&10] == 0 && o[&11] == 0),
        ],
    }
}

/// Cross-device store buffering: both devices store their own block and
/// read the other's. Both loads returning the initial value is
/// forbidden under SC even with each thread's traffic flowing through a
/// different device.
#[must_use]
pub fn xsb_sc() -> MultiLitmus {
    MultiLitmus {
        name: "xsb-sc",
        threads: vec![
            (0, vec![st(0, 1), ld(20, 1)]),
            (1, vec![st(1, 2), ld(21, 0)]),
        ],
        cfg: MultiHarnessCfg::default(),
        forbidden: vec![("both-zero", |o| o[&20] == 0 && o[&21] == 0)],
        required: vec![("one-sided", |o| o[&20] == 2 || o[&21] == 1)],
    }
}

/// IRIW across four devices: two writers to independent blocks, two
/// readers observing them in opposite orders, every thread on its own
/// device. Disagreement on the store order is forbidden — the home's
/// timestamp serialization must look like one total order to every
/// device, however grants are delegated.
#[must_use]
pub fn xiriw_sc() -> MultiLitmus {
    MultiLitmus {
        name: "xiriw-sc",
        threads: vec![
            (0, vec![st(0, 7)]),
            (1, vec![st(1, 8)]),
            (2, vec![ld(50, 0), ld(51, 1)]),
            (3, vec![ld(52, 1), ld(53, 0)]),
        ],
        cfg: MultiHarnessCfg::default(),
        forbidden: vec![("readers-disagree", |o| {
            o[&50] == 7 && o[&51] == 0 && o[&52] == 8 && o[&53] == 0
        })],
        required: vec![("sequential", |o| {
            o[&50] == 7 && o[&51] == 8 && o[&52] == 8 && o[&53] == 7
        })],
    }
}

/// Cross-device message passing across a device crash: the writer's
/// device is wiped just before the second serve, so on many schedules
/// its committed stores exist only at the home when the reader arrives.
/// Recovery (global epoch bump + grant reacquisition) must neither let
/// the forbidden MP outcome through nor manufacture any outcome the
/// never-crashing flat model cannot produce.
#[must_use]
pub fn xmp_device_crash_sc() -> MultiLitmus {
    MultiLitmus {
        name: "xmp-crash-sc",
        threads: vec![
            (0, vec![st(0, 1), st(1, 2)]),
            (1, vec![ld(10, 1), ld(11, 0)]),
        ],
        cfg: MultiHarnessCfg {
            crash_device_after_serves: Some((2, 0)),
            ..MultiHarnessCfg::default()
        },
        forbidden: vec![("flag-without-data", |o| o[&10] == 2 && o[&11] == 0)],
        required: vec![("sequential", |o| o[&10] == 2 && o[&11] == 1)],
    }
}

/// The cross-GPU suite, cheapest first (the `model_check` binary and
/// the exhaustive tests both run it alongside [`all_litmus`]).
#[must_use]
pub fn all_litmus_multi() -> Vec<MultiLitmus> {
    vec![xmp_sc(), xsb_sc(), xmp_device_crash_sc(), xiriw_sc()]
}

/// The full suite, cheapest first (the `model_check` binary and the
/// exhaustive tests both run it).
#[must_use]
pub fn all_litmus() -> Vec<Litmus> {
    vec![
        mp_sc(),
        sb_sc(),
        lb_sc(),
        corr_rc(),
        mp_rc_fenced(),
        mp_rc_relaxed(),
        sb_rc_relaxed(),
        mp_rollover_sc(),
        corr_rollover_sc(),
        mp_bank_crash_sc(),
        corr_bank_crash_sc(),
        mp_retransmit_storm_sc(),
        iriw_sc(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_orders_preserve_same_block_order() {
        // Two ops on block 0, one on block 1: 3 interleavings, never
        // swapping the block-0 pair.
        let seg = [st(0, 1), ld(2, 0), ld(3, 1)];
        let orders = segment_orders(&seg);
        assert_eq!(orders.len(), 3);
        for o in &orders {
            let i_st = o.iter().position(|x| *x == st(0, 1)).expect("store kept");
            let i_ld = o.iter().position(|x| *x == ld(2, 0)).expect("load kept");
            assert!(i_st < i_ld, "same-block order broken: {o:?}");
        }
    }

    #[test]
    fn fences_block_reordering() {
        let prog = vec![st(0, 1), Op::Fence, st(1, 2)];
        let orders = thread_orders(&prog, Mode::Rc);
        assert_eq!(orders, vec![vec![st(0, 1), st(1, 2)]]);
        // Without the fence, both orders exist.
        let free = thread_orders(&[st(0, 1), st(1, 2)], Mode::Rc);
        assert_eq!(free.len(), 2);
        // SC never reorders.
        assert_eq!(thread_orders(&[st(0, 1), st(1, 2)], Mode::Sc).len(), 1);
    }
}
