//! Operational reference model of the G-TSC timestamp rules.
//!
//! A direct transcription of the paper's Figures 2–5 with *atomic*
//! steps: each load or store takes effect at the shared state in one
//! indivisible transition, with none of the implementation's pipelining,
//! MSHRs, renewal round-trips, or timestamp rollover. Timestamps are
//! unbounded `u64`s, so the model never rolls over — which is exactly
//! what makes it a specification for the rollover litmus tests: a
//! correct reset must not let the implementation observe anything the
//! unbounded model cannot.
//!
//! The model tracks, per the paper:
//!
//! * per block: the globally visible version's `wts`, the granted read
//!   lease bound `rts`, and the store label carried by that version;
//! * per thread: the warp timestamp `warp_ts` (Section III-B) and the
//!   private copy last filled into its L1, if any (G-TSC L1s are
//!   write-no-allocate, so a store installs a private copy only when
//!   the block is already resident);
//! * per load: the label it observed.
//!
//! Scheduler nondeterminism is exposed through [`crate::Schedulable`],
//! so [`crate::explore_all`] enumerates the model's full outcome set
//! for comparison against the implementation harness.

use std::collections::BTreeMap;

use crate::explore::Schedulable;
use crate::litmus::Op;

/// Shared (L2/global) state of one block.
#[derive(Debug, Clone, Copy)]
struct GlobalBlock {
    wts: u64,
    rts: u64,
    label: u32,
}

/// One thread's private (L1) copy of a block.
#[derive(Debug, Clone, Copy)]
struct PrivateBlock {
    wts: u64,
    rts: u64,
    label: u32,
}

/// The reference model: threads stepping atomically over shared
/// timestamped blocks.
#[derive(Debug, Clone)]
pub struct SpecMachine {
    programs: Vec<Vec<Op>>,
    pc: Vec<usize>,
    warp_ts: Vec<u64>,
    privs: Vec<BTreeMap<u64, PrivateBlock>>,
    global: BTreeMap<u64, GlobalBlock>,
    observed: BTreeMap<u32, u32>,
    lease: u64,
}

impl SpecMachine {
    /// A fresh model for `programs` (one op vector per thread) with the
    /// given lease length. Fences are dropped: the model's steps are
    /// already atomic and per-thread program order is preserved, so a
    /// fence adds nothing (reorderings are modelled by permuting the
    /// program *before* construction, as [`crate::litmus`] does for the
    /// RC variants).
    #[must_use]
    pub fn new(programs: &[Vec<Op>], lease: u64) -> Self {
        let programs: Vec<Vec<Op>> = programs
            .iter()
            .map(|p| {
                p.iter()
                    .filter(|op| !matches!(op, Op::Fence))
                    .copied()
                    .collect()
            })
            .collect();
        let n = programs.len();
        SpecMachine {
            programs,
            pc: vec![0; n],
            // All warp timestamps start at 1 (Section III-B).
            warp_ts: vec![1; n],
            privs: vec![BTreeMap::new(); n],
            global: BTreeMap::new(),
            observed: BTreeMap::new(),
            lease,
        }
    }

    fn runnable(&self) -> Vec<usize> {
        (0..self.programs.len())
            .filter(|&t| self.pc[t] < self.programs[t].len())
            .collect()
    }

    /// Fetches the block's global state, initialising it the way a DRAM
    /// fill does: `wts = mem_ts = 1`, `rts = mem_ts + lease`, label 0
    /// (the pre-initialised contents of all memory).
    fn global_entry(&mut self, block: u64) -> &mut GlobalBlock {
        let lease = self.lease;
        self.global.entry(block).or_insert(GlobalBlock {
            wts: 1,
            rts: 1 + lease,
            label: 0,
        })
    }

    /// Executes thread `t`'s next op atomically.
    fn step(&mut self, t: usize) {
        let op = self.programs[t][self.pc[t]];
        self.pc[t] += 1;
        match op {
            Op::Fence => unreachable!("fences are stripped at construction"),
            Op::Load { id, block } => {
                let warp_ts = self.warp_ts[t];
                // L1 hit (Figure 2): a private copy whose lease covers
                // the warp is read locally.
                if let Some(p) = self.privs[t].get(&block) {
                    if warp_ts <= p.rts {
                        self.observed.insert(id, p.label);
                        self.warp_ts[t] = warp_ts.max(p.wts);
                        return;
                    }
                }
                // Miss or expired: fetch from the shared state. The L2
                // extends the lease to cover the requester (Figure 4)
                // and the warp moves up to the version's wts.
                let lease = self.lease;
                let g = self.global_entry(block);
                g.rts = g.rts.max(warp_ts + lease);
                let snap = *g;
                self.privs[t].insert(
                    block,
                    PrivateBlock {
                        wts: snap.wts,
                        rts: snap.rts,
                        label: snap.label,
                    },
                );
                self.observed.insert(id, snap.label);
                self.warp_ts[t] = warp_ts.max(snap.wts);
            }
            Op::Store { block, label } => {
                // Figure 5: the store is scheduled after every granted
                // lease and after the writer's own past, and the new
                // version gets a fresh lease.
                let warp_ts = self.warp_ts[t];
                let lease = self.lease;
                let g = self.global_entry(block);
                let wts = (g.rts + 1).max(warp_ts);
                *g = GlobalBlock {
                    wts,
                    rts: wts + lease,
                    label,
                };
                // The writer observes its own commit timestamp.
                self.warp_ts[t] = wts;
                // Write-no-allocate: only an already-resident private
                // copy is updated (Figure 7b).
                if self.privs[t].contains_key(&block) {
                    self.privs[t].insert(
                        block,
                        PrivateBlock {
                            wts,
                            rts: wts + lease,
                            label,
                        },
                    );
                }
            }
        }
    }
}

impl Schedulable for SpecMachine {
    type Outcome = BTreeMap<u32, u32>;

    fn fanout(&self) -> usize {
        self.runnable().len()
    }

    fn choose(&mut self, idx: usize) {
        let t = self.runnable()[idx];
        self.step(t);
    }

    fn outcome(&self) -> BTreeMap<u32, u32> {
        self.observed.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore_all;

    fn ld(id: u32, block: u64) -> Op {
        Op::Load { id, block }
    }
    fn st(block: u64, label: u32) -> Op {
        Op::Store { block, label }
    }

    #[test]
    fn sequential_thread_reads_its_own_store() {
        let progs = vec![vec![st(0, 7), ld(1, 0)]];
        let mut m = SpecMachine::new(&progs, 10);
        assert_eq!(m.fanout(), 1);
        m.choose(0);
        m.choose(0);
        assert_eq!(m.fanout(), 0);
        assert_eq!(m.outcome().get(&1), Some(&7));
    }

    #[test]
    fn store_timestamps_follow_figure5() {
        // Store into a freshly fetched block: wts = max(rts + 1, warp_ts)
        // with rts = 1 + lease = 11, so wts = 12 (the Figure 9 value).
        let progs = vec![vec![st(0, 1), ld(9, 0)]];
        let mut m = SpecMachine::new(&progs, 10);
        m.choose(0);
        assert_eq!(m.warp_ts[0], 12);
        assert_eq!(m.global[&0].wts, 12);
        assert_eq!(m.global[&0].rts, 22);
        // Write-no-allocate: no private copy, the read-back fetches.
        m.choose(0);
        assert_eq!(m.outcome().get(&9), Some(&1));
    }

    #[test]
    fn mp_spec_outcomes_exclude_stale_data_after_flag() {
        // Message passing: T0 stores data then flag; T1 loads flag then
        // data. The model must never show flag=new with data=old.
        let progs = vec![vec![st(0, 1), st(1, 2)], vec![ld(10, 1), ld(11, 0)]];
        let r = explore_all(|| SpecMachine::new(&progs, 10), 10_000);
        assert!(!r.truncated);
        // C(4,2) = 6 schedules.
        assert_eq!(r.schedules, 6);
        for o in &r.outcomes {
            let flag = o[&10];
            let data = o[&11];
            assert!(
                !(flag == 2 && data == 0),
                "spec produced the forbidden MP outcome: {o:?}"
            );
        }
        // The fully sequential outcome must be present.
        assert!(r.outcomes.iter().any(|o| o[&10] == 2 && o[&11] == 1));
        // And some schedule shows both loads early (flag unset).
        assert!(r.outcomes.iter().any(|o| o[&10] == 0 && o[&11] == 0));
    }

    #[test]
    fn private_hits_can_hold_a_block_stable_within_a_lease() {
        // T1 loads twice; T0 stores in between on some schedules. The
        // second load may legitimately return the old label (a timestamp
        // hit inside the lease) but must never go *backwards* (new then
        // old).
        let progs = vec![vec![st(0, 5)], vec![ld(20, 0), ld(21, 0)]];
        let r = explore_all(|| SpecMachine::new(&progs, 10), 10_000);
        for o in &r.outcomes {
            assert!(
                !(o[&20] == 5 && o[&21] == 0),
                "coherence went backwards: {o:?}"
            );
        }
        // The lease-protected stale second read exists on some schedule.
        assert!(r.outcomes.iter().any(|o| o[&20] == 0 && o[&21] == 0));
    }
}
