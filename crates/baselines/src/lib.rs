//! Baseline coherence schemes the paper evaluates G-TSC against.
//!
//! * [`TcL1`]/[`TcL2`] — **Temporal Coherence** (Singh et al., HPCA'13;
//!   Section II-D of the G-TSC paper): lease-based self-invalidation
//!   driven by *globally synchronized physical counters*. Two variants:
//!   - **TC-Strong** preserves write atomicity by stalling every write at
//!     the L2 until all outstanding leases on the block have expired;
//!   - **TC-Weak** completes writes immediately but returns a Global
//!     Write Completion Time (GWCT); fences stall the warp until its
//!     GWCT has passed.
//!
//!   TC requires an *inclusive* L2 (replacement stalls while a victim's
//!   lease is live) — one of the drawbacks G-TSC removes.
//! * [`BypassL1`] + [`PlainL2`] — the paper's baseline "BL": the private
//!   L1 is disabled and every access is performed at the shared L2.
//! * [`NonCoherentL1`] — "Baseline W/L1": a plain write-through L1 with no
//!   coherence at all; only sound for workloads that need none (the right
//!   cluster of Figure 12).
//!
//! All four plug into the same [`gtsc_protocol`] traits as G-TSC, so the
//! surrounding GPU, NoC and DRAM models are held constant across
//! protocols.

pub mod bypass;
pub mod noncoherent;
pub mod plain_l2;
pub mod tc_l1;
pub mod tc_l2;

pub use bypass::BypassL1;
pub use noncoherent::NonCoherentL1;
pub use plain_l2::{PlainL2, PlainL2Params};
pub use tc_l1::{TcL1, TcL1Params};
pub use tc_l2::{TcL2, TcL2Params};

/// Which Temporal-Coherence variant a controller runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcMode {
    /// Write-atomic TC: writes stall at the L2 until every lease expires.
    Strong,
    /// TC-Weak: writes complete immediately; fences consume GWCT.
    Weak,
}
