//! Temporal-Coherence shared-cache bank.
//!
//! The L2 tracks, per block, the latest expiry time of any lease it has
//! granted (using the globally synchronized counter — the simulation
//! clock). Reads extend the lease and return data; writes:
//!
//! * **TC-Strong**: may only be performed once `now >= expires`. A
//!   pending write *blocks the block*: every later request to the same
//!   block queues behind it (Section II-D3's lease-induced stalls).
//! * **TC-Weak**: performed immediately; the ack returns the old expiry
//!   as the Global Write Completion Time.
//!
//! TC forces an **inclusive** L2 (Section II-D2): a victim whose lease is
//! still live cannot be evicted, stalling the fill until it expires.

use std::collections::{HashMap, VecDeque};

use gtsc_mem::{Mshr, MshrAlloc, TagArray};
use gtsc_protocol::msg::{FillResp, L1ToL2, L2ToL1, LeaseInfo, WriteAckResp};
use gtsc_protocol::L2Controller;
use gtsc_trace::{EventKind, Sanitizer, Tracer, Transition};
use gtsc_types::{BlockAddr, CacheGeometry, CacheStats, Cycle, SpanId, Version};

use crate::TcMode;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TcL2Meta {
    expires: Cycle,
    version: Version,
    dirty: bool,
}

/// Construction parameters for [`TcL2`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcL2Params {
    /// Bank geometry.
    pub geometry: CacheGeometry,
    /// Lease length in physical cycles.
    pub lease_cycles: u64,
    /// Bank access latency in cycles.
    pub latency: u64,
    /// Requests processed per cycle.
    pub ports: usize,
    /// Outstanding DRAM fetches tracked.
    pub mshr_entries: usize,
    /// Requests merged per outstanding fetch.
    pub mshr_merges: usize,
    /// Strong or weak variant.
    pub mode: TcMode,
}

impl Default for TcL2Params {
    fn default() -> Self {
        TcL2Params {
            geometry: CacheGeometry::new(4 * 1024, 4, 128),
            lease_cycles: 100,
            latency: 10,
            ports: 1,
            mshr_entries: 16,
            mshr_merges: 64,
            mode: TcMode::Strong,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingReq {
    src: usize,
    msg: L1ToL2,
}

/// One Temporal-Coherence shared-cache bank.
#[derive(Debug)]
pub struct TcL2 {
    p: TcL2Params,
    tags: TagArray<TcL2Meta>,
    backing: HashMap<BlockAddr, Version>,
    pending: Mshr<PendingReq>,
    in_queue: VecDeque<(Cycle, usize, L1ToL2)>,
    /// Per-block queues headed by a stalled (strong) write; later requests
    /// to the block wait behind it.
    blocked: HashMap<BlockAddr, VecDeque<(usize, L1ToL2)>>,
    /// Fills that could not install because every victim's lease is live
    /// (the inclusive-L2 replacement stall).
    install_wait: Vec<BlockAddr>,
    out_resp: VecDeque<(usize, L2ToL1)>,
    dram_out: VecDeque<(BlockAddr, bool)>,
    stats: CacheStats,
    tracer: Tracer,
    sanitizer: Sanitizer,
}

impl TcL2 {
    /// Creates an empty bank.
    #[must_use]
    pub fn new(p: TcL2Params) -> Self {
        TcL2 {
            tags: TagArray::new(p.geometry),
            backing: HashMap::new(),
            pending: Mshr::new(p.mshr_entries, p.mshr_merges),
            in_queue: VecDeque::new(),
            blocked: HashMap::new(),
            install_wait: Vec::new(),
            out_resp: VecDeque::new(),
            dram_out: VecDeque::new(),
            stats: CacheStats::default(),
            tracer: Tracer::disabled(),
            sanitizer: Sanitizer::disabled(),
            p,
        }
    }

    fn perform_read(&mut self, src: usize, block: BlockAddr, span: SpanId, now: Cycle) {
        let lease = self.p.lease_cycles;
        let line = self
            .tags
            .probe_mut(block)
            .expect("caller checked residency");
        line.meta.expires = line.meta.expires.max(now + lease);
        let (expires, version) = (line.meta.expires, line.meta.version);
        // TC leases are physical: `wts` has no analogue, the expiry time
        // plays the role G-TSC gives `rts`.
        self.tracer.record_with(now, || EventKind::LeaseGrant {
            block,
            wts: 0,
            rts: expires.0,
        });
        self.sanitizer.check_with(now, || Transition::TcLease {
            block,
            now,
            expires,
        });
        self.out_resp.push_back((
            src,
            L2ToL1::Fill(FillResp {
                block,
                lease: LeaseInfo::Physical { expires },
                version,
                epoch: 0,
                span,
            }),
        ));
    }

    fn perform_write(
        &mut self,
        src: usize,
        block: BlockAddr,
        version: Version,
        span: SpanId,
        now: Cycle,
        is_atomic: bool,
    ) {
        let line = self
            .tags
            .probe_mut(block)
            .expect("caller checked residency");
        let prev = line.meta.version;
        let pre_expires = line.meta.expires;
        let gwct = pre_expires.max(now);
        line.meta.version = version;
        line.meta.dirty = true;
        self.stats.stores += 1;
        self.tracer
            .record_with(now, || EventKind::StoreCommit { block, wts: now.0 });
        if self.p.mode == TcMode::Strong {
            // Write atomicity: a strong write performs only once every
            // outstanding lease has run out.
            self.sanitizer.check_with(now, || Transition::TcWrite {
                block,
                now,
                expires: pre_expires,
            });
        }
        let lease = match self.p.mode {
            // Strong: the ack certifies global performance; nothing to carry.
            TcMode::Strong => LeaseInfo::None,
            // Weak: the ack carries the GWCT.
            TcMode::Weak => LeaseInfo::Physical { expires: gwct },
        };
        let ack = WriteAckResp {
            block,
            lease,
            version,
            epoch: 0,
            span,
        };
        let resp = if is_atomic {
            L2ToL1::AtomicAck { ack, prev }
        } else {
            L2ToL1::WriteAck(ack)
        };
        self.out_resp.push_back((src, resp));
    }

    /// Whether a (strong) write to a resident `block` may be performed now.
    fn write_may_proceed(&self, block: BlockAddr, now: Cycle) -> bool {
        match self.p.mode {
            TcMode::Weak => true,
            TcMode::Strong => self
                .tags
                .peek(block)
                .is_none_or(|line| now >= line.meta.expires),
        }
    }

    fn handle(&mut self, src: usize, msg: L1ToL2, now: Cycle) {
        let block = msg.block();
        // A stalled write owns the block: queue behind it in order.
        if let Some(q) = self.blocked.get_mut(&block) {
            q.push_back((src, msg));
            return;
        }
        self.stats.accesses += 1;
        if self.tags.peek(block).is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.cold_misses += 1;
            match self.pending.register(block, PendingReq { src, msg }) {
                MshrAlloc::AllocatedNew => self.dram_out.push_back((block, false)),
                MshrAlloc::Merged => self.stats.mshr_merges += 1,
                MshrAlloc::Full => {
                    unreachable!("tick() admits requests only when the MSHR can take them")
                }
            }
            return;
        }
        match msg {
            L1ToL2::Read(r) => self.perform_read(src, block, r.span, now),
            L1ToL2::Write(w) | L1ToL2::Atomic(w) => {
                if self.write_may_proceed(block, now) {
                    self.perform_write(
                        src,
                        block,
                        w.version,
                        w.span,
                        now,
                        matches!(msg, L1ToL2::Atomic(_)),
                    );
                } else {
                    // Lease-induced write stall: park, blocking the block.
                    // Atomics stall too — the RMW cannot be performed
                    // while private copies may still be read.
                    self.tracer
                        .record_with(now, || EventKind::BlockedOnWrite { block });
                    self.blocked.entry(block).or_default().push_back((src, msg));
                }
            }
        }
    }

    /// Tries to install a DRAM fill; under inclusion, only expired victims
    /// may be evicted.
    fn try_install(&mut self, block: BlockAddr, now: Cycle) -> bool {
        let version = self.backing.get(&block).copied().unwrap_or(Version::ZERO);
        let meta = TcL2Meta {
            expires: Cycle(0),
            version,
            dirty: false,
        };
        match self.tags.fill_if(block, meta, |l| now >= l.meta.expires) {
            Ok(evicted) => {
                if let Some(ev) = evicted {
                    self.stats.evictions += 1;
                    self.tracer.record_with(now, || EventKind::Eviction {
                        block: ev.block,
                        rts: ev.meta.expires.0,
                    });
                    if ev.meta.dirty {
                        self.backing.insert(ev.block, ev.meta.version);
                        self.dram_out.push_back((ev.block, true));
                    }
                }
                // Serve everything that waited for the fetch.
                for w in self.pending.take(block) {
                    self.handle_present(w.src, w.msg, now);
                }
                true
            }
            Err(_) => {
                self.stats.eviction_stall_cycles += 1;
                false
            }
        }
    }

    /// Like [`TcL2::handle`] but for requests already counted on arrival
    /// (the block is now resident).
    fn handle_present(&mut self, src: usize, msg: L1ToL2, now: Cycle) {
        if let Some(q) = self.blocked.get_mut(&msg.block()) {
            q.push_back((src, msg));
            return;
        }
        match msg {
            L1ToL2::Read(r) => self.perform_read(src, msg.block(), r.span, now),
            L1ToL2::Write(w) | L1ToL2::Atomic(w) => {
                if self.write_may_proceed(msg.block(), now) {
                    self.perform_write(
                        src,
                        msg.block(),
                        w.version,
                        w.span,
                        now,
                        matches!(msg, L1ToL2::Atomic(_)),
                    );
                } else {
                    self.tracer
                        .record_with(now, || EventKind::BlockedOnWrite { block: msg.block() });
                    self.blocked
                        .entry(msg.block())
                        .or_default()
                        .push_back((src, msg));
                }
            }
        }
    }

    /// Head-of-line admission check: a miss that cannot get an MSHR slot
    /// stalls the queue (younger same-block requests must not overtake).
    /// Requests destined for a blocked-block queue are always admitted.
    fn can_handle(&self, msg: &L1ToL2) -> bool {
        let block = msg.block();
        if self.blocked.contains_key(&block) || self.tags.peek(block).is_some() {
            return true;
        }
        if self.pending.contains(block) {
            return self.pending.waiters(block) < 256;
        }
        !self.pending.is_full()
    }

    /// Drains per-block stall queues whose head write has become
    /// performable.
    fn drain_blocked(&mut self, now: Cycle) {
        let blocks: Vec<BlockAddr> = self.blocked.keys().copied().collect();
        for block in blocks {
            // If the line was evicted while its queue waited (possible
            // once the lease expired — which also satisfies the parked
            // write's wait condition), re-handle the whole queue through
            // the normal miss path, preserving order.
            if self.tags.peek(block).is_none() {
                if let Some(q) = self.blocked.remove(&block) {
                    for (src, msg) in q {
                        self.in_queue.push_back((now, src, msg));
                    }
                }
                continue;
            }
            #[allow(clippy::while_let_loop)] // two let-else exits; a while-let cannot express both
            loop {
                let Some(q) = self.blocked.get_mut(&block) else {
                    break;
                };
                let Some((src, msg)) = q.front().copied() else {
                    self.blocked.remove(&block);
                    break;
                };
                let ok = match msg {
                    L1ToL2::Read(_) => true,
                    L1ToL2::Write(_) | L1ToL2::Atomic(_) => self.write_may_proceed(block, now),
                };
                if !ok {
                    self.stats.write_stall_cycles += 1;
                    break;
                }
                self.blocked
                    .get_mut(&block)
                    .expect("queue exists")
                    .pop_front();
                self.stats.accesses += 1;
                match msg {
                    L1ToL2::Read(r) => self.perform_read(src, block, r.span, now),
                    L1ToL2::Write(w) | L1ToL2::Atomic(w) => {
                        self.perform_write(
                            src,
                            block,
                            w.version,
                            w.span,
                            now,
                            matches!(msg, L1ToL2::Atomic(_)),
                        );
                    }
                }
            }
            if self.blocked.get(&block).is_some_and(VecDeque::is_empty) {
                self.blocked.remove(&block);
            }
        }
    }
}

impl L2Controller for TcL2 {
    fn on_request(&mut self, src: usize, msg: L1ToL2, now: Cycle) {
        self.in_queue.push_back((now + self.p.latency, src, msg));
    }

    fn take_response(&mut self) -> Option<(usize, L2ToL1)> {
        self.out_resp.pop_front()
    }

    fn take_dram_request(&mut self) -> Option<(BlockAddr, bool)> {
        self.dram_out.pop_front()
    }

    fn on_dram_response(&mut self, block: BlockAddr, is_write: bool, now: Cycle) {
        if is_write {
            return;
        }
        if !self.try_install(block, now) {
            self.install_wait.push(block);
        }
    }

    fn tick(&mut self, now: Cycle) {
        // Retry fills stalled on inclusive replacement.
        if !self.install_wait.is_empty() {
            let waiting = std::mem::take(&mut self.install_wait);
            for block in waiting {
                if !self.try_install(block, now) {
                    self.install_wait.push(block);
                }
            }
        }
        self.drain_blocked(now);
        for _ in 0..self.p.ports {
            match self.in_queue.front() {
                Some((ready, _, msg)) if *ready <= now => {
                    if !self.can_handle(msg) {
                        break; // head-of-line stall until an MSHR frees
                    }
                    let (_, src, msg) = self.in_queue.pop_front().expect("front exists");
                    self.handle(src, msg, now);
                }
                _ => break,
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.in_queue.is_empty()
            && self.pending.is_empty()
            && self.out_resp.is_empty()
            && self.dram_out.is_empty()
            && self.blocked.is_empty()
            && self.install_wait.is_empty()
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn tracer(&self) -> Option<&Tracer> {
        Some(&self.tracer)
    }

    fn set_sanitizer(&mut self, sanitizer: Sanitizer) {
        self.sanitizer = sanitizer;
    }

    fn memory_image(&self) -> Vec<(BlockAddr, Version)> {
        let mut img: std::collections::HashMap<BlockAddr, Version> = self.backing.clone();
        for line in self.tags.iter() {
            img.insert(line.block, line.meta.version);
        }
        img.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_protocol::msg::{ReadReq, WriteReq};
    use gtsc_types::Timestamp;

    fn read(block: u64) -> L1ToL2 {
        L1ToL2::Read(ReadReq {
            block: BlockAddr(block),
            wts: Timestamp(0),
            warp_ts: Timestamp(0),
            epoch: 0,
            span: SpanId::NONE,
        })
    }

    fn write(block: u64, version: u64) -> L1ToL2 {
        L1ToL2::Write(WriteReq {
            block: BlockAddr(block),
            warp_ts: Timestamp(0),
            version: Version(version),
            epoch: 0,
            span: SpanId::NONE,
        })
    }

    /// Advances the bank, resolving DRAM instantly, until idle or horizon.
    fn settle(l2: &mut TcL2, start: Cycle, horizon: u64) -> Vec<(u64, usize, L2ToL1)> {
        let mut out = Vec::new();
        for c in start.0..start.0 + horizon {
            l2.tick(Cycle(c));
            while let Some((b, w)) = l2.take_dram_request() {
                l2.on_dram_response(b, w, Cycle(c));
            }
            while let Some((d, m)) = l2.take_response() {
                out.push((c, d, m));
            }
            if l2.is_idle() {
                break;
            }
        }
        out
    }

    #[test]
    fn read_grants_physical_lease() {
        let mut l2 = TcL2::new(TcL2Params::default());
        l2.on_request(0, read(5), Cycle(0));
        let resps = settle(&mut l2, Cycle(0), 100);
        let (c, _, L2ToL1::Fill(f)) = &resps[0] else {
            panic!("expected fill")
        };
        assert_eq!(
            f.lease,
            LeaseInfo::Physical {
                expires: Cycle(c + 100)
            }
        );
    }

    #[test]
    fn strong_write_stalls_until_lease_expiry() {
        let mut l2 = TcL2::new(TcL2Params {
            latency: 0,
            ..TcL2Params::default()
        });
        l2.on_request(0, read(5), Cycle(0));
        let resps = settle(&mut l2, Cycle(0), 10);
        let (granted_at, _, _) = resps[0];
        let expiry = granted_at + 100;
        // Write arrives at cycle 10: must wait until the lease expires.
        l2.on_request(1, write(5, 77), Cycle(10));
        let resps = settle(&mut l2, Cycle(10), 500);
        let acks: Vec<_> = resps
            .iter()
            .filter(|(_, _, m)| matches!(m, L2ToL1::WriteAck(_)))
            .collect();
        assert_eq!(acks.len(), 1);
        assert!(
            acks[0].0 >= expiry,
            "ack at {} before lease expiry {expiry}",
            acks[0].0
        );
        assert!(l2.stats().write_stall_cycles > 0);
    }

    #[test]
    fn reads_behind_stalled_write_wait_and_see_new_data() {
        let mut l2 = TcL2::new(TcL2Params {
            latency: 0,
            ..TcL2Params::default()
        });
        l2.on_request(0, read(5), Cycle(0));
        settle(&mut l2, Cycle(0), 5);
        l2.on_request(1, write(5, 77), Cycle(10));
        l2.tick(Cycle(10));
        // A read arriving behind the stalled write queues behind it.
        l2.on_request(2, read(5), Cycle(11));
        let resps = settle(&mut l2, Cycle(11), 500);
        let fill_after = resps
            .iter()
            .find_map(|(c, d, m)| match m {
                L2ToL1::Fill(f) if *d == 2 => Some((*c, f.version)),
                _ => None,
            })
            .expect("queued read eventually served");
        let ack_at = resps
            .iter()
            .find_map(|(c, _, m)| matches!(m, L2ToL1::WriteAck(_)).then_some(*c))
            .expect("write acked");
        assert!(
            fill_after.0 >= ack_at,
            "read served only after the write performs"
        );
        assert_eq!(fill_after.1, Version(77), "read observes the new value");
    }

    #[test]
    fn weak_write_completes_immediately_with_gwct() {
        let mut l2 = TcL2::new(TcL2Params {
            mode: TcMode::Weak,
            latency: 0,
            ..TcL2Params::default()
        });
        l2.on_request(0, read(5), Cycle(0));
        let resps = settle(&mut l2, Cycle(0), 10);
        let (granted_at, _, _) = resps[0];
        l2.on_request(1, write(5, 77), Cycle(10));
        let resps = settle(&mut l2, Cycle(10), 50);
        let (c, _, L2ToL1::WriteAck(a)) = &resps[0] else {
            panic!("expected ack")
        };
        assert!(*c < granted_at + 100, "no stall in weak mode");
        assert_eq!(
            a.lease,
            LeaseInfo::Physical {
                expires: Cycle(granted_at + 100)
            }
        );
        assert_eq!(l2.stats().write_stall_cycles, 0);
    }

    #[test]
    fn inclusive_replacement_stalls_on_live_victims() {
        // Direct-mapped, 2 sets: blocks 0 and 2 conflict.
        let geometry = CacheGeometry::new(256, 1, 128);
        let mut l2 = TcL2::new(TcL2Params {
            geometry,
            latency: 0,
            ..TcL2Params::default()
        });
        l2.on_request(0, read(0), Cycle(0));
        let resps = settle(&mut l2, Cycle(0), 5);
        let lease_until = resps[0].0 + 100;
        // Fetch block 2: its install must wait for block 0's lease.
        l2.on_request(0, read(2), Cycle(5));
        let resps = settle(&mut l2, Cycle(5), 500);
        let fill2 = resps
            .iter()
            .find_map(|(c, _, m)| match m {
                L2ToL1::Fill(f) if f.block == BlockAddr(2) => Some(*c),
                _ => None,
            })
            .expect("block 2 eventually fills");
        assert!(
            fill2 >= lease_until,
            "fill at {fill2} before victim lease expiry {lease_until}"
        );
        assert!(l2.stats().eviction_stall_cycles > 0);
    }

    #[test]
    fn strong_atomic_stalls_until_lease_expiry() {
        let mut l2 = TcL2::new(TcL2Params {
            latency: 0,
            ..TcL2Params::default()
        });
        l2.on_request(0, read(5), Cycle(0));
        let resps = settle(&mut l2, Cycle(0), 10);
        let expiry = resps[0].0 + 100;
        // The RMW cannot be performed while a private copy may be read:
        // this is the per-atomic penalty TC pays on graph workloads.
        l2.on_request(
            1,
            L1ToL2::Atomic(gtsc_protocol::msg::WriteReq {
                block: BlockAddr(5),
                warp_ts: Timestamp(0),
                version: Version(9),
                epoch: 0,
                span: SpanId::NONE,
            }),
            Cycle(10),
        );
        let resps = settle(&mut l2, Cycle(10), 500);
        let ack_at = resps
            .iter()
            .find_map(|(c, _, m)| matches!(m, L2ToL1::AtomicAck { .. }).then_some(*c))
            .expect("atomic acked");
        assert!(
            ack_at >= expiry,
            "atomic acked at {ack_at} before lease expiry {expiry}"
        );
    }

    #[test]
    fn weak_atomic_returns_prev_immediately() {
        let mut l2 = TcL2::new(TcL2Params {
            latency: 0,
            mode: TcMode::Weak,
            ..TcL2Params::default()
        });
        l2.on_request(0, write(5, 42), Cycle(0));
        settle(&mut l2, Cycle(0), 50);
        l2.on_request(
            1,
            L1ToL2::Atomic(gtsc_protocol::msg::WriteReq {
                block: BlockAddr(5),
                warp_ts: Timestamp(0),
                version: Version(9),
                epoch: 0,
                span: SpanId::NONE,
            }),
            Cycle(60),
        );
        let resps = settle(&mut l2, Cycle(60), 50);
        let (_, _, L2ToL1::AtomicAck { prev, .. }) = &resps[0] else {
            panic!("expected atomic ack")
        };
        assert_eq!(*prev, Version(42));
    }

    #[test]
    fn dirty_eviction_survives_via_backing_store() {
        let geometry = CacheGeometry::new(256, 1, 128);
        let mut l2 = TcL2::new(TcL2Params {
            geometry,
            latency: 0,
            mode: TcMode::Weak,
            ..TcL2Params::default()
        });
        l2.on_request(0, write(0, 42), Cycle(0));
        settle(&mut l2, Cycle(0), 200);
        l2.on_request(0, read(2), Cycle(300)); // evicts block 0 (expired by then)
        settle(&mut l2, Cycle(300), 200);
        l2.on_request(0, read(0), Cycle(600));
        let resps = settle(&mut l2, Cycle(600), 200);
        let version = resps
            .iter()
            .find_map(|(_, _, m)| match m {
                L2ToL1::Fill(f) if f.block == BlockAddr(0) => Some(f.version),
                _ => None,
            })
            .expect("refetch");
        assert_eq!(version, Version(42));
    }
}
