//! The no-L1 baseline ("BL"): the private cache is disabled and every
//! global access is performed at the shared L2 — how current GPUs provide
//! coherence (Section I). There are no tags and no MSHRs on the SM side;
//! each access crosses the NoC individually.

use std::collections::{HashMap, VecDeque};

use gtsc_protocol::msg::{L1ToL2, L2ToL1, ReadReq, WriteReq};
use gtsc_protocol::{AccessId, AccessKind, Completion, L1Controller, L1Outcome, MemAccess};
use gtsc_types::{BlockAddr, CacheStats, Cycle, Timestamp, Version, WarpId};

#[derive(Debug, Clone, Copy)]
struct Waiter {
    id: AccessId,
    warp: WarpId,
}

#[derive(Debug, Clone, Copy)]
struct StoreWaiter {
    id: AccessId,
    warp: WarpId,
    kind: AccessKind,
    version: Version,
}

/// A pass-through "L1" that forwards every access to the L2.
///
/// # Examples
///
/// ```
/// use gtsc_baselines::BypassL1;
/// use gtsc_protocol::{AccessId, AccessKind, L1Controller, L1Outcome, MemAccess};
/// use gtsc_types::{BlockAddr, Cycle, WarpId};
///
/// let mut l1 = BypassL1::new(0);
/// let acc = MemAccess {
///     id: AccessId(1),
///     warp: WarpId(0),
///     kind: AccessKind::Load,
///     block: BlockAddr(3),
///     span: gtsc_types::SpanId::NONE,
/// };
/// assert!(matches!(l1.access(acc, Cycle(0)), L1Outcome::Queued));
/// assert!(l1.take_request().is_some(), "every access crosses the NoC");
/// ```
#[derive(Debug)]
pub struct BypassL1 {
    sm_index: usize,
    /// FIFO of outstanding loads per block (each `BusRd` yields one fill).
    read_waiters: HashMap<BlockAddr, VecDeque<Waiter>>,
    store_acks: HashMap<BlockAddr, VecDeque<StoreWaiter>>,
    out: VecDeque<L1ToL2>,
    version_ctr: Vec<u64>,
    stats: CacheStats,
}

impl BypassL1 {
    /// Creates a pass-through controller for SM `sm_index`.
    #[must_use]
    pub fn new(sm_index: usize) -> Self {
        BypassL1 {
            sm_index,
            read_waiters: HashMap::new(),
            store_acks: HashMap::new(),
            out: VecDeque::new(),
            version_ctr: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    fn mint_version(&mut self, warp: WarpId) -> Version {
        let w = warp.0 as usize;
        if self.version_ctr.len() <= w {
            self.version_ctr.resize(w + 1, 0);
        }
        self.version_ctr[w] += 1;
        Version(((self.sm_index as u64 + 1) << 40) | ((w as u64) << 28) | self.version_ctr[w])
    }
}

impl L1Controller for BypassL1 {
    fn access(&mut self, acc: MemAccess, _now: Cycle) -> L1Outcome {
        self.stats.accesses += 1;
        self.stats.cold_misses += 1; // every access goes below
        match acc.kind {
            AccessKind::Load => {
                self.read_waiters
                    .entry(acc.block)
                    .or_default()
                    .push_back(Waiter {
                        id: acc.id,
                        warp: acc.warp,
                    });
                self.out.push_back(L1ToL2::Read(ReadReq {
                    block: acc.block,
                    wts: Timestamp(0),
                    warp_ts: Timestamp(0),
                    epoch: 0,
                    span: acc.span,
                }));
            }
            AccessKind::Store | AccessKind::Atomic => {
                self.stats.stores += 1;
                let version = self.mint_version(acc.warp);
                self.store_acks
                    .entry(acc.block)
                    .or_default()
                    .push_back(StoreWaiter {
                        id: acc.id,
                        warp: acc.warp,
                        kind: acc.kind,
                        version,
                    });
                let req = WriteReq {
                    block: acc.block,
                    warp_ts: Timestamp(0),
                    version,
                    epoch: 0,
                    span: acc.span,
                };
                self.out.push_back(if acc.kind == AccessKind::Atomic {
                    L1ToL2::Atomic(req)
                } else {
                    L1ToL2::Write(req)
                });
            }
        }
        L1Outcome::Queued
    }

    fn on_response(&mut self, msg: L2ToL1, _now: Cycle) -> Vec<Completion> {
        let mut done = Vec::new();
        match msg {
            L2ToL1::Fill(f) => {
                if let Some(q) = self.read_waiters.get_mut(&f.block) {
                    if let Some(w) = q.pop_front() {
                        done.push(Completion {
                            id: w.id,
                            warp: w.warp,
                            kind: AccessKind::Load,
                            block: f.block,
                            version: f.version,
                            ts: None,
                            epoch: 0,
                            prev: None,
                        });
                    }
                    if q.is_empty() {
                        self.read_waiters.remove(&f.block);
                    }
                }
            }
            L2ToL1::WriteAck(a) | L2ToL1::AtomicAck { ack: a, .. } => {
                let prev = if let L2ToL1::AtomicAck { prev, .. } = msg {
                    Some(prev)
                } else {
                    None
                };
                if let Some(q) = self.store_acks.get_mut(&a.block) {
                    if let Some(pos) = q.iter().position(|s| s.version == a.version) {
                        let sw = q.remove(pos).expect("position valid");
                        if q.is_empty() {
                            self.store_acks.remove(&a.block);
                        }
                        done.push(Completion {
                            id: sw.id,
                            warp: sw.warp,
                            kind: sw.kind,
                            block: a.block,
                            version: a.version,
                            ts: None,
                            epoch: 0,
                            prev,
                        });
                    }
                }
            }
            L2ToL1::Renew { .. } | L2ToL1::Invalidate { .. } => {}
        }
        done
    }

    fn take_request(&mut self) -> Option<L1ToL2> {
        self.out.pop_front()
    }

    fn tick(&mut self, _now: Cycle) -> Vec<Completion> {
        Vec::new()
    }

    fn flush(&mut self) {}

    fn is_idle(&self) -> bool {
        self.read_waiters.is_empty() && self.store_acks.is_empty() && self.out.is_empty()
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_protocol::msg::LeaseInfo;
    use gtsc_protocol::msg::{FillResp, WriteAckResp};

    fn load(id: u64, block: u64) -> MemAccess {
        MemAccess {
            id: AccessId(id),
            warp: WarpId(0),
            kind: AccessKind::Load,
            block: BlockAddr(block),
            span: gtsc_types::SpanId::NONE,
        }
    }

    #[test]
    fn every_load_crosses_the_noc() {
        let mut c = BypassL1::new(0);
        c.access(load(1, 5), Cycle(0));
        c.access(load(2, 5), Cycle(0));
        assert!(c.take_request().is_some());
        assert!(c.take_request().is_some(), "no merging without an MSHR");
    }

    #[test]
    fn fills_complete_waiters_in_fifo_order() {
        let mut c = BypassL1::new(0);
        c.access(load(1, 5), Cycle(0));
        c.access(load(2, 5), Cycle(0));
        while c.take_request().is_some() {}
        let f = L2ToL1::Fill(FillResp {
            block: BlockAddr(5),
            lease: LeaseInfo::None,
            version: Version(9),
            epoch: 0,
            span: gtsc_types::SpanId::NONE,
        });
        let d1 = c.on_response(f, Cycle(10));
        assert_eq!(d1.len(), 1);
        assert_eq!(d1[0].id, AccessId(1));
        let d2 = c.on_response(f, Cycle(11));
        assert_eq!(d2[0].id, AccessId(2));
        assert!(c.is_idle());
    }

    #[test]
    fn atomic_roundtrip_delivers_prev() {
        let mut c = BypassL1::new(0);
        let acc = MemAccess {
            id: AccessId(5),
            warp: WarpId(2),
            kind: AccessKind::Atomic,
            block: BlockAddr(7),
            span: gtsc_types::SpanId::NONE,
        };
        c.access(acc, Cycle(0));
        let L1ToL2::Atomic(w) = c.take_request().unwrap() else {
            panic!("expected Atomic")
        };
        let done = c.on_response(
            L2ToL1::AtomicAck {
                ack: WriteAckResp {
                    block: BlockAddr(7),
                    lease: LeaseInfo::None,
                    version: w.version,
                    epoch: 0,
                    span: gtsc_types::SpanId::NONE,
                },
                prev: Version(3),
            },
            Cycle(30),
        );
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].kind, AccessKind::Atomic);
        assert_eq!(done[0].prev, Some(Version(3)));
        assert!(c.is_idle());
    }

    #[test]
    fn store_roundtrip() {
        let mut c = BypassL1::new(0);
        let acc = MemAccess {
            id: AccessId(3),
            warp: WarpId(1),
            kind: AccessKind::Store,
            block: BlockAddr(7),
            span: gtsc_types::SpanId::NONE,
        };
        c.access(acc, Cycle(0));
        let L1ToL2::Write(w) = c.take_request().unwrap() else {
            panic!()
        };
        let done = c.on_response(
            L2ToL1::WriteAck(WriteAckResp {
                block: BlockAddr(7),
                lease: LeaseInfo::None,
                version: w.version,
                epoch: 0,
                span: gtsc_types::SpanId::NONE,
            }),
            Cycle(30),
        );
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].kind, AccessKind::Store);
        assert_eq!(done[0].warp, WarpId(1));
    }
}
