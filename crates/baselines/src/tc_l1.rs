//! Temporal-Coherence private cache (one per SM).
//!
//! Each line carries an absolute expiry time in *physical cycles*; the
//! globally synchronized counter (the simulation clock) self-invalidates
//! it — a tag match with `now >= expires` is a coherence miss
//! (Section II-D). Stores are write-through:
//!
//! * **TC-Strong**: the local copy is invalidated at issue (the new value
//!   may only be observed once globally performed) and the ack arrives
//!   after the L2 write-stall completes.
//! * **TC-Weak**: the local copy is updated in place (no write
//!   atomicity); the ack carries the GWCT, accumulated per warp and
//!   consumed by fences.

use std::collections::{HashMap, VecDeque};

use gtsc_mem::{Mshr, MshrAlloc, TagArray};
use gtsc_protocol::msg::{L1ToL2, L2ToL1, LeaseInfo, ReadReq, WriteReq};
use gtsc_protocol::{AccessId, AccessKind, Completion, L1Controller, L1Outcome, MemAccess};
use gtsc_trace::{EventKind, Tracer};
use gtsc_types::{BlockAddr, CacheGeometry, CacheStats, Cycle, Timestamp, Version, WarpId};

use crate::TcMode;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TcMeta {
    expires: Cycle,
    version: Version,
}

#[derive(Debug, Clone, Copy)]
struct Waiter {
    id: AccessId,
    warp: WarpId,
}

#[derive(Debug, Clone, Copy)]
struct StoreWaiter {
    id: AccessId,
    warp: WarpId,
    kind: AccessKind,
    version: Version,
}

/// Construction parameters for [`TcL1`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcL1Params {
    /// Cache geometry.
    pub geometry: CacheGeometry,
    /// Warp slots in the owning SM.
    pub n_warps: usize,
    /// Index of the owning SM (namespaces minted versions).
    pub sm_index: usize,
    /// MSHR entry count.
    pub mshr_entries: usize,
    /// Maximum merged waiters per entry.
    pub mshr_merges: usize,
    /// Strong or weak variant.
    pub mode: TcMode,
}

impl Default for TcL1Params {
    fn default() -> Self {
        TcL1Params {
            geometry: CacheGeometry::new(2 * 1024, 2, 128),
            n_warps: 4,
            sm_index: 0,
            mshr_entries: 8,
            mshr_merges: 4,
            mode: TcMode::Strong,
        }
    }
}

/// The Temporal-Coherence private cache of one SM.
#[derive(Debug)]
pub struct TcL1 {
    p: TcL1Params,
    tags: TagArray<TcMeta>,
    mshr: Mshr<Waiter>,
    store_acks: HashMap<BlockAddr, VecDeque<StoreWaiter>>,
    /// Global Write Completion Time per warp (TC-Weak fences).
    gwct: Vec<Cycle>,
    out: VecDeque<L1ToL2>,
    version_ctr: Vec<u64>,
    stats: CacheStats,
    tracer: Tracer,
}

impl TcL1 {
    /// Creates an empty controller.
    #[must_use]
    pub fn new(p: TcL1Params) -> Self {
        TcL1 {
            tags: TagArray::new(p.geometry),
            mshr: Mshr::new(p.mshr_entries, p.mshr_merges),
            store_acks: HashMap::new(),
            gwct: vec![Cycle(0); p.n_warps],
            out: VecDeque::new(),
            version_ctr: vec![0; p.n_warps],
            stats: CacheStats::default(),
            tracer: Tracer::disabled(),
            p,
        }
    }

    /// The warp's current Global Write Completion Time.
    ///
    /// # Panics
    ///
    /// Panics if `warp` is out of range.
    #[must_use]
    pub fn gwct(&self, warp: WarpId) -> Cycle {
        self.gwct[warp.0 as usize]
    }

    fn mint_version(&mut self, warp: WarpId) -> Version {
        let w = warp.0 as usize;
        self.version_ctr[w] += 1;
        Version(((self.p.sm_index as u64 + 1) << 40) | ((w as u64) << 28) | self.version_ctr[w])
    }

    fn completion(&self, w: Waiter, block: BlockAddr, version: Version) -> Completion {
        Completion {
            id: w.id,
            warp: w.warp,
            kind: AccessKind::Load,
            block,
            version,
            ts: None,
            epoch: 0,
            prev: None,
        }
    }
}

impl L1Controller for TcL1 {
    fn access(&mut self, acc: MemAccess, now: Cycle) -> L1Outcome {
        match acc.kind {
            AccessKind::Load => {
                let mut expired_lease = None;
                if let Some(line) = self.tags.probe(acc.block) {
                    if now < line.meta.expires {
                        self.stats.accesses += 1;
                        self.stats.hits += 1;
                        let w = Waiter {
                            id: acc.id,
                            warp: acc.warp,
                        };
                        let version = line.meta.version;
                        let expires = line.meta.expires;
                        self.tracer.record_with(now, || EventKind::Hit {
                            block: acc.block,
                            warp: acc.warp.0,
                            warp_ts: now.0,
                            rts: expires.0,
                        });
                        return L1Outcome::Hit(self.completion(w, acc.block, version));
                    }
                    // Tag match, expired lease: self-invalidated
                    // (coherence miss).
                    expired_lease = Some(line.meta.expires);
                }
                let waiter = Waiter {
                    id: acc.id,
                    warp: acc.warp,
                };
                let outcome = match self.mshr.register(acc.block, waiter) {
                    MshrAlloc::Full => return L1Outcome::Reject,
                    MshrAlloc::AllocatedNew => {
                        self.out.push_back(L1ToL2::Read(ReadReq {
                            block: acc.block,
                            wts: Timestamp(0),
                            warp_ts: Timestamp(0),
                            epoch: 0,
                            span: acc.span,
                        }));
                        L1Outcome::Queued
                    }
                    MshrAlloc::Merged => {
                        self.stats.mshr_merges += 1;
                        L1Outcome::Queued
                    }
                };
                self.stats.accesses += 1;
                if let Some(expires) = expired_lease {
                    self.stats.expired_misses += 1;
                    // TC leases are physical: `now` and the expiry time play
                    // the roles G-TSC gives `warp_ts` and `rts`.
                    self.tracer.record_with(now, || EventKind::ExpiredMiss {
                        block: acc.block,
                        warp_ts: now.0,
                        rts: expires.0,
                    });
                } else {
                    self.stats.cold_misses += 1;
                    self.tracer.record_with(now, || EventKind::ColdMiss {
                        block: acc.block,
                        warp: acc.warp.0,
                    });
                }
                outcome
            }
            AccessKind::Store | AccessKind::Atomic => {
                self.stats.accesses += 1;
                self.stats.stores += 1;
                let version = self.mint_version(acc.warp);
                match self.p.mode {
                    TcMode::Strong => {
                        // The new value must not be observable locally
                        // before it is globally performed.
                        self.tags.invalidate(acc.block);
                    }
                    TcMode::Weak if acc.kind == AccessKind::Atomic => {
                        // Atomics are performed at the L2; the stale local
                        // copy must not satisfy later reads of the result.
                        self.tags.invalidate(acc.block);
                    }
                    TcMode::Weak => {
                        if let Some(line) = self.tags.probe_mut(acc.block) {
                            line.meta.version = version;
                        }
                    }
                }
                let req = WriteReq {
                    block: acc.block,
                    warp_ts: Timestamp(0),
                    version,
                    epoch: 0,
                    span: acc.span,
                };
                self.out.push_back(if acc.kind == AccessKind::Atomic {
                    L1ToL2::Atomic(req)
                } else {
                    L1ToL2::Write(req)
                });
                self.store_acks
                    .entry(acc.block)
                    .or_default()
                    .push_back(StoreWaiter {
                        id: acc.id,
                        warp: acc.warp,
                        kind: acc.kind,
                        version,
                    });
                L1Outcome::Queued
            }
        }
    }

    fn on_response(&mut self, msg: L2ToL1, now: Cycle) -> Vec<Completion> {
        let mut done = Vec::new();
        match msg {
            L2ToL1::Fill(f) => {
                let LeaseInfo::Physical { expires } = f.lease else {
                    unreachable!("TC fills carry physical leases");
                };
                let meta = TcMeta {
                    expires,
                    version: f.version,
                };
                if let Some(ev) = self.tags.fill(f.block, meta) {
                    self.stats.evictions += 1;
                    self.tracer.record_with(now, || EventKind::Eviction {
                        block: ev.block,
                        rts: ev.meta.expires.0,
                    });
                }
                self.tracer
                    .record_with(now, || EventKind::FillApplied { block: f.block });
                for w in self.mshr.take(f.block) {
                    done.push(self.completion(w, f.block, f.version));
                }
            }
            L2ToL1::Renew { .. } => unreachable!("TC has no renewal responses"),
            L2ToL1::WriteAck(a) | L2ToL1::AtomicAck { ack: a, .. } => {
                let prev = if let L2ToL1::AtomicAck { prev, .. } = msg {
                    Some(prev)
                } else {
                    None
                };
                if let Some(q) = self.store_acks.get_mut(&a.block) {
                    if let Some(pos) = q.iter().position(|s| s.version == a.version) {
                        let sw = q.remove(pos).expect("position valid");
                        if q.is_empty() {
                            self.store_acks.remove(&a.block);
                        }
                        if let LeaseInfo::Physical { expires } = a.lease {
                            // TC-Weak: the ack carries the GWCT.
                            let g = &mut self.gwct[sw.warp.0 as usize];
                            *g = (*g).max(expires);
                        }
                        self.tracer
                            .record_with(now, || EventKind::WriteAck { block: a.block });
                        done.push(Completion {
                            id: sw.id,
                            warp: sw.warp,
                            kind: sw.kind,
                            block: a.block,
                            version: a.version,
                            ts: None,
                            epoch: 0,
                            prev,
                        });
                    }
                }
            }
            L2ToL1::Invalidate { block, .. } => {
                self.tags.invalidate(block);
            }
        }
        done
    }

    fn take_request(&mut self) -> Option<L1ToL2> {
        self.out.pop_front()
    }

    fn tick(&mut self, _now: Cycle) -> Vec<Completion> {
        Vec::new()
    }

    fn fence_ready(&self, warp: WarpId, now: Cycle) -> bool {
        match self.p.mode {
            TcMode::Strong => true,
            // The TC-Weak fence rule: stall until every prior write by the
            // warp is globally visible.
            TcMode::Weak => now >= self.gwct[warp.0 as usize],
        }
    }

    fn flush(&mut self) {
        self.tags.flush();
        for g in &mut self.gwct {
            *g = Cycle(0);
        }
    }

    fn is_idle(&self) -> bool {
        self.mshr.is_empty() && self.store_acks.is_empty() && self.out.is_empty()
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn tracer(&self) -> Option<&Tracer> {
        Some(&self.tracer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_protocol::msg::{FillResp, WriteAckResp};

    fn load(id: u64, warp: u16, block: u64) -> MemAccess {
        MemAccess {
            id: AccessId(id),
            warp: WarpId(warp),
            kind: AccessKind::Load,
            block: BlockAddr(block),
            span: gtsc_types::SpanId::NONE,
        }
    }

    fn store(id: u64, warp: u16, block: u64) -> MemAccess {
        MemAccess {
            id: AccessId(id),
            warp: WarpId(warp),
            kind: AccessKind::Store,
            block: BlockAddr(block),
            span: gtsc_types::SpanId::NONE,
        }
    }

    fn fill(block: u64, expires: u64, version: Version) -> L2ToL1 {
        L2ToL1::Fill(FillResp {
            block: BlockAddr(block),
            lease: LeaseInfo::Physical {
                expires: Cycle(expires),
            },
            version,
            epoch: 0,
            span: gtsc_types::SpanId::NONE,
        })
    }

    #[test]
    fn lease_expiry_self_invalidates() {
        let mut c = TcL1::new(TcL1Params::default());
        c.access(load(1, 0, 5), Cycle(0));
        c.take_request();
        let done = c.on_response(fill(5, 100, Version(9)), Cycle(30));
        assert_eq!(done.len(), 1);
        // Before expiry: hit.
        assert!(matches!(
            c.access(load(2, 0, 5), Cycle(99)),
            L1Outcome::Hit(_)
        ));
        // At expiry: coherence miss.
        assert!(matches!(
            c.access(load(3, 0, 5), Cycle(100)),
            L1Outcome::Queued
        ));
        assert_eq!(c.stats().expired_misses, 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn strong_store_invalidates_local_copy() {
        let mut c = TcL1::new(TcL1Params {
            mode: TcMode::Strong,
            ..TcL1Params::default()
        });
        c.access(load(1, 0, 5), Cycle(0));
        c.take_request();
        c.on_response(fill(5, 1000, Version(9)), Cycle(30));
        c.access(store(2, 0, 5), Cycle(40));
        // Local copy gone: a read now misses even though the lease was live.
        assert!(matches!(
            c.access(load(3, 1, 5), Cycle(41)),
            L1Outcome::Queued
        ));
    }

    #[test]
    fn weak_store_updates_in_place_and_tracks_gwct() {
        let mut c = TcL1::new(TcL1Params {
            mode: TcMode::Weak,
            ..TcL1Params::default()
        });
        c.access(load(1, 0, 5), Cycle(0));
        c.take_request();
        c.on_response(fill(5, 1000, Version(9)), Cycle(30));
        c.access(store(2, 0, 5), Cycle(40));
        let L1ToL2::Write(w) = c.take_request().unwrap() else {
            panic!()
        };
        // Local read sees the new value immediately (no write atomicity).
        match c.access(load(3, 1, 5), Cycle(41)) {
            L1Outcome::Hit(comp) => assert_eq!(comp.version, w.version),
            other => panic!("expected hit, got {other:?}"),
        }
        // Ack carries GWCT=500: the fence is not ready until then.
        c.on_response(
            L2ToL1::WriteAck(WriteAckResp {
                block: BlockAddr(5),
                lease: LeaseInfo::Physical {
                    expires: Cycle(500),
                },
                version: w.version,
                epoch: 0,
                span: gtsc_types::SpanId::NONE,
            }),
            Cycle(60),
        );
        assert_eq!(c.gwct(WarpId(0)), Cycle(500));
        assert!(!c.fence_ready(WarpId(0), Cycle(499)));
        assert!(c.fence_ready(WarpId(0), Cycle(500)));
        // Other warps' fences are unaffected.
        assert!(c.fence_ready(WarpId(1), Cycle(0)));
    }

    #[test]
    fn strong_fence_is_always_ready() {
        let c = TcL1::new(TcL1Params {
            mode: TcMode::Strong,
            ..TcL1Params::default()
        });
        assert!(c.fence_ready(WarpId(0), Cycle(0)));
    }

    #[test]
    fn merged_loads_complete_on_one_fill() {
        let mut c = TcL1::new(TcL1Params::default());
        c.access(load(1, 0, 5), Cycle(0));
        c.access(load(2, 1, 5), Cycle(0));
        assert!(c.take_request().is_some());
        assert!(c.take_request().is_none());
        let done = c.on_response(fill(5, 100, Version(9)), Cycle(30));
        assert_eq!(done.len(), 2);
        assert!(c.is_idle());
    }

    #[test]
    fn flush_resets_gwct() {
        let mut c = TcL1::new(TcL1Params {
            mode: TcMode::Weak,
            ..TcL1Params::default()
        });
        c.access(store(1, 0, 5), Cycle(0));
        let L1ToL2::Write(w) = c.take_request().unwrap() else {
            panic!()
        };
        c.on_response(
            L2ToL1::WriteAck(WriteAckResp {
                block: BlockAddr(5),
                lease: LeaseInfo::Physical {
                    expires: Cycle(900),
                },
                version: w.version,
                epoch: 0,
                span: gtsc_types::SpanId::NONE,
            }),
            Cycle(10),
        );
        c.flush();
        assert!(c.fence_ready(WarpId(0), Cycle(0)));
    }
}
