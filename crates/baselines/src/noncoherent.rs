//! "Baseline W/L1": a plain write-through private cache with **no
//! coherence at all** — lines stay valid until evicted or flushed,
//! regardless of remote writes. The paper reports this baseline only for
//! workloads that do not need coherence (the right cluster of Figure 12);
//! the simulator's checker will rightly flag it on sharing workloads.

use std::collections::{HashMap, VecDeque};

use gtsc_mem::{Mshr, MshrAlloc, TagArray};
use gtsc_protocol::msg::{L1ToL2, L2ToL1, LeaseInfo, ReadReq, WriteReq};
use gtsc_protocol::{AccessId, AccessKind, Completion, L1Controller, L1Outcome, MemAccess};
use gtsc_types::{BlockAddr, CacheGeometry, CacheStats, Cycle, Timestamp, Version, WarpId};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PlainMeta {
    version: Version,
}

#[derive(Debug, Clone, Copy)]
struct Waiter {
    id: AccessId,
    warp: WarpId,
}

#[derive(Debug, Clone, Copy)]
struct StoreWaiter {
    id: AccessId,
    warp: WarpId,
    kind: AccessKind,
    version: Version,
}

/// A non-coherent write-through private cache.
#[derive(Debug)]
pub struct NonCoherentL1 {
    sm_index: usize,
    tags: TagArray<PlainMeta>,
    mshr: Mshr<Waiter>,
    store_acks: HashMap<BlockAddr, VecDeque<StoreWaiter>>,
    out: VecDeque<L1ToL2>,
    version_ctr: Vec<u64>,
    stats: CacheStats,
}

impl NonCoherentL1 {
    /// Creates an empty cache for SM `sm_index`.
    #[must_use]
    pub fn new(
        geometry: CacheGeometry,
        sm_index: usize,
        mshr_entries: usize,
        mshr_merges: usize,
    ) -> Self {
        NonCoherentL1 {
            sm_index,
            tags: TagArray::new(geometry),
            mshr: Mshr::new(mshr_entries, mshr_merges),
            store_acks: HashMap::new(),
            out: VecDeque::new(),
            version_ctr: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    fn mint_version(&mut self, warp: WarpId) -> Version {
        let w = warp.0 as usize;
        if self.version_ctr.len() <= w {
            self.version_ctr.resize(w + 1, 0);
        }
        self.version_ctr[w] += 1;
        Version(((self.sm_index as u64 + 1) << 40) | ((w as u64) << 28) | self.version_ctr[w])
    }
}

impl L1Controller for NonCoherentL1 {
    fn access(&mut self, acc: MemAccess, _now: Cycle) -> L1Outcome {
        match acc.kind {
            AccessKind::Load => {
                if let Some(line) = self.tags.probe(acc.block) {
                    self.stats.accesses += 1;
                    self.stats.hits += 1;
                    return L1Outcome::Hit(Completion {
                        id: acc.id,
                        warp: acc.warp,
                        kind: AccessKind::Load,
                        block: acc.block,
                        version: line.meta.version,
                        ts: None,
                        epoch: 0,
                        prev: None,
                    });
                }
                let outcome = match self.mshr.register(
                    acc.block,
                    Waiter {
                        id: acc.id,
                        warp: acc.warp,
                    },
                ) {
                    MshrAlloc::Full => return L1Outcome::Reject,
                    MshrAlloc::AllocatedNew => {
                        self.out.push_back(L1ToL2::Read(ReadReq {
                            block: acc.block,
                            wts: Timestamp(0),
                            warp_ts: Timestamp(0),
                            epoch: 0,
                            span: acc.span,
                        }));
                        L1Outcome::Queued
                    }
                    MshrAlloc::Merged => {
                        self.stats.mshr_merges += 1;
                        L1Outcome::Queued
                    }
                };
                self.stats.accesses += 1;
                self.stats.cold_misses += 1;
                outcome
            }
            AccessKind::Store | AccessKind::Atomic => {
                self.stats.accesses += 1;
                self.stats.stores += 1;
                let version = self.mint_version(acc.warp);
                if let Some(line) = self.tags.probe_mut(acc.block) {
                    line.meta.version = version;
                }
                let req = WriteReq {
                    block: acc.block,
                    warp_ts: Timestamp(0),
                    version,
                    epoch: 0,
                    span: acc.span,
                };
                self.out.push_back(if acc.kind == AccessKind::Atomic {
                    L1ToL2::Atomic(req)
                } else {
                    L1ToL2::Write(req)
                });
                self.store_acks
                    .entry(acc.block)
                    .or_default()
                    .push_back(StoreWaiter {
                        id: acc.id,
                        warp: acc.warp,
                        kind: acc.kind,
                        version,
                    });
                L1Outcome::Queued
            }
        }
    }

    fn on_response(&mut self, msg: L2ToL1, _now: Cycle) -> Vec<Completion> {
        let mut done = Vec::new();
        match msg {
            L2ToL1::Fill(f) => {
                debug_assert_eq!(f.lease, LeaseInfo::None, "plain L2 grants no leases");
                if self
                    .tags
                    .fill(f.block, PlainMeta { version: f.version })
                    .is_some()
                {
                    self.stats.evictions += 1;
                }
                for w in self.mshr.take(f.block) {
                    done.push(Completion {
                        id: w.id,
                        warp: w.warp,
                        kind: AccessKind::Load,
                        block: f.block,
                        version: f.version,
                        ts: None,
                        epoch: 0,
                        prev: None,
                    });
                }
            }
            L2ToL1::WriteAck(a) | L2ToL1::AtomicAck { ack: a, .. } => {
                let prev = if let L2ToL1::AtomicAck { prev, .. } = msg {
                    Some(prev)
                } else {
                    None
                };
                if let Some(q) = self.store_acks.get_mut(&a.block) {
                    if let Some(pos) = q.iter().position(|s| s.version == a.version) {
                        let sw = q.remove(pos).expect("position valid");
                        if q.is_empty() {
                            self.store_acks.remove(&a.block);
                        }
                        done.push(Completion {
                            id: sw.id,
                            warp: sw.warp,
                            kind: sw.kind,
                            block: a.block,
                            version: a.version,
                            ts: None,
                            epoch: 0,
                            prev,
                        });
                    }
                }
            }
            L2ToL1::Renew { .. } => {}
            L2ToL1::Invalidate { block, .. } => {
                self.tags.invalidate(block);
            }
        }
        done
    }

    fn take_request(&mut self) -> Option<L1ToL2> {
        self.out.pop_front()
    }

    fn tick(&mut self, _now: Cycle) -> Vec<Completion> {
        Vec::new()
    }

    fn flush(&mut self) {
        self.tags.flush();
    }

    fn is_idle(&self) -> bool {
        self.mshr.is_empty() && self.store_acks.is_empty() && self.out.is_empty()
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_protocol::msg::FillResp;

    fn cache() -> NonCoherentL1 {
        NonCoherentL1::new(CacheGeometry::new(2 * 1024, 2, 128), 0, 8, 4)
    }

    fn load(id: u64, block: u64) -> MemAccess {
        MemAccess {
            id: AccessId(id),
            warp: WarpId(0),
            kind: AccessKind::Load,
            block: BlockAddr(block),
            span: gtsc_types::SpanId::NONE,
        }
    }

    #[test]
    fn lines_never_expire() {
        let mut c = cache();
        c.access(load(1, 5), Cycle(0));
        c.take_request();
        c.on_response(
            L2ToL1::Fill(FillResp {
                block: BlockAddr(5),
                lease: LeaseInfo::None,
                version: Version(9),
                epoch: 0,
                span: gtsc_types::SpanId::NONE,
            }),
            Cycle(10),
        );
        // Arbitrarily far in the future: still a hit (that is the point —
        // and the incoherence).
        assert!(matches!(
            c.access(load(2, 5), Cycle(1_000_000)),
            L1Outcome::Hit(_)
        ));
        assert_eq!(c.stats().expired_misses, 0);
    }

    #[test]
    fn store_updates_local_copy_in_place() {
        let mut c = cache();
        c.access(load(1, 5), Cycle(0));
        c.take_request();
        c.on_response(
            L2ToL1::Fill(FillResp {
                block: BlockAddr(5),
                lease: LeaseInfo::None,
                version: Version(9),
                epoch: 0,
                span: gtsc_types::SpanId::NONE,
            }),
            Cycle(10),
        );
        let st = MemAccess {
            id: AccessId(2),
            warp: WarpId(1),
            kind: AccessKind::Store,
            block: BlockAddr(5),
            span: gtsc_types::SpanId::NONE,
        };
        c.access(st, Cycle(20));
        let L1ToL2::Write(w) = c.take_request().unwrap() else {
            panic!()
        };
        match c.access(load(3, 5), Cycle(21)) {
            L1Outcome::Hit(comp) => assert_eq!(comp.version, w.version),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn merges_loads_in_mshr() {
        let mut c = cache();
        c.access(load(1, 5), Cycle(0));
        c.access(load(2, 5), Cycle(0));
        assert!(c.take_request().is_some());
        assert!(c.take_request().is_none());
        assert_eq!(c.stats().mshr_merges, 1);
    }
}
