//! A plain (coherence-free) shared-cache bank, backing the "BL" (no-L1)
//! and "Baseline W/L1" configurations of the paper's evaluation.
//!
//! Reads return data, writes update in place and acknowledge; there are no
//! leases, no stalls, no recalls. With the L1 disabled this *is* coherent
//! (the L2 is the single point of truth); with a non-coherent L1 in front
//! it reproduces the incoherent baseline the paper only runs on workloads
//! that need no coherence.

use std::collections::{HashMap, VecDeque};

use gtsc_mem::{Mshr, MshrAlloc, TagArray};
use gtsc_protocol::msg::{FillResp, L1ToL2, L2ToL1, LeaseInfo, WriteAckResp};
use gtsc_protocol::L2Controller;
use gtsc_types::{BlockAddr, CacheGeometry, CacheStats, Cycle, Version};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PlainMeta {
    version: Version,
    dirty: bool,
}

/// Construction parameters for [`PlainL2`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlainL2Params {
    /// Bank geometry.
    pub geometry: CacheGeometry,
    /// Bank access latency in cycles.
    pub latency: u64,
    /// Requests processed per cycle.
    pub ports: usize,
    /// Outstanding DRAM fetches tracked.
    pub mshr_entries: usize,
    /// Requests merged per outstanding fetch.
    pub mshr_merges: usize,
}

impl Default for PlainL2Params {
    fn default() -> Self {
        PlainL2Params {
            geometry: CacheGeometry::new(4 * 1024, 4, 128),
            latency: 10,
            ports: 1,
            mshr_entries: 16,
            mshr_merges: 64,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingReq {
    src: usize,
    msg: L1ToL2,
}

/// One coherence-free shared-cache bank.
#[derive(Debug)]
pub struct PlainL2 {
    p: PlainL2Params,
    tags: TagArray<PlainMeta>,
    backing: HashMap<BlockAddr, Version>,
    pending: Mshr<PendingReq>,
    in_queue: VecDeque<(Cycle, usize, L1ToL2)>,
    out_resp: VecDeque<(usize, L2ToL1)>,
    dram_out: VecDeque<(BlockAddr, bool)>,
    stats: CacheStats,
}

impl PlainL2 {
    /// Creates an empty bank.
    #[must_use]
    pub fn new(p: PlainL2Params) -> Self {
        PlainL2 {
            tags: TagArray::new(p.geometry),
            backing: HashMap::new(),
            pending: Mshr::new(p.mshr_entries, p.mshr_merges),
            in_queue: VecDeque::new(),
            out_resp: VecDeque::new(),
            dram_out: VecDeque::new(),
            stats: CacheStats::default(),
            p,
        }
    }

    fn serve_hit(&mut self, src: usize, msg: L1ToL2) {
        let block = msg.block();
        let line = self
            .tags
            .probe_mut(block)
            .expect("caller checked residency");
        match msg {
            L1ToL2::Read(r) => {
                let version = line.meta.version;
                self.out_resp.push_back((
                    src,
                    L2ToL1::Fill(FillResp {
                        block,
                        lease: LeaseInfo::None,
                        version,
                        epoch: 0,
                        span: r.span,
                    }),
                ));
            }
            L1ToL2::Write(w) | L1ToL2::Atomic(w) => {
                let prev = line.meta.version;
                line.meta.version = w.version;
                line.meta.dirty = true;
                self.stats.stores += 1;
                let ack = WriteAckResp {
                    block,
                    lease: LeaseInfo::None,
                    version: w.version,
                    epoch: 0,
                    span: w.span,
                };
                let resp = if matches!(msg, L1ToL2::Atomic(_)) {
                    L2ToL1::AtomicAck { ack, prev }
                } else {
                    L2ToL1::WriteAck(ack)
                };
                self.out_resp.push_back((src, resp));
            }
        }
    }

    fn handle(&mut self, src: usize, msg: L1ToL2, now: Cycle) {
        let block = msg.block();
        self.stats.accesses += 1;
        if self.tags.peek(block).is_some() {
            self.stats.hits += 1;
            self.serve_hit(src, msg);
            return;
        }
        self.stats.cold_misses += 1;
        match self.pending.register(block, PendingReq { src, msg }) {
            MshrAlloc::AllocatedNew => self.dram_out.push_back((block, false)),
            MshrAlloc::Merged => self.stats.mshr_merges += 1,
            MshrAlloc::Full => {
                unreachable!("tick() admits requests only when the MSHR can take them")
            }
        }
        let _ = now;
    }

    /// Head-of-line admission check: a miss that cannot get an MSHR slot
    /// stalls the queue (younger same-block requests must not overtake).
    fn can_handle(&self, msg: &L1ToL2) -> bool {
        let block = msg.block();
        if self.tags.peek(block).is_some() {
            return true;
        }
        if self.pending.contains(block) {
            return self.pending.waiters(block) < 256;
        }
        !self.pending.is_full()
    }
}

impl L2Controller for PlainL2 {
    fn on_request(&mut self, src: usize, msg: L1ToL2, now: Cycle) {
        self.in_queue.push_back((now + self.p.latency, src, msg));
    }

    fn take_response(&mut self) -> Option<(usize, L2ToL1)> {
        self.out_resp.pop_front()
    }

    fn take_dram_request(&mut self) -> Option<(BlockAddr, bool)> {
        self.dram_out.pop_front()
    }

    fn on_dram_response(&mut self, block: BlockAddr, is_write: bool, _now: Cycle) {
        if is_write {
            return;
        }
        let version = self.backing.get(&block).copied().unwrap_or(Version::ZERO);
        if let Some(ev) = self.tags.fill(
            block,
            PlainMeta {
                version,
                dirty: false,
            },
        ) {
            self.stats.evictions += 1;
            if ev.meta.dirty {
                self.backing.insert(ev.block, ev.meta.version);
                self.dram_out.push_back((ev.block, true));
            }
        }
        for w in self.pending.take(block) {
            self.serve_hit(w.src, w.msg);
        }
    }

    fn tick(&mut self, now: Cycle) {
        for _ in 0..self.p.ports {
            match self.in_queue.front() {
                Some((ready, _, msg)) if *ready <= now => {
                    if !self.can_handle(msg) {
                        break; // head-of-line stall until an MSHR frees
                    }
                    let (_, src, msg) = self.in_queue.pop_front().expect("front exists");
                    self.handle(src, msg, now);
                }
                _ => break,
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.in_queue.is_empty()
            && self.pending.is_empty()
            && self.out_resp.is_empty()
            && self.dram_out.is_empty()
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn memory_image(&self) -> Vec<(BlockAddr, Version)> {
        let mut img: std::collections::HashMap<BlockAddr, Version> = self.backing.clone();
        for line in self.tags.iter() {
            img.insert(line.block, line.meta.version);
        }
        img.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_protocol::msg::{ReadReq, WriteReq};
    use gtsc_types::Timestamp;

    fn read(block: u64) -> L1ToL2 {
        L1ToL2::Read(ReadReq {
            block: BlockAddr(block),
            wts: Timestamp(0),
            warp_ts: Timestamp(0),
            epoch: 0,
            span: gtsc_types::SpanId::NONE,
        })
    }

    fn write(block: u64, version: u64) -> L1ToL2 {
        L1ToL2::Write(WriteReq {
            block: BlockAddr(block),
            warp_ts: Timestamp(0),
            version: Version(version),
            epoch: 0,
            span: gtsc_types::SpanId::NONE,
        })
    }

    fn settle(l2: &mut PlainL2, start: Cycle) -> Vec<(usize, L2ToL1)> {
        let mut out = Vec::new();
        for c in start.0..start.0 + 10_000 {
            l2.tick(Cycle(c));
            while let Some((b, w)) = l2.take_dram_request() {
                l2.on_dram_response(b, w, Cycle(c));
            }
            while let Some(r) = l2.take_response() {
                out.push(r);
            }
            if l2.is_idle() {
                break;
            }
        }
        out
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut l2 = PlainL2::new(PlainL2Params::default());
        l2.on_request(0, write(5, 42), Cycle(0));
        let resps = settle(&mut l2, Cycle(0));
        assert!(matches!(resps[0].1, L2ToL1::WriteAck(_)));
        l2.on_request(1, read(5), Cycle(100));
        let resps = settle(&mut l2, Cycle(100));
        let (_, L2ToL1::Fill(f)) = &resps[0] else {
            panic!()
        };
        assert_eq!(f.version, Version(42));
        assert_eq!(f.lease, LeaseInfo::None);
    }

    #[test]
    fn eviction_and_refetch_preserves_data() {
        let geometry = CacheGeometry::new(256, 1, 128);
        let mut l2 = PlainL2::new(PlainL2Params {
            geometry,
            ..PlainL2Params::default()
        });
        l2.on_request(0, write(0, 7), Cycle(0));
        settle(&mut l2, Cycle(0));
        l2.on_request(0, read(2), Cycle(100)); // evicts dirty block 0
        settle(&mut l2, Cycle(100));
        assert_eq!(l2.stats().evictions, 1);
        l2.on_request(0, read(0), Cycle(200));
        let resps = settle(&mut l2, Cycle(200));
        let version = resps
            .iter()
            .find_map(|(_, m)| match m {
                L2ToL1::Fill(f) if f.block == BlockAddr(0) => Some(f.version),
                _ => None,
            })
            .unwrap();
        assert_eq!(version, Version(7));
    }

    #[test]
    fn full_mshr_stalls_head_of_line_without_reordering() {
        let mut l2 = PlainL2::new(PlainL2Params {
            mshr_entries: 1,
            latency: 0,
            ..PlainL2Params::default()
        });
        // Two misses to different blocks: the second must wait for the
        // first's fetch, not overtake it.
        l2.on_request(0, read(1), Cycle(0));
        l2.on_request(0, write(3, 9), Cycle(0));
        l2.tick(Cycle(0));
        l2.tick(Cycle(1));
        assert_eq!(l2.take_dram_request(), Some((BlockAddr(1), false)));
        assert_eq!(
            l2.take_dram_request(),
            None,
            "second miss held at head of line"
        );
        l2.on_dram_response(BlockAddr(1), false, Cycle(2));
        l2.tick(Cycle(2));
        assert_eq!(l2.take_dram_request(), Some((BlockAddr(3), false)));
    }

    #[test]
    fn no_write_stalls_ever() {
        let mut l2 = PlainL2::new(PlainL2Params::default());
        l2.on_request(0, read(5), Cycle(0));
        settle(&mut l2, Cycle(0));
        l2.on_request(1, write(5, 9), Cycle(20));
        settle(&mut l2, Cycle(20));
        assert_eq!(l2.stats().write_stall_cycles, 0);
        assert_eq!(l2.stats().eviction_stall_cycles, 0);
    }
}
