//! Seeded protocol mutants for oracle validation.
//!
//! The race oracle in `gtsc-check` claims to catch coherence bugs the
//! online sanitizer cannot see. That claim needs teeth: each variant
//! here disables exactly one protocol guard, and the mutation tests in
//! `crates/check/tests/mutants.rs` assert that the oracle flags every
//! mutant on some exhaustively-explored schedule — and that the
//! sanitizer alone stays silent on at least one of them.
//!
//! The hooks are `#[doc(hidden)]` and default to [`ProtocolMutation::None`]:
//! production code never sets them, and the `None` arm compiles to the
//! unmutated protocol (a single enum compare on the affected paths).

/// Which single protocol guard to disable. Test-only; see the module
/// docs.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtocolMutation {
    /// The unmutated protocol.
    #[default]
    None,
    /// The L1 serves a resident line to a warp whose timestamp is past
    /// the line's `rts` (drops hit condition 2 of Figure 2). The warp
    /// reads data whose lease expired — a stale read the renewal
    /// machinery exists to prevent.
    ServeReadPastRts,
    /// The L2 stamps a store with `max(wts.succ(), warp_ts)` instead of
    /// `max(rts + 1, warp_ts)` (drops the Figure 5 lease-expiry guard).
    /// The store lands logically *inside* outstanding read leases, so a
    /// reader can observe old data at a logical time after the write.
    SkipLeaseExpiryOnStore,
    /// Bank recovery keeps the old epoch instead of entering the bumped
    /// one (drops the Section V-D epoch advance on reset). L1s never
    /// learn their leases died with the bank's coherence state.
    SkipEpochBumpOnRecovery,
    /// A multi-GPU device L2 grants an L1 lease *past* the `rts` of the
    /// inter-GPU grant it holds from the home node (drops the `nest_rts`
    /// clamp of DESIGN.md §17). An SM can then read locally at a logical
    /// time the home node believes free of readers — a store serialized
    /// at the home can land inside the escaped lease.
    ServePastGrantRts,
}
