//! G-TSC: timestamp-ordering cache coherence for GPUs — the primary
//! contribution of *"G-TSC: Timestamp Based Coherence for GPUs"*
//! (Tabbakh, Qian, Annavaram — HPCA 2018), reimplemented as a pair of
//! cache controllers pluggable into the workspace's GPU model.
//!
//! # The protocol in one paragraph
//!
//! Every cache block carries a *write timestamp* `wts` (the logical time
//! of the store that produced its data) and a *read timestamp* `rts` (the
//! last logical instant at which that data may be read); `[wts, rts]` is a
//! logical *lease*. Every warp carries `warp_ts`, the logical time of its
//! last memory operation. A load hits in L1 iff the tag matches **and**
//! `warp_ts ≤ rts`; it then advances `warp_ts` to at least `wts`. Stores
//! are write-through: the L2 serializes them and assigns
//! `wts = max(rts + 1, warp_ts)` — logically *after* every outstanding
//! lease — so writes never stall waiting for readers, the fundamental
//! advantage over Temporal Coherence (Section III). Physical time is used
//! only to order operations with equal timestamps (the issuing order
//! within a warp).
//!
//! # Crate layout
//!
//! * [`rules`] — the pure timestamp-assignment rules of Figures 4–6;
//! * [`l2`] — [`GtscL2`]: a shared-cache bank controller (serialization
//!   point, lease assignment, `mem_ts`, non-inclusion, rollover);
//! * [`l1`] — [`GtscL1`]: the per-SM private cache (warp timestamp table,
//!   update-visibility blocking, MSHR request combining, renewals).
//!
//! # Examples
//!
//! Driving the two controllers directly (the full simulator in `gtsc-sim`
//! adds the NoC and DRAM in between):
//!
//! ```
//! use gtsc_core::{GtscL1, GtscL2, L1Params, L2Params};
//! use gtsc_protocol::{AccessId, AccessKind, L1Controller, L1Outcome, L2Controller, MemAccess};
//! use gtsc_types::{BlockAddr, Cycle, SpanId, WarpId};
//!
//! let mut l1 = GtscL1::new(L1Params::default());
//! let mut l2 = GtscL2::new(L2Params::default());
//!
//! // A load misses in L1 and produces a BusRd.
//! let acc = MemAccess { id: AccessId(1), warp: WarpId(0), kind: AccessKind::Load, block: BlockAddr(5), span: SpanId::NONE };
//! assert!(matches!(l1.access(acc, Cycle(0)), L1Outcome::Queued));
//! let req = l1.take_request().expect("miss sends BusRd");
//!
//! // The L2 misses too, fetches from DRAM, then answers with a fill.
//! l2.on_request(0, req, Cycle(0));
//! l2.tick(Cycle(20));
//! let (block, is_write) = l2.take_dram_request().expect("L2 miss goes to DRAM");
//! assert!(!is_write);
//! l2.on_dram_response(block, false, Cycle(200));
//! l2.tick(Cycle(200));
//! let (dst, resp) = l2.take_response().expect("fill response");
//! assert_eq!(dst, 0);
//!
//! // The fill completes the queued load.
//! let done = l1.on_response(resp, Cycle(220));
//! assert_eq!(done.len(), 1);
//! assert_eq!(done[0].id, AccessId(1));
//! ```

pub mod l1;
pub mod l2;
pub mod mutation;
pub mod rules;

pub use l1::{GtscL1, L1Params};
pub use l2::{GtscL2, L2Params};
#[doc(hidden)]
pub use mutation::ProtocolMutation;
