//! The G-TSC shared-cache (L2) bank controller.
//!
//! The L2 is the serialization point of the protocol: it owns the master
//! copy of every lease, assigns store timestamps (Figure 5), serves fills
//! and renewals (Figure 4), folds evicted leases into the per-bank memory
//! timestamp `mem_ts` (Figure 6, enabling the non-inclusive hierarchy of
//! Section V-C), and runs the timestamp-rollover reset of Section V-D.

use std::collections::{HashMap, VecDeque};

use gtsc_mem::{Mshr, MshrAlloc, TagArray};
use gtsc_protocol::msg::{
    Epoch, FillResp, L1ToL2, L2ToL1, LeaseInfo, ReadReq, WriteAckResp, WriteReq,
};
use gtsc_protocol::{ControllerPressure, L2Controller};
use gtsc_trace::{
    CloseReason, EventKind, HopKind, Sanitizer, ServeClass, SpanTracker, Tracer, Transition,
};
use gtsc_types::{
    BlockAddr, CacheGeometry, CacheStats, Cycle, InclusionPolicy, Lease, SpanId, Timestamp, Version,
};

use crate::mutation::ProtocolMutation;
use crate::rules::{extend_rts, fold_mem_ts, grant_rts, store_wts};

/// Per-line L2 coherence state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct L2Meta {
    wts: Timestamp,
    rts: Timestamp,
    version: Version,
    dirty: bool,
    /// Consecutive renewals since the last store — drives the adaptive
    /// lease extension (see [`L2Params::adaptive_lease`]).
    renew_streak: u8,
}

/// Construction parameters for [`GtscL2`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Params {
    /// Bank geometry.
    pub geometry: CacheGeometry,
    /// Lease length granted on fills and renewals.
    pub lease: Lease,
    /// Hardware timestamp width; reaching `2^ts_bits` triggers the
    /// rollover reset.
    pub ts_bits: u32,
    /// Bank access latency in cycles.
    pub latency: u64,
    /// Requests processed per cycle.
    pub ports: usize,
    /// Non-inclusive (default, Section V-C) or the inclusive ablation
    /// (evictions broadcast recalls to all L1s).
    pub inclusion: InclusionPolicy,
    /// Number of SMs (recall broadcast fan-out for the inclusive ablation).
    pub n_sms: usize,
    /// Outstanding DRAM fetches tracked.
    pub mshr_entries: usize,
    /// Requests merged per outstanding fetch.
    pub mshr_merges: usize,
    /// Tardis-2.0-style lease prediction (an extension beyond the paper):
    /// blocks that keep getting renewed without intervening stores earn
    /// exponentially longer leases (up to `lease << 4`), cutting renewal
    /// traffic for read-mostly data; any store resets the prediction.
    /// Off by default — the paper's protocol uses a fixed lease.
    pub adaptive_lease: bool,
}

impl Default for L2Params {
    /// A small single-bank configuration suitable for unit tests and doc
    /// examples (the full simulator builds params from `GpuConfig`).
    fn default() -> Self {
        L2Params {
            geometry: CacheGeometry::new(4 * 1024, 4, 128),
            lease: Lease::default(),
            ts_bits: 16,
            latency: 10,
            ports: 1,
            inclusion: InclusionPolicy::NonInclusive,
            n_sms: 2,
            mshr_entries: 16,
            mshr_merges: 64,
            adaptive_lease: false,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingReq {
    src: usize,
    msg: L1ToL2,
}

/// One G-TSC shared-cache bank.
///
/// See the crate-level example for end-to-end usage; the
/// [`L2Controller`] trait documents the per-cycle driving contract.
#[derive(Debug)]
pub struct GtscL2 {
    p: L2Params,
    tags: TagArray<L2Meta>,
    mem_ts: Timestamp,
    epoch: Epoch,
    overflow: bool,
    /// DRAM contents model: last written-back version per block.
    backing: HashMap<BlockAddr, Version>,
    /// Requests waiting on an outstanding DRAM fetch.
    pending: Mshr<PendingReq>,
    /// Replay filter: the most recently applied store versions per block.
    ///
    /// A lossy-but-reliable interconnect may deliver a write request
    /// twice (at-least-once delivery). Re-applying the replay is *not*
    /// harmless: if another SM's store was interposed, the replay would
    /// revert the line to stale data at a fresh `wts`. Store versions are
    /// globally unique (the L1 stamps each store once), so remembering
    /// the last few applied per block makes the write path idempotent —
    /// the duplicate is recognized and dropped, and the original ack
    /// (which is never dropped, only delayed) satisfies the L1.
    applied_stores: HashMap<BlockAddr, VecDeque<Version>>,
    /// Input queue: requests become serviceable `latency` cycles after
    /// arrival.
    in_queue: VecDeque<(Cycle, usize, L1ToL2)>,
    out_resp: VecDeque<(usize, L2ToL1)>,
    dram_out: VecDeque<(BlockAddr, bool)>,
    stats: CacheStats,
    tracer: Tracer,
    sanitizer: Sanitizer,
    /// Latency-observatory handle: sampled request spans get their L2
    /// serve class and DRAM-wait overlay noted here. Excluded from
    /// snapshots, like the tracer ring.
    spans: SpanTracker,
    /// Last cycle observed on any driving call (stamps events from
    /// clock-less trait methods like `apply_reset`).
    clock: Cycle,
    /// Test-only protocol mutant (see [`crate::mutation`]); `None` in
    /// production.
    mutation: ProtocolMutation,
}

impl GtscL2 {
    /// Creates an empty bank.
    #[must_use]
    pub fn new(p: L2Params) -> Self {
        GtscL2 {
            tags: TagArray::new(p.geometry),
            mem_ts: Timestamp::INIT,
            epoch: 0,
            overflow: false,
            backing: HashMap::new(),
            pending: Mshr::new(p.mshr_entries, p.mshr_merges),
            applied_stores: HashMap::new(),
            in_queue: VecDeque::new(),
            out_resp: VecDeque::new(),
            dram_out: VecDeque::new(),
            stats: CacheStats::default(),
            tracer: Tracer::disabled(),
            sanitizer: Sanitizer::disabled(),
            spans: SpanTracker::disabled(),
            clock: Cycle(0),
            mutation: ProtocolMutation::None,
            p,
        }
    }

    /// Arms a seeded protocol mutant (oracle validation only; see
    /// [`crate::mutation`]).
    #[doc(hidden)]
    pub fn set_mutation(&mut self, mutation: ProtocolMutation) {
        self.mutation = mutation;
    }

    /// The bank's current memory timestamp (exposed for tests and stats).
    #[must_use]
    pub fn mem_ts(&self) -> Timestamp {
        self.mem_ts
    }

    /// The bank's current reset epoch.
    #[must_use]
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    fn note_ts(&mut self, ts: Timestamp) {
        if ts.overflows(self.p.ts_bits) {
            self.overflow = true;
        }
    }

    /// Brings a request from an older epoch into the current epoch: its
    /// timestamps are meaningless after a reset, so it degrades to a
    /// fresh-warp request (Section V-D: the L2 answers stale requests
    /// with full fills).
    fn sanitize(&self, msg: L1ToL2) -> L1ToL2 {
        match msg {
            L1ToL2::Read(r) if r.epoch < self.epoch => L1ToL2::Read(ReadReq {
                wts: Timestamp(0),
                warp_ts: Timestamp::INIT,
                epoch: self.epoch,
                ..r
            }),
            L1ToL2::Write(w) if w.epoch < self.epoch => L1ToL2::Write(WriteReq {
                warp_ts: Timestamp::INIT,
                epoch: self.epoch,
                ..w
            }),
            L1ToL2::Atomic(w) if w.epoch < self.epoch => L1ToL2::Atomic(WriteReq {
                warp_ts: Timestamp::INIT,
                epoch: self.epoch,
                ..w
            }),
            other => other,
        }
    }

    fn lease_of(&self, m: &L2Meta) -> LeaseInfo {
        LeaseInfo::Logical {
            wts: m.wts,
            rts: m.rts,
        }
    }

    /// The lease to grant a line: the base lease, scaled up for proven
    /// read-mostly blocks when adaptive leases are on.
    fn effective_lease(&self, meta: &L2Meta) -> Lease {
        if self.p.adaptive_lease {
            Lease(self.p.lease.0 << meta.renew_streak.min(4))
        } else {
            self.p.lease
        }
    }

    /// Records a store about to be applied to `block`; returns `true` if
    /// this exact store was already applied (a fault-injected replay that
    /// must be dropped, not re-executed). Per-flow FIFO delivery
    /// guarantees the replay reaches the bank after the original, so the
    /// original is always recorded first. The per-block history is
    /// bounded: far deeper than the duplicate-delivery lag, so an entry
    /// cannot age out before its replay arrives.
    fn store_is_replay(&mut self, block: BlockAddr, version: Version) -> bool {
        const HISTORY: usize = 64;
        let seen = self.applied_stores.entry(block).or_default();
        if seen.contains(&version) {
            return true;
        }
        if seen.len() == HISTORY {
            seen.pop_front();
        }
        seen.push_back(version);
        false
    }

    /// Serves a request whose block is resident. Returns the response.
    fn serve_hit(&mut self, src: usize, msg: L1ToL2) {
        let block = msg.block();
        if let L1ToL2::Write(w) | L1ToL2::Atomic(w) = &msg {
            if self.store_is_replay(block, w.version) {
                self.stats.replayed_stores += 1;
                self.tracer
                    .record_with(self.clock, || EventKind::ReplayDrop { block });
                return;
            }
        }
        let lease = self.p.lease;
        let adaptive = self.p.adaptive_lease;
        let eff = self
            .tags
            .peek(block)
            .map(|l| self.effective_lease(&l.meta))
            .unwrap_or(lease);
        let line = self
            .tags
            .probe_mut(block)
            .expect("caller checked residency");
        match msg {
            L1ToL2::Read(r) => {
                if adaptive && r.wts == line.meta.wts {
                    line.meta.renew_streak = line.meta.renew_streak.saturating_add(1);
                }
                line.meta.rts = extend_rts(line.meta.rts, r.warp_ts, eff);
                let new_rts = line.meta.rts;
                let grant_wts = line.meta.wts;
                let resp = if r.wts == line.meta.wts {
                    // The L1 already holds this version: renewal, no data
                    // (the Section VI-C traffic saving).
                    self.stats.renewals += 1;
                    self.spans.note_serve(r.span, ServeClass::Renewal);
                    self.tracer.record_with(self.clock, || EventKind::Renewal {
                        block,
                        rts: new_rts.0,
                    });
                    L2ToL1::Renew {
                        block,
                        lease: LeaseInfo::Logical {
                            wts: r.wts,
                            rts: new_rts,
                        },
                        epoch: self.epoch,
                        span: r.span,
                    }
                } else {
                    self.spans.note_serve(r.span, ServeClass::Grant);
                    let meta = self.tags.peek(block).map(|l| l.meta).expect("resident");
                    self.tracer
                        .record_with(self.clock, || EventKind::LeaseGrant {
                            block,
                            wts: meta.wts.0,
                            rts: meta.rts.0,
                        });
                    L2ToL1::Fill(FillResp {
                        block,
                        lease: self.lease_of(&meta),
                        version: meta.version,
                        epoch: self.epoch,
                        span: r.span,
                    })
                };
                self.note_ts(new_rts);
                let epoch = self.epoch;
                self.sanitizer
                    .check_with(self.clock, || Transition::L2Grant {
                        block,
                        wts: grant_wts,
                        rts: new_rts,
                        epoch,
                    });
                self.out_resp.push_back((src, resp));
            }
            L1ToL2::Write(w) | L1ToL2::Atomic(w) => {
                // Figure 5 — and the reason G-TSC never stalls on writes:
                // the store (or the write half of an atomic) is simply
                // scheduled after every outstanding lease.
                let prev = line.meta.version;
                let wts = if self.mutation == ProtocolMutation::SkipLeaseExpiryOnStore {
                    // Mutant: ignore outstanding read leases; keep only
                    // per-block monotonicity so the sanitizer's wts check
                    // stays silent and the race oracle must catch it.
                    // lint: allow(raw-ts-arith): deliberate broken variant of store_wts.
                    line.meta.wts.succ().max(w.warp_ts)
                } else {
                    store_wts(line.meta.rts, w.warp_ts)
                };
                line.meta.wts = wts;
                line.meta.rts = grant_rts(wts, lease);
                line.meta.renew_streak = 0;
                line.meta.version = w.version;
                line.meta.dirty = true;
                let ack_lease = LeaseInfo::Logical {
                    wts,
                    rts: line.meta.rts,
                };
                let rts = line.meta.rts;
                self.stats.stores += 1;
                self.tracer
                    .record_with(self.clock, || EventKind::StoreCommit { block, wts: wts.0 });
                self.note_ts(rts);
                let epoch = self.epoch;
                self.sanitizer
                    .check_with(self.clock, || Transition::L2Store {
                        block,
                        wts,
                        rts,
                        epoch,
                    });
                let ack = WriteAckResp {
                    block,
                    lease: ack_lease,
                    version: w.version,
                    epoch: self.epoch,
                    span: w.span,
                };
                let resp = if matches!(msg, L1ToL2::Atomic(_)) {
                    L2ToL1::AtomicAck { ack, prev }
                } else {
                    L2ToL1::WriteAck(ack)
                };
                self.out_resp.push_back((src, resp));
            }
        }
    }

    fn handle(&mut self, src: usize, msg: L1ToL2, now: Cycle) {
        let msg = self.sanitize(msg);
        let block = msg.block();
        self.stats.accesses += 1;
        if self.tags.peek(block).is_some() {
            self.stats.hits += 1;
            self.serve_hit(src, msg);
            return;
        }
        // Miss: both loads and stores fetch the block from DRAM first
        // (write-allocate; Figure 5's miss path).
        self.stats.cold_misses += 1;
        let span = msg.span();
        match self.pending.register(block, PendingReq { src, msg }) {
            MshrAlloc::AllocatedNew => {
                self.spans
                    .overlay_enter(span, HopKind::DramWait, self.clock);
                self.dram_out.push_back((block, false));
            }
            MshrAlloc::Merged => {
                self.spans
                    .overlay_enter(span, HopKind::DramWait, self.clock);
                self.stats.mshr_merges += 1;
            }
            MshrAlloc::Full => {
                unreachable!("tick() admits requests only when the MSHR can take them")
            }
        }
        let _ = now;
    }

    /// Whether the bank can service `msg` this cycle without dropping or
    /// reordering it. A miss that cannot get an MSHR slot stalls the input
    /// queue head-of-line (younger same-block requests must not overtake).
    fn can_handle(&self, msg: &L1ToL2) -> bool {
        let block = self.sanitize(*msg).block();
        if self.tags.peek(block).is_some() {
            return true;
        }
        if self.pending.contains(block) {
            return self.pending.waiters(block) < 256; // merge capacity
        }
        !self.pending.is_full()
    }

    fn evict(&mut self, evicted: gtsc_mem::EvictedLine<L2Meta>) {
        // Figure 6: the evicted lease folds into the single per-bank
        // memory timestamp — this is what makes non-inclusion sound.
        self.mem_ts = fold_mem_ts(self.mem_ts, evicted.meta.rts);
        self.stats.evictions += 1;
        self.tracer.record_with(self.clock, || EventKind::Eviction {
            block: evicted.block,
            rts: evicted.meta.rts.0,
        });
        let mem_ts = self.mem_ts;
        self.sanitizer
            .check_with(self.clock, || Transition::L2Evict {
                block: evicted.block,
                rts: evicted.meta.rts,
                mem_ts,
            });
        if evicted.meta.dirty {
            self.backing.insert(evicted.block, evicted.meta.version);
            self.dram_out.push_back((evicted.block, true));
        }
        if self.p.inclusion == InclusionPolicy::Inclusive {
            // Ablation of Section V-C: an inclusive L2 must recall every
            // private copy on eviction (broadcast — there is no sharer
            // tracking), costing NoC traffic G-TSC avoids.
            for sm in 0..self.p.n_sms {
                self.out_resp.push_back((
                    sm,
                    L2ToL1::Invalidate {
                        block: evicted.block,
                        epoch: self.epoch,
                        span: SpanId::NONE,
                    },
                ));
            }
        }
    }
}

use gtsc_types::snap::{Snap, SnapReader, SnapWriter, SnapshotError};

gtsc_types::snap_fields!(L2Meta {
    wts,
    rts,
    version,
    dirty,
    renew_streak,
});

gtsc_types::snap_fields!(PendingReq { src, msg });

impl L2Controller for GtscL2 {
    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapshotError> {
        self.tags.save_state(w);
        self.mem_ts.save(w);
        self.epoch.save(w);
        self.overflow.save(w);
        self.backing.save(w);
        self.pending.save_state(w);
        self.applied_stores.save(w);
        self.in_queue.save(w);
        self.out_resp.save(w);
        self.dram_out.save(w);
        self.stats.save(w);
        self.clock.save(w);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.tags.load_state(r)?;
        self.mem_ts = Snap::load(r)?;
        self.epoch = Snap::load(r)?;
        self.overflow = Snap::load(r)?;
        self.backing = Snap::load(r)?;
        self.pending.load_state(r)?;
        self.applied_stores = Snap::load(r)?;
        self.in_queue = Snap::load(r)?;
        self.out_resp = Snap::load(r)?;
        self.dram_out = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        self.clock = Snap::load(r)?;
        Ok(())
    }

    fn on_request(&mut self, src: usize, msg: L1ToL2, now: Cycle) {
        self.clock = self.clock.max(now);
        self.in_queue.push_back((now + self.p.latency, src, msg));
    }

    fn take_response(&mut self) -> Option<(usize, L2ToL1)> {
        self.out_resp.pop_front()
    }

    fn take_dram_request(&mut self) -> Option<(BlockAddr, bool)> {
        self.dram_out.pop_front()
    }

    fn on_dram_response(&mut self, block: BlockAddr, is_write: bool, now: Cycle) {
        self.clock = self.clock.max(now);
        if is_write {
            return; // write-back completion needs no action
        }
        // Install the fill with the mem_ts lease of Figure 6.
        let version = self.backing.get(&block).copied().unwrap_or(Version::ZERO);
        let meta = L2Meta {
            wts: self.mem_ts,
            rts: grant_rts(self.mem_ts, self.p.lease),
            version,
            dirty: false,
            renew_streak: 0,
        };
        self.note_ts(meta.rts);
        let epoch = self.epoch;
        self.sanitizer.check_with(now, || Transition::L2Grant {
            block,
            wts: meta.wts,
            rts: meta.rts,
            epoch,
        });
        match self.tags.fill_if(block, meta, |_| true) {
            Ok(Some(ev)) => self.evict(ev),
            Ok(None) => {}
            Err(_) => unreachable!("G-TSC L2 never refuses eviction"),
        }
        // Serve the requests that were waiting on this fetch, in order.
        for w in self.pending.take(block) {
            // They were already counted on arrival; serve directly.
            let msg = self.sanitize(w.msg);
            self.spans.overlay_exit(msg.span(), HopKind::DramWait, now);
            self.serve_hit(w.src, msg);
        }
        let _ = now;
    }

    fn tick(&mut self, now: Cycle) {
        self.clock = self.clock.max(now);
        for _ in 0..self.p.ports {
            match self.in_queue.front() {
                Some((ready, _, msg)) if *ready <= now => {
                    if !self.can_handle(msg) {
                        break; // head-of-line stall until an MSHR frees
                    }
                    let (_, src, msg) = self.in_queue.pop_front().expect("front exists");
                    self.handle(src, msg, now);
                }
                _ => break,
            }
        }
    }

    fn needs_reset(&self) -> bool {
        self.overflow
    }

    fn apply_reset(&mut self, epoch: Epoch) {
        // Section V-D: wts ← 1, rts ← lease, mem_ts ← 1; data is intact so
        // nothing is flushed. Subsequent responses carry the new epoch,
        // telling L1s to flush and reset their warp timestamps.
        let epoch = if self.mutation == ProtocolMutation::SkipEpochBumpOnRecovery {
            // Mutant: rebase every timestamp but stay in the old epoch, so
            // L1s never learn their leases died with the reset.
            self.epoch
        } else {
            epoch
        };
        let lease = self.p.lease;
        for line in self.tags.iter_mut() {
            line.meta.wts = Timestamp::INIT;
            line.meta.rts = Timestamp(lease.0);
        }
        self.mem_ts = Timestamp::INIT;
        self.epoch = epoch;
        self.overflow = false;
        self.stats.ts_rollovers += 1;
        self.tracer
            .record_with(self.clock, || EventKind::Rollover { epoch });
        self.sanitizer
            .check_with(self.clock, || Transition::EpochEnter { epoch });
    }

    fn crash(&mut self, now: Cycle) -> bool {
        self.clock = self.clock.max(now);
        // Models a coherence-state upset: the tag array and every
        // in-flight transaction vanish, but the functional data image
        // survives (as if line data were ECC-protected and recoverable
        // from DRAM). Resident versions fold into the backing store so
        // post-recovery fetches observe them.
        for line in self.tags.flush() {
            self.backing.insert(line.block, line.meta.version);
        }
        // Every in-flight transaction dies with the bank: close their
        // sampled spans so no span leaks open across the reset.
        for block in self.pending.blocks() {
            for w in self.pending.take(block) {
                self.spans.close(w.msg.span(), CloseReason::BankReset, now);
            }
        }
        for (_, _, msg) in self.in_queue.drain(..) {
            self.spans.close(msg.span(), CloseReason::BankReset, now);
        }
        for (_, resp) in self.out_resp.drain(..) {
            self.spans.close(resp.span(), CloseReason::BankReset, now);
        }
        self.dram_out.clear();
        // The replay filter dies with the bank. Safe only because the
        // transport resets the bank's flows in the same cycle: a store
        // duplicate from before the crash can no longer be delivered
        // (stale generation), so nothing needs replay filtering. The
        // end-to-end atomic caveat is documented in DESIGN.md §13.
        self.applied_stores.clear();
        let epoch = self.epoch;
        let bank = match self.tracer.scope() {
            gtsc_trace::Scope::L2Bank(b) => b,
            _ => 0,
        };
        self.tracer
            .record_with(self.clock, || EventKind::BankReset { bank, epoch });
        self.sanitizer
            .check_with(self.clock, || Transition::BankReset { epoch });
        // Recovery rides the Section V-D machinery: forcing the
        // overflow flag makes the simulator bump the *global* epoch and
        // apply_reset() every bank. L1-held leases stay safe because
        // logical time only moves forward across the bump — stale-epoch
        // requests degrade to fresh fills, stale-epoch responses are
        // discarded.
        self.overflow = true;
        true
    }

    fn is_idle(&self) -> bool {
        self.in_queue.is_empty()
            && self.pending.is_empty()
            && self.out_resp.is_empty()
            && self.dram_out.is_empty()
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn pressure(&self) -> ControllerPressure {
        ControllerPressure {
            mshr: self.pending.len(),
            out_queue: self.in_queue.len() + self.dram_out.len(),
            waiting: self.out_resp.len(),
        }
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn tracer(&self) -> Option<&Tracer> {
        Some(&self.tracer)
    }

    fn set_sanitizer(&mut self, sanitizer: Sanitizer) {
        self.sanitizer = sanitizer;
    }

    fn set_span_tracker(&mut self, spans: SpanTracker) {
        self.spans = spans;
    }

    fn memory_image(&self) -> Vec<(BlockAddr, Version)> {
        // BTreeMap so the returned image is sorted by block address and
        // never leaks the hash-keyed backing store's iteration order.
        let mut img: std::collections::BTreeMap<BlockAddr, Version> = self
            .backing
            .iter() // lint: allow(hash-iter): re-keyed into a BTreeMap before anything observes the order.
            .map(|(b, v)| (*b, *v))
            .collect();
        for line in self.tags.iter() {
            img.insert(line.block, line.meta.version);
        }
        img.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_protocol::msg::ReadReq;

    fn read(block: u64, wts: u64, warp_ts: u64) -> L1ToL2 {
        L1ToL2::Read(ReadReq {
            block: BlockAddr(block),
            wts: Timestamp(wts),
            warp_ts: Timestamp(warp_ts),
            epoch: 0,
            span: SpanId::NONE,
        })
    }

    fn write(block: u64, warp_ts: u64, version: u64) -> L1ToL2 {
        L1ToL2::Write(WriteReq {
            block: BlockAddr(block),
            warp_ts: Timestamp(warp_ts),
            version: Version(version),
            epoch: 0,
            span: SpanId::NONE,
        })
    }

    /// Runs the bank until it is idle, resolving DRAM requests instantly.
    #[allow(clippy::explicit_counter_loop)] // `now` is simulated time, not a counter
    fn settle(l2: &mut GtscL2, start: Cycle) -> Vec<(usize, L2ToL1)> {
        let mut out = Vec::new();
        let mut now = start;
        for _ in 0..10_000 {
            l2.tick(now);
            while let Some((b, w)) = l2.take_dram_request() {
                l2.on_dram_response(b, w, now);
            }
            while let Some(r) = l2.take_response() {
                out.push(r);
            }
            if l2.is_idle() {
                break;
            }
            now += 1;
        }
        out
    }

    #[test]
    fn miss_fetches_and_fills_with_mem_ts_lease() {
        let mut l2 = GtscL2::new(L2Params::default());
        l2.on_request(3, read(5, 0, 1), Cycle(0));
        let resps = settle(&mut l2, Cycle(0));
        assert_eq!(resps.len(), 1);
        let (dst, L2ToL1::Fill(f)) = &resps[0] else {
            panic!("expected fill")
        };
        assert_eq!(*dst, 3);
        assert_eq!(f.version, Version::ZERO);
        // Fresh from DRAM: [mem_ts, mem_ts + lease] = [1, 11], then
        // extended for warp_ts=1 (1+10=11).
        assert_eq!(
            f.lease,
            LeaseInfo::Logical {
                wts: Timestamp(1),
                rts: Timestamp(11)
            }
        );
    }

    #[test]
    fn matching_wts_gets_renewal_without_data() {
        let mut l2 = GtscL2::new(L2Params::default());
        l2.on_request(0, read(5, 0, 1), Cycle(0));
        settle(&mut l2, Cycle(0));
        // Same version (wts=1), expired warp: renewal.
        l2.on_request(0, read(5, 1, 30), Cycle(100));
        let resps = settle(&mut l2, Cycle(100));
        assert_eq!(resps.len(), 1);
        let (_, L2ToL1::Renew { lease, .. }) = &resps[0] else {
            panic!("expected renewal")
        };
        assert_eq!(
            *lease,
            LeaseInfo::Logical {
                wts: Timestamp(1),
                rts: Timestamp(40)
            }
        );
        assert_eq!(l2.stats().renewals, 1);
    }

    #[test]
    fn stale_wts_gets_full_fill() {
        let mut l2 = GtscL2::new(L2Params::default());
        l2.on_request(0, read(5, 0, 1), Cycle(0));
        settle(&mut l2, Cycle(0));
        l2.on_request(1, write(5, 1, 77), Cycle(50));
        settle(&mut l2, Cycle(50));
        // SM0 still holds wts=1; the block is now wts=12.
        l2.on_request(0, read(5, 1, 12), Cycle(100));
        let resps = settle(&mut l2, Cycle(100));
        let (_, L2ToL1::Fill(f)) = &resps[0] else {
            panic!("expected fill")
        };
        assert_eq!(f.version, Version(77));
    }

    #[test]
    fn store_is_scheduled_after_outstanding_lease() {
        let mut l2 = GtscL2::new(L2Params::default());
        // Figure 9: fill leaves rts=11 (warp_ts 1 + lease 10).
        l2.on_request(1, read(5, 0, 1), Cycle(0));
        settle(&mut l2, Cycle(0));
        l2.on_request(0, write(5, 1, 42), Cycle(50));
        let resps = settle(&mut l2, Cycle(50));
        let (_, L2ToL1::WriteAck(a)) = &resps[0] else {
            panic!("expected ack")
        };
        // wts = max(11+1, 1) = 12; rts = 22 — exactly Figure 9 step 8.
        assert_eq!(
            a.lease,
            LeaseInfo::Logical {
                wts: Timestamp(12),
                rts: Timestamp(22)
            }
        );
        assert_eq!(a.version, Version(42));
    }

    #[test]
    fn write_miss_allocates_then_commits() {
        let mut l2 = GtscL2::new(L2Params::default());
        l2.on_request(0, write(9, 5, 11), Cycle(0));
        let resps = settle(&mut l2, Cycle(0));
        let (_, L2ToL1::WriteAck(a)) = &resps[0] else {
            panic!("expected ack")
        };
        // Fill gives [1,11]; store lands at max(12, 5) = 12.
        assert_eq!(
            a.lease,
            LeaseInfo::Logical {
                wts: Timestamp(12),
                rts: Timestamp(22)
            }
        );
        // Re-read sees the new version.
        l2.on_request(1, read(9, 0, 1), Cycle(100));
        let resps = settle(&mut l2, Cycle(100));
        let (_, L2ToL1::Fill(f)) = &resps[0] else {
            panic!("expected fill")
        };
        assert_eq!(f.version, Version(11));
    }

    #[test]
    fn eviction_folds_lease_into_mem_ts_and_writes_back() {
        let geometry = CacheGeometry::new(256, 1, 128); // 2 sets, direct-mapped
        let mut l2 = GtscL2::new(L2Params {
            geometry,
            ..L2Params::default()
        });
        l2.on_request(0, write(0, 50, 7), Cycle(0)); // rts becomes 61+10? fill[1,11] -> wts=max(12,50)=50, rts=60
        settle(&mut l2, Cycle(0));
        assert_eq!(l2.mem_ts(), Timestamp(1));
        // Block 2 maps to the same set; fetching it evicts dirty block 0.
        l2.on_request(0, read(2, 0, 1), Cycle(100));
        settle(&mut l2, Cycle(100));
        assert_eq!(l2.mem_ts(), Timestamp(60));
        assert_eq!(l2.stats().evictions, 1);
        // Fetch block 0 back: version must survive via the backing store,
        // and its new lease starts at mem_ts (Figure 6).
        l2.on_request(0, read(0, 0, 1), Cycle(200));
        let resps = settle(&mut l2, Cycle(200));
        let fills: Vec<_> = resps
            .iter()
            .filter_map(|(_, m)| {
                if let L2ToL1::Fill(f) = m {
                    Some(f)
                } else {
                    None
                }
            })
            .collect();
        let f = fills
            .iter()
            .find(|f| f.block == BlockAddr(0))
            .expect("refetch fill");
        assert_eq!(f.version, Version(7));
        assert_eq!(
            f.lease,
            LeaseInfo::Logical {
                wts: Timestamp(60),
                rts: Timestamp(70)
            }
        );
    }

    #[test]
    fn merged_requests_all_get_responses() {
        let mut l2 = GtscL2::new(L2Params::default());
        l2.on_request(0, read(5, 0, 1), Cycle(0));
        l2.on_request(1, read(5, 0, 3), Cycle(0));
        l2.on_request(2, read(5, 0, 9), Cycle(0));
        // Let the bank process all three requests while the DRAM fetch is
        // still outstanding — they must merge into one entry.
        let mut dram = Vec::new();
        for c in 0..50 {
            l2.tick(Cycle(c));
            while let Some(d) = l2.take_dram_request() {
                dram.push(d);
            }
        }
        assert_eq!(
            dram,
            vec![(BlockAddr(5), false)],
            "single outstanding fetch per block"
        );
        assert_eq!(l2.stats().mshr_merges, 2);
        l2.on_dram_response(BlockAddr(5), false, Cycle(50));
        let resps = settle(&mut l2, Cycle(50));
        assert_eq!(resps.len(), 3);
        let dsts: Vec<usize> = resps.iter().map(|(d, _)| *d).collect();
        assert_eq!(dsts, vec![0, 1, 2]);
        assert_eq!(l2.stats().cold_misses, 3);
    }

    #[test]
    fn overflow_requests_reset_and_reset_rebases_leases() {
        let mut l2 = GtscL2::new(L2Params {
            ts_bits: 6,
            ..L2Params::default()
        }); // cap 64
        l2.on_request(0, read(5, 0, 1), Cycle(0));
        settle(&mut l2, Cycle(0));
        assert!(!l2.needs_reset());
        l2.on_request(0, read(5, 1, 60), Cycle(50)); // rts -> 70 > 63
        settle(&mut l2, Cycle(50));
        assert!(l2.needs_reset());
        l2.apply_reset(1);
        assert_eq!(l2.epoch(), 1);
        assert!(!l2.needs_reset());
        assert_eq!(l2.mem_ts(), Timestamp::INIT);
        // Old-epoch renewal request now degrades to a fill in epoch 1.
        l2.on_request(0, read(5, 1, 60), Cycle(100));
        let resps = settle(&mut l2, Cycle(100));
        let (_, L2ToL1::Fill(f)) = &resps[0] else {
            panic!("stale request must fill")
        };
        assert_eq!(f.epoch, 1);
        assert_eq!(
            f.lease,
            LeaseInfo::Logical {
                wts: Timestamp(1),
                rts: Timestamp(11)
            }
        );
        assert_eq!(l2.stats().ts_rollovers, 1);
    }

    #[test]
    fn crash_preserves_data_and_forces_global_reset() {
        let mut l2 = GtscL2::new(L2Params::default());
        // Write some data, leave the line resident and dirty.
        l2.on_request(0, write(5, 1, 42), Cycle(0));
        settle(&mut l2, Cycle(0));
        // Leave a request in flight so the crash has state to wipe.
        l2.on_request(1, read(9, 0, 1), Cycle(50));
        l2.tick(Cycle(60));
        assert!(!l2.is_idle(), "a DRAM fetch is outstanding");
        assert!(l2.crash(Cycle(70)), "G-TSC supports crash/recovery");
        // The crash wiped all transaction state and requests the global
        // Section V-D reset.
        assert!(l2.needs_reset(), "recovery must force the epoch bump");
        l2.apply_reset(1);
        assert_eq!(l2.epoch(), 1);
        assert!(l2.is_idle(), "no transaction survives the crash");
        // The written version survives "via DRAM": a post-recovery read
        // refetches it with a fresh epoch-1 lease.
        l2.on_request(0, read(5, 0, 1), Cycle(100));
        let resps = settle(&mut l2, Cycle(100));
        let (_, L2ToL1::Fill(f)) = &resps[0] else {
            panic!("expected fill")
        };
        assert_eq!(f.version, Version(42), "data must survive the crash");
        assert_eq!(f.epoch, 1);
        assert_eq!(
            f.lease,
            LeaseInfo::Logical {
                wts: Timestamp(1),
                rts: Timestamp(11)
            }
        );
    }

    #[test]
    fn crash_recovery_passes_the_sanitizer() {
        use gtsc_trace::Scope;
        let mut l2 = GtscL2::new(L2Params::default());
        let root = Sanitizer::enabled(Scope::Sm(0));
        l2.set_sanitizer(root.for_scope(Scope::L2Bank(0)));
        l2.on_request(0, write(5, 1, 42), Cycle(0));
        settle(&mut l2, Cycle(0));
        l2.crash(Cycle(50));
        l2.apply_reset(1);
        // Post-recovery activity is all epoch 1: no pre-crash lease may
        // reappear.
        l2.on_request(0, read(5, 0, 1), Cycle(100));
        l2.on_request(1, write(5, 2, 43), Cycle(120));
        settle(&mut l2, Cycle(100));
        assert!(root.violations().is_empty(), "{:?}", root.violations());
        assert!(root.checked() > 0);
    }

    #[test]
    fn inclusive_ablation_broadcasts_recalls() {
        let geometry = CacheGeometry::new(256, 1, 128);
        let mut l2 = GtscL2::new(L2Params {
            geometry,
            inclusion: InclusionPolicy::Inclusive,
            n_sms: 4,
            ..L2Params::default()
        });
        l2.on_request(0, read(0, 0, 1), Cycle(0));
        settle(&mut l2, Cycle(0));
        l2.on_request(0, read(2, 0, 1), Cycle(100)); // evicts block 0
        let resps = settle(&mut l2, Cycle(100));
        let recalls: Vec<_> = resps
            .iter()
            .filter(|(_, m)| matches!(m, L2ToL1::Invalidate { .. }))
            .collect();
        assert_eq!(recalls.len(), 4);
    }

    #[test]
    fn latency_delays_service() {
        let mut l2 = GtscL2::new(L2Params {
            latency: 10,
            ..L2Params::default()
        });
        l2.on_request(0, read(5, 0, 1), Cycle(0));
        l2.tick(Cycle(5));
        assert!(l2.take_response().is_none());
        assert!(l2.take_dram_request().is_none());
        l2.tick(Cycle(10));
        assert!(l2.take_dram_request().is_some());
    }

    #[test]
    fn atomic_rmw_returns_previous_version_and_never_stalls() {
        let mut l2 = GtscL2::new(L2Params::default());
        // Reader takes a long lease on the block.
        l2.on_request(1, read(5, 0, 40), Cycle(0));
        settle(&mut l2, Cycle(0));
        // An atomic arrives while the lease is live: G-TSC performs it
        // immediately, scheduled after the lease in logical time.
        l2.on_request(
            0,
            L1ToL2::Atomic(WriteReq {
                block: BlockAddr(5),
                warp_ts: Timestamp(1),
                version: Version(77),
                epoch: 0,
                span: SpanId::NONE,
            }),
            Cycle(10),
        );
        let resps = settle(&mut l2, Cycle(10));
        let (_, L2ToL1::AtomicAck { ack, prev }) = &resps[0] else {
            panic!("expected atomic ack")
        };
        assert_eq!(*prev, Version::ZERO, "read half observes the old value");
        assert_eq!(ack.version, Version(77));
        // Lease [1, 50] was outstanding: the RMW lands at 51.
        assert_eq!(
            ack.lease,
            LeaseInfo::Logical {
                wts: Timestamp(51),
                rts: Timestamp(61)
            }
        );
        assert_eq!(l2.stats().write_stall_cycles, 0);
    }

    #[test]
    fn atomic_chain_at_l2_observes_each_predecessor() {
        let mut l2 = GtscL2::new(L2Params::default());
        for i in 0..4u64 {
            l2.on_request(
                0,
                L1ToL2::Atomic(WriteReq {
                    block: BlockAddr(5),
                    warp_ts: Timestamp(1),
                    version: Version(100 + i),
                    epoch: 0,
                    span: SpanId::NONE,
                }),
                Cycle(i * 100),
            );
        }
        let resps = settle(&mut l2, Cycle(0));
        let prevs: Vec<Version> = resps
            .iter()
            .filter_map(|(_, m)| {
                if let L2ToL1::AtomicAck { prev, .. } = m {
                    Some(*prev)
                } else {
                    None
                }
            })
            .collect();
        assert_eq!(
            prevs,
            vec![Version::ZERO, Version(100), Version(101), Version(102)]
        );
    }

    #[test]
    fn ports_bound_throughput() {
        // (see below for the property-based suite)
        let mut l2 = GtscL2::new(L2Params {
            ports: 1,
            latency: 0,
            ..L2Params::default()
        });
        l2.on_request(0, read(1, 0, 1), Cycle(0));
        l2.on_request(0, read(3, 0, 1), Cycle(0));
        l2.tick(Cycle(0));
        assert_eq!(l2.take_dram_request(), Some((BlockAddr(1), false)));
        assert_eq!(l2.take_dram_request(), None); // second waits a cycle
        l2.tick(Cycle(1));
        assert_eq!(l2.take_dram_request(), Some((BlockAddr(3), false)));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use gtsc_protocol::msg::ReadReq;
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// Drives one bank with an arbitrary request stream (instant DRAM) and
    /// checks the protocol invariants on every response.
    fn drive(ops: &[(bool, u64, u64, u64)]) -> Result<(), TestCaseError> {
        let mut l2 = GtscL2::new(L2Params {
            ts_bits: 48,
            ..L2Params::default()
        });
        let mut now = Cycle(0);
        let mut last_wts: HashMap<BlockAddr, Timestamp> = HashMap::new();
        let mut version = 0u64;
        for (is_write, block, warp_ts, gap) in ops {
            now += gap + 1;
            let block = BlockAddr(*block);
            if *is_write {
                version += 1;
                l2.on_request(
                    0,
                    L1ToL2::Write(WriteReq {
                        block,
                        warp_ts: Timestamp(*warp_ts),
                        version: Version(version),
                        epoch: 0,
                        span: SpanId::NONE,
                    }),
                    now,
                );
            } else {
                // Renewal-style read: claim the block's last known wts
                // (or 0 for a cold read).
                let wts = last_wts.get(&block).copied().unwrap_or(Timestamp(0));
                l2.on_request(
                    0,
                    L1ToL2::Read(ReadReq {
                        block,
                        wts,
                        warp_ts: Timestamp(*warp_ts),
                        epoch: 0,
                        span: SpanId::NONE,
                    }),
                    now,
                );
            }
            // Settle fully before the next request (serial driving keeps
            // the invariants easy to state).
            for _ in 0..64 {
                now += 1;
                l2.tick(now);
                while let Some((b, w)) = l2.take_dram_request() {
                    l2.on_dram_response(b, w, now);
                }
                let mut any = false;
                while let Some((_, resp)) = l2.take_response() {
                    any = true;
                    match resp {
                        L2ToL1::Fill(f) => {
                            let LeaseInfo::Logical { wts, rts } = f.lease else {
                                return Err(TestCaseError::fail("fill without logical lease"));
                            };
                            prop_assert!(wts <= rts, "lease inverted: {wts} > {rts}");
                            prop_assert!(rts.0 >= *warp_ts, "lease does not cover the requester");
                            last_wts.insert(f.block, wts);
                        }
                        L2ToL1::Renew { block, lease, .. } => {
                            let LeaseInfo::Logical { wts, rts } = lease else {
                                return Err(TestCaseError::fail("renewal without lease"));
                            };
                            prop_assert!(wts <= rts);
                            // A renewal must confirm the version we hold.
                            prop_assert_eq!(Some(&wts), last_wts.get(&block));
                        }
                        L2ToL1::WriteAck(a) | L2ToL1::AtomicAck { ack: a, .. } => {
                            let LeaseInfo::Logical { wts, rts } = a.lease else {
                                return Err(TestCaseError::fail("ack without lease"));
                            };
                            prop_assert!(wts <= rts);
                            // Per-block write timestamps strictly increase.
                            if let Some(prev) = last_wts.get(&a.block) {
                                prop_assert!(
                                    wts > *prev,
                                    "store wts {wts} not after previous {prev}"
                                );
                            }
                            last_wts.insert(a.block, wts);
                        }
                        L2ToL1::Invalidate { .. } => {}
                    }
                }
                if !any && l2.is_idle() {
                    break;
                }
            }
            prop_assert!(l2.is_idle(), "bank failed to settle");
        }
        Ok(())
    }

    proptest! {
        /// Protocol invariants hold for arbitrary serialized request
        /// streams: leases are well-formed and cover their requester,
        /// renewals only confirm the held version, and per-block store
        /// timestamps strictly increase.
        #[test]
        fn invariants_under_random_streams(
            ops in proptest::collection::vec(
                (proptest::bool::ANY, 0u64..12, 0u64..500, 0u64..5),
                1..60,
            )
        ) {
            drive(&ops)?;
        }
    }
}
