//! The G-TSC private-cache (L1) controller — one per SM.
//!
//! Implements Figures 2, 3, 7 and 8 of the paper plus the GPU-specific
//! mechanisms of Section V:
//!
//! * **Update visibility** (§V-A): after a store, the line is locked until
//!   the L2's acknowledgment assigns the new version its lease. Reads
//!   arriving meanwhile wait in the MSHR (option 1, the paper's choice) or
//!   are served from a retained old copy (option 2, modelled for the
//!   ablation). Without this, a warp could observe a value at a logical
//!   time *before* the value is produced — the Figure 10 violation.
//! * **Request combining** (§V-B): replicated reads from different warps
//!   merge into one MSHR entry and one `BusRd`; waiters whose `warp_ts`
//!   the returned lease does not cover trigger a renewal. The
//!   `ForwardAll` policy sends every request instead (ablation).
//! * **Write-through, write-no-allocate** L1, as in GPGPU-Sim.

use std::collections::{BTreeMap, VecDeque};

use gtsc_mem::{Mshr, MshrAlloc, TagArray};
use gtsc_protocol::msg::{Epoch, L1ToL2, L2ToL1, LeaseInfo, ReadReq, WriteReq};
use gtsc_protocol::{
    AccessId, AccessKind, Completion, ControllerPressure, L1Controller, L1Outcome, MemAccess,
    WaitHint,
};
use gtsc_trace::span::ServeClass;
use gtsc_trace::{EventKind, Sanitizer, SpanTracker, Tracer, Transition};
use gtsc_types::{
    BlockAddr, CacheGeometry, CacheStats, CombinePolicy, Cycle, SpanId, Timestamp, Version,
    VisibilityPolicy, WarpId,
};

use crate::mutation::ProtocolMutation;
use crate::rules::{lease_covers, load_ts, merge_rts};

/// A retained pre-store copy (the `DualCopy` visibility policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OldCopy {
    wts: Timestamp,
    rts: Timestamp,
    version: Version,
}

/// Per-line L1 coherence state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct L1Meta {
    wts: Timestamp,
    rts: Timestamp,
    version: Version,
    /// Stores awaiting their `BusWrAck`; while nonzero the line is locked
    /// (update visibility, Section V-A).
    pending_stores: u32,
    /// Old data kept readable under the `DualCopy` policy.
    old: Option<OldCopy>,
    /// Warps with stores pending on this line (they may not read even the
    /// old copy — they must observe their own store).
    writers: Vec<WarpId>,
}

impl L1Meta {
    fn locked(&self) -> bool {
        self.pending_stores > 0
    }
}

/// A load waiting in the MSHR for a fill, renewal, or store ack.
#[derive(Debug, Clone, Copy)]
struct Waiter {
    id: AccessId,
    warp: WarpId,
}

/// A store or atomic waiting for its `BusWrAck`/`AtomicAck`.
#[derive(Debug, Clone, Copy)]
struct StoreWaiter {
    id: AccessId,
    warp: WarpId,
    kind: AccessKind,
    version: Version,
    /// Whether this store found the block resident and locked the line
    /// (update visibility). Only such stores may unlock it again: a store
    /// issued while the block was absent must not decrement the lock
    /// count of a line installed in between, or a newer pending store's
    /// data would become readable under a stale lease.
    locked_line: bool,
    /// Cycle the request (or its latest retry) went out, for the
    /// end-to-end retry timer.
    sent: Cycle,
}

/// Construction parameters for [`GtscL1`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Params {
    /// Cache geometry.
    pub geometry: CacheGeometry,
    /// Warp slots in the owning SM.
    pub n_warps: usize,
    /// Index of the owning SM (namespaces the versions this L1 mints).
    pub sm_index: usize,
    /// MSHR entry count.
    pub mshr_entries: usize,
    /// Maximum merged waiters per MSHR entry.
    pub mshr_merges: usize,
    /// Request-combining policy (Section V-B).
    pub combine: CombinePolicy,
    /// Update-visibility policy (Section V-A).
    pub visibility: VisibilityPolicy,
}

impl Default for L1Params {
    /// A small configuration for unit tests and doc examples.
    fn default() -> Self {
        L1Params {
            geometry: CacheGeometry::new(2 * 1024, 2, 128),
            n_warps: 4,
            sm_index: 0,
            mshr_entries: 8,
            mshr_merges: 4,
            combine: CombinePolicy::MergeInMshr,
            visibility: VisibilityPolicy::BlockLine,
        }
    }
}

/// The G-TSC private cache of one SM.
///
/// See the crate-level example for usage; the [`L1Controller`] trait
/// documents the driving contract.
#[derive(Debug)]
pub struct GtscL1 {
    p: L1Params,
    tags: TagArray<L1Meta>,
    /// The warp timestamp table of Section III-B.
    warp_ts: Vec<Timestamp>,
    mshr: Mshr<Waiter>,
    /// Blocks with a `BusRd` currently in flight, with the cycle it (or
    /// its latest retry) was sent and whether it was a renewal / expired
    /// refetch (`wts != 0` — feeds the lease-expired wait hint; an MSHR
    /// entry without one is waiting on a store ack instead). Ordered
    /// map: the retry scan in [`GtscL1::tick`] iterates it, and the
    /// emission order must be identical across processes for checkpoint
    /// determinism.
    rd_inflight: BTreeMap<BlockAddr, (Cycle, bool)>,
    /// How many `rd_inflight` entries are renewals — kept in lockstep by
    /// [`GtscL1::rd_insert`]/[`GtscL1::rd_remove`] so the per-cycle
    /// [`GtscL1::wait_hint`] never scans the map.
    renewals_inflight: u32,
    store_acks: BTreeMap<BlockAddr, VecDeque<StoreWaiter>>,
    /// End-to-end retry timer: requests unanswered this many cycles are
    /// re-sent. `None` (the default) disables retry — only enabled when
    /// the run injects loss faults, where a request can vanish with its
    /// transport flow (an L2-bank crash wipes undelivered segments).
    /// Idempotency makes the re-send safe: duplicate reads are
    /// natural renewals, duplicate stores hit the L2 replay filter.
    retry_timeout: Option<u64>,
    out: VecDeque<L1ToL2>,
    epoch: Epoch,
    version_ctr: Vec<u64>,
    stats: CacheStats,
    tracer: Tracer,
    sanitizer: Sanitizer,
    spans: SpanTracker,
    /// Test-only protocol mutant (see [`crate::mutation`]); `None` in
    /// production.
    mutation: ProtocolMutation,
}

impl GtscL1 {
    /// Creates an empty controller.
    #[must_use]
    pub fn new(p: L1Params) -> Self {
        GtscL1 {
            tags: TagArray::new(p.geometry),
            warp_ts: vec![Timestamp::INIT; p.n_warps],
            mshr: Mshr::new(p.mshr_entries, p.mshr_merges),
            rd_inflight: BTreeMap::new(),
            renewals_inflight: 0,
            store_acks: BTreeMap::new(),
            retry_timeout: None,
            out: VecDeque::new(),
            epoch: 0,
            version_ctr: vec![0; p.n_warps],
            stats: CacheStats::default(),
            tracer: Tracer::disabled(),
            sanitizer: Sanitizer::disabled(),
            spans: SpanTracker::disabled(),
            mutation: ProtocolMutation::None,
            p,
        }
    }

    /// Arms a seeded protocol mutant (oracle validation only; see
    /// [`crate::mutation`]).
    #[doc(hidden)]
    pub fn set_mutation(&mut self, mutation: ProtocolMutation) {
        self.mutation = mutation;
    }

    /// Current timestamp of `warp` (exposed for tests and the checker).
    ///
    /// # Panics
    ///
    /// Panics if `warp` is out of range.
    #[must_use]
    pub fn warp_ts(&self, warp: WarpId) -> Timestamp {
        self.warp_ts[warp.0 as usize]
    }

    /// The controller's current reset epoch.
    #[must_use]
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Turns on the end-to-end retry timer: any read or store
    /// unanswered for `timeout` cycles is re-sent from [`GtscL1::tick`].
    /// The simulator enables this only when loss faults are active —
    /// an L2-bank crash discards undelivered request segments, and only
    /// this retry closes that gap (the transport cannot: its flow state
    /// died with the bank). Must stay off otherwise, or a run that is
    /// *supposed* to stall (e.g. a starved DRAM) would mask the stall
    /// with an endless retry stream.
    pub fn enable_retry(&mut self, timeout: u64) {
        self.retry_timeout = Some(timeout.max(1));
    }

    /// Mints a version id stable across protocols and timings: it encodes
    /// (SM, warp slot, per-warp store index), so data-race-free workloads
    /// produce identical memory images under every protocol.
    fn mint_version(&mut self, warp: WarpId) -> Version {
        let w = warp.0 as usize;
        self.version_ctr[w] += 1;
        Version(((self.p.sm_index as u64 + 1) << 40) | ((w as u64) << 28) | self.version_ctr[w])
    }

    fn complete_load(
        &mut self,
        w: Waiter,
        block: BlockAddr,
        wts: Timestamp,
        version: Version,
        now: Cycle,
    ) -> Completion {
        let slot = &mut self.warp_ts[w.warp.0 as usize];
        *slot = load_ts(*slot, wts);
        let ts = *slot;
        self.sanitizer
            .check_with(now, || Transition::WarpTs { warp: w.warp.0, ts });
        Completion {
            id: w.id,
            warp: w.warp,
            kind: AccessKind::Load,
            block,
            version,
            ts: Some(*slot),
            epoch: self.epoch,
            prev: None,
        }
    }

    fn send_read(
        &mut self,
        block: BlockAddr,
        wts: Timestamp,
        warp: WarpId,
        span: SpanId,
        now: Cycle,
    ) {
        if wts != Timestamp(0) {
            self.stats.renewals += 1;
        }
        self.rd_insert(block, now, wts != Timestamp(0));
        self.out.push_back(L1ToL2::Read(ReadReq {
            block,
            wts,
            warp_ts: self.warp_ts[warp.0 as usize],
            epoch: self.epoch,
            span,
        }));
    }

    /// Registers a missing/expired/locked load in the MSHR.
    /// `request_wts` is `Some(wts)` when a `BusRd` should go out
    /// (`None` for loads parked on a locked line, which the store ack will
    /// serve).
    fn queue_load(
        &mut self,
        acc: MemAccess,
        request_wts: Option<Timestamp>,
        now: Cycle,
    ) -> L1Outcome {
        let waiter = Waiter {
            id: acc.id,
            warp: acc.warp,
        };
        match self.mshr.register(acc.block, waiter) {
            MshrAlloc::Full => L1Outcome::Reject,
            MshrAlloc::AllocatedNew => {
                if let Some(wts) = request_wts {
                    self.send_read(acc.block, wts, acc.warp, acc.span, now);
                }
                L1Outcome::Queued
            }
            MshrAlloc::Merged => {
                self.stats.mshr_merges += 1;
                self.spans.note_merged(acc.span);
                if self.p.combine == CombinePolicy::ForwardAll {
                    if let Some(wts) = request_wts {
                        self.send_read(acc.block, wts, acc.warp, acc.span, now);
                    }
                }
                L1Outcome::Queued
            }
        }
    }

    /// Serves the MSHR waiters of `block` against lease `[wts, rts]`
    /// supplying `version`. Waiters the lease does not cover are
    /// re-queued, and — unless a read is already in flight — a renewal is
    /// sent on behalf of the first of them (Section V-B).
    fn serve_waiters(
        &mut self,
        block: BlockAddr,
        wts: Timestamp,
        rts: Timestamp,
        version: Version,
        done: &mut Vec<Completion>,
        now: Cycle,
    ) {
        let waiters = self.mshr.take(block);
        if waiters.is_empty() {
            return;
        }
        let mut uncovered = Vec::new();
        for w in waiters {
            if lease_covers(rts, self.warp_ts[w.warp.0 as usize]) {
                done.push(self.complete_load(w, block, wts, version, now));
            } else {
                uncovered.push(w);
            }
        }
        if !uncovered.is_empty() {
            // Renew on behalf of the waiter with the *largest* warp
            // timestamp: the L2 extends the lease to cover it (Figure 4),
            // which covers every other uncovered waiter in one trip.
            let furthest = *uncovered
                .iter()
                .max_by_key(|w| self.warp_ts[w.warp.0 as usize])
                .expect("nonempty");
            self.mshr.requeue(block, uncovered);
            if !self.rd_inflight.contains_key(&block) {
                self.send_read(block, wts, furthest.warp, SpanId::NONE, now);
            }
        }
    }

    /// Section V-D: a response from a newer epoch flushes the L1 and
    /// resets every warp timestamp before it is consumed.
    fn enter_epoch(&mut self, epoch: Epoch, now: Cycle) {
        self.tags.flush();
        // The flush destroyed every line's pending-store lock state. Acks
        // still owed to the surviving waiters must not decrement (or
        // install a lease into) whatever line is re-installed in the new
        // epoch — a stale `locked_line` would steal a *post*-flush
        // store's lock and expose its uncommitted data to parked loads.
        for q in self.store_acks.values_mut() {
            for sw in q.iter_mut() {
                sw.locked_line = false;
            }
        }
        for ts in &mut self.warp_ts {
            *ts = Timestamp::INIT;
        }
        self.epoch = epoch;
        self.stats.ts_rollovers += 1;
        self.tracer
            .record_with(now, || EventKind::Rollover { epoch });
        self.sanitizer
            .check_with(now, || Transition::EpochEnter { epoch });
        // Parked loads (no BusRd in flight) will be re-driven by the store
        // acks that still owe them service; in-flight reads will be
        // answered in the new epoch by the (already reset) L2.
    }

    /// A response from an older epoch: its lease is in dead coordinates
    /// *for this L1* (whose lines and warp timestamps were reset), but a
    /// store ack still certifies a commit at `(old epoch, wts)` — that
    /// key must reach the checker, or loads that observed the version
    /// would be flagged. Loads are retried from scratch.
    fn on_stale_response(&mut self, msg: L2ToL1, done: &mut Vec<Completion>, now: Cycle) {
        match msg {
            L2ToL1::Fill(f) => self.retry_reads_fresh(f.block, now),
            L2ToL1::Renew { block, .. } => self.retry_reads_fresh(block, now),
            L2ToL1::WriteAck(a) | L2ToL1::AtomicAck { ack: a, .. } => {
                let prev = if let L2ToL1::AtomicAck { prev, .. } = msg {
                    Some(prev)
                } else {
                    None
                };
                let stale_lease = match a.lease {
                    LeaseInfo::Logical { wts, rts } => Some((wts, rts)),
                    _ => None,
                };
                if let Some(c) =
                    self.finish_store_at(a.block, a.version, stale_lease, a.epoch, prev, false, now)
                {
                    done.push(c);
                }
                self.retry_reads_fresh(a.block, now);
            }
            L2ToL1::Invalidate { .. } => {}
        }
    }

    /// Tracks an in-flight read, keeping the renewal census exact even
    /// when a retry overwrites an entry that was a renewal.
    fn rd_insert(&mut self, block: BlockAddr, now: Cycle, renewal: bool) {
        if let Some((_, was_renewal)) = self.rd_inflight.insert(block, (now, renewal)) {
            if was_renewal {
                self.renewals_inflight -= 1;
            }
        }
        if renewal {
            self.renewals_inflight += 1;
        }
    }

    /// Retires an in-flight read (no-op when none is tracked).
    fn rd_remove(&mut self, block: BlockAddr) {
        if let Some((_, was_renewal)) = self.rd_inflight.remove(&block) {
            if was_renewal {
                self.renewals_inflight -= 1;
            }
        }
    }

    fn retry_reads_fresh(&mut self, block: BlockAddr, now: Cycle) {
        self.rd_remove(block);
        if self.mshr.contains(block) {
            let warp = WarpId(0);
            self.send_read(block, Timestamp(0), warp, SpanId::NONE, now);
        }
    }

    /// Completes the matching pending store or atomic; `lease` installs
    /// the acked version's lease when this was the line's newest store.
    /// `prev` carries the read half of an atomic.
    fn finish_store(
        &mut self,
        block: BlockAddr,
        version: Version,
        lease: Option<(Timestamp, Timestamp)>,
        epoch: Epoch,
        prev: Option<Version>,
        now: Cycle,
    ) -> Option<Completion> {
        self.finish_store_at(block, version, lease, epoch, prev, true, now)
    }

    /// Like [`GtscL1::finish_store`]; `apply` controls whether the
    /// warp-timestamp bump and line updates happen (they must not for a
    /// stale-epoch ack, whose lease coordinates predate this L1's reset —
    /// the lease still stamps the returned [`Completion`]).
    #[allow(clippy::too_many_arguments)]
    fn finish_store_at(
        &mut self,
        block: BlockAddr,
        version: Version,
        lease: Option<(Timestamp, Timestamp)>,
        epoch: Epoch,
        prev: Option<Version>,
        apply: bool,
        now: Cycle,
    ) -> Option<Completion> {
        let q = self.store_acks.get_mut(&block)?;
        let pos = q.iter().position(|s| s.version == version)?;
        let sw = q.remove(pos).expect("position valid");
        if q.is_empty() {
            self.store_acks.remove(&block);
        }
        let mut completion_ts = None;
        if let Some((wts, _)) = lease {
            if apply {
                let slot = &mut self.warp_ts[sw.warp.0 as usize];
                // Same advance rule as a load: the warp observes its own
                // store's commit timestamp.
                *slot = load_ts(*slot, wts);
                let ts = *slot;
                self.sanitizer.check_with(now, || Transition::WarpTs {
                    warp: sw.warp.0,
                    ts,
                });
            }
            completion_ts = Some(wts);
        }
        let mut installed = None;
        if let Some(line) = self.tags.peek_mut(block).filter(|_| apply) {
            if sw.locked_line {
                line.meta.pending_stores = line.meta.pending_stores.saturating_sub(1);
                if let Some(i) = line.meta.writers.iter().position(|w| *w == sw.warp) {
                    line.meta.writers.swap_remove(i);
                }
            }
            if let Some((wts, rts)) = lease {
                if sw.locked_line && line.meta.version == version {
                    // Newest local store: install its lease (Figure 7b).
                    // (A non-locking store's data is not on the line — a
                    // fill may have installed the same version with an
                    // already-extended lease, which must not shrink.)
                    line.meta.wts = wts;
                    line.meta.rts = rts;
                    installed = Some((wts, rts));
                }
            }
            if !line.meta.locked() {
                line.meta.old = None;
            }
        }
        if let Some((wts, rts)) = installed {
            self.sanitizer.check_with(now, || Transition::L1Lease {
                block,
                wts,
                rts,
                epoch: self.epoch,
            });
        }
        Some(Completion {
            id: sw.id,
            warp: sw.warp,
            kind: sw.kind,
            block,
            version,
            ts: completion_ts,
            epoch,
            prev,
        })
    }
}

use gtsc_types::snap::{Snap, SnapReader, SnapWriter, SnapshotError};

gtsc_types::snap_fields!(OldCopy { wts, rts, version });

gtsc_types::snap_fields!(L1Meta {
    wts,
    rts,
    version,
    pending_stores,
    old,
    writers,
});

gtsc_types::snap_fields!(Waiter { id, warp });

gtsc_types::snap_fields!(StoreWaiter {
    id,
    warp,
    kind,
    version,
    locked_line,
    sent,
});

impl L1Controller for GtscL1 {
    fn enable_retry(&mut self, timeout: u64) {
        GtscL1::enable_retry(self, timeout);
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapshotError> {
        self.tags.save_state(w);
        self.warp_ts.save(w);
        self.mshr.save_state(w);
        self.rd_inflight.save(w);
        self.store_acks.save(w);
        self.retry_timeout.save(w);
        self.out.save(w);
        self.epoch.save(w);
        self.version_ctr.save(w);
        self.stats.save(w);
        Ok(())
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
        self.tags.load_state(r)?;
        let warp_ts: Vec<Timestamp> = Snap::load(r)?;
        let n_warps = self.warp_ts.len();
        if warp_ts.len() != n_warps {
            return Err(SnapshotError::Mismatch {
                what: "L1 warp-timestamp table size".into(),
            });
        }
        self.warp_ts = warp_ts;
        self.mshr.load_state(r)?;
        self.rd_inflight = Snap::load(r)?;
        self.renewals_inflight =
            u32::try_from(self.rd_inflight.values().filter(|&&(_, r)| r).count()).unwrap_or(0);
        self.store_acks = Snap::load(r)?;
        self.retry_timeout = Snap::load(r)?;
        self.out = Snap::load(r)?;
        self.epoch = Snap::load(r)?;
        let version_ctr: Vec<u64> = Snap::load(r)?;
        if version_ctr.len() != n_warps {
            return Err(SnapshotError::Mismatch {
                what: "L1 version-counter table size".into(),
            });
        }
        self.version_ctr = version_ctr;
        self.stats = Snap::load(r)?;
        Ok(())
    }

    fn access(&mut self, acc: MemAccess, now: Cycle) -> L1Outcome {
        // Counters are bumped only for *accepted* accesses: a rejected
        // access is retried by the SM and would otherwise be counted on
        // every retry cycle.
        match acc.kind {
            AccessKind::Load => {
                let warp_now = self.warp_ts[acc.warp.0 as usize];
                let Some(line) = self.tags.probe_mut(acc.block) else {
                    // Tag miss (Figure 2): BusRd with wts = 0.
                    let outcome = self.queue_load(acc, Some(Timestamp(0)), now);
                    if !matches!(outcome, L1Outcome::Reject) {
                        self.stats.accesses += 1;
                        self.stats.cold_misses += 1;
                        self.tracer.record_with(now, || EventKind::ColdMiss {
                            block: acc.block,
                            warp: acc.warp.0,
                        });
                    }
                    return outcome;
                };
                if line.meta.locked() {
                    // Update visibility (Section V-A).
                    let meta = line.meta.clone();
                    if self.p.visibility == VisibilityPolicy::DualCopy {
                        if let Some(old) = meta.old {
                            let is_writer = meta.writers.contains(&acc.warp);
                            if !is_writer && lease_covers(old.rts, warp_now) {
                                self.stats.accesses += 1;
                                self.stats.hits += 1;
                                self.tracer.record_with(now, || EventKind::Hit {
                                    block: acc.block,
                                    warp: acc.warp.0,
                                    warp_ts: warp_now.0,
                                    rts: old.rts.0,
                                });
                                let w = Waiter {
                                    id: acc.id,
                                    warp: acc.warp,
                                };
                                let c = self.complete_load(w, acc.block, old.wts, old.version, now);
                                return L1Outcome::Hit(c);
                            }
                        }
                    }
                    // Park in the MSHR; the store ack will serve it.
                    let outcome = self.queue_load(acc, None, now);
                    if !matches!(outcome, L1Outcome::Reject) {
                        self.stats.accesses += 1;
                        self.stats.blocked_on_pending_write += 1;
                        self.tracer
                            .record_with(now, || EventKind::BlockedOnWrite { block: acc.block });
                    }
                    return outcome;
                }
                if lease_covers(line.meta.rts, warp_now)
                    || self.mutation == ProtocolMutation::ServeReadPastRts
                {
                    self.stats.accesses += 1;
                    self.stats.hits += 1;
                    let line_rts = line.meta.rts;
                    self.tracer.record_with(now, || EventKind::Hit {
                        block: acc.block,
                        warp: acc.warp.0,
                        warp_ts: warp_now.0,
                        rts: line_rts.0,
                    });
                    let (wts, version) = (line.meta.wts, line.meta.version);
                    let w = Waiter {
                        id: acc.id,
                        warp: acc.warp,
                    };
                    return L1Outcome::Hit(self.complete_load(w, acc.block, wts, version, now));
                }
                // Expired relative to this warp: coherence miss → renewal.
                let wts = line.meta.wts;
                let rts = line.meta.rts;
                let outcome = self.queue_load(acc, Some(wts), now);
                if !matches!(outcome, L1Outcome::Reject) {
                    self.stats.accesses += 1;
                    self.stats.expired_misses += 1;
                    // First serve-class report wins; an expired miss is a
                    // refetch regardless of how the L2 answers it.
                    self.spans.note_serve(acc.span, ServeClass::ExpiredRefetch);
                    self.tracer.record_with(now, || EventKind::ExpiredMiss {
                        block: acc.block,
                        warp_ts: warp_now.0,
                        rts: rts.0,
                    });
                }
                outcome
            }
            AccessKind::Store | AccessKind::Atomic => {
                self.stats.accesses += 1;
                self.stats.stores += 1;
                let version = self.mint_version(acc.warp);
                let mut locked_line = false;
                if let Some(line) = self.tags.probe_mut(acc.block) {
                    // Figure 3: update data, lock the line until the ack.
                    if self.p.visibility == VisibilityPolicy::DualCopy && line.meta.old.is_none() {
                        line.meta.old = Some(OldCopy {
                            wts: line.meta.wts,
                            rts: line.meta.rts,
                            version: line.meta.version,
                        });
                    }
                    line.meta.pending_stores += 1;
                    line.meta.version = version;
                    line.meta.writers.push(acc.warp);
                    locked_line = true;
                }
                let req = WriteReq {
                    block: acc.block,
                    warp_ts: self.warp_ts[acc.warp.0 as usize],
                    version,
                    epoch: self.epoch,
                    span: acc.span,
                };
                self.out.push_back(if acc.kind == AccessKind::Atomic {
                    L1ToL2::Atomic(req)
                } else {
                    L1ToL2::Write(req)
                });
                self.store_acks
                    .entry(acc.block)
                    .or_default()
                    .push_back(StoreWaiter {
                        id: acc.id,
                        warp: acc.warp,
                        kind: acc.kind,
                        version,
                        locked_line,
                        sent: now,
                    });
                L1Outcome::Queued
            }
        }
    }

    fn on_response(&mut self, msg: L2ToL1, now: Cycle) -> Vec<Completion> {
        let mut done = Vec::new();
        let e = msg.epoch();
        if e > self.epoch {
            self.enter_epoch(e, now);
        } else if e < self.epoch {
            self.on_stale_response(msg, &mut done, now);
            return done;
        }
        match msg {
            L2ToL1::Fill(f) => {
                self.rd_remove(f.block);
                let LeaseInfo::Logical { wts, rts } = f.lease else {
                    unreachable!("G-TSC fills carry logical leases");
                };
                let locked = self.tags.peek(f.block).is_some_and(|l| l.meta.locked());
                if !locked {
                    // Install (Figure 8); locked lines keep their pending
                    // store data and waiters are served from the message.
                    let meta = L1Meta {
                        wts,
                        rts,
                        version: f.version,
                        pending_stores: 0,
                        old: None,
                        writers: Vec::new(),
                    };
                    match self.tags.fill_if(f.block, meta, |l| !l.meta.locked()) {
                        Ok(Some(evicted)) => {
                            self.stats.evictions += 1;
                            self.tracer.record_with(now, || EventKind::Eviction {
                                block: evicted.block,
                                rts: evicted.meta.rts.0,
                            });
                        }
                        Ok(None) => {}
                        Err(_) => { /* every victim locked: serve from message only */ }
                    }
                    self.tracer
                        .record_with(now, || EventKind::FillApplied { block: f.block });
                    self.sanitizer.check_with(now, || Transition::L1Lease {
                        block: f.block,
                        wts,
                        rts,
                        epoch: f.epoch,
                    });
                }
                self.serve_waiters(f.block, wts, rts, f.version, &mut done, now);
            }
            L2ToL1::Renew { block, lease, .. } => {
                self.rd_remove(block);
                let LeaseInfo::Logical { rts, .. } = lease else {
                    unreachable!("G-TSC renewals carry logical leases");
                };
                // Extend the resident lease (Figure 7a), then serve
                // waiters. A locked line keeps its pending-store data and
                // lets the store ack serve the parked waiters instead; an
                // evicted line needs a full refetch (renewals carry no
                // data).
                self.tracer
                    .record_with(now, || EventKind::Renewal { block, rts: rts.0 });
                self.sanitizer.check_with(now, || Transition::L1Renew {
                    block,
                    rts,
                    epoch: self.epoch,
                });
                let state = self.tags.peek_mut(block).map(|line| {
                    if !line.meta.locked() {
                        line.meta.rts = merge_rts(line.meta.rts, rts);
                    }
                    (
                        line.meta.locked(),
                        line.meta.wts,
                        line.meta.rts,
                        line.meta.version,
                    )
                });
                match state {
                    Some((false, wts, new_rts, version)) => {
                        self.serve_waiters(block, wts, new_rts, version, &mut done, now);
                    }
                    Some((true, ..)) => {}
                    None => {
                        if self.mshr.contains(block) {
                            self.send_read(block, Timestamp(0), WarpId(0), SpanId::NONE, now);
                        }
                    }
                }
            }
            L2ToL1::WriteAck(a) | L2ToL1::AtomicAck { ack: a, .. } => {
                let LeaseInfo::Logical { wts, rts } = a.lease else {
                    unreachable!("G-TSC write acks carry logical leases");
                };
                let prev = if let L2ToL1::AtomicAck { prev, .. } = msg {
                    Some(prev)
                } else {
                    None
                };
                if let Some(c) =
                    self.finish_store(a.block, a.version, Some((wts, rts)), a.epoch, prev, now)
                {
                    self.tracer
                        .record_with(now, || EventKind::WriteAck { block: a.block });
                    done.push(c);
                }
                // The ack may unlock the line: serve parked readers.
                let line_state = self
                    .tags
                    .peek(a.block)
                    .map(|l| (l.meta.locked(), l.meta.wts, l.meta.rts, l.meta.version));
                match line_state {
                    Some((false, lwts, lrts, lver)) => {
                        self.serve_waiters(a.block, lwts, lrts, lver, &mut done, now);
                    }
                    Some((true, ..)) => {} // still locked by another store
                    None => {
                        // Not resident (write-no-allocate / recalled):
                        // parked readers must refetch.
                        if self.mshr.contains(a.block) && !self.rd_inflight.contains_key(&a.block) {
                            self.send_read(a.block, Timestamp(0), WarpId(0), SpanId::NONE, now);
                        }
                    }
                }
            }
            L2ToL1::Invalidate { block, .. } => {
                self.tags.invalidate(block);
                // Same rule as the epoch flush: the invalidated line's
                // lock state is gone, so its pending stores must not
                // unlock a future re-install of the block.
                if let Some(q) = self.store_acks.get_mut(&block) {
                    for sw in q.iter_mut() {
                        sw.locked_line = false;
                    }
                }
                if self.mshr.contains(block) && !self.rd_inflight.contains_key(&block) {
                    self.send_read(block, Timestamp(0), WarpId(0), SpanId::NONE, now);
                }
            }
        }
        done
    }

    fn take_request(&mut self) -> Option<L1ToL2> {
        self.out.pop_front()
    }

    fn tick(&mut self, now: Cycle) -> Vec<Completion> {
        let Some(timeout) = self.retry_timeout else {
            return Vec::new();
        };
        // End-to-end retry: requests unanswered past the timeout are
        // re-sent. Overdue reads restart from scratch (wts = 0 — the
        // lease situation may have changed arbitrarily since); the fill
        // they fetch serves the parked MSHR waiters, with renewals
        // covering any the lease misses.
        let overdue: Vec<BlockAddr> = self
            .rd_inflight
            .iter()
            .filter(|&(_, &(sent, _))| now.0.saturating_sub(sent.0) >= timeout)
            .map(|(&b, _)| b)
            .collect();
        for block in overdue {
            self.stats.retries += 1;
            self.rd_insert(block, now, false);
            self.out.push_back(L1ToL2::Read(ReadReq {
                block,
                wts: Timestamp(0),
                warp_ts: Timestamp::INIT,
                epoch: self.epoch,
                span: SpanId::NONE,
            }));
        }
        // Overdue stores re-send the identical (block, version) request:
        // the L2 replay filter makes the duplicate harmless if the
        // original did land, and the ack satisfies this waiter either
        // way. The warp timestamp is re-read (>= the original; the L2
        // takes the max anyway) and the epoch is current — a request
        // from a pre-crash epoch would only be degraded by the L2.
        let mut resend: Vec<L1ToL2> = Vec::new();
        for (&block, q) in &mut self.store_acks {
            for sw in q.iter_mut() {
                if now.0.saturating_sub(sw.sent.0) < timeout {
                    continue;
                }
                sw.sent = now;
                self.stats.retries += 1;
                let req = WriteReq {
                    block,
                    warp_ts: self.warp_ts[sw.warp.0 as usize],
                    version: sw.version,
                    epoch: self.epoch,
                    span: SpanId::NONE,
                };
                resend.push(if sw.kind == AccessKind::Atomic {
                    L1ToL2::Atomic(req)
                } else {
                    L1ToL2::Write(req)
                });
            }
        }
        self.out.extend(resend);
        Vec::new()
    }

    fn flush(&mut self) {
        self.tags.flush();
        for ts in &mut self.warp_ts {
            *ts = Timestamp::INIT;
        }
    }

    fn is_idle(&self) -> bool {
        self.mshr.is_empty() && self.store_acks.is_empty() && self.out.is_empty()
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn pressure(&self) -> ControllerPressure {
        ControllerPressure {
            mshr: self.mshr.len(),
            out_queue: self.out.len(),
            waiting: self
                .store_acks
                .values()
                .map(std::collections::VecDeque::len)
                .sum(),
        }
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn tracer(&self) -> Option<&Tracer> {
        Some(&self.tracer)
    }

    fn set_sanitizer(&mut self, sanitizer: Sanitizer) {
        self.sanitizer = sanitizer;
    }

    fn set_span_tracker(&mut self, spans: SpanTracker) {
        self.spans = spans;
    }

    fn wait_hint(&self) -> WaitHint {
        if self.mshr.is_full() {
            WaitHint::MshrFull
        } else if !self.out.is_empty() {
            WaitHint::NocBackpressure
        } else if self.renewals_inflight > 0 {
            WaitHint::LeaseExpired
        } else if !self.mshr.is_empty() || !self.store_acks.is_empty() {
            WaitHint::Downstream
        } else {
            WaitHint::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_protocol::msg::{FillResp, WriteAckResp};

    fn l1() -> GtscL1 {
        GtscL1::new(L1Params::default())
    }

    fn load(id: u64, warp: u16, block: u64) -> MemAccess {
        MemAccess {
            id: AccessId(id),
            warp: WarpId(warp),
            kind: AccessKind::Load,
            block: BlockAddr(block),
            span: SpanId::NONE,
        }
    }

    fn store(id: u64, warp: u16, block: u64) -> MemAccess {
        MemAccess {
            id: AccessId(id),
            warp: WarpId(warp),
            kind: AccessKind::Store,
            block: BlockAddr(block),
            span: SpanId::NONE,
        }
    }

    fn fill(block: u64, wts: u64, rts: u64, version: Version) -> L2ToL1 {
        L2ToL1::Fill(FillResp {
            block: BlockAddr(block),
            lease: LeaseInfo::Logical {
                wts: Timestamp(wts),
                rts: Timestamp(rts),
            },
            version,
            epoch: 0,
            span: SpanId::NONE,
        })
    }

    #[test]
    fn cold_miss_sends_busrd_with_zero_wts() {
        let mut c = l1();
        assert!(matches!(
            c.access(load(1, 0, 5), Cycle(0)),
            L1Outcome::Queued
        ));
        let L1ToL2::Read(r) = c.take_request().unwrap() else {
            panic!()
        };
        assert_eq!(r.wts, Timestamp(0));
        assert_eq!(r.warp_ts, Timestamp::INIT);
        assert_eq!(c.stats().cold_misses, 1);
        assert!(!c.is_idle());
    }

    #[test]
    fn fill_completes_waiter_and_bumps_warp_ts() {
        let mut c = l1();
        c.access(load(1, 0, 5), Cycle(0));
        c.take_request();
        let done = c.on_response(fill(5, 4, 14, Version(9)), Cycle(30));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].version, Version(9));
        assert_eq!(done[0].ts, Some(Timestamp(4))); // max(1, wts=4)
        assert_eq!(c.warp_ts(WarpId(0)), Timestamp(4));
        assert!(c.is_idle());
    }

    #[test]
    fn subsequent_covered_load_hits_in_l1() {
        let mut c = l1();
        c.access(load(1, 0, 5), Cycle(0));
        c.take_request();
        c.on_response(fill(5, 1, 11, Version(9)), Cycle(30));
        match c.access(load(2, 1, 5), Cycle(40)) {
            L1Outcome::Hit(comp) => {
                assert_eq!(comp.version, Version(9));
                assert_eq!(comp.ts, Some(Timestamp(1)));
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn warp_beyond_lease_is_expired_miss_with_renewal() {
        let mut c = l1();
        c.access(load(1, 0, 5), Cycle(0));
        c.take_request();
        c.on_response(fill(5, 1, 6, Version(9)), Cycle(30));
        // Advance warp 1 logically past the lease via another block.
        c.access(load(2, 1, 7), Cycle(40));
        c.take_request();
        c.on_response(fill(7, 20, 30, Version(3)), Cycle(70));
        assert_eq!(c.warp_ts(WarpId(1)), Timestamp(20));
        // Now warp 1 reads block 5: tag hit but warp_ts 20 > rts 6.
        assert!(matches!(
            c.access(load(3, 1, 5), Cycle(80)),
            L1Outcome::Queued
        ));
        let L1ToL2::Read(r) = c.take_request().unwrap() else {
            panic!()
        };
        assert_eq!(r.wts, Timestamp(1)); // renewal carries the held wts
        assert_eq!(r.warp_ts, Timestamp(20));
        assert_eq!(c.stats().expired_misses, 1);
        assert_eq!(c.stats().renewals, 1);
    }

    #[test]
    fn renewal_response_extends_lease_and_serves_waiter() {
        let mut c = l1();
        c.access(load(1, 0, 5), Cycle(0));
        c.take_request();
        c.on_response(fill(5, 1, 6, Version(9)), Cycle(30));
        c.access(load(2, 1, 7), Cycle(40));
        c.take_request();
        c.on_response(fill(7, 20, 30, Version(3)), Cycle(70));
        c.access(load(3, 1, 5), Cycle(80));
        c.take_request();
        let done = c.on_response(
            L2ToL1::Renew {
                block: BlockAddr(5),
                lease: LeaseInfo::Logical {
                    wts: Timestamp(1),
                    rts: Timestamp(30),
                },
                epoch: 0,
                span: SpanId::NONE,
            },
            Cycle(110),
        );
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].version, Version(9));
        // Lease on the line extended: next read by warp 1 hits.
        assert!(matches!(
            c.access(load(4, 1, 5), Cycle(120)),
            L1Outcome::Hit(_)
        ));
    }

    #[test]
    fn store_locks_line_and_ack_unlocks() {
        let mut c = l1();
        c.access(load(1, 0, 5), Cycle(0));
        c.take_request();
        c.on_response(fill(5, 1, 11, Version(9)), Cycle(30));
        // Store by warp 0.
        assert!(matches!(
            c.access(store(2, 0, 5), Cycle(40)),
            L1Outcome::Queued
        ));
        let L1ToL2::Write(w) = c.take_request().unwrap() else {
            panic!()
        };
        // Figure 10 scenario: read by warp 1 while the store is pending
        // must NOT hit (BlockLine policy).
        assert!(matches!(
            c.access(load(3, 1, 5), Cycle(41)),
            L1Outcome::Queued
        ));
        assert_eq!(c.stats().blocked_on_pending_write, 1);
        assert!(c.take_request().is_none(), "parked reader sends no BusRd");
        // Ack arrives with the assigned lease [12, 22].
        let done = c.on_response(
            L2ToL1::WriteAck(WriteAckResp {
                block: BlockAddr(5),
                lease: LeaseInfo::Logical {
                    wts: Timestamp(12),
                    rts: Timestamp(22),
                },
                version: w.version,
                epoch: 0,
                span: SpanId::NONE,
            }),
            Cycle(80),
        );
        // Both the store and the parked reader complete.
        assert_eq!(done.len(), 2);
        let st = done.iter().find(|d| d.kind == AccessKind::Store).unwrap();
        assert_eq!(st.ts, Some(Timestamp(12)));
        let ld = done.iter().find(|d| d.kind == AccessKind::Load).unwrap();
        assert_eq!(ld.version, w.version);
        assert!(
            ld.ts.unwrap() >= Timestamp(12),
            "reader sees the new version no earlier than its wts"
        );
        assert_eq!(c.warp_ts(WarpId(0)), Timestamp(12));
        assert!(c.is_idle());
    }

    #[test]
    fn dual_copy_serves_old_version_to_other_warps() {
        let mut c = GtscL1::new(L1Params {
            visibility: VisibilityPolicy::DualCopy,
            ..L1Params::default()
        });
        c.access(load(1, 0, 5), Cycle(0));
        c.take_request();
        c.on_response(fill(5, 1, 11, Version(9)), Cycle(30));
        c.access(store(2, 0, 5), Cycle(40));
        c.take_request();
        // Warp 1 reads during the pending store: old copy served.
        match c.access(load(3, 1, 5), Cycle(41)) {
            L1Outcome::Hit(comp) => {
                assert_eq!(comp.version, Version(9));
                assert!(comp.ts.unwrap() <= Timestamp(11));
            }
            other => panic!("expected old-copy hit, got {other:?}"),
        }
        // The writing warp itself must wait.
        assert!(matches!(
            c.access(load(4, 0, 5), Cycle(42)),
            L1Outcome::Queued
        ));
    }

    #[test]
    fn merged_waiters_without_coverage_trigger_renewal() {
        let mut c = l1();
        // Advance warp 2 far ahead.
        c.access(load(1, 2, 7), Cycle(0));
        c.take_request();
        c.on_response(fill(7, 50, 60, Version(3)), Cycle(30));
        // Warps 0 and 2 both miss on block 5; they merge (one BusRd).
        c.access(load(2, 0, 5), Cycle(40));
        c.access(load(3, 2, 5), Cycle(40));
        assert!(c.take_request().is_some());
        assert!(c.take_request().is_none(), "merged: single request");
        assert_eq!(c.stats().mshr_merges, 1);
        // Fill covers warp 0 (ts 1) but not warp 2 (ts 50).
        let done = c.on_response(fill(5, 1, 11, Version(9)), Cycle(70));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].warp, WarpId(0));
        // A renewal goes out for warp 2.
        let L1ToL2::Read(r) = c.take_request().unwrap() else {
            panic!()
        };
        assert_eq!(r.warp_ts, Timestamp(50));
        assert_eq!(r.wts, Timestamp(1));
        // Renewal response completes warp 2.
        let done = c.on_response(
            L2ToL1::Renew {
                block: BlockAddr(5),
                lease: LeaseInfo::Logical {
                    wts: Timestamp(1),
                    rts: Timestamp(60),
                },
                epoch: 0,
                span: SpanId::NONE,
            },
            Cycle(100),
        );
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].warp, WarpId(2));
    }

    #[test]
    fn forward_all_sends_one_request_per_waiter() {
        let mut c = GtscL1::new(L1Params {
            combine: CombinePolicy::ForwardAll,
            ..L1Params::default()
        });
        c.access(load(1, 0, 5), Cycle(0));
        c.access(load(2, 1, 5), Cycle(0));
        c.access(load(3, 2, 5), Cycle(0));
        let mut n = 0;
        while c.take_request().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn mshr_full_rejects() {
        let mut c = GtscL1::new(L1Params {
            mshr_entries: 1,
            ..L1Params::default()
        });
        assert!(matches!(
            c.access(load(1, 0, 5), Cycle(0)),
            L1Outcome::Queued
        ));
        assert!(matches!(
            c.access(load(2, 0, 7), Cycle(0)),
            L1Outcome::Reject
        ));
    }

    #[test]
    fn epoch_bump_flushes_and_resets_warp_ts() {
        let mut c = l1();
        c.access(load(1, 0, 5), Cycle(0));
        c.take_request();
        c.on_response(fill(5, 40, 50, Version(9)), Cycle(30));
        assert_eq!(c.warp_ts(WarpId(0)), Timestamp(40));
        // A response arrives from epoch 1: reset protocol.
        c.access(load(2, 1, 7), Cycle(40));
        c.take_request();
        let done = c.on_response(
            L2ToL1::Fill(FillResp {
                block: BlockAddr(7),
                lease: LeaseInfo::Logical {
                    wts: Timestamp(1),
                    rts: Timestamp(11),
                },
                version: Version(3),
                epoch: 1,
                span: SpanId::NONE,
            }),
            Cycle(70),
        );
        assert_eq!(done.len(), 1);
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.warp_ts(WarpId(0)), Timestamp::INIT);
        // Block 5 was flushed.
        assert!(matches!(
            c.access(load(3, 0, 5), Cycle(80)),
            L1Outcome::Queued
        ));
        assert_eq!(c.stats().ts_rollovers, 1);
    }

    #[test]
    fn store_to_missing_block_is_write_no_allocate() {
        let mut c = l1();
        c.access(store(1, 0, 5), Cycle(0));
        let L1ToL2::Write(w) = c.take_request().unwrap() else {
            panic!()
        };
        let done = c.on_response(
            L2ToL1::WriteAck(WriteAckResp {
                block: BlockAddr(5),
                lease: LeaseInfo::Logical {
                    wts: Timestamp(12),
                    rts: Timestamp(22),
                },
                version: w.version,
                epoch: 0,
                span: SpanId::NONE,
            }),
            Cycle(40),
        );
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].kind, AccessKind::Store);
        // Line was not allocated.
        assert!(matches!(
            c.access(load(2, 0, 5), Cycle(50)),
            L1Outcome::Queued
        ));
        assert_eq!(c.stats().cold_misses, 1);
    }

    #[test]
    fn flush_clears_lines_and_warp_ts() {
        let mut c = l1();
        c.access(load(1, 0, 5), Cycle(0));
        c.take_request();
        c.on_response(fill(5, 30, 40, Version(9)), Cycle(30));
        c.flush();
        assert_eq!(c.warp_ts(WarpId(0)), Timestamp::INIT);
        assert!(matches!(
            c.access(load(2, 0, 5), Cycle(50)),
            L1Outcome::Queued
        ));
    }

    #[test]
    fn atomic_locks_line_and_ack_delivers_prev() {
        use gtsc_protocol::msg::WriteAckResp;
        let mut c = l1();
        c.access(load(1, 0, 5), Cycle(0));
        c.take_request();
        c.on_response(fill(5, 1, 11, Version(9)), Cycle(30));
        // Atomic by warp 0: line locks, request goes out as Atomic.
        let at = MemAccess {
            id: AccessId(2),
            warp: WarpId(0),
            kind: AccessKind::Atomic,
            block: BlockAddr(5),
            span: SpanId::NONE,
        };
        assert!(matches!(c.access(at, Cycle(40)), L1Outcome::Queued));
        let L1ToL2::Atomic(w) = c.take_request().unwrap() else {
            panic!("expected Atomic")
        };
        // A read meanwhile is parked (update visibility applies to RMWs).
        assert!(matches!(
            c.access(load(3, 1, 5), Cycle(41)),
            L1Outcome::Queued
        ));
        let done = c.on_response(
            L2ToL1::AtomicAck {
                ack: WriteAckResp {
                    block: BlockAddr(5),
                    lease: LeaseInfo::Logical {
                        wts: Timestamp(12),
                        rts: Timestamp(22),
                    },
                    version: w.version,
                    epoch: 0,
                    span: SpanId::NONE,
                },
                prev: Version(9),
            },
            Cycle(80),
        );
        let at_done = done.iter().find(|d| d.kind == AccessKind::Atomic).unwrap();
        assert_eq!(
            at_done.prev,
            Some(Version(9)),
            "read half observes the old value"
        );
        assert_eq!(at_done.ts, Some(Timestamp(12)));
        let ld = done.iter().find(|d| d.kind == AccessKind::Load).unwrap();
        assert_eq!(ld.version, w.version, "parked reader sees the RMW result");
        assert!(c.is_idle());
    }

    #[test]
    fn retry_resends_overdue_reads_and_stores_only_when_enabled() {
        // Disabled (the default): a lost request stays lost.
        let mut c = l1();
        c.access(load(1, 0, 5), Cycle(0));
        assert!(c.take_request().is_some());
        assert!(c.tick(Cycle(100_000)).is_empty());
        assert!(c.take_request().is_none(), "no retry unless enabled");
        assert_eq!(c.stats().retries, 0);

        // Enabled: both reads and stores are re-sent after the timeout.
        let mut c = l1();
        c.enable_retry(100);
        c.access(load(1, 0, 5), Cycle(0));
        c.access(store(2, 1, 9), Cycle(0));
        let first_read = c.take_request().unwrap();
        let L1ToL2::Write(first_store) = c.take_request().unwrap() else {
            panic!("expected store");
        };
        c.tick(Cycle(50));
        assert!(c.take_request().is_none(), "not overdue yet");
        c.tick(Cycle(120));
        let mut retried = Vec::new();
        while let Some(r) = c.take_request() {
            retried.push(r);
        }
        assert_eq!(retried.len(), 2, "one read + one store retried");
        assert_eq!(c.stats().retries, 2);
        let read_retry = retried
            .iter()
            .find_map(|r| {
                if let L1ToL2::Read(rd) = r {
                    Some(*rd)
                } else {
                    None
                }
            })
            .expect("read retried");
        assert_eq!(read_retry.block, first_read.block());
        assert_eq!(read_retry.wts, Timestamp(0), "retried read starts fresh");
        let store_retry = retried
            .iter()
            .find_map(|r| {
                if let L1ToL2::Write(w) = r {
                    Some(*w)
                } else {
                    None
                }
            })
            .expect("store retried");
        assert_eq!(
            store_retry.version, first_store.version,
            "store retry carries the same version for the replay filter"
        );
        // The (possibly duplicate) responses complete the accesses once.
        let done = c.on_response(fill(5, 1, 11, Version(7)), Cycle(130));
        assert_eq!(done.len(), 1);
        let done = c.on_response(
            L2ToL1::WriteAck(WriteAckResp {
                block: BlockAddr(9),
                lease: LeaseInfo::Logical {
                    wts: Timestamp(12),
                    rts: Timestamp(22),
                },
                version: first_store.version,
                epoch: 0,
                span: SpanId::NONE,
            }),
            Cycle(140),
        );
        assert_eq!(done.len(), 1);
        // A duplicate ack (the retried copy) is a no-op.
        let done = c.on_response(
            L2ToL1::WriteAck(WriteAckResp {
                block: BlockAddr(9),
                lease: LeaseInfo::Logical {
                    wts: Timestamp(12),
                    rts: Timestamp(22),
                },
                version: first_store.version,
                epoch: 0,
                span: SpanId::NONE,
            }),
            Cycle(150),
        );
        assert!(done.is_empty(), "duplicate ack completes nothing");
        assert!(c.is_idle());
        // Nothing pending: ticks stay quiet.
        c.tick(Cycle(10_000));
        assert!(c.take_request().is_none());
    }

    #[test]
    fn versions_are_namespaced_by_sm() {
        let mut a = GtscL1::new(L1Params {
            sm_index: 0,
            ..L1Params::default()
        });
        let mut b = GtscL1::new(L1Params {
            sm_index: 1,
            ..L1Params::default()
        });
        a.access(store(1, 0, 5), Cycle(0));
        b.access(store(1, 0, 5), Cycle(0));
        let L1ToL2::Write(wa) = a.take_request().unwrap() else {
            panic!()
        };
        let L1ToL2::Write(wb) = b.take_request().unwrap() else {
            panic!()
        };
        assert_ne!(wa.version, wb.version);
        assert_ne!(wa.version, Version::ZERO);
    }

    #[test]
    fn pre_rollover_store_ack_does_not_unlock_reinstalled_line() {
        let mut c = l1();
        c.access(load(1, 0, 5), Cycle(0));
        c.take_request();
        c.on_response(fill(5, 1, 11, Version(9)), Cycle(10));
        // Warp 0 store locks the line; its request is in flight when the
        // epoch rolls over and the flush destroys the line (and its lock).
        assert!(matches!(
            c.access(store(2, 0, 5), Cycle(20)),
            L1Outcome::Queued
        ));
        let L1ToL2::Write(wa) = c.take_request().unwrap() else {
            panic!("expected Write");
        };
        c.on_response(
            L2ToL1::Fill(FillResp {
                block: BlockAddr(6),
                lease: LeaseInfo::Logical {
                    wts: Timestamp(1),
                    rts: Timestamp(11),
                },
                version: Version(30),
                epoch: 1,
                span: SpanId::NONE,
            }),
            Cycle(30),
        );
        // The block is re-fetched and re-installed in the new epoch, and a
        // warp-1 store locks the *new* line.
        c.access(load(3, 1, 5), Cycle(40));
        c.take_request();
        c.on_response(
            L2ToL1::Fill(FillResp {
                block: BlockAddr(5),
                lease: LeaseInfo::Logical {
                    wts: Timestamp(2),
                    rts: Timestamp(12),
                },
                version: Version(40),
                epoch: 1,
                span: SpanId::NONE,
            }),
            Cycle(50),
        );
        assert!(matches!(
            c.access(store(4, 1, 5), Cycle(60)),
            L1Outcome::Queued
        ));
        let L1ToL2::Write(wb) = c.take_request().unwrap() else {
            panic!("expected Write");
        };
        // A load parks on the locked line.
        assert!(matches!(
            c.access(load(5, 0, 5), Cycle(61)),
            L1Outcome::Queued
        ));
        // The pre-rollover store's ack arrives, degraded into the current
        // epoch by the home. It must not steal the new store's lock: the
        // parked load would otherwise be served wb's uncommitted data.
        let done = c.on_response(
            L2ToL1::WriteAck(WriteAckResp {
                block: BlockAddr(5),
                lease: LeaseInfo::Logical {
                    wts: Timestamp(3),
                    rts: Timestamp(13),
                },
                version: wa.version,
                epoch: 1,
                span: SpanId::NONE,
            }),
            Cycle(70),
        );
        assert!(
            done.iter().all(|d| d.kind != AccessKind::Load),
            "parked load must stay parked while wb is pending"
        );
        assert!(
            matches!(c.access(load(6, 0, 5), Cycle(71)), L1Outcome::Queued),
            "line must still be locked by the pending store"
        );
        // Only wb's own ack unlocks the line and serves the parked loads.
        let done = c.on_response(
            L2ToL1::WriteAck(WriteAckResp {
                block: BlockAddr(5),
                lease: LeaseInfo::Logical {
                    wts: Timestamp(4),
                    rts: Timestamp(14),
                },
                version: wb.version,
                epoch: 1,
                span: SpanId::NONE,
            }),
            Cycle(80),
        );
        let loads: Vec<_> = done.iter().filter(|d| d.kind == AccessKind::Load).collect();
        assert!(!loads.is_empty(), "wb's ack serves the parked loads");
        assert!(loads.iter().all(|l| l.version == wb.version));
    }
}
