//! The pure timestamp-assignment rules of G-TSC (Figures 4–6).
//!
//! These four functions are the algorithmic core of the protocol; the
//! controllers in [`crate::l1`] and [`crate::l2`] are plumbing around
//! them. Keeping them pure makes the protocol's safety arguments testable
//! in isolation (see the property tests at the bottom of this module).

use gtsc_types::{Lease, Timestamp};

/// Lease extension rule (Figure 4): when a `BusRd` with warp timestamp
/// `warp_ts` is served, the block's read timestamp becomes
/// `max(rts, warp_ts + lease)` — always covering the requester.
///
/// # Examples
///
/// ```
/// use gtsc_core::rules::extend_rts;
/// use gtsc_types::{Lease, Timestamp};
/// // The Figure 9 example, step 14: rts=11 extended for warp_ts=12.
/// assert_eq!(extend_rts(Timestamp(11), Timestamp(12), Lease(3)), Timestamp(15));
/// // Never shrinks.
/// assert_eq!(extend_rts(Timestamp(50), Timestamp(1), Lease(3)), Timestamp(50));
/// ```
#[must_use]
pub fn extend_rts(rts: Timestamp, warp_ts: Timestamp, lease: Lease) -> Timestamp {
    rts.max(warp_ts + lease)
}

/// Store timestamp rule (Figure 5): a store serialized at the L2 is
/// logically scheduled *after* every outstanding lease and after the
/// writing warp's own past: `wts = max(rts + 1, warp_ts)`.
///
/// This is why G-TSC writes never stall: instead of waiting for reader
/// leases to expire in physical time (TC), the write simply happens
/// later in logical time.
///
/// # Examples
///
/// ```
/// use gtsc_core::rules::store_wts;
/// use gtsc_types::Timestamp;
/// // Figure 9, step 8: block valid until ts 11, writing warp at ts 1.
/// assert_eq!(store_wts(Timestamp(11), Timestamp(1)), Timestamp(12));
/// // A warp that is already logically ahead drags the store with it.
/// assert_eq!(store_wts(Timestamp(11), Timestamp(40)), Timestamp(40));
/// ```
#[must_use]
pub fn store_wts(rts: Timestamp, warp_ts: Timestamp) -> Timestamp {
    rts.succ().max(warp_ts)
}

/// Whether a warp at `warp_ts` may read a copy with lease `[wts, rts]`
/// (L1 hit condition 2 of Figure 2). `wts` is not consulted: a warp whose
/// timestamp is below `wts` simply *moves up* to `wts` upon reading.
#[must_use]
pub fn lease_covers(rts: Timestamp, warp_ts: Timestamp) -> bool {
    warp_ts <= rts
}

/// The warp-timestamp advance on a successful load (Figure 2):
/// `warp_ts ← max(warp_ts, wts)` — the returned value is also the load's
/// effective logical timestamp.
#[must_use]
pub fn load_ts(warp_ts: Timestamp, wts: Timestamp) -> Timestamp {
    warp_ts.max(wts)
}

/// The lease a newly-created version is granted (Figure 5 / Section
/// V-C): readable for `lease` logical ticks past its write timestamp.
/// Used both for store commits and for DRAM fills (whose `wts` is the
/// bank's `mem_ts`).
#[must_use]
pub fn grant_rts(wts: Timestamp, lease: Lease) -> Timestamp {
    wts + lease
}

/// Renewal merge rule (Figure 7a): an L1 folding a data-less renewal
/// into a resident lease keeps the larger read timestamp — a racing
/// fill may already have extended the line beyond the renewal.
#[must_use]
pub fn merge_rts(resident_rts: Timestamp, renewed_rts: Timestamp) -> Timestamp {
    resident_rts.max(renewed_rts)
}

/// Non-inclusion rule (Section V-C): evicting an L2 line folds its
/// read lease into the bank's memory timestamp, so a later refetch can
/// never be stamped below a lease that may still be cached in an L1.
#[must_use]
pub fn fold_mem_ts(mem_ts: Timestamp, evicted_rts: Timestamp) -> Timestamp {
    mem_ts.max(evicted_rts)
}

/// Hierarchical nesting rule (HALCONE-style multi-GPU delegation; see
/// DESIGN.md §17): a device-local L2 may extend an L1 lease on its own
/// authority only *inside* the inter-GPU grant it holds from the home
/// node. The lease it would grant on-die (`extend_rts`) is therefore
/// clamped to the grant's `rts` — every L1 lease is nested strictly
/// inside a live device grant, so a crashed or partitioned device can
/// never have delegated logical time it does not own.
///
/// # Examples
///
/// ```
/// use gtsc_core::rules::nest_rts;
/// use gtsc_types::{Lease, Timestamp};
/// // Plenty of grant headroom: behaves exactly like extend_rts.
/// assert_eq!(
///     nest_rts(Timestamp(11), Timestamp(12), Lease(3), Timestamp(100)),
///     Timestamp(15)
/// );
/// // Near the grant edge: the lease is clamped to the grant's rts.
/// assert_eq!(
///     nest_rts(Timestamp(11), Timestamp(12), Lease(3), Timestamp(13)),
///     Timestamp(13)
/// );
/// ```
#[must_use]
pub fn nest_rts(
    rts: Timestamp,
    warp_ts: Timestamp,
    lease: Lease,
    grant_rts: Timestamp,
) -> Timestamp {
    extend_rts(rts, warp_ts, lease).min(grant_rts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn figure9_walkthrough() {
        // The worked example of Figure 9, SM0 writing X then re-reading it.
        let lease = Lease(10);
        // Initial fill of X: [wts=1, rts=1+? paper uses [1,6]].
        let x_wts = Timestamp(1);
        let x_rts_l2 = Timestamp(11); // lease held by SM1
                                      // Step 8: A2 stores X with warp_ts = 1.
        let st = store_wts(x_rts_l2, Timestamp(1));
        assert_eq!(st, Timestamp(12));
        let new_rts = st + lease;
        assert_eq!(new_rts, Timestamp(22));
        // Step 13: A3 reads X with warp_ts = 12, old lease [1,6] expired.
        assert!(!lease_covers(Timestamp(6), Timestamp(12)));
        // Step 14: renewal extends the *new* version's lease; in the paper
        // the L2 sets rts = 15 > warp_ts using lease 3 for exposition.
        assert_eq!(
            extend_rts(Timestamp(6), Timestamp(12), Lease(3)),
            Timestamp(15)
        );
        let _ = x_wts;
    }

    #[test]
    fn load_ts_moves_warp_forward_only() {
        assert_eq!(load_ts(Timestamp(4), Timestamp(9)), Timestamp(9));
        assert_eq!(load_ts(Timestamp(9), Timestamp(4)), Timestamp(9));
    }

    #[test]
    fn grant_merge_and_fold_helpers() {
        assert_eq!(grant_rts(Timestamp(12), Lease(10)), Timestamp(22));
        assert_eq!(merge_rts(Timestamp(9), Timestamp(4)), Timestamp(9));
        assert_eq!(merge_rts(Timestamp(4), Timestamp(9)), Timestamp(9));
        assert_eq!(fold_mem_ts(Timestamp(3), Timestamp(7)), Timestamp(7));
        // fold never shrinks mem_ts.
        assert_eq!(fold_mem_ts(Timestamp(7), Timestamp(3)), Timestamp(7));
    }

    proptest! {
        /// Safety: a store is always assigned a timestamp strictly greater
        /// than the block's current read lease, so no already-granted read
        /// can logically observe it.
        #[test]
        fn store_never_lands_inside_a_lease(rts in 0u64..1_000_000, warp in 0u64..1_000_000) {
            let wts = store_wts(Timestamp(rts), Timestamp(warp));
            prop_assert!(wts > Timestamp(rts));
            prop_assert!(wts >= Timestamp(warp));
        }

        /// Liveness: an extension always covers the requesting warp, so a
        /// renewal response always unblocks the requester.
        #[test]
        fn extension_covers_requester(
            rts in 0u64..1_000_000,
            warp in 0u64..1_000_000,
            lease in 1u64..100,
        ) {
            let new_rts = extend_rts(Timestamp(rts), Timestamp(warp), Lease(lease));
            prop_assert!(lease_covers(new_rts, Timestamp(warp)));
            prop_assert!(new_rts >= Timestamp(rts));
        }

        /// Containment: a nested lease never escapes the device grant,
        /// and whenever the grant has room for the requester the nested
        /// lease still covers it (delegation loses no liveness inside
        /// the grant).
        #[test]
        fn nested_lease_stays_inside_grant(
            rts in 0u64..1_000_000,
            warp in 0u64..1_000_000,
            lease in 1u64..100,
            grant in 0u64..1_000_000,
        ) {
            let nested = nest_rts(Timestamp(rts), Timestamp(warp), Lease(lease), Timestamp(grant));
            prop_assert!(nested <= Timestamp(grant), "L2 lease ⊆ device grant");
            if warp <= grant {
                prop_assert!(lease_covers(nested, Timestamp(warp)));
            }
            // With unlimited grant headroom, nesting is exactly extend_rts.
            let free = nest_rts(Timestamp(rts), Timestamp(warp), Lease(lease), Timestamp(u64::MAX));
            prop_assert_eq!(free, extend_rts(Timestamp(rts), Timestamp(warp), Lease(lease)));
        }

        /// Monotonicity: successive stores to the same block get strictly
        /// increasing write timestamps (the per-block serialization G-TSC
        /// relies on for the single-writer invariant).
        #[test]
        fn successive_stores_strictly_increase(
            start_rts in 0u64..10_000,
            warps in proptest::collection::vec(0u64..10_000, 1..50),
            lease in 1u64..100,
        ) {
            let mut rts = Timestamp(start_rts);
            let mut last_wts = Timestamp(0);
            for w in warps {
                let wts = store_wts(rts, Timestamp(w));
                prop_assert!(wts > last_wts);
                last_wts = wts;
                rts = wts + Lease(lease);
            }
        }
    }
}
