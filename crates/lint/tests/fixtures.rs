//! One positive and one negative fixture per lint rule: the positive
//! must fire exactly that rule, the negative must stay silent. This is
//! the acceptance gate for the token engine — a rule that cannot catch
//! its own fixture is dead code, and one that fires on the negative
//! would poison the clean-tree guarantee CI depends on.

use std::path::Path;

use gtsc_lint::{lint_text, RuleSet};

fn rules_fired(src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = lint_text(Path::new("fixture.rs"), src, RuleSet::all())
        .into_iter()
        .map(|d| d.rule)
        .collect();
    rules.dedup();
    rules
}

#[track_caller]
fn assert_fires(rule: &str, src: &str) {
    assert_eq!(rules_fired(src), vec![rule], "fixture: {src}");
}

#[track_caller]
fn assert_clean(src: &str) {
    assert_eq!(rules_fired(src), Vec::<&str>::new(), "fixture: {src}");
}

#[test]
fn raw_ts_arith() {
    assert_fires("raw-ts-arith", "let wts = line.meta.rts.succ();");
    assert_fires("raw-ts-arith", "line.meta.rts = wts + lease;");
    assert_fires("raw-ts-arith", "self.mem_ts = self.mem_ts.max(evicted);");
    assert_fires("raw-ts-arith", "let w = wts + 1;");
    assert_clean("let count = count + 1;");
    assert_clean("self.clock = self.clock.max(now);");
}

#[test]
fn unwrap() {
    assert_fires("unwrap", "let v = opt.unwrap();");
    assert_clean("let v = opt.unwrap_or(0);");
}

#[test]
fn panic() {
    assert_fires("panic", "panic!(\"unreachable: {x}\");");
    assert_clean("assert!(x < y, \"bounds\");");
}

#[test]
fn noc_inject() {
    assert_fires("noc-inject", "self.queues[src].push_back(pkt);");
    assert_clean("self.queues[src].pop_front();");
    assert_clean("out.push((dst, payload));");
}

#[test]
fn raw_network() {
    assert_fires("raw-network", "req_net: Network<(usize, u32)>,");
    assert_fires("raw-network", "let net = Network::new(4, 8, cfg);");
    assert_fires("raw-network", "use gtsc_noc::Network;");
    assert_clean("req_net: ReliableNet<(usize, u32)>,");
    assert_clean("let net = ReliableNet::new(4, 8, cfg, tp);");
}

#[test]
fn hash_iter() {
    assert_fires(
        "hash-iter",
        "struct S { waiters: HashMap<u64, u32> }\n\
         fn f(s: &S) -> u32 { s.waiters.values().sum() }",
    );
    assert_fires(
        "hash-iter",
        "fn f(seen: HashSet<u64>) { for b in &seen { use_block(b); } }",
    );
    // BTree collections iterate in key order: deterministic, allowed.
    assert_clean(
        "struct S { waiters: BTreeMap<u64, u32> }\n\
         fn f(s: &S) -> u32 { s.waiters.values().sum() }",
    );
    // Non-iterating hash-map use is fine.
    assert_clean(
        "struct S { waiters: HashMap<u64, u32> }\n\
         fn f(s: &mut S) { s.waiters.insert(1, 2); s.waiters.remove(&1); }",
    );
}

#[test]
fn std_time() {
    assert_fires("std-time", "let t0 = Instant::now();");
    assert_fires("std-time", "use std::time::SystemTime;");
    assert_clean("let dt = now - issued;");
}

#[test]
fn unseeded_rng() {
    assert_fires("unseeded-rng", "let mut rng = thread_rng();");
    assert_fires("unseeded-rng", "let x: u64 = rand::random();");
    assert_clean("let mut rng = StdRng::seed_from_u64(cfg.seed);");
}

#[test]
fn thread_id() {
    assert_fires("thread-id", "let who = thread::current();");
    assert_clean("let h = thread::spawn(move || run(cfg));");
}

#[test]
fn suppression_and_test_modules() {
    assert_clean("let t0 = Instant::now(); // lint: allow(std-time): startup banner only");
    assert_clean("#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}");
    // Suppressing one rule must not blanket others on the same line.
    assert_fires(
        "unwrap",
        "let v = opt.unwrap(); // lint: allow(std-time): wrong rule",
    );
}
