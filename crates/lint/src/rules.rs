//! Rule evaluation over the token stream of one file.
//!
//! Two families:
//!
//! * **Per-line review rules** ported from the legacy line-regex linter
//!   (`raw-ts-arith`, `unwrap`, `panic`, `noc-inject`, `raw-network`).
//!   These keep the legacy line-at-a-time semantics so their findings
//!   land on the same lines, but evaluate token patterns instead of
//!   substrings — a `panic!(` inside a string literal or comment can no
//!   longer fire.
//! * **Stream determinism rules** (`hash-iter`, `std-time`,
//!   `unseeded-rng`, `thread-id`) that walk the whole token stream, so
//!   a method chain split across lines (`self.entries\n.keys()`) is
//!   still caught.
//!
//! Shared conventions, inherited from the legacy engine so existing
//! suppressions keep working:
//!
//! * scanning stops at the file's first `#[cfg(test)]` marker (this
//!   workspace keeps test modules at the bottom of each file);
//! * a `// lint: allow(<rule>)` comment on the offending line or one of
//!   the two lines above it suppresses that rule there.

use crate::lexer::{Tok, TokKind};
use crate::RuleSet;

/// A finding before it is joined with file path and snippet.
#[derive(Debug, Clone)]
pub(crate) struct RawFinding {
    pub line: usize,
    pub col: usize,
    pub rule: &'static str,
    pub message: String,
}

/// Hash-container methods whose visit order is the container's
/// (randomized) iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Timestamp-bearing identifiers whose combination with arithmetic
/// marks a line as timestamp math (same catalog as the legacy engine).
const TS_WORDS: &[&str] = &["wts", "rts", "warp_ts", "mem_ts"];

/// Scans one file's token stream. `toks` must come from
/// [`crate::lexer::lex`] on the full file text.
pub(crate) fn scan(toks: &[Tok<'_>], rules: RuleSet) -> Vec<RawFinding> {
    let code: Vec<Tok<'_>> = toks
        .iter()
        .copied()
        .filter(|t| matches!(t.kind, TokKind::Ident | TokKind::Lit | TokKind::Punct))
        .collect();
    let comments: Vec<Tok<'_>> = toks
        .iter()
        .copied()
        .filter(|t| t.kind == TokKind::Comment)
        .collect();
    let cutoff = cfg_test_line(&code);
    let code: Vec<Tok<'_>> = code.into_iter().filter(|t| t.line < cutoff).collect();

    let mut out = Vec::new();
    per_line_rules(&code, rules, &mut out);
    if rules.determinism {
        hash_iter(&code, &mut out);
        path_rules(&code, &mut out);
    }
    out.retain(|f| !allowed(&comments, f.line, f.rule));
    out.sort_by_key(|f| (f.line, f.col));
    out.dedup_by(|a, b| (a.line, a.col, a.rule) == (b.line, b.col, b.rule));
    out
}

/// Line of the file's first `#[cfg(test)]` attribute, or `usize::MAX`.
fn cfg_test_line(code: &[Tok<'_>]) -> usize {
    code.windows(7)
        .find(|w| {
            w[0].is_punct("#")
                && w[1].is_punct("[")
                && w[2].is_ident("cfg")
                && w[3].is_punct("(")
                && w[4].is_ident("test")
                && w[5].is_punct(")")
                && w[6].is_punct("]")
        })
        .map_or(usize::MAX, |w| w[0].line)
}

/// Whether a `lint: allow(<rule>)` comment covers `line` (the line
/// itself or the two above — the legacy suppression window).
fn allowed(comments: &[Tok<'_>], line: usize, rule: &str) -> bool {
    let lo = line.saturating_sub(2);
    comments
        .iter()
        .filter(|c| (lo..=line).contains(&c.line))
        .any(|c| {
            c.text.find("lint: allow(").is_some_and(|start| {
                let rest = &c.text[start + "lint: allow(".len()..];
                rest.split(')').next() == Some(rule)
            })
        })
}

/// `.name(` at `i` — method-call pattern.
fn dot_call(toks: &[Tok<'_>], i: usize, name: &str) -> bool {
    toks[i].is_punct(".")
        && toks.get(i + 1).is_some_and(|t| t.is_ident(name))
        && toks.get(i + 2).is_some_and(|t| t.is_punct("("))
}

fn per_line_rules(code: &[Tok<'_>], rules: RuleSet, out: &mut Vec<RawFinding>) {
    let mut start = 0usize;
    while start < code.len() {
        let line = code[start].line;
        let mut end = start;
        while end < code.len() && code[end].line == line {
            end += 1;
        }
        line_rules(&code[start..end], rules, out);
        start = end;
    }
}

/// The legacy per-line rules, evaluated over one line's code tokens.
fn line_rules(l: &[Tok<'_>], rules: RuleSet, out: &mut Vec<RawFinding>) {
    let mut push = |t: &Tok<'_>, rule: &'static str, message: String| {
        out.push(RawFinding {
            line: t.line,
            col: t.col,
            rule,
            message,
        });
    };
    if rules.ts_arith {
        if let Some(t) = ts_arith(l) {
            push(
                t,
                "raw-ts-arith",
                "logical-timestamp arithmetic belongs in gtsc_core::rules, where each \
                 rule cites its figure and carries property tests"
                    .into(),
            );
        }
    }
    if rules.no_panic {
        for i in 0..l.len() {
            if dot_call(l, i, "unwrap") && l.get(i + 3).is_some_and(|t| t.is_punct(")")) {
                push(
                    &l[i + 1],
                    "unwrap",
                    "protocol and simulator crates surface errors through results or \
                     documented invariants, not ad-hoc panics"
                        .into(),
                );
            }
            if l[i].is_ident("panic")
                && l.get(i + 1).is_some_and(|t| t.is_punct("!"))
                && l.get(i + 2).is_some_and(|t| t.is_punct("("))
            {
                push(
                    &l[i],
                    "panic",
                    "protocol and simulator crates surface errors through results or \
                     documented invariants, not ad-hoc panics"
                        .into(),
                );
            }
        }
    }
    if rules.noc_inject {
        let queues = l
            .windows(2)
            .any(|w| w[0].is_ident("queues") && w[1].is_punct("["));
        let push_call = l.iter().enumerate().find(|(i, t)| {
            t.is_punct(".")
                && l.get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident && n.text.starts_with("push"))
        });
        if queues {
            if let Some((i, _)) = push_call {
                push(
                    &l[i + 1],
                    "noc-inject",
                    "direct pushes onto NoC injection queues bypass the reliable-transport \
                     layer's sequencing; route through Network::send"
                        .into(),
                );
            }
        }
    }
    if rules.raw_network {
        for (i, t) in l.iter().enumerate() {
            let after = |p| l.get(i + 1).is_some_and(|n: &Tok<'_>| n.is_punct(p));
            let before_path = i > 0 && l[i - 1].is_punct("::");
            if t.is_ident("Network") && (after("<") || after("::") || before_path) {
                push(
                    t,
                    "raw-network",
                    "the simulator must talk to the interconnect through ReliableNet, \
                     never the raw lossy Network"
                        .into(),
                );
            }
        }
    }
}

/// The legacy timestamp-arithmetic heuristic over one line's tokens:
/// `.succ()`, `+ lease`/`+ Lease…`, or a timestamp word combined with
/// `.max(` or a literal `+ 1`. Returns the anchoring token.
fn ts_arith<'t, 'a>(l: &'t [Tok<'a>]) -> Option<&'t Tok<'a>> {
    for i in 0..l.len() {
        if dot_call(l, i, "succ") && l.get(i + 3).is_some_and(|t| t.is_punct(")")) {
            return Some(&l[i + 1]);
        }
        if l[i].is_punct("+")
            && l.get(i + 1).is_some_and(|t| {
                t.kind == TokKind::Ident
                    && (t.text.starts_with("lease") || t.text.starts_with("Lease"))
            })
        {
            return Some(&l[i]);
        }
    }
    let mentions_ts = l
        .iter()
        .any(|t| t.kind == TokKind::Ident && TS_WORDS.iter().any(|w| t.text.contains(w)));
    if !mentions_ts {
        return None;
    }
    for i in 0..l.len() {
        if dot_call(l, i, "max") {
            return Some(&l[i + 1]);
        }
        if l[i].is_punct("+")
            && l.get(i + 1)
                .is_some_and(|t| t.kind == TokKind::Lit && t.text == "1")
        {
            return Some(&l[i]);
        }
    }
    None
}

/// Path-shaped determinism rules: wall-clock time, ambient entropy, and
/// thread identity are all nondeterminism sources the simulator crates
/// must not touch (sim time is `Cycle`; randomness comes from seeded
/// generators threaded through configs).
fn path_rules(code: &[Tok<'_>], out: &mut Vec<RawFinding>) {
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |p: &str| code.get(i + 1).is_some_and(|n| n.is_punct(p));
        let path_next =
            |name: &str| next_is("::") && code.get(i + 2).is_some_and(|n| n.is_ident(name));
        let (rule, message): (&'static str, &str) = if (t.is_ident("std") && path_next("time"))
            || ((t.is_ident("Instant") || t.is_ident("SystemTime")) && next_is("::"))
        {
            (
                "std-time",
                "wall-clock time in simulator code; sim time is Cycle",
            )
        } else if t.is_ident("thread_rng")
            || t.is_ident("from_entropy")
            || t.is_ident("OsRng")
            || (t.is_ident("rand") && path_next("random"))
        {
            (
                "unseeded-rng",
                "ambient entropy breaks replay; use a seeded generator threaded through the config",
            )
        } else if t.is_ident("thread") && path_next("current") {
            (
                "thread-id",
                "thread identity varies across runs; results must not depend on it",
            )
        } else {
            continue;
        };
        out.push(RawFinding {
            line: t.line,
            col: t.col,
            rule,
            message: message.into(),
        });
    }
}

/// Flags iteration over `HashMap`/`HashSet` bindings: their order is
/// randomized per process, so any result-affecting walk makes runs
/// irreproducible. Bindings are collected from type ascriptions and
/// initializers (`name: HashMap<..>`, `let name = HashMap::new()`),
/// then every `recv.iter()`-family call and `for … in` expression is
/// checked against that set.
fn hash_iter(code: &[Tok<'_>], out: &mut Vec<RawFinding>) {
    let mut bindings: Vec<&str> = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over the `path::to::` prefix, if any.
        let mut k = i;
        while k >= 2 && code[k - 1].is_punct("::") && code[k - 2].kind == TokKind::Ident {
            k -= 2;
        }
        if k < 2 {
            continue;
        }
        // `name: HashMap<..>` (field, let, or param) or `name = HashMap::new()`.
        if (code[k - 1].is_punct(":") || code[k - 1].is_punct("="))
            && code[k - 2].kind == TokKind::Ident
        {
            bindings.push(code[k - 2].text);
        }
    }
    if bindings.is_empty() {
        return;
    }
    let is_bound = |t: &Tok<'_>| t.kind == TokKind::Ident && bindings.contains(&t.text);
    let mut flag = |t: &Tok<'_>, recv: &str| {
        out.push(RawFinding {
            line: t.line,
            col: t.col,
            rule: "hash-iter",
            message: format!(
                "iteration order of the hash-keyed `{recv}` is randomized per process; \
                 sort first or key the state with a BTree collection"
            ),
        });
    };
    for (i, t) in code.iter().enumerate() {
        // recv.iter() — the receiver must be a bound name, not a call result.
        if t.is_punct(".")
            && code
                .get(i + 1)
                .is_some_and(|m| m.kind == TokKind::Ident && ITER_METHODS.contains(&m.text))
            && code.get(i + 2).is_some_and(|p| p.is_punct("("))
            && i > 0
            && is_bound(&code[i - 1])
        {
            flag(&code[i + 1], code[i - 1].text);
        }
        // for pat in <expr containing a bound name> { … }
        if t.is_ident("for") {
            let stop = |x: &Tok<'_>| x.is_punct("{") || x.is_punct(";");
            let Some(j) = (i + 1..code.len().min(i + 33))
                .take_while(|&j| !stop(&code[j]))
                .find(|&j| code[j].is_ident("in"))
            else {
                continue;
            };
            if let Some(b) = (j + 1..code.len().min(j + 33))
                .take_while(|&j| !stop(&code[j]))
                .find(|&j| is_bound(&code[j]))
            {
                // `for x in map.keys()` is already flagged above; only
                // flag direct walks (`for x in &map`).
                let called = code
                    .get(b + 1)
                    .is_some_and(|n| n.is_punct(".") || n.is_punct("::"));
                if !called {
                    flag(&code[b], code[b].text);
                }
            }
        }
    }
}
