//! A small, dependency-free Rust lexer.
//!
//! The vendored dependency set has no `syn`, so the lint engine carries
//! its own tokenizer: enough of the Rust lexical grammar to classify
//! every byte of a source file as code, comment, or literal, with an
//! accurate line/column span on each token. That classification is what
//! separates this engine from the legacy line-regex linter — a banned
//! pattern inside a string literal, doc comment, or `/* ... */` block
//! can no longer fire, and every diagnostic can point at the exact
//! token rather than a whole line.
//!
//! Covered: line and (nested) block comments, string / raw-string /
//! byte-string / char literals, lifetimes, numbers (including float
//! and underscore forms), identifiers, and punctuation. `::` is fused
//! into a single token because the rule layer leans on it to walk type
//! paths; all other punctuation is one token per character.
//!
//! The lexer never fails: an unterminated literal or comment simply
//! extends to the end of the file, which is the most useful behaviour
//! for a linter that runs on code `rustc` may still be rejecting.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Any literal: string, raw string, byte string, char, or number.
    Lit,
    /// A lifetime such as `'a` (kept distinct so the char-literal
    /// heuristics can't confuse the rule layer).
    Lifetime,
    /// Punctuation. One character per token, except `::` which is fused.
    Punct,
    /// A `//` line comment or `/* */` block comment, text included —
    /// the rule layer reads `lint: allow(...)` suppressions out of
    /// these.
    Comment,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok<'a> {
    /// What the token is.
    pub kind: TokKind,
    /// The exact source text of the token.
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based byte column of the token's first character.
    pub col: usize,
}

impl<'a> Tok<'a> {
    /// Whether this is punctuation with exactly this text.
    #[must_use]
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// Whether this is an identifier with exactly this text.
    #[must_use]
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokKind::Ident && self.text == id
    }
}

struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line/column. Multi-byte UTF-8
    /// continuation bytes do not advance the column, so columns count
    /// characters on ASCII-heavy source and stay monotone elsewhere.
    fn bump(&mut self) {
        let b = self.bytes[self.pos];
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            self.col += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos < self.bytes.len() {
                self.bump();
            }
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`. Whitespace is dropped; comments are kept.
#[must_use]
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let mut c = Cursor {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = c.peek(0) {
        if b.is_ascii_whitespace() {
            c.bump();
            continue;
        }
        let (start, line, col) = (c.pos, c.line, c.col);
        let kind = scan_token(&mut c, b);
        out.push(Tok {
            kind,
            text: &c.src[start..c.pos],
            line,
            col,
        });
    }
    out
}

/// Scans one token starting at byte `b`; advances the cursor past it.
fn scan_token(c: &mut Cursor<'_>, b: u8) -> TokKind {
    match b {
        b'/' if c.peek(1) == Some(b'/') => {
            while c.peek(0).is_some_and(|b| b != b'\n') {
                c.bump();
            }
            TokKind::Comment
        }
        b'/' if c.peek(1) == Some(b'*') => {
            c.bump_n(2);
            let mut depth = 1usize;
            while depth > 0 && c.peek(0).is_some() {
                if c.peek(0) == Some(b'/') && c.peek(1) == Some(b'*') {
                    depth += 1;
                    c.bump_n(2);
                } else if c.peek(0) == Some(b'*') && c.peek(1) == Some(b'/') {
                    depth -= 1;
                    c.bump_n(2);
                } else {
                    c.bump();
                }
            }
            TokKind::Comment
        }
        b'"' => {
            scan_string(c);
            TokKind::Lit
        }
        b'r' | b'b' if raw_prefix_len(c).is_some() => {
            let skip = raw_prefix_len(c).unwrap_or(0);
            c.bump_n(skip);
            match c.peek(0) {
                Some(b'"') => scan_string(c),
                Some(b'r') | Some(b'#') => scan_raw_string(c),
                Some(b'\'') => scan_char(c),
                _ => {}
            }
            TokKind::Lit
        }
        b'\'' => scan_char_or_lifetime(c),
        _ if b.is_ascii_digit() => {
            scan_number(c);
            TokKind::Lit
        }
        _ if is_ident_start(b) => {
            while c.peek(0).is_some_and(is_ident_continue) {
                c.bump();
            }
            TokKind::Ident
        }
        b':' if c.peek(1) == Some(b':') => {
            c.bump_n(2);
            TokKind::Punct
        }
        _ => {
            c.bump();
            TokKind::Punct
        }
    }
}

/// If the cursor sits on a literal prefix (`r`, `b`, `br`) that opens a
/// raw/byte string or byte char, returns how many prefix bytes to skip
/// before the quote machinery takes over (`r` itself is left for
/// [`scan_raw_string`] when hashes follow).
fn raw_prefix_len(c: &Cursor<'_>) -> Option<usize> {
    let b0 = c.peek(0)?;
    match (b0, c.peek(1)) {
        // r"..." or r#"..."# — leave `r` in place for scan_raw_string.
        (b'r', Some(b'"' | b'#')) => Some(0),
        // b"..." or b'x'
        (b'b', Some(b'"' | b'\'')) => Some(1),
        // br"..." or br#"..."#
        (b'b', Some(b'r')) if matches!(c.peek(2), Some(b'"' | b'#')) => Some(1),
        _ => None,
    }
}

/// Scans a `"..."` string (cursor on the opening quote).
fn scan_string(c: &mut Cursor<'_>) {
    c.bump();
    while let Some(b) = c.peek(0) {
        match b {
            b'\\' => c.bump_n(2),
            b'"' => {
                c.bump();
                return;
            }
            _ => c.bump(),
        }
    }
}

/// Scans `r"..."` / `r#"..."#` (cursor on the `r`).
fn scan_raw_string(c: &mut Cursor<'_>) {
    c.bump(); // r
    let mut hashes = 0usize;
    while c.peek(0) == Some(b'#') {
        hashes += 1;
        c.bump();
    }
    if c.peek(0) != Some(b'"') {
        return;
    }
    c.bump();
    while c.peek(0).is_some() {
        if c.peek(0) == Some(b'"') {
            let closed = (1..=hashes).all(|i| c.peek(i) == Some(b'#'));
            c.bump();
            if closed {
                c.bump_n(hashes);
                return;
            }
        } else {
            c.bump();
        }
    }
}

/// Scans a `'x'` char literal (cursor on the quote, prefix consumed).
fn scan_char(c: &mut Cursor<'_>) {
    c.bump();
    while let Some(b) = c.peek(0) {
        match b {
            b'\\' => c.bump_n(2),
            b'\'' => {
                c.bump();
                return;
            }
            _ => c.bump(),
        }
    }
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime). The char
/// after the quote may be multi-byte, so the closing-quote probe walks
/// one full UTF-8 character.
fn scan_char_or_lifetime(c: &mut Cursor<'_>) -> TokKind {
    let rest = &c.src[c.pos + 1..];
    let mut chars = rest.chars();
    match chars.next() {
        // Escape: always a char literal.
        Some('\\') => {
            scan_char(c);
            TokKind::Lit
        }
        Some(ch) if chars.next() == Some('\'') => {
            // 'x' — one character then a closing quote.
            c.bump(); // opening '
            c.bump_n(ch.len_utf8());
            c.bump(); // closing '
            TokKind::Lit
        }
        _ => {
            // Lifetime: 'ident (no closing quote).
            c.bump();
            while c.peek(0).is_some_and(is_ident_continue) {
                c.bump();
            }
            TokKind::Lifetime
        }
    }
}

/// Scans a number. A `.` is consumed only when a digit follows, so
/// ranges (`0..n`) and method calls (`1.max(x)`) end the token.
fn scan_number(c: &mut Cursor<'_>) {
    while let Some(b) = c.peek(0) {
        let fraction_dot = b == b'.' && c.peek(1).is_some_and(|d| d.is_ascii_digit());
        if !is_ident_continue(b) && !fraction_dot {
            break;
        }
        c.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn code_comments_and_strings_are_separated() {
        let toks = kinds("let x = \"panic!( inside\"; // panic!( trailing");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let"),
                (TokKind::Ident, "x"),
                (TokKind::Punct, "="),
                (TokKind::Lit, "\"panic!( inside\""),
                (TokKind::Punct, ";"),
                (TokKind::Comment, "// panic!( trailing"),
            ]
        );
    }

    #[test]
    fn path_separator_is_one_token() {
        let toks = kinds("std::time::Instant");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "std"),
                (TokKind::Punct, "::"),
                (TokKind::Ident, "time"),
                (TokKind::Punct, "::"),
                (TokKind::Ident, "Instant"),
            ]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }");
        assert!(toks.contains(&(TokKind::Lifetime, "'a")));
        assert!(toks.contains(&(TokKind::Lit, "'x'")));
        assert!(toks.contains(&(TokKind::Lit, "'\\n'")));
    }

    #[test]
    fn raw_and_byte_strings_swallow_their_contents() {
        let toks = kinds(r##"let s = r#"has "quotes" and .unwrap()"#; done"##);
        assert_eq!(
            toks.last(),
            Some(&(TokKind::Ident, "done")),
            "raw string must not leak: {toks:?}"
        );
        assert!(!toks.iter().any(|(_, t)| *t == "unwrap"));
        let toks = kinds("let b = b\"bytes .iter()\"; end");
        assert!(!toks.iter().any(|(_, t)| *t == "iter"), "{toks:?}");
        assert_eq!(toks.last(), Some(&(TokKind::Ident, "end")));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(toks.first(), Some(&(TokKind::Ident, "a")));
        assert_eq!(toks.last(), Some(&(TokKind::Ident, "b")));
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn numbers_stop_before_ranges_and_method_calls() {
        let toks = kinds("0..10 1.5 1.max(2)");
        assert_eq!(toks[0], (TokKind::Lit, "0"));
        assert_eq!(toks[1], (TokKind::Punct, "."));
        assert_eq!(toks[2], (TokKind::Punct, "."));
        assert_eq!(toks[3], (TokKind::Lit, "10"));
        assert_eq!(toks[4], (TokKind::Lit, "1.5"));
        assert_eq!(toks[5], (TokKind::Lit, "1"));
        assert_eq!(toks[6], (TokKind::Punct, "."));
        assert_eq!(toks[7], (TokKind::Ident, "max"));
    }

    #[test]
    fn spans_are_one_based_and_accurate() {
        let toks = lex("ab cd\n  ef");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (1, 4));
        assert_eq!((toks[2].line, toks[2].col), (2, 3));
    }
}
