//! Token-level source lints for the G-TSC workspace.
//!
//! This crate replaces the legacy line-regex linter
//! (`gtsc_check::srclint`) with a real lexer: every file is tokenized
//! (see [`lexer`]), so rules match code tokens — never the inside of a
//! string literal, doc comment, or `/* */` block — and every diagnostic
//! carries an exact line *and column*. The legacy engine stays behind
//! the `src_lint --legacy` flag as a fallback during the migration.
//!
//! # Rules
//!
//! Review-invariant rules, ported 1:1 from the legacy engine (same
//! directory whitelists, same semantics, same output lines):
//!
//! * `raw-ts-arith` — logical-timestamp arithmetic (`.succ()`,
//!   `+ lease`, `max` over `wts`/`rts`/`warp_ts`/`mem_ts`) outside
//!   `gtsc_core::rules`. Scanned: `crates/core/src` minus `rules.rs`.
//! * `unwrap` / `panic` — ad-hoc panics in the protocol, simulator,
//!   NoC, inter-GPU fabric, sweep, and types crates.
//! * `noc-inject` — direct pushes onto NoC injection queues inside
//!   `crates/noc/src`, bypassing reliable-transport sequencing.
//! * `raw-network` — the raw lossy `Network` type inside
//!   `crates/sim/src` (the simulator must use `ReliableNet`).
//!
//! Determinism rules, new with this engine, scanned over every
//! simulation-state crate (`crates/{core,sim,noc,fabric,mem,gpu}/src`) —
//! each bans a nondeterminism source that would break bit-identical
//! replay, the property the model checker, snapshot/restore, and the
//! race oracle all stand on:
//!
//! * `hash-iter` — iterating a `HashMap`/`HashSet` binding (their
//!   order is randomized per process). Sort first, or key the state
//!   with a BTree collection.
//! * `std-time` — `std::time` / `Instant` / `SystemTime`: sim time is
//!   `Cycle`, never the wall clock.
//! * `unseeded-rng` — `thread_rng` / `from_entropy` / `OsRng` /
//!   `rand::random`: all randomness flows from seeds in configs.
//! * `thread-id` — `thread::current`: results must not depend on
//!   thread identity.
//!
//! Suppression and test handling match the legacy engine so existing
//! annotations keep working: a `// lint: allow(<rule>)` comment on the
//! offending line or one of the two lines above it, and scanning stops
//! at the file's first `#[cfg(test)]` marker.

pub mod lexer;
mod rules;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which rule families a scan pass applies (directory whitelists give
/// each family its own pass, so findings stay attributable).
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleSet {
    /// `raw-ts-arith`.
    pub ts_arith: bool,
    /// `unwrap` and `panic`.
    pub no_panic: bool,
    /// `noc-inject`.
    pub noc_inject: bool,
    /// `raw-network`.
    pub raw_network: bool,
    /// `hash-iter`, `std-time`, `unseeded-rng`, `thread-id`.
    pub determinism: bool,
}

impl RuleSet {
    /// Every rule family at once (fixture tests; single-file scans).
    #[must_use]
    pub fn all() -> Self {
        Self {
            ts_arith: true,
            no_panic: true,
            noc_inject: true,
            raw_network: true,
            determinism: true,
        }
    }
}

/// One lint finding with an exact source span.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// File containing the offending token.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// 1-based column of the offending token (new over the legacy
    /// engine, which could only name a line).
    pub col: usize,
    /// Rule name.
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Why the rule exists / what to do instead.
    pub message: String,
}

impl Diagnostic {
    /// The span-accurate long form:
    /// `file:line:col: [rule] message` plus the snippet.
    #[must_use]
    pub fn spanned(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}\n    {}",
            self.file.display(),
            self.line,
            self.col,
            self.rule,
            self.message,
            self.snippet
        )
    }
}

/// Renders in the legacy `src_lint` output format
/// (`file:line: [rule] snippet`) so the CI contract is unchanged by
/// the engine migration.
impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.snippet
        )
    }
}

/// Directory whitelists, relative to the repo root. The first four
/// mirror the legacy engine exactly; the determinism list covers every
/// crate that holds simulation state.
const TS_ARITH_DIRS: &[&str] = &["crates/core/src"];
const TS_ARITH_ALLOWED_FILES: &[&str] = &["rules.rs"];
const NO_PANIC_DIRS: &[&str] = &[
    "crates/core/src",
    "crates/sim/src",
    "crates/noc/src",
    "crates/fabric/src",
    "crates/sweep/src",
    "crates/types/src",
];
const NOC_INJECT_DIRS: &[&str] = &["crates/noc/src"];
const RAW_NETWORK_DIRS: &[&str] = &["crates/sim/src"];
const DETERMINISM_DIRS: &[&str] = &[
    "crates/core/src",
    "crates/sim/src",
    "crates/noc/src",
    "crates/fabric/src",
    "crates/mem/src",
    "crates/gpu/src",
];

/// Lints one file's text under the given rules. `path` is only
/// recorded into the diagnostics, not read.
#[must_use]
pub fn lint_text(path: &Path, text: &str, rules: RuleSet) -> Vec<Diagnostic> {
    let toks = lexer::lex(text);
    let lines: Vec<&str> = text.lines().collect();
    rules::scan(&toks, rules)
        .into_iter()
        .map(|f| Diagnostic {
            file: path.to_path_buf(),
            line: f.line,
            col: f.col,
            rule: f.rule,
            snippet: lines.get(f.line - 1).map_or("", |l| l.trim()).to_string(),
            message: f.message,
        })
        .collect()
}

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the workspace rooted at `root` with every directory pass.
/// Findings are sorted by file, then line, then column.
///
/// # Errors
///
/// Propagates directory-walk failures; a whitelisted directory that
/// does not exist is an error (the whitelists must track the layout).
pub fn lint_tree(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let passes: &[(&[&str], RuleSet)] = &[
        (
            TS_ARITH_DIRS,
            RuleSet {
                ts_arith: true,
                ..RuleSet::default()
            },
        ),
        (
            NO_PANIC_DIRS,
            RuleSet {
                no_panic: true,
                ..RuleSet::default()
            },
        ),
        (
            NOC_INJECT_DIRS,
            RuleSet {
                noc_inject: true,
                ..RuleSet::default()
            },
        ),
        (
            RAW_NETWORK_DIRS,
            RuleSet {
                raw_network: true,
                ..RuleSet::default()
            },
        ),
        (
            DETERMINISM_DIRS,
            RuleSet {
                determinism: true,
                ..RuleSet::default()
            },
        ),
    ];
    let mut findings = Vec::new();
    for (dirs, rules) in passes {
        for dir in *dirs {
            let mut files = Vec::new();
            rs_files(&root.join(dir), &mut files)?;
            files.sort();
            for f in files {
                if rules.ts_arith
                    && TS_ARITH_ALLOWED_FILES
                        .iter()
                        .any(|a| f.file_name().is_some_and(|n| n == *a))
                {
                    continue;
                }
                let Ok(text) = fs::read_to_string(&f) else {
                    continue;
                };
                findings.extend(lint_text(&f, &text, *rules));
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(text: &str) -> Vec<Diagnostic> {
        lint_text(Path::new("x.rs"), text, RuleSet::all())
    }

    fn rules_of(text: &str) -> Vec<&'static str> {
        diags(text).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn string_and_comment_contents_never_fire() {
        assert!(diags("let s = \"call .unwrap() and panic!(now)\";").is_empty());
        assert!(diags("// panic!(\"doc example\") and x.unwrap()").is_empty());
        assert!(diags("/* wts = wts.max(rts) + 1 */ let ok = 0;").is_empty());
    }

    #[test]
    fn spans_point_at_the_offending_token() {
        let d = diags("let v = opt.unwrap();");
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].rule, d[0].line, d[0].col), ("unwrap", 1, 13));
        assert_eq!(d[0].snippet, "let v = opt.unwrap();");
        assert_eq!(d[0].to_string(), "x.rs:1: [unwrap] let v = opt.unwrap();");
        assert!(d[0].spanned().starts_with("x.rs:1:13: [unwrap]"));
    }

    #[test]
    fn cfg_test_marker_stops_the_scan() {
        let text = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
        assert!(diags(text).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_on_line_or_two_above() {
        assert!(diags("x.unwrap(); // lint: allow(unwrap): checked above").is_empty());
        assert!(
            diags("// lint: allow(panic): documented invariant\n\npanic!(\"boom\");").is_empty()
        );
        // Three lines above is out of the window; wrong rule never matches.
        assert_eq!(
            rules_of("// lint: allow(panic)\n\n\npanic!(\"boom\");"),
            vec!["panic"]
        );
        assert_eq!(
            rules_of("x.unwrap(); // lint: allow(panic)"),
            vec!["unwrap"]
        );
    }

    #[test]
    fn multiline_chains_are_caught_where_line_rules_are_not() {
        // The determinism rules walk the token stream, so a wrapped
        // method chain still resolves its receiver.
        let text =
            "struct S { m: HashMap<u32, u32> }\nfn f(s: &S) { s.m\n    .keys()\n    .count(); }\n";
        let d = diags(text);
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].rule, d[0].line), ("hash-iter", 3));
    }
}
