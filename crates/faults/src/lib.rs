//! Seeded, deterministic fault injection for the G-TSC simulator.
//!
//! A coherence protocol's correctness argument must hold under *any*
//! message timing — G-TSC inherits Tardis's proof obligation that leases
//! and timestamps order accesses regardless of physical delays. This
//! crate turns that obligation into an executable test surface: a
//! [`FaultPlan`] derived from a [`FaultConfig`](gtsc_types::FaultConfig)
//! hands each perturbable component (NoC direction, DRAM partition, L2
//! bank) its own [`NocFaults`] / [`DramFaults`] / [`BankFaults`]
//! injector. The classic NoC faults *delay*, *reorder within a bounded
//! window*, or *duplicate* — eventual delivery is preserved, so a
//! correct protocol must stay violation-free under every seed on the
//! raw NoC. The *loss* faults go further: packets may be **dropped** or
//! their payload **corrupted**, and a whole L2 bank may **crash**
//! (losing its tag array and transport state). Those are only
//! survivable with the reliable-transport layer in `gtsc-noc`, which
//! the simulator enables automatically whenever a loss fault is
//! configured.
//!
//! Determinism is the load-bearing property: every decision comes from a
//! [`SplitMix64`] stream seeded from the plan's master seed and the
//! component's index, and the simulator consults injectors in a fixed
//! order. Replaying a failing seed reproduces the run byte-for-byte.
//!
//! # Examples
//!
//! ```
//! use gtsc_faults::FaultPlan;
//! use gtsc_types::FaultConfig;
//!
//! let plan = FaultPlan::new(FaultConfig::chaos(42));
//! let mut a = plan.noc(0).expect("chaos enables NoC faults");
//! let mut b = plan.noc(0).expect("same stream again");
//! for _ in 0..100 {
//!     assert_eq!(a.perturb(), b.perturb()); // bitwise-identical streams
//! }
//! assert!(plan.noc(1).is_some());
//! assert_eq!(plan.effective_ts_bits(16), 8); // chaos caps ts_bits at 8
//! ```

use gtsc_types::FaultConfig;

/// SplitMix64: a tiny, statistically solid, trivially seedable generator.
/// Chosen over a `rand` dependency so fault streams are stable across
/// toolchains and the crate stays dependency-light.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream fully determined by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `0` when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }

    /// `true` with probability `permille / 1000`.
    pub fn chance(&mut self, permille: u16) -> bool {
        self.below(1000) < u64::from(permille.min(1000))
    }
}

/// Counters an injector accumulates, for post-run diagnostics and the
/// `stress_faults` soak summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets/requests that received latency jitter.
    pub jittered: u64,
    /// Packets held back a reorder window.
    pub reordered: u64,
    /// Packets delivered twice.
    pub duplicated: u64,
    /// Packets dropped at injection (loss fault).
    pub dropped: u64,
    /// Packets whose payload was corrupted in flight (loss fault).
    pub corrupted: u64,
    /// L2-bank crash/recovery events fired.
    pub bank_resets: u64,
    /// Total extra cycles injected across all perturbations.
    pub extra_cycles: u64,
}

impl FaultStats {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &FaultStats) {
        self.jittered += other.jittered;
        self.reordered += other.reordered;
        self.duplicated += other.duplicated;
        self.dropped += other.dropped;
        self.corrupted += other.corrupted;
        self.bank_resets += other.bank_resets;
        self.extra_cycles += other.extra_cycles;
    }
}

/// The fate the injector assigns one NoC packet at injection time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketFate {
    /// Extra cycles added to the packet's wire latency.
    pub extra_delay: u64,
    /// When `Some(lag)`, deliver a second copy `lag` cycles after the
    /// (already delayed) original.
    pub duplicate: Option<u64>,
    /// The packet vanishes at injection (loss fault; overrides the
    /// other fields — nothing is delivered, not even a duplicate).
    pub dropped: bool,
    /// The payload arrives unusable; the header survives, so the
    /// receiver still learns `(src, dst)` and can NACK the flow.
    pub corrupted: bool,
}

/// Per-network fault injector (jitter, bounded reorder, duplication).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocFaults {
    cfg: FaultConfig,
    rng: SplitMix64,
    stats: FaultStats,
}

impl NocFaults {
    /// Decides the fate of the next injected packet. Consumes a fixed
    /// number of RNG draws per call so streams stay aligned across runs.
    pub fn perturb(&mut self) -> PacketFate {
        let mut extra = 0u64;
        if self.rng.chance(self.cfg.noc_jitter_permille) && self.cfg.noc_jitter_max > 0 {
            let j = 1 + self.rng.below(self.cfg.noc_jitter_max);
            extra += j;
            self.stats.jittered += 1;
        } else {
            let _ = self.rng.next_u64(); // keep draw count constant
        }
        if self.rng.chance(self.cfg.noc_reorder_permille) {
            extra += self.cfg.noc_reorder_window;
            self.stats.reordered += 1;
        }
        let duplicate = if self.rng.chance(self.cfg.noc_duplicate_permille) {
            self.stats.duplicated += 1;
            Some(self.cfg.noc_duplicate_lag)
        } else {
            None
        };
        // Loss-fault draws are appended after the classic ones so the
        // classic sub-streams keep their alignment; both draws happen
        // unconditionally to keep the per-call draw count fixed.
        let dropped = self.rng.chance(self.cfg.noc_drop_permille);
        let corrupted = self.rng.chance(self.cfg.noc_corrupt_permille) && !dropped;
        if dropped {
            self.stats.dropped += 1;
        } else if corrupted {
            self.stats.corrupted += 1;
        }
        self.stats.extra_cycles += extra + duplicate.unwrap_or(0);
        PacketFate {
            extra_delay: extra,
            duplicate,
            dropped,
            corrupted,
        }
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

/// Per-partition DRAM fault injector (variable service latency).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramFaults {
    cfg: FaultConfig,
    rng: SplitMix64,
    stats: FaultStats,
}

impl DramFaults {
    /// Extra service cycles for the next issued DRAM request.
    pub fn extra_latency(&mut self) -> u64 {
        let extra =
            if self.rng.chance(self.cfg.dram_jitter_permille) && self.cfg.dram_jitter_max > 0 {
                let j = 1 + self.rng.below(self.cfg.dram_jitter_max);
                self.stats.jittered += 1;
                j
            } else {
                let _ = self.rng.next_u64();
                0
            };
        self.stats.extra_cycles += extra;
        extra
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

/// Per-L2-bank crash scheduler: `l2_crash_count` crash cycles drawn
/// uniformly in `[1, l2_crash_window]` from the bank's stream, sorted,
/// and popped as simulated time passes them. Crashes are distributed
/// round-robin across banks so a multi-bank config sees every bank
/// exercised before any bank crashes twice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankFaults {
    /// Pending crash cycles, ascending.
    schedule: Vec<u64>,
    stats: FaultStats,
}

impl BankFaults {
    /// Whether a crash is due at or before `now`; consumes the event.
    /// At most one event fires per call (back-to-back crashes surface
    /// on consecutive calls).
    pub fn due(&mut self, now: u64) -> bool {
        if self.schedule.first().is_some_and(|&c| c <= now) {
            self.schedule.remove(0);
            self.stats.bank_resets += 1;
            return true;
        }
        false
    }

    /// Crash events not yet fired.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.schedule.len()
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

/// Scheduled link-down windows for one inter-GPU fabric link: during
/// `[starts[i], ends[i])` every packet injected on the link vanishes at
/// the wire, modelling a fabric partition. The schedule is pure data —
/// [`LinkFaults::down`] does not mutate, so the same injector can be
/// consulted for the data and control directions of a flow without
/// draw-count coupling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkFaults {
    /// Window start cycles (parallel to `ends`), ascending.
    starts: Vec<u64>,
    /// Window end cycles (exclusive), parallel to `starts`.
    ends: Vec<u64>,
}

impl LinkFaults {
    /// Builds a schedule from explicit `(start, end)` windows (tests
    /// and hand-crafted scenarios; seeded runs draw their windows via
    /// [`FaultPlan::link_down`]).
    #[must_use]
    pub fn from_windows(windows: &[(u64, u64)]) -> Self {
        LinkFaults {
            starts: windows.iter().map(|&(s, _)| s).collect(),
            ends: windows.iter().map(|&(_, e)| e).collect(),
        }
    }

    /// Whether the link is inside a scheduled down window at `now`.
    #[must_use]
    pub fn down(&self, now: u64) -> bool {
        self.starts
            .iter()
            .zip(&self.ends)
            .any(|(&s, &e)| s <= now && now < e)
    }

    /// Number of scheduled windows.
    #[must_use]
    pub fn windows(&self) -> usize {
        self.starts.len()
    }

    /// The last cycle at which any window is still down, or `None` when
    /// nothing is scheduled. Lets callers size timeouts past the longest
    /// outage.
    #[must_use]
    pub fn last_end(&self) -> Option<u64> {
        self.ends.iter().copied().max()
    }
}

/// Factory deriving independent, reproducible injector streams from one
/// master seed. Stream indices are caller-chosen (the simulator uses
/// `noc(0)`/`noc(1)` for request/response data, `noc(2)`/`noc(3)` for
/// the matching transport control channels, `dram(i)` per partition,
/// and `bank(i)` per L2 bank; the multi-GPU layer uses `fabric(i)` per
/// fabric direction, `link_down(i)` per device link, and
/// `device_crashes(i, …)` per device) so adding components never shifts
/// existing streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Wraps `cfg` (which may be inert — see [`FaultPlan::is_active`]).
    #[must_use]
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan { cfg }
    }

    /// Whether any injector will perturb anything.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.cfg.is_active()
    }

    /// The plan's configuration.
    #[must_use]
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    fn stream_seed(&self, domain: u64, index: u64) -> u64 {
        // Decorrelate streams by running the (seed, domain, index) triple
        // through one SplitMix64 step each.
        let mut s = SplitMix64::new(self.cfg.seed ^ domain.rotate_left(17));
        let a = s.next_u64();
        let mut s2 = SplitMix64::new(a ^ index.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        s2.next_u64()
    }

    /// Injector for NoC direction `index`, or `None` when no NoC fault
    /// is enabled.
    #[must_use]
    pub fn noc(&self, index: u64) -> Option<NocFaults> {
        let active = self.cfg.noc_jitter_permille > 0
            || self.cfg.noc_reorder_permille > 0
            || self.cfg.noc_duplicate_permille > 0
            || self.cfg.noc_drop_permille > 0
            || self.cfg.noc_corrupt_permille > 0;
        active.then(|| NocFaults {
            cfg: self.cfg,
            rng: SplitMix64::new(self.stream_seed(0x004E_4F43, index)),
            stats: FaultStats::default(),
        })
    }

    /// Crash scheduler for L2 bank `index` of `n_banks`, or `None` when
    /// bank crashes are disabled. The configured crash budget is split
    /// round-robin across banks (bank `i` takes crashes `i, i+n, …`).
    #[must_use]
    pub fn bank(&self, index: u64, n_banks: u64) -> Option<BankFaults> {
        let count = u64::from(self.cfg.l2_crash_count);
        if count == 0 || self.cfg.l2_crash_window == 0 || n_banks == 0 {
            return None;
        }
        let mut rng = SplitMix64::new(self.stream_seed(0x4C32_424B, 0));
        let mut schedule = Vec::new();
        for i in 0..count {
            let cycle = 1 + rng.below(self.cfg.l2_crash_window);
            if i % n_banks == index {
                schedule.push(cycle);
            }
        }
        schedule.sort_unstable();
        Some(BankFaults {
            schedule,
            stats: FaultStats::default(),
        })
    }

    /// Injector for DRAM partition `index`, or `None` when DRAM jitter
    /// is disabled.
    #[must_use]
    pub fn dram(&self, index: u64) -> Option<DramFaults> {
        (self.cfg.dram_jitter_permille > 0).then(|| DramFaults {
            cfg: self.cfg,
            rng: SplitMix64::new(self.stream_seed(0x4452_414D, index)),
            stats: FaultStats::default(),
        })
    }

    /// Injector for inter-GPU fabric direction `index`, or `None` when
    /// no NoC-style fault is enabled in the plan's config. A distinct
    /// domain keeps fabric streams decorrelated from the on-die NoC
    /// even when both plans share one master seed.
    #[must_use]
    pub fn fabric(&self, index: u64) -> Option<NocFaults> {
        let active = self.cfg.noc_jitter_permille > 0
            || self.cfg.noc_reorder_permille > 0
            || self.cfg.noc_duplicate_permille > 0
            || self.cfg.noc_drop_permille > 0
            || self.cfg.noc_corrupt_permille > 0;
        active.then(|| NocFaults {
            cfg: self.cfg,
            rng: SplitMix64::new(self.stream_seed(0x4641_4252, index)),
            stats: FaultStats::default(),
        })
    }

    /// Partition schedule for fabric link `index`: `count` link-down
    /// windows of `len` cycles, starting uniformly in `[1, window]`.
    /// Returns `None` when any knob is zero. Each link draws from its
    /// own stream, so different links partition at different times.
    #[must_use]
    pub fn link_down(&self, index: u64, count: u16, window: u64, len: u64) -> Option<LinkFaults> {
        let count = u64::from(count);
        if count == 0 || window == 0 || len == 0 {
            return None;
        }
        let mut rng = SplitMix64::new(self.stream_seed(0x4C4E_4B44, index));
        let mut starts: Vec<u64> = (0..count).map(|_| 1 + rng.below(window)).collect();
        starts.sort_unstable();
        let ends = starts.iter().map(|&s| s + len).collect();
        Some(LinkFaults { starts, ends })
    }

    /// Crash scheduler for device `index` of `n_devices`, or `None`
    /// when device crashes are disabled. Reuses the [`BankFaults`]
    /// schedule shape; the crash budget is split round-robin across
    /// devices exactly like bank crashes are split across banks.
    #[must_use]
    pub fn device_crashes(
        &self,
        index: u64,
        n_devices: u64,
        count: u16,
        window: u64,
    ) -> Option<BankFaults> {
        let count = u64::from(count);
        if count == 0 || window == 0 || n_devices == 0 {
            return None;
        }
        let mut rng = SplitMix64::new(self.stream_seed(0x4445_5643, 0));
        let mut schedule = Vec::new();
        for i in 0..count {
            let cycle = 1 + rng.below(window);
            if i % n_devices == index {
                schedule.push(cycle);
            }
        }
        schedule.sort_unstable();
        Some(BankFaults {
            schedule,
            stats: FaultStats::default(),
        })
    }

    /// `ts_bits` after applying the plan's rollover-storm cap.
    #[must_use]
    pub fn effective_ts_bits(&self, ts_bits: u32) -> u32 {
        if self.cfg.ts_bits_cap == 0 {
            ts_bits
        } else {
            ts_bits.min(self.cfg.ts_bits_cap)
        }
    }
}

// Snapshot encodings (DESIGN.md §14): an armed injector is pure data —
// its config, its RNG position, and its counters — so checkpointing it
// mid-run and restoring reproduces the exact same future fault stream.
gtsc_types::snap_fields!(SplitMix64 { state });
gtsc_types::snap_fields!(FaultStats {
    jittered,
    reordered,
    duplicated,
    dropped,
    corrupted,
    bank_resets,
    extra_cycles,
});
gtsc_types::snap_fields!(NocFaults { cfg, rng, stats });
gtsc_types::snap_fields!(DramFaults { cfg, rng, stats });
gtsc_types::snap_fields!(BankFaults { schedule, stats });
gtsc_types::snap_fields!(LinkFaults { starts, ends });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_bounded() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(2);
        for _ in 0..1000 {
            assert!(c.below(17) < 17);
        }
        assert_eq!(SplitMix64::new(3).below(0), 0);
        assert!(!SplitMix64::new(4).chance(0));
        assert!(SplitMix64::new(4).chance(1000));
    }

    #[test]
    fn inert_config_yields_no_injectors() {
        let plan = FaultPlan::new(FaultConfig::default());
        assert!(!plan.is_active());
        assert!(plan.noc(0).is_none());
        assert!(plan.dram(0).is_none());
        assert_eq!(plan.effective_ts_bits(16), 16);
    }

    #[test]
    fn streams_are_reproducible_and_decorrelated() {
        let plan = FaultPlan::new(FaultConfig::chaos(99));
        let mut x = plan.noc(0).unwrap();
        let mut y = plan.noc(0).unwrap();
        let mut z = plan.noc(1).unwrap();
        let mut diverged = false;
        for _ in 0..200 {
            let fx = x.perturb();
            assert_eq!(fx, y.perturb(), "same index replays identically");
            diverged |= fx != z.perturb();
        }
        assert!(diverged, "different indices should see different streams");
        // Different master seeds diverge too.
        let other = FaultPlan::new(FaultConfig::chaos(100));
        let mut w = other.noc(0).unwrap();
        let mut x2 = plan.noc(0).unwrap();
        assert!((0..200).any(|_| w.perturb() != x2.perturb()));
    }

    #[test]
    fn noc_perturbations_respect_config_bounds() {
        let cfg = FaultConfig::chaos(5);
        let plan = FaultPlan::new(cfg);
        let mut f = plan.noc(0).unwrap();
        let mut saw_jitter = false;
        let mut saw_reorder = false;
        let mut saw_dup = false;
        for _ in 0..2000 {
            let fate = f.perturb();
            assert!(
                fate.extra_delay <= cfg.noc_jitter_max + cfg.noc_reorder_window,
                "delay bounded by jitter + reorder window"
            );
            if let Some(lag) = fate.duplicate {
                assert_eq!(lag, cfg.noc_duplicate_lag);
                saw_dup = true;
            }
            saw_jitter |= fate.extra_delay > 0 && fate.extra_delay <= cfg.noc_jitter_max;
            saw_reorder |= fate.extra_delay >= cfg.noc_reorder_window;
        }
        assert!(
            saw_jitter && saw_reorder && saw_dup,
            "chaos exercises every fault class"
        );
        let s = f.stats();
        assert!(s.jittered > 0 && s.reordered > 0 && s.duplicated > 0 && s.extra_cycles > 0);
    }

    #[test]
    fn dram_jitter_is_bounded_and_counted() {
        let cfg = FaultConfig::chaos(6);
        let plan = FaultPlan::new(cfg);
        let mut f = plan.dram(0).unwrap();
        let mut nonzero = 0;
        for _ in 0..2000 {
            let e = f.extra_latency();
            assert!(e <= cfg.dram_jitter_max);
            nonzero += u64::from(e > 0);
        }
        assert!(nonzero > 0);
        assert_eq!(f.stats().jittered, nonzero);
    }

    #[test]
    fn ts_bits_cap_only_shrinks() {
        let plan = FaultPlan::new(FaultConfig {
            ts_bits_cap: 8,
            ..FaultConfig::default()
        });
        assert_eq!(plan.effective_ts_bits(16), 8);
        assert_eq!(plan.effective_ts_bits(6), 6, "cap never widens");
        assert!(plan.is_active(), "rollover storms alone count as active");
    }

    #[test]
    fn fault_stats_merge_adds_fields() {
        let mut a = FaultStats {
            jittered: 1,
            reordered: 2,
            duplicated: 3,
            dropped: 4,
            corrupted: 5,
            bank_resets: 6,
            extra_cycles: 7,
        };
        let b = FaultStats {
            jittered: 10,
            reordered: 20,
            duplicated: 30,
            dropped: 40,
            corrupted: 50,
            bank_resets: 60,
            extra_cycles: 70,
        };
        a.merge(&b);
        assert_eq!(
            a,
            FaultStats {
                jittered: 11,
                reordered: 22,
                duplicated: 33,
                dropped: 44,
                corrupted: 55,
                bank_resets: 66,
                extra_cycles: 77,
            }
        );
    }

    #[test]
    fn chaos_never_drops_lossy_does() {
        let plan = FaultPlan::new(FaultConfig::chaos(8));
        let mut f = plan.noc(0).unwrap();
        for _ in 0..2000 {
            let fate = f.perturb();
            assert!(!fate.dropped && !fate.corrupted, "chaos must not lose");
        }
        assert_eq!(f.stats().dropped, 0);
        assert_eq!(f.stats().corrupted, 0);

        let lossy = FaultPlan::new(FaultConfig::lossy(8, 100));
        let mut f = lossy.noc(0).unwrap();
        let mut both = 0u64;
        for _ in 0..2000 {
            let fate = f.perturb();
            both += u64::from(fate.dropped && fate.corrupted);
        }
        assert_eq!(both, 0, "drop and corrupt are mutually exclusive");
        let s = f.stats();
        assert!(s.dropped > 0, "10% drop rate must fire in 2000 draws");
        assert!(s.corrupted > 0, "5% corrupt rate must fire in 2000 draws");
        assert!(s.jittered > 0, "chaos layer stays active underneath");
    }

    #[test]
    fn drop_only_config_enables_noc_injector() {
        let cfg = FaultConfig {
            seed: 1,
            noc_drop_permille: 50,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::new(cfg);
        assert!(plan.is_active());
        assert!(plan.noc(0).is_some(), "drops alone need an injector");
        assert!(plan.dram(0).is_none());
    }

    #[test]
    fn bank_crashes_are_scheduled_deterministically_and_split() {
        let cfg = FaultConfig::default().with_bank_crashes(4, 10_000);
        let plan = FaultPlan::new(FaultConfig { seed: 9, ..cfg });
        assert!(plan.is_active());
        let mut a = plan.bank(0, 2).unwrap();
        let b = plan.bank(0, 2).unwrap();
        assert_eq!(a, b, "same stream replays identically");
        let c = plan.bank(1, 2).unwrap();
        assert_eq!(a.pending() + c.pending(), 4, "budget split across banks");
        assert_eq!(a.pending(), 2, "round-robin split");
        // Walking time past the window fires every scheduled crash.
        let mut fired = 0;
        for now in 0..=10_000u64 {
            fired += u64::from(a.due(now));
        }
        assert_eq!(fired, 2);
        assert_eq!(a.stats().bank_resets, 2);
        assert_eq!(a.pending(), 0);
        assert!(!a.due(u64::MAX), "exhausted schedule stays quiet");
        // Disabled configs yield no scheduler.
        assert!(FaultPlan::new(FaultConfig::default()).bank(0, 2).is_none());
        let no_window = FaultConfig::default().with_bank_crashes(3, 0);
        assert!(FaultPlan::new(no_window).bank(0, 2).is_none());
    }

    #[test]
    fn injector_snapshots_resume_the_exact_stream() {
        use gtsc_types::{Snap, SnapReader, SnapWriter};
        let plan = FaultPlan::new(FaultConfig::lossy(33, 150));
        let mut f = plan.noc(0).unwrap();
        for _ in 0..137 {
            f.perturb();
        }
        let mut w = SnapWriter::new();
        f.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut g = NocFaults::load(&mut r).unwrap();
        assert_eq!(f.stats(), g.stats(), "counters survive the round trip");
        for _ in 0..200 {
            assert_eq!(f.perturb(), g.perturb(), "future stream is identical");
        }

        let crash_plan = FaultPlan::new(FaultConfig::default().with_bank_crashes(4, 10_000));
        let mut b = crash_plan.bank(0, 1).unwrap();
        let _ = b.due(2_500); // consume any early crash before snapshotting
        let mut w = SnapWriter::new();
        b.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let restored = BankFaults::load(&mut r).unwrap();
        assert_eq!(b, restored);
    }

    #[test]
    fn fabric_streams_are_decorrelated_from_noc() {
        let plan = FaultPlan::new(FaultConfig::lossy(11, 100));
        let mut fab = plan.fabric(0).unwrap();
        let mut fab2 = plan.fabric(0).unwrap();
        let mut noc = plan.noc(0).unwrap();
        let mut diverged = false;
        for _ in 0..200 {
            let f = fab.perturb();
            assert_eq!(f, fab2.perturb(), "fabric stream replays identically");
            diverged |= f != noc.perturb();
        }
        assert!(diverged, "fabric and NoC streams must differ on one seed");
        assert!(FaultPlan::new(FaultConfig::default()).fabric(0).is_none());
    }

    #[test]
    fn link_down_windows_cover_exactly_the_schedule() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 13,
            ..FaultConfig::default()
        });
        let lf = plan.link_down(0, 3, 10_000, 250).unwrap();
        assert_eq!(lf.windows(), 3);
        let same = plan.link_down(0, 3, 10_000, 250).unwrap();
        assert_eq!(lf, same, "schedule replays identically");
        let other = plan.link_down(1, 3, 10_000, 250).unwrap();
        assert_ne!(lf, other, "different links partition at different times");
        // Down for exactly `count * len` cycles (windows may overlap,
        // so at most that many).
        let down_cycles = (0..=lf.last_end().unwrap()).filter(|&c| lf.down(c)).count();
        assert!(down_cycles > 0 && down_cycles <= 3 * 250);
        assert!(!lf.down(lf.last_end().unwrap()), "end is exclusive");
        assert!(plan.link_down(0, 0, 10_000, 250).is_none());
        assert!(plan.link_down(0, 3, 0, 250).is_none());
        assert!(plan.link_down(0, 3, 10_000, 0).is_none());
        assert!(LinkFaults::default().last_end().is_none());
    }

    #[test]
    fn device_crashes_split_round_robin() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 17,
            ..FaultConfig::default()
        });
        let a = plan.device_crashes(0, 2, 4, 10_000).unwrap();
        let b = plan.device_crashes(1, 2, 4, 10_000).unwrap();
        assert_eq!(a.pending(), 2);
        assert_eq!(a.pending() + b.pending(), 4);
        assert_eq!(a, plan.device_crashes(0, 2, 4, 10_000).unwrap());
        assert!(plan.device_crashes(0, 2, 0, 10_000).is_none());
        assert!(plan.device_crashes(0, 2, 4, 0).is_none());
        assert!(plan.device_crashes(0, 0, 4, 10_000).is_none());
    }

    #[test]
    fn link_faults_snapshot_round_trips() {
        use gtsc_types::{Snap, SnapReader, SnapWriter};
        let plan = FaultPlan::new(FaultConfig {
            seed: 29,
            ..FaultConfig::default()
        });
        let lf = plan.link_down(2, 5, 50_000, 1_000).unwrap();
        let mut w = SnapWriter::new();
        lf.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = LinkFaults::load(&mut r).unwrap();
        assert_eq!(lf, back);
    }

    #[test]
    fn loss_draws_do_not_shift_classic_substreams() {
        // The appended drop/corrupt draws must leave the per-call draw
        // count fixed: two NocFaults over configs differing only in
        // loss rates decide jitter/reorder/duplicate identically.
        let chaos = FaultPlan::new(FaultConfig::chaos(21));
        let lossy = FaultPlan::new(FaultConfig::lossy(21, 200));
        let mut a = chaos.noc(0).unwrap();
        let mut b = lossy.noc(0).unwrap();
        for _ in 0..500 {
            let fa = a.perturb();
            let fb = b.perturb();
            assert_eq!(fa.extra_delay, fb.extra_delay);
            assert_eq!(fa.duplicate, fb.duplicate);
        }
    }
}
