//! Seeded, deterministic fault injection for the G-TSC simulator.
//!
//! A coherence protocol's correctness argument must hold under *any*
//! message timing — G-TSC inherits Tardis's proof obligation that leases
//! and timestamps order accesses regardless of physical delays. This
//! crate turns that obligation into an executable test surface: a
//! [`FaultPlan`] derived from a [`FaultConfig`](gtsc_types::FaultConfig)
//! hands each perturbable component (NoC direction, DRAM partition) its
//! own [`NocFaults`] / [`DramFaults`] injector. Injectors only *delay*,
//! *reorder within a bounded window*, or *duplicate* — never drop —
//! so liveness is preserved and a correct protocol must stay
//! violation-free under every seed.
//!
//! Determinism is the load-bearing property: every decision comes from a
//! [`SplitMix64`] stream seeded from the plan's master seed and the
//! component's index, and the simulator consults injectors in a fixed
//! order. Replaying a failing seed reproduces the run byte-for-byte.
//!
//! # Examples
//!
//! ```
//! use gtsc_faults::FaultPlan;
//! use gtsc_types::FaultConfig;
//!
//! let plan = FaultPlan::new(FaultConfig::chaos(42));
//! let mut a = plan.noc(0).expect("chaos enables NoC faults");
//! let mut b = plan.noc(0).expect("same stream again");
//! for _ in 0..100 {
//!     assert_eq!(a.perturb(), b.perturb()); // bitwise-identical streams
//! }
//! assert!(plan.noc(1).is_some());
//! assert_eq!(plan.effective_ts_bits(16), 8); // chaos caps ts_bits at 8
//! ```

use gtsc_types::FaultConfig;

/// SplitMix64: a tiny, statistically solid, trivially seedable generator.
/// Chosen over a `rand` dependency so fault streams are stable across
/// toolchains and the crate stays dependency-light.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream fully determined by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `0` when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }

    /// `true` with probability `permille / 1000`.
    pub fn chance(&mut self, permille: u16) -> bool {
        self.below(1000) < u64::from(permille.min(1000))
    }
}

/// Counters an injector accumulates, for post-run diagnostics and the
/// `stress_faults` soak summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets/requests that received latency jitter.
    pub jittered: u64,
    /// Packets held back a reorder window.
    pub reordered: u64,
    /// Packets delivered twice.
    pub duplicated: u64,
    /// Total extra cycles injected across all perturbations.
    pub extra_cycles: u64,
}

impl FaultStats {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &FaultStats) {
        self.jittered += other.jittered;
        self.reordered += other.reordered;
        self.duplicated += other.duplicated;
        self.extra_cycles += other.extra_cycles;
    }
}

/// The fate the injector assigns one NoC packet at injection time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketFate {
    /// Extra cycles added to the packet's wire latency.
    pub extra_delay: u64,
    /// When `Some(lag)`, deliver a second copy `lag` cycles after the
    /// (already delayed) original.
    pub duplicate: Option<u64>,
}

/// Per-network fault injector (jitter, bounded reorder, duplication).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocFaults {
    cfg: FaultConfig,
    rng: SplitMix64,
    stats: FaultStats,
}

impl NocFaults {
    /// Decides the fate of the next injected packet. Consumes a fixed
    /// number of RNG draws per call so streams stay aligned across runs.
    pub fn perturb(&mut self) -> PacketFate {
        let mut extra = 0u64;
        if self.rng.chance(self.cfg.noc_jitter_permille) && self.cfg.noc_jitter_max > 0 {
            let j = 1 + self.rng.below(self.cfg.noc_jitter_max);
            extra += j;
            self.stats.jittered += 1;
        } else {
            let _ = self.rng.next_u64(); // keep draw count constant
        }
        if self.rng.chance(self.cfg.noc_reorder_permille) {
            extra += self.cfg.noc_reorder_window;
            self.stats.reordered += 1;
        }
        let duplicate = if self.rng.chance(self.cfg.noc_duplicate_permille) {
            self.stats.duplicated += 1;
            Some(self.cfg.noc_duplicate_lag)
        } else {
            None
        };
        self.stats.extra_cycles += extra + duplicate.unwrap_or(0);
        PacketFate {
            extra_delay: extra,
            duplicate,
        }
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

/// Per-partition DRAM fault injector (variable service latency).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramFaults {
    cfg: FaultConfig,
    rng: SplitMix64,
    stats: FaultStats,
}

impl DramFaults {
    /// Extra service cycles for the next issued DRAM request.
    pub fn extra_latency(&mut self) -> u64 {
        let extra =
            if self.rng.chance(self.cfg.dram_jitter_permille) && self.cfg.dram_jitter_max > 0 {
                let j = 1 + self.rng.below(self.cfg.dram_jitter_max);
                self.stats.jittered += 1;
                j
            } else {
                let _ = self.rng.next_u64();
                0
            };
        self.stats.extra_cycles += extra;
        extra
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

/// Factory deriving independent, reproducible injector streams from one
/// master seed. Stream indices are caller-chosen (the simulator uses
/// `noc(0)` for requests, `noc(1)` for responses, and `dram(i)` per
/// partition) so adding components never shifts existing streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Wraps `cfg` (which may be inert — see [`FaultPlan::is_active`]).
    #[must_use]
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan { cfg }
    }

    /// Whether any injector will perturb anything.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.cfg.is_active()
    }

    /// The plan's configuration.
    #[must_use]
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    fn stream_seed(&self, domain: u64, index: u64) -> u64 {
        // Decorrelate streams by running the (seed, domain, index) triple
        // through one SplitMix64 step each.
        let mut s = SplitMix64::new(self.cfg.seed ^ domain.rotate_left(17));
        let a = s.next_u64();
        let mut s2 = SplitMix64::new(a ^ index.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        s2.next_u64()
    }

    /// Injector for NoC direction `index`, or `None` when no NoC fault
    /// is enabled.
    #[must_use]
    pub fn noc(&self, index: u64) -> Option<NocFaults> {
        let active = self.cfg.noc_jitter_permille > 0
            || self.cfg.noc_reorder_permille > 0
            || self.cfg.noc_duplicate_permille > 0;
        active.then(|| NocFaults {
            cfg: self.cfg,
            rng: SplitMix64::new(self.stream_seed(0x004E_4F43, index)),
            stats: FaultStats::default(),
        })
    }

    /// Injector for DRAM partition `index`, or `None` when DRAM jitter
    /// is disabled.
    #[must_use]
    pub fn dram(&self, index: u64) -> Option<DramFaults> {
        (self.cfg.dram_jitter_permille > 0).then(|| DramFaults {
            cfg: self.cfg,
            rng: SplitMix64::new(self.stream_seed(0x4452_414D, index)),
            stats: FaultStats::default(),
        })
    }

    /// `ts_bits` after applying the plan's rollover-storm cap.
    #[must_use]
    pub fn effective_ts_bits(&self, ts_bits: u32) -> u32 {
        if self.cfg.ts_bits_cap == 0 {
            ts_bits
        } else {
            ts_bits.min(self.cfg.ts_bits_cap)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_bounded() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(2);
        for _ in 0..1000 {
            assert!(c.below(17) < 17);
        }
        assert_eq!(SplitMix64::new(3).below(0), 0);
        assert!(!SplitMix64::new(4).chance(0));
        assert!(SplitMix64::new(4).chance(1000));
    }

    #[test]
    fn inert_config_yields_no_injectors() {
        let plan = FaultPlan::new(FaultConfig::default());
        assert!(!plan.is_active());
        assert!(plan.noc(0).is_none());
        assert!(plan.dram(0).is_none());
        assert_eq!(plan.effective_ts_bits(16), 16);
    }

    #[test]
    fn streams_are_reproducible_and_decorrelated() {
        let plan = FaultPlan::new(FaultConfig::chaos(99));
        let mut x = plan.noc(0).unwrap();
        let mut y = plan.noc(0).unwrap();
        let mut z = plan.noc(1).unwrap();
        let mut diverged = false;
        for _ in 0..200 {
            let fx = x.perturb();
            assert_eq!(fx, y.perturb(), "same index replays identically");
            diverged |= fx != z.perturb();
        }
        assert!(diverged, "different indices should see different streams");
        // Different master seeds diverge too.
        let other = FaultPlan::new(FaultConfig::chaos(100));
        let mut w = other.noc(0).unwrap();
        let mut x2 = plan.noc(0).unwrap();
        assert!((0..200).any(|_| w.perturb() != x2.perturb()));
    }

    #[test]
    fn noc_perturbations_respect_config_bounds() {
        let cfg = FaultConfig::chaos(5);
        let plan = FaultPlan::new(cfg);
        let mut f = plan.noc(0).unwrap();
        let mut saw_jitter = false;
        let mut saw_reorder = false;
        let mut saw_dup = false;
        for _ in 0..2000 {
            let fate = f.perturb();
            assert!(
                fate.extra_delay <= cfg.noc_jitter_max + cfg.noc_reorder_window,
                "delay bounded by jitter + reorder window"
            );
            if let Some(lag) = fate.duplicate {
                assert_eq!(lag, cfg.noc_duplicate_lag);
                saw_dup = true;
            }
            saw_jitter |= fate.extra_delay > 0 && fate.extra_delay <= cfg.noc_jitter_max;
            saw_reorder |= fate.extra_delay >= cfg.noc_reorder_window;
        }
        assert!(
            saw_jitter && saw_reorder && saw_dup,
            "chaos exercises every fault class"
        );
        let s = f.stats();
        assert!(s.jittered > 0 && s.reordered > 0 && s.duplicated > 0 && s.extra_cycles > 0);
    }

    #[test]
    fn dram_jitter_is_bounded_and_counted() {
        let cfg = FaultConfig::chaos(6);
        let plan = FaultPlan::new(cfg);
        let mut f = plan.dram(0).unwrap();
        let mut nonzero = 0;
        for _ in 0..2000 {
            let e = f.extra_latency();
            assert!(e <= cfg.dram_jitter_max);
            nonzero += u64::from(e > 0);
        }
        assert!(nonzero > 0);
        assert_eq!(f.stats().jittered, nonzero);
    }

    #[test]
    fn ts_bits_cap_only_shrinks() {
        let plan = FaultPlan::new(FaultConfig {
            ts_bits_cap: 8,
            ..FaultConfig::default()
        });
        assert_eq!(plan.effective_ts_bits(16), 8);
        assert_eq!(plan.effective_ts_bits(6), 6, "cap never widens");
        assert!(plan.is_active(), "rollover storms alone count as active");
    }

    #[test]
    fn fault_stats_merge_adds_fields() {
        let mut a = FaultStats {
            jittered: 1,
            reordered: 2,
            duplicated: 3,
            extra_cycles: 4,
        };
        let b = FaultStats {
            jittered: 10,
            reordered: 20,
            duplicated: 30,
            extra_cycles: 40,
        };
        a.merge(&b);
        assert_eq!(
            a,
            FaultStats {
                jittered: 11,
                reordered: 22,
                duplicated: 33,
                extra_cycles: 44
            }
        );
    }
}
