//! Crash/resume soak for the sweep service, driving the real `sweep`
//! binary: `kill -9` mid-batch, restart, and prove the final aggregate
//! report is byte-identical to an uninterrupted run with zero re-runs
//! of journaled shards.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

use gtsc_sweep::{replay, Record};

const BIN: &str = env!("CARGO_BIN_EXE_sweep");

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gtsc-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A batch sized to run for a couple of seconds in debug builds:
/// 2 benchmarks × 6 lossy seeds at small scale, checkpointing often.
fn batch_args(dir: &Path) -> Vec<String> {
    [
        "--dir",
        &dir.display().to_string(),
        "--benchmarks",
        "KM,HS",
        "--seeds",
        "6",
        "--scale",
        "small",
        "--lossy",
        "40",
        "--workers",
        "2",
        "--slice",
        "500",
        "--checkpoint-every",
        "1500",
        "--quiet",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect()
}

fn run_to_completion(args: &[String]) {
    let out = Command::new(BIN).args(args).output().expect("spawn sweep");
    assert!(
        out.status.success(),
        "sweep failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn aggregates(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join("aggregates.txt")).expect("aggregates.txt written")
}

fn journal(dir: &Path) -> Vec<Record> {
    let bytes = std::fs::read(dir.join("journal.bin")).expect("journal exists");
    replay(&bytes).0
}

/// Asserts the journal's shard discipline: exactly one `Done` per job,
/// and no `Begin` for a job after its `Done` (a journaled shard is
/// never re-run, across any number of process restarts).
fn assert_no_shard_reruns(records: &[Record], n_jobs: u32) {
    use std::collections::BTreeMap;
    let mut done_at: BTreeMap<u32, usize> = BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        if let Record::Done { result } = r {
            assert!(
                done_at.insert(result.id, i).is_none(),
                "job {} journaled Done twice",
                result.id
            );
        }
    }
    assert_eq!(
        done_at.len() as u32,
        n_jobs,
        "every job journaled exactly once"
    );
    for (i, r) in records.iter().enumerate() {
        if let Record::Begin { job, .. } = r {
            if let Some(&d) = done_at.get(job) {
                assert!(
                    i < d,
                    "job {job} has a Begin at record {i} after its Done at {d}: journaled shard was re-run"
                );
            }
        }
    }
}

#[test]
fn kill_dash_nine_mid_batch_then_restart_is_byte_identical() {
    let n_jobs = 12u32;

    // Reference: one uninterrupted run.
    let ref_dir = tmp("reference");
    run_to_completion(&batch_args(&ref_dir));
    let reference = aggregates(&ref_dir);

    // Victim: SIGKILL the service mid-batch several times, at varying
    // points, then let a final run finish the batch.
    let victim_dir = tmp("victim");
    let args = batch_args(&victim_dir);
    let mut interrupted = 0;
    // Delays sized so the first kill lands mid-batch in both debug
    // (~2.7 s batch) and release (~0.4 s batch) builds.
    for (round, delay_ms) in [100u64, 150, 250, 450].into_iter().enumerate() {
        let mut child = Command::new(BIN).args(&args).spawn().expect("spawn sweep");
        std::thread::sleep(Duration::from_millis(delay_ms));
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                // Finished before the kill (fast machine): that's a
                // completed batch; later rounds become no-op resumes.
                assert!(status.success(), "round {round}: sweep failed");
            }
            None => {
                child.kill().expect("SIGKILL");
                let _ = child.wait();
                interrupted += 1;
            }
        }
    }
    assert!(
        interrupted > 0,
        "batch finished before every kill; grow the batch so the soak exercises crash recovery"
    );

    // Restart after the carnage: must complete, skip journaled shards,
    // resume checkpointed jobs, and reproduce the reference bytes.
    run_to_completion(&args);
    assert_eq!(
        aggregates(&victim_dir),
        reference,
        "aggregates after kill -9 + resume differ from the uninterrupted run"
    );
    assert_no_shard_reruns(&journal(&victim_dir), n_jobs);

    // And the reference journal obeys the same discipline trivially.
    assert_no_shard_reruns(&journal(&ref_dir), n_jobs);

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&victim_dir);
}

#[test]
fn completed_batch_restart_is_a_noop() {
    let dir = tmp("noop");
    let args = batch_args(&dir);
    run_to_completion(&args);
    let first = aggregates(&dir);
    let journal_bytes = std::fs::read(dir.join("journal.bin")).unwrap();

    run_to_completion(&args);
    assert_eq!(aggregates(&dir), first);
    assert_eq!(
        std::fs::read(dir.join("journal.bin")).unwrap(),
        journal_bytes,
        "a no-op resume must not append journal records"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_failures_and_budget_shedding_do_not_change_the_bytes() {
    let clean_dir = tmp("shed-clean");
    run_to_completion(&batch_args(&clean_dir));
    let reference = aggregates(&clean_dir);

    // Same batch under a tight disk budget, flaky first attempts, and
    // a memory budget that sheds a worker.
    let dir = tmp("shed-hostile");
    let mut args = batch_args(&dir);
    args.extend(
        [
            "--fail-first",
            "0:2,5:1,11:1",
            "--backoff-ms",
            "1",
            "--disk-budget",
            "131072",
            "--mem-budget",
            "8388608",
        ]
        .iter()
        .map(|s| (*s).to_owned()),
    );
    run_to_completion(&args);
    assert_eq!(
        aggregates(&dir),
        reference,
        "retries and shedding must be invisible in the aggregate bytes"
    );

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
