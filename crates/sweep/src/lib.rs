//! Resumable, self-healing parameter sweeps over the G-TSC simulator.
//!
//! This crate turns the deterministic checkpoint/restore machinery of
//! [`gtsc_sim`] into a batch service: a set of (benchmark, config,
//! seed) jobs runs across work-stealing worker threads, every finished
//! shard is journaled crash-safely, long jobs checkpoint themselves
//! mid-kernel, and a process killed with `kill -9` at any instant can
//! be restarted to produce the **byte-identical** aggregate report an
//! uninterrupted run would have produced — without re-running any
//! journaled shard (see `tests/resume.rs` for the proof).
//!
//! Layer map:
//!
//! * [`job`] — one deterministic simulation shard ([`JobSpec`] →
//!   [`JobResult`]), sliced and checkpointed via
//!   [`gtsc_sim::CheckpointStore`].
//! * [`journal`] — append-only fsync'd record log with torn-tail
//!   recovery; the source of truth for which shards are done.
//! * [`service`] — the worker pool: stealing, bounded retry with
//!   exponential backoff, and graceful degradation under disk/memory
//!   budgets (shed work is reported, never silent).
//!
//! The `sweep` binary (`src/bin/sweep.rs`) wraps [`run_sweep`] in a
//! CLI; see the README quick-start.

pub mod job;
pub mod journal;
pub mod metrics;
pub mod service;

pub use job::{
    benchmark_from_name, consistency_from_name, protocol_from_name, run_job, scale_from_name,
    scale_name, JobOutcome, JobResult, JobRun, JobSpec,
};
pub use journal::{replay, Journal, Record};
pub use metrics::SweepMetrics;
pub use service::{
    batch_fingerprint, run_sweep, run_sweep_with_metrics, SweepConfig, SweepError, SweepOutcome,
    TransientFaultPlan, EST_JOB_BYTES,
};
