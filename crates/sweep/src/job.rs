//! The unit of sweep work: one (benchmark, config, seed) simulation.
//!
//! A [`JobSpec`] pins *everything* that determines a job's outcome — the
//! benchmark, scale, protocol, consistency model, fault plan seed, and a
//! deterministic cycle budget — so a job re-run on any machine, any
//! number of times, after any number of crashes, produces the same
//! [`JobResult`] byte for byte. Wall-clock time never appears in a
//! result; timeouts are expressed in simulated cycles
//! ([`JobSpec::cycle_budget`] maps to `GpuConfig::max_cycles`), which
//! makes even "this job timed out" a deterministic, reproducible fact.
//!
//! [`run_job`] executes one job in bounded slices via
//! [`GpuSim::advance_kernel`], periodically persisting a
//! [`gtsc_sim::CheckpointStore`] snapshot so a killed process resumes
//! mid-kernel instead of restarting; slicing and checkpointing are
//! invisible in the result (see the `resume` integration tests).

use gtsc_gpu::Kernel;
use gtsc_sim::{CheckpointStore, GpuSim, KernelProgress, SimBuilder, SimError};
use gtsc_types::snap::{crc32, Snap, SnapReader, SnapWriter, SnapshotError};
use gtsc_types::{BlockAddr, ConsistencyModel, FaultConfig, GpuConfig, ProtocolKind, Version};
use gtsc_workloads::{Benchmark, Scale};

/// Cycle window over which injected bank crashes are scheduled when a
/// [`JobSpec`] asks for them (`bank_crashes > 0`).
const BANK_CRASH_WINDOW: u64 = 400;

/// Cap on the free-text `detail` carried in a [`JobResult`], so one
/// pathological stall diagnosis cannot bloat the journal.
const DETAIL_MAX_CHARS: usize = 240;

/// Everything that determines a job's outcome. Two equal specs produce
/// byte-identical [`JobResult`]s regardless of retries, checkpointing,
/// slicing, or process crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Batch-unique id; results are aggregated in id order.
    pub id: u32,
    /// Which paper benchmark to run.
    pub benchmark: Benchmark,
    /// Problem size (`Tiny`/`Small`/`Full`; `Custom` is not sweepable).
    pub scale: Scale,
    /// Coherence protocol under test.
    pub protocol: ProtocolKind,
    /// Consistency model.
    pub consistency: ConsistencyModel,
    /// Seed for the fault-injection RNG streams.
    pub seed: u64,
    /// NoC drop rate in permille; `0` keeps the NoC reliable.
    pub lossy_permille: u16,
    /// Number of L2 bank crash/recovery events to inject.
    pub bank_crashes: u16,
    /// Deterministic timeout in *simulated* cycles (`0` = unbounded);
    /// becomes `GpuConfig::max_cycles`, so exceeding it is a
    /// reproducible [`JobOutcome::CycleBudget`], not a wall-clock race.
    pub cycle_budget: u64,
}

impl JobSpec {
    /// The full simulator configuration this spec pins down.
    #[must_use]
    pub fn config(&self) -> GpuConfig {
        let mut faults = if self.lossy_permille > 0 {
            FaultConfig::lossy(self.seed, self.lossy_permille)
        } else {
            FaultConfig {
                seed: self.seed,
                ..FaultConfig::default()
            }
        };
        if self.bank_crashes > 0 {
            faults = faults.with_bank_crashes(self.bank_crashes, BANK_CRASH_WINDOW);
        }
        // Tiny/Small instances fit the scaled-down test machine; Full
        // instances need the paper's 16-SM platform (their CTAs are
        // wider than the small machine's SMs).
        let base = match self.scale {
            Scale::Full => GpuConfig::paper_default(),
            _ => GpuConfig::test_small(),
        };
        let mut cfg = base
            .with_protocol(self.protocol)
            .with_consistency(self.consistency)
            .with_faults(faults);
        cfg.max_cycles = self.cycle_budget;
        cfg
    }

    /// Builds the kernel this spec runs.
    #[must_use]
    pub fn kernel(&self) -> Box<dyn Kernel> {
        self.benchmark.build(self.scale)
    }

    /// One-line human description (`BH tiny G-TSC/RC seed=3`).
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "{} {} {}/{} seed={}",
            self.benchmark.name(),
            scale_name(self.scale),
            self.protocol.label(),
            self.consistency.label(),
            self.seed
        )
    }
}

impl Snap for JobSpec {
    fn save(&self, w: &mut SnapWriter) {
        self.id.save(w);
        w.u8(benchmark_tag(self.benchmark));
        w.u8(scale_tag(self.scale));
        w.u8(protocol_tag(self.protocol));
        w.u8(consistency_tag(self.consistency));
        self.seed.save(w);
        self.lossy_permille.save(w);
        self.bank_crashes.save(w);
        self.cycle_budget.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(JobSpec {
            id: Snap::load(r)?,
            benchmark: benchmark_from_tag(r.u8()?)?,
            scale: scale_from_tag(r.u8()?)?,
            protocol: protocol_from_tag(r.u8()?)?,
            consistency: consistency_from_tag(r.u8()?)?,
            seed: Snap::load(r)?,
            lossy_permille: Snap::load(r)?,
            bank_crashes: Snap::load(r)?,
            cycle_budget: Snap::load(r)?,
        })
    }
}

/// How a job ended. Every variant is deterministic: transient,
/// wall-clock-driven failures are retried by the service and never
/// appear in a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// The kernel drained; counters and memory image are final.
    Completed,
    /// The deterministic cycle budget elapsed with work pending.
    CycleBudget,
    /// The forward-progress watchdog fired (wedged protocol state).
    Stalled,
    /// The spec cannot run at all (bad kernel/config combination).
    Rejected,
}

impl JobOutcome {
    /// Stable lower-case label used in aggregate output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            JobOutcome::Completed => "completed",
            JobOutcome::CycleBudget => "cycle-budget",
            JobOutcome::Stalled => "stalled",
            JobOutcome::Rejected => "rejected",
        }
    }
}

impl Snap for JobOutcome {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            JobOutcome::Completed => 0,
            JobOutcome::CycleBudget => 1,
            JobOutcome::Stalled => 2,
            JobOutcome::Rejected => 3,
        });
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(JobOutcome::Completed),
            1 => Ok(JobOutcome::CycleBudget),
            2 => Ok(JobOutcome::Stalled),
            3 => Ok(JobOutcome::Rejected),
            other => Err(SnapshotError::Malformed {
                context: format!("JobOutcome tag {other}"),
            }),
        }
    }
}

/// The deterministic product of one job. Deliberately excludes attempt
/// counts, wall-clock durations, and checkpoint bookkeeping so that a
/// batch's aggregate is byte-identical whether it ran uninterrupted or
/// survived crashes and retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// The spec's id.
    pub id: u32,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Simulated cycles executed (abort cycle for non-completed runs).
    pub cycles: u64,
    /// Instructions issued across all SMs.
    pub issued: u64,
    /// Private-L1 accesses.
    pub l1_accesses: u64,
    /// Private-L1 hits.
    pub l1_hits: u64,
    /// Coherence violations detected by the checker.
    pub violations: u64,
    /// CRC32 of the snap-encoded final [`gtsc_types::SimStats`] — a
    /// compact fingerprint of *every* counter, not just the headline ones.
    pub stats_crc: u32,
    /// CRC32 of the snap-encoded final memory image.
    pub image_crc: u32,
    /// Short diagnostic for `Stalled`/`Rejected` (deterministic text).
    pub detail: String,
}

gtsc_types::snap_fields!(JobResult {
    id,
    outcome,
    cycles,
    issued,
    l1_accesses,
    l1_hits,
    violations,
    stats_crc,
    image_crc,
    detail
});

impl JobResult {
    /// One stable aggregate line (fixed-width, byte-reproducible).
    #[must_use]
    pub fn render(&self, spec: Option<&JobSpec>) -> String {
        let what = spec.map_or_else(String::new, |s| format!(" {}", s.describe()));
        let detail = if self.detail.is_empty() {
            String::new()
        } else {
            format!(" detail={:?}", self.detail)
        };
        format!(
            "job {:04}{} outcome={} cycles={} issued={} l1={}/{} violations={} stats=0x{:08x} image=0x{:08x}{}",
            self.id,
            what,
            self.outcome.label(),
            self.cycles,
            self.issued,
            self.l1_accesses,
            self.l1_hits,
            self.violations,
            self.stats_crc,
            self.image_crc,
            detail
        )
    }
}

/// What [`run_job`] hands back to the service: the deterministic result
/// plus (non-deterministic, report-only) execution bookkeeping.
#[derive(Debug)]
pub struct JobRun {
    /// The deterministic result (journaled, aggregated).
    pub result: JobResult,
    /// Whether the job resumed from an on-disk checkpoint.
    pub resumed_from_checkpoint: bool,
    /// Checkpoints persisted during this execution.
    pub checkpoints_written: u32,
    /// Wall time of each persisted checkpoint write, in nanoseconds
    /// (encode excluded) — metrics fodder, never journaled.
    pub checkpoint_write_ns: Vec<u64>,
}

/// Runs one job to a deterministic outcome.
///
/// The kernel advances in `slice_cycles` slices (0 = one unbounded
/// shot). Every `checkpoint_every` simulated cycles a whole-machine
/// snapshot is offered to `allow_checkpoint(size_bytes)`; if the budget
/// callback approves, it is atomically persisted to `store`. On entry,
/// the newest loadable checkpoint (primary, then `.prev`) is restored —
/// a corrupt pair silently restarts the job from cycle zero, which is
/// slower but produces the identical result. Terminal paths clear the
/// store so finished jobs reclaim their disk.
///
/// Simulation failures (budget, stall, rejection) are *outcomes*, not
/// errors — they are deterministic facts about the spec.
pub fn run_job(
    spec: &JobSpec,
    store: Option<&CheckpointStore>,
    slice_cycles: u64,
    checkpoint_every: u64,
    mut allow_checkpoint: impl FnMut(usize) -> bool,
) -> JobRun {
    let cfg = spec.config();
    let kernel = spec.kernel();
    let mut sim = match SimBuilder::new(cfg.clone()).try_build() {
        Ok(sim) => sim,
        Err(e) => return rejected(spec, &e),
    };
    let mut progress = KernelProgress::new(&*kernel);
    let mut resumed = false;

    if let Some(store) = store {
        let loaded = store.load_latest(|bytes| {
            let mut candidate =
                SimBuilder::new(cfg.clone())
                    .try_build()
                    .map_err(|e| SnapshotError::Mismatch {
                        what: format!("rebuild for restore: {e}"),
                    })?;
            match candidate.restore_snapshot(bytes)? {
                Some(p) if p.matches(&*kernel) => Ok((candidate, p)),
                Some(_) => Err(SnapshotError::Mismatch {
                    what: "checkpoint is for a different kernel".into(),
                }),
                None => Err(SnapshotError::MissingSection {
                    name: "progress".into(),
                }),
            }
        });
        if let Ok(Some(((restored, p), _source))) = loaded {
            sim = restored;
            progress = p;
            resumed = true;
        }
        // Ok(None): never checkpointed. Err: every image damaged —
        // restart from cycle zero; the result is unchanged, only slower.
    }

    let mut since_checkpoint = 0u64;
    let mut checkpointing = store.is_some() && checkpoint_every > 0 && slice_cycles > 0;
    let mut checkpoints_written = 0u32;
    let mut checkpoint_write_ns: Vec<u64> = Vec::new();
    loop {
        match sim.advance_kernel(&*kernel, &mut progress, slice_cycles) {
            Ok(Some(report)) => {
                clear_store(store);
                return JobRun {
                    result: finished(spec, JobOutcome::Completed, &report, &sim, String::new()),
                    resumed_from_checkpoint: resumed,
                    checkpoints_written,
                    checkpoint_write_ns,
                };
            }
            Ok(None) => {
                since_checkpoint += slice_cycles;
                if checkpointing && since_checkpoint >= checkpoint_every {
                    since_checkpoint = 0;
                    match sim.save_snapshot(Some(&progress)) {
                        Ok(bytes) => {
                            if allow_checkpoint(bytes.len()) {
                                if let Some(store) = store {
                                    let t0 = std::time::Instant::now();
                                    if store.save(&bytes).is_ok() {
                                        checkpoints_written += 1;
                                        checkpoint_write_ns.push(t0.elapsed().as_nanos() as u64);
                                    }
                                }
                            }
                        }
                        // Protocol without snapshot support: stop trying.
                        Err(_) => checkpointing = false,
                    }
                }
            }
            Err(SimError::CycleLimit { .. }) => {
                let report = sim.report();
                clear_store(store);
                return JobRun {
                    result: finished(spec, JobOutcome::CycleBudget, &report, &sim, String::new()),
                    resumed_from_checkpoint: resumed,
                    checkpoints_written,
                    checkpoint_write_ns,
                };
            }
            Err(e @ SimError::Stalled { .. }) => {
                let report = sim.report();
                clear_store(store);
                return JobRun {
                    result: finished(
                        spec,
                        JobOutcome::Stalled,
                        &report,
                        &sim,
                        truncate(&e.to_string()),
                    ),
                    resumed_from_checkpoint: resumed,
                    checkpoints_written,
                    checkpoint_write_ns,
                };
            }
            Err(e) => {
                clear_store(store);
                return rejected(spec, &e);
            }
        }
    }
}

fn clear_store(store: Option<&CheckpointStore>) {
    if let Some(store) = store {
        // Best-effort: a leftover checkpoint is skipped on replay anyway
        // (the job will already have a journaled result).
        let _ = store.clear();
    }
}

fn finished(
    spec: &JobSpec,
    outcome: JobOutcome,
    report: &gtsc_sim::RunReport,
    sim: &GpuSim,
    detail: String,
) -> JobResult {
    let image = sim.memory_image();
    JobResult {
        id: spec.id,
        outcome,
        cycles: report.stats.cycles.0,
        issued: report.stats.sm.issued,
        l1_accesses: report.stats.l1.accesses,
        l1_hits: report.stats.l1.hits,
        violations: report.violations.len() as u64,
        stats_crc: snap_crc(&report.stats),
        image_crc: image_crc(&image),
        detail,
    }
}

fn rejected(spec: &JobSpec, err: &SimError) -> JobRun {
    JobRun {
        checkpoint_write_ns: Vec::new(),
        result: JobResult {
            id: spec.id,
            outcome: JobOutcome::Rejected,
            cycles: 0,
            issued: 0,
            l1_accesses: 0,
            l1_hits: 0,
            violations: 0,
            stats_crc: 0,
            image_crc: 0,
            detail: truncate(&err.to_string()),
        },
        resumed_from_checkpoint: false,
        checkpoints_written: 0,
    }
}

/// CRC32 over the snap encoding of any snapshot-able value.
fn snap_crc(value: &impl Snap) -> u32 {
    let mut w = SnapWriter::new();
    value.save(&mut w);
    crc32(&w.into_bytes())
}

fn image_crc(image: &std::collections::BTreeMap<BlockAddr, Version>) -> u32 {
    snap_crc(image)
}

fn truncate(s: &str) -> String {
    s.chars().take(DETAIL_MAX_CHARS).collect()
}

/// Stable lower-case name for a sweepable scale.
#[must_use]
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
        Scale::Custom { .. } => "custom",
    }
}

/// Parses a scale name (`tiny`/`small`/`full`).
#[must_use]
pub fn scale_from_name(name: &str) -> Option<Scale> {
    match name {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "full" => Some(Scale::Full),
        _ => None,
    }
}

/// Parses a benchmark by its paper name (`BH`, `KM`, …), case-insensitive.
#[must_use]
pub fn benchmark_from_name(name: &str) -> Option<Benchmark> {
    Benchmark::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
}

fn benchmark_tag(b: Benchmark) -> u8 {
    match b {
        Benchmark::Bh => 0,
        Benchmark::Cc => 1,
        Benchmark::Dlp => 2,
        Benchmark::Vpr => 3,
        Benchmark::Stn => 4,
        Benchmark::Bfs => 5,
        Benchmark::Ccp => 6,
        Benchmark::Ge => 7,
        Benchmark::Hs => 8,
        Benchmark::Km => 9,
        Benchmark::Bp => 10,
        Benchmark::Sgm => 11,
    }
}

fn benchmark_from_tag(tag: u8) -> Result<Benchmark, SnapshotError> {
    Benchmark::all()
        .into_iter()
        .find(|b| benchmark_tag(*b) == tag)
        .ok_or(SnapshotError::Malformed {
            context: format!("Benchmark tag {tag}"),
        })
}

fn scale_tag(s: Scale) -> u8 {
    match s {
        Scale::Tiny => 0,
        Scale::Small => 1,
        Scale::Full => 2,
        Scale::Custom { .. } => 3,
    }
}

fn scale_from_tag(tag: u8) -> Result<Scale, SnapshotError> {
    match tag {
        0 => Ok(Scale::Tiny),
        1 => Ok(Scale::Small),
        2 => Ok(Scale::Full),
        other => Err(SnapshotError::Malformed {
            context: format!("Scale tag {other}"),
        }),
    }
}

fn protocol_tag(p: ProtocolKind) -> u8 {
    match p {
        ProtocolKind::Gtsc => 0,
        ProtocolKind::Tc => 1,
        ProtocolKind::TcWeak => 2,
        ProtocolKind::NoL1 => 3,
        ProtocolKind::L1NoCoherence => 4,
    }
}

fn protocol_from_tag(tag: u8) -> Result<ProtocolKind, SnapshotError> {
    match tag {
        0 => Ok(ProtocolKind::Gtsc),
        1 => Ok(ProtocolKind::Tc),
        2 => Ok(ProtocolKind::TcWeak),
        3 => Ok(ProtocolKind::NoL1),
        4 => Ok(ProtocolKind::L1NoCoherence),
        other => Err(SnapshotError::Malformed {
            context: format!("ProtocolKind tag {other}"),
        }),
    }
}

/// Parses a protocol name for the CLI (`gtsc`, `tc`, `tcweak`, `nol1`,
/// `nocoh`).
#[must_use]
pub fn protocol_from_name(name: &str) -> Option<ProtocolKind> {
    match name.to_ascii_lowercase().as_str() {
        "gtsc" => Some(ProtocolKind::Gtsc),
        "tc" => Some(ProtocolKind::Tc),
        "tcweak" => Some(ProtocolKind::TcWeak),
        "nol1" => Some(ProtocolKind::NoL1),
        "nocoh" => Some(ProtocolKind::L1NoCoherence),
        _ => None,
    }
}

fn consistency_tag(c: ConsistencyModel) -> u8 {
    match c {
        ConsistencyModel::Sc => 0,
        ConsistencyModel::Rc => 1,
    }
}

fn consistency_from_tag(tag: u8) -> Result<ConsistencyModel, SnapshotError> {
    match tag {
        0 => Ok(ConsistencyModel::Sc),
        1 => Ok(ConsistencyModel::Rc),
        other => Err(SnapshotError::Malformed {
            context: format!("ConsistencyModel tag {other}"),
        }),
    }
}

/// Parses a consistency name (`sc`/`rc`).
#[must_use]
pub fn consistency_from_name(name: &str) -> Option<ConsistencyModel> {
    match name.to_ascii_lowercase().as_str() {
        "sc" => Some(ConsistencyModel::Sc),
        "rc" => Some(ConsistencyModel::Rc),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u32) -> JobSpec {
        JobSpec {
            id,
            benchmark: Benchmark::Km,
            scale: Scale::Tiny,
            protocol: ProtocolKind::Gtsc,
            consistency: ConsistencyModel::Rc,
            seed: 7,
            lossy_permille: 40,
            bank_crashes: 1,
            cycle_budget: 2_000_000,
        }
    }

    #[test]
    fn job_spec_snap_round_trips() {
        let s = spec(42);
        let mut w = SnapWriter::new();
        s.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = JobSpec::load(&mut r).unwrap();
        assert_eq!(back, s);
        r.expect_end("spec").unwrap();
    }

    #[test]
    fn job_result_is_independent_of_slicing_and_checkpointing() {
        let s = spec(1);
        let whole = run_job(&s, None, 0, 0, |_| true);
        let sliced = run_job(&s, None, 333, 0, |_| true);
        assert_eq!(whole.result, sliced.result);
        assert_eq!(whole.result.outcome, JobOutcome::Completed);
        assert!(whole.result.cycles > 0);
    }

    #[test]
    fn checkpointed_job_resumes_to_the_same_result() {
        let dir = std::env::temp_dir().join(format!("gtsc-sweep-job-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let s = spec(2);
        let reference = run_job(&s, None, 0, 0, |_| true);

        // First execution: abandon after the first checkpoint lands by
        // only allowing one checkpoint, then cutting the run short via a
        // tiny cycle budget on a *clone* — instead, simply run with
        // checkpoints and verify a second run resumes from them.
        let store = CheckpointStore::new(dir.join("job.ck"));
        // Run a partial execution by hand: advance a few slices and
        // checkpoint, mimicking a crash before completion.
        let cfg = s.config();
        let kernel = s.kernel();
        let mut sim = SimBuilder::new(cfg).try_build().unwrap();
        let mut progress = gtsc_sim::KernelProgress::new(&*kernel);
        for _ in 0..4 {
            let done = sim.advance_kernel(&*kernel, &mut progress, 200).unwrap();
            assert!(done.is_none(), "partial run must not drain");
        }
        store
            .save(&sim.save_snapshot(Some(&progress)).unwrap())
            .unwrap();
        drop(sim);

        // "Restarted process": run_job finds the checkpoint and resumes.
        let resumed = run_job(&s, Some(&store), 250, 1_000, |_| true);
        assert!(resumed.resumed_from_checkpoint, "checkpoint was on disk");
        assert_eq!(resumed.result, reference.result);
        // Terminal path clears the store.
        assert!(store
            .load_latest(|_| Ok::<_, SnapshotError>(()))
            .unwrap()
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cycle_budget_is_a_deterministic_outcome() {
        let mut s = spec(3);
        s.cycle_budget = 500;
        let a = run_job(&s, None, 0, 0, |_| true);
        let b = run_job(&s, None, 128, 0, |_| true);
        assert_eq!(a.result.outcome, JobOutcome::CycleBudget);
        assert_eq!(a.result, b.result);
    }

    #[test]
    fn name_parsers_cover_the_paper_set() {
        for b in Benchmark::all() {
            assert_eq!(benchmark_from_name(b.name()), Some(b));
        }
        assert_eq!(scale_from_name("tiny"), Some(Scale::Tiny));
        assert_eq!(protocol_from_name("gtsc"), Some(ProtocolKind::Gtsc));
        assert_eq!(consistency_from_name("rc"), Some(ConsistencyModel::Rc));
        assert!(benchmark_from_name("nope").is_none());
    }
}
