//! The sweep service's metrics registry.
//!
//! Counters and log-bucketed histograms for the service-level health
//! signals (job wall time, checkpoint writes, journal fsyncs, retries,
//! sheds), rendered in the Prometheus text exposition format — the
//! `sweep` binary writes it to `--metrics-file` after the run and on
//! `SIGUSR1` mid-run.
//!
//! Everything here is execution bookkeeping: metrics never influence
//! results (which stay deterministic and journal-replayable), so the
//! registry is all relaxed atomics plus mutexed histograms, shared
//! freely across worker threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use gtsc_types::LatencyHist;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Shared counters + histograms for one sweep run.
#[derive(Debug, Default)]
pub struct SweepMetrics {
    /// Jobs that reached a journaled `Done` record this run.
    jobs_completed: AtomicU64,
    /// Transient-failure retry attempts (not jobs: a job retried twice
    /// counts 2).
    jobs_retried: AtomicU64,
    /// Jobs abandoned after exhausting the retry budget.
    jobs_abandoned: AtomicU64,
    /// Budget sheds reported (checkpoint frequency/disable, workers).
    sheds: AtomicU64,
    /// Checkpoints persisted to disk.
    checkpoints_written: AtomicU64,
    /// Wall time of one job execution, in milliseconds.
    job_wall_ms: Mutex<LatencyHist>,
    /// Wall time of one checkpoint write (encode excluded), in
    /// microseconds.
    checkpoint_write_us: Mutex<LatencyHist>,
    /// Wall time of one journal append incl. its fsync, in microseconds.
    journal_fsync_us: Mutex<LatencyHist>,
}

impl SweepMetrics {
    /// Fresh, all-zero registry.
    #[must_use]
    pub fn new() -> Self {
        SweepMetrics::default()
    }

    /// Counts one journaled job completion.
    pub fn job_completed(&self, wall_ms: u64) {
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        lock(&self.job_wall_ms).record(wall_ms);
    }

    /// Counts one transient-failure retry attempt.
    pub fn job_retried(&self) {
        self.jobs_retried.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one job abandoned after exhausting retries.
    pub fn job_abandoned(&self) {
        self.jobs_abandoned.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one budget shed.
    pub fn shed(&self) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one persisted checkpoint and its write latency.
    pub fn checkpoint_written(&self, write_us: u64) {
        self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
        lock(&self.checkpoint_write_us).record(write_us);
    }

    /// Records one journal append (incl. fsync) latency.
    pub fn journal_fsync(&self, us: u64) {
        lock(&self.journal_fsync_us).record(us);
    }

    /// Jobs completed so far (for progress displays and tests).
    #[must_use]
    pub fn jobs_completed(&self) -> u64 {
        self.jobs_completed.load(Ordering::Relaxed)
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (one `# TYPE` header per family; histograms as cumulative
    /// `_bucket{le="..."}` series plus `_sum` and `_count`).
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, help, v) in [
            (
                "gtsc_sweep_jobs_completed_total",
                "Jobs that reached a journaled Done record",
                self.jobs_completed.load(Ordering::Relaxed),
            ),
            (
                "gtsc_sweep_job_retries_total",
                "Transient-failure retry attempts",
                self.jobs_retried.load(Ordering::Relaxed),
            ),
            (
                "gtsc_sweep_jobs_abandoned_total",
                "Jobs abandoned after exhausting retries",
                self.jobs_abandoned.load(Ordering::Relaxed),
            ),
            (
                "gtsc_sweep_sheds_total",
                "Budget sheds (checkpoint frequency, checkpointing, workers)",
                self.sheds.load(Ordering::Relaxed),
            ),
            (
                "gtsc_sweep_checkpoints_written_total",
                "Checkpoints persisted to disk",
                self.checkpoints_written.load(Ordering::Relaxed),
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        }
        for (name, help, hist) in [
            (
                "gtsc_sweep_job_wall_milliseconds",
                "Wall time of one job execution",
                &self.job_wall_ms,
            ),
            (
                "gtsc_sweep_checkpoint_write_microseconds",
                "Wall time of one checkpoint write",
                &self.checkpoint_write_us,
            ),
            (
                "gtsc_sweep_journal_fsync_microseconds",
                "Wall time of one journal append including its fsync",
                &self.journal_fsync_us,
            ),
        ] {
            let h = lock(hist);
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &n) in h.buckets().iter().enumerate() {
                cumulative += n;
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    LatencyHist::bucket_upper_edge(i)
                ));
            }
            out.push_str(&format!(
                "{name}_bucket{{le=\"+Inf\"}} {cumulative}\n{name}_sum {}\n{name}_count {}\n",
                h.sum(),
                h.count()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_render_as_prometheus_text() {
        let m = SweepMetrics::new();
        m.job_completed(12);
        m.job_completed(900);
        m.job_retried();
        m.shed();
        m.checkpoint_written(45);
        m.journal_fsync(3);
        let text = m.render_prometheus();
        assert!(text.contains("gtsc_sweep_jobs_completed_total 2"), "{text}");
        assert!(text.contains("gtsc_sweep_job_retries_total 1"), "{text}");
        assert!(text.contains("gtsc_sweep_sheds_total 1"), "{text}");
        assert!(
            text.contains("# TYPE gtsc_sweep_job_wall_milliseconds histogram"),
            "{text}"
        );
        assert!(
            text.contains("gtsc_sweep_job_wall_milliseconds_count 2"),
            "{text}"
        );
        assert!(
            text.contains("gtsc_sweep_job_wall_milliseconds_sum 912"),
            "{text}"
        );
        assert!(text.contains("_bucket{le=\"+Inf\"} 2"), "{text}");
        // Buckets are cumulative: every bucket count is <= the next.
        let mut last = 0u64;
        for line in text.lines().filter(|l| {
            l.starts_with("gtsc_sweep_job_wall_milliseconds_bucket") && !l.contains("+Inf")
        }) {
            let n: u64 = line
                .rsplit(' ')
                .next()
                .and_then(|v| v.parse().ok())
                .expect("count parses");
            assert!(n >= last, "non-monotonic: {line}");
            last = n;
        }
        assert_eq!(last, 2);
    }

    #[test]
    fn empty_registry_renders_all_families() {
        let text = SweepMetrics::new().render_prometheus();
        for family in [
            "gtsc_sweep_jobs_completed_total",
            "gtsc_sweep_job_retries_total",
            "gtsc_sweep_jobs_abandoned_total",
            "gtsc_sweep_sheds_total",
            "gtsc_sweep_checkpoints_written_total",
            "gtsc_sweep_job_wall_milliseconds",
            "gtsc_sweep_checkpoint_write_microseconds",
            "gtsc_sweep_journal_fsync_microseconds",
        ] {
            assert!(text.contains(family), "missing {family}:\n{text}");
        }
    }
}
