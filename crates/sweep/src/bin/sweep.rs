//! `sweep` — run a resumable batch of G-TSC simulations.
//!
//! ```text
//! sweep --dir out/sweep1 --benchmarks KM,HS --seeds 4 --lossy 40
//! ```
//!
//! The batch is defined by the flags (benchmarks × seeds, one job
//! each); `--dir` holds the crash-safe journal, per-job checkpoints,
//! and the final `aggregates.txt`. Re-running the same command after a
//! crash (even `kill -9`) resumes: journaled shards are skipped,
//! checkpointed jobs continue mid-kernel, and `aggregates.txt` comes
//! out byte-identical to an uninterrupted run.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gtsc_sweep::{
    benchmark_from_name, consistency_from_name, protocol_from_name, run_sweep_with_metrics,
    scale_from_name, JobSpec, SweepConfig, SweepMetrics, TransientFaultPlan,
};
use gtsc_types::{ConsistencyModel, ProtocolKind};
use gtsc_workloads::{Benchmark, Scale};

const USAGE: &str = "\
sweep — resumable parameter sweeps over the G-TSC simulator

USAGE:
    sweep --dir DIR [OPTIONS]

OPTIONS:
    --dir DIR               output directory (journal, checkpoints, aggregates.txt) [required]
    --benchmarks A,B        comma-separated paper benchmarks (BH,CC,...) [default: KM,HS]
    --seeds N               fault seeds 1..=N per benchmark [default: 2]
    --scale S               tiny | small | full [default: tiny]
    --protocol P            gtsc | tc | tcweak | nol1 | nocoh [default: gtsc]
    --consistency C         sc | rc [default: rc]
    --lossy PERMILLE        NoC drop rate in permille [default: 0]
    --bank-crashes N        injected L2 bank crashes per job [default: 0]
    --cycle-budget N        deterministic per-job timeout in simulated cycles [default: 2000000]
    --workers N             worker threads [default: 2]
    --slice N               cycles per advance slice [default: 1000]
    --checkpoint-every N    simulated cycles between job checkpoints (0 = off) [default: 4000]
    --max-attempts N        bound on transient-failure retries [default: 3]
    --backoff-ms N          base retry backoff in milliseconds [default: 10]
    --disk-budget BYTES     checkpoint disk budget (0 = unlimited) [default: 0]
    --mem-budget BYTES      concurrency memory budget (0 = unlimited) [default: 0]
    --fail-first J:N,...    test hook: job J's first N attempts fail transiently
    --metrics-file PATH     write Prometheus-format service metrics to PATH after the
                            run and on SIGUSR1 mid-run
    --quiet                 only print errors
    --help                  this text
";

struct Cli {
    cfg: SweepConfig,
    benchmarks: Vec<Benchmark>,
    seeds: u64,
    scale: Scale,
    protocol: ProtocolKind,
    consistency: ConsistencyModel,
    lossy_permille: u16,
    bank_crashes: u16,
    cycle_budget: u64,
    plan: TransientFaultPlan,
    metrics_file: Option<PathBuf>,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut dir = None;
    let mut cli = Cli {
        cfg: SweepConfig::new("."),
        benchmarks: vec![Benchmark::Km, Benchmark::Hs],
        seeds: 2,
        scale: Scale::Tiny,
        protocol: ProtocolKind::Gtsc,
        consistency: ConsistencyModel::Rc,
        lossy_permille: 0,
        bank_crashes: 0,
        cycle_budget: 2_000_000,
        plan: TransientFaultPlan::default(),
        metrics_file: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--dir" => dir = Some(value("--dir")?.clone()),
            "--benchmarks" => {
                cli.benchmarks = value("--benchmarks")?
                    .split(',')
                    .map(|n| benchmark_from_name(n).ok_or_else(|| format!("unknown benchmark {n}")))
                    .collect::<Result<_, _>>()?;
            }
            "--seeds" => cli.seeds = parse_num(value("--seeds")?)?,
            "--scale" => {
                let v = value("--scale")?;
                cli.scale = scale_from_name(v).ok_or_else(|| format!("unknown scale {v}"))?;
            }
            "--protocol" => {
                let v = value("--protocol")?;
                cli.protocol =
                    protocol_from_name(v).ok_or_else(|| format!("unknown protocol {v}"))?;
            }
            "--consistency" => {
                let v = value("--consistency")?;
                cli.consistency =
                    consistency_from_name(v).ok_or_else(|| format!("unknown consistency {v}"))?;
            }
            "--lossy" => cli.lossy_permille = parse_num(value("--lossy")?)?,
            "--bank-crashes" => cli.bank_crashes = parse_num(value("--bank-crashes")?)?,
            "--cycle-budget" => cli.cycle_budget = parse_num(value("--cycle-budget")?)?,
            "--workers" => cli.cfg.workers = parse_num(value("--workers")?)?,
            "--slice" => cli.cfg.slice_cycles = parse_num(value("--slice")?)?,
            "--checkpoint-every" => {
                cli.cfg.checkpoint_every = parse_num(value("--checkpoint-every")?)?
            }
            "--max-attempts" => cli.cfg.max_attempts = parse_num(value("--max-attempts")?)?,
            "--backoff-ms" => cli.cfg.backoff_ms = parse_num(value("--backoff-ms")?)?,
            "--disk-budget" => cli.cfg.disk_budget_bytes = parse_num(value("--disk-budget")?)?,
            "--mem-budget" => cli.cfg.memory_budget_bytes = parse_num(value("--mem-budget")?)?,
            "--fail-first" => {
                let v = value("--fail-first")?;
                cli.plan = TransientFaultPlan::parse(v)
                    .ok_or_else(|| format!("bad --fail-first spec {v}"))?;
            }
            "--metrics-file" => cli.metrics_file = Some(value("--metrics-file")?.into()),
            "--quiet" => cli.quiet = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    let dir = dir.ok_or_else(|| format!("--dir is required\n\n{USAGE}"))?;
    cli.cfg.dir = dir.into();
    if cli.seeds == 0 {
        return Err("--seeds must be at least 1".into());
    }
    Ok(cli)
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number: {s}"))
}

fn build_specs(cli: &Cli) -> Vec<JobSpec> {
    let mut specs = Vec::new();
    let mut id = 0u32;
    for &benchmark in &cli.benchmarks {
        for seed in 1..=cli.seeds {
            specs.push(JobSpec {
                id,
                benchmark,
                scale: cli.scale,
                protocol: cli.protocol,
                consistency: cli.consistency,
                seed,
                lossy_permille: cli.lossy_permille,
                bank_crashes: cli.bank_crashes,
                cycle_budget: cli.cycle_budget,
            });
            id += 1;
        }
    }
    specs
}

/// Writes `aggregates.txt` atomically (tmp + fsync + rename) so a crash
/// during the final write cannot leave a torn report.
fn write_aggregates(dir: &Path, text: &str) -> std::io::Result<()> {
    let tmp = dir.join("aggregates.txt.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut f, text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join("aggregates.txt"))
}

/// Writes the Prometheus metrics text atomically (same tmp + fsync +
/// rename discipline as the aggregates: a scraper never sees a torn
/// file).
fn write_metrics(path: &Path, metrics: &SweepMetrics) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut f, metrics.render_prometheus().as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Set by the raw SIGUSR1 handler; drained by the watcher thread.
#[cfg(unix)]
static SIGUSR1_SEEN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_sigusr1(_sig: i32) {
    // Async-signal-safe: a single relaxed store, nothing else.
    SIGUSR1_SEEN.store(true, Ordering::Relaxed);
}

/// Installs a SIGUSR1 handler plus a watcher thread that re-dumps the
/// metrics file whenever the signal arrives (the Unix idiom for "show
/// me your counters *now*" on a long-running service). No-op off Unix.
fn spawn_metrics_dumper(path: &Path, metrics: &Arc<SweepMetrics>, stop: &Arc<AtomicBool>) {
    #[cfg(unix)]
    {
        // Raw libc-free signal(2) registration: the workspace is
        // offline and vendors no libc crate, and the handler is a
        // single atomic store, so the thin FFI declaration is safe.
        const SIGUSR1: i32 = 10;
        unsafe extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(SIGUSR1, on_sigusr1);
        }
        let path = path.to_path_buf();
        let metrics = Arc::clone(metrics);
        let stop = Arc::clone(stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if SIGUSR1_SEEN.swap(false, Ordering::Relaxed) {
                    if let Err(e) = write_metrics(&path, &metrics) {
                        eprintln!("metrics dump failed: {e}");
                    }
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        });
    }
    #[cfg(not(unix))]
    {
        let _ = (path, metrics, stop);
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cli = parse_args(args)?;
    let specs = build_specs(&cli);
    let metrics = Arc::new(SweepMetrics::new());
    let stop = Arc::new(AtomicBool::new(false));
    if let Some(path) = &cli.metrics_file {
        spawn_metrics_dumper(path, &metrics, &stop);
    }
    let outcome = run_sweep_with_metrics(&specs, &cli.cfg, &cli.plan, Some(&metrics))
        .map_err(|e| e.to_string())?;
    stop.store(true, Ordering::Relaxed);
    if let Some(path) = &cli.metrics_file {
        write_metrics(path, &metrics).map_err(|e| e.to_string())?;
    }
    let aggregates = outcome.render_aggregates(&specs);
    write_aggregates(&cli.cfg.dir, &aggregates).map_err(|e| e.to_string())?;
    if !cli.quiet {
        print!("{aggregates}");
        println!(
            "run: workers={} skipped-done={} resumed-from-checkpoint={} abandoned={}",
            outcome.workers_used,
            outcome.skipped_done,
            outcome.resumed_from_checkpoint,
            outcome.abandoned
        );
        for s in &outcome.shed {
            println!("shed: {s}");
        }
    }
    if outcome.abandoned > 0 {
        return Err(format!(
            "{} job(s) abandoned after retries; re-run to retry them",
            outcome.abandoned
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
