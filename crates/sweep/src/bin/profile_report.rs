//! `profile_report` — the latency observatory's offline reporter.
//!
//! Runs one benchmark kernel under the simulator and prints where every
//! SM cycle went (the per-SM cycle-reason table whose rows sum exactly
//! to the stepped cycles). Optional outputs: the flamegraph "folded"
//! dump (`--folded`), the Chrome-trace view (`--chrome`, spans included
//! when sampling is on), and the sampled-span summary (`--spans N`).
//!
//! The default report derives solely from [`gtsc_types::SimStats`] —
//! state that rides in snapshots — so a run restored from a mid-kernel
//! checkpoint reproduces it byte-identically (proved in
//! `tests/spans.rs`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use gtsc_sim::{render_folded, render_profile, spans_to_chrome_trace, GpuSim, SimBuilder};
use gtsc_sweep::{
    benchmark_from_name, consistency_from_name, protocol_from_name, scale_from_name, JobSpec,
};
use gtsc_types::ConsistencyModel;

const USAGE: &str = "\
profile_report: run one kernel and report per-SM cycle attribution

usage: profile_report [flags]

    --benchmark NAME    workload to run (default: bh)
    --scale NAME        tiny | small | full (default: tiny)
    --protocol NAME     gtsc | mesi | ... (default: gtsc)
    --consistency NAME  sc | rc (default: rc)
    --seed N            fault/sampling seed (default: 1)
    --lossy-permille N  NoC flit drop rate (default: 0 = reliable)
    --bank-crashes N    injected L2 bank crashes (default: 0)
    --cycle-budget N    simulated-cycle timeout, 0 = unbounded (default: 0)
    --spans N           sample 1-in-N accesses as causal spans (default: off)
    --folded PATH       write flamegraph-folded cycle buckets to PATH
    --chrome PATH       write a Chrome trace of the sampled spans to PATH
    --quiet             suppress the table (exports only)
    --help              this text
";

struct Cli {
    spec: JobSpec,
    span_rate: u64,
    folded: Option<PathBuf>,
    chrome: Option<PathBuf>,
    quiet: bool,
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("bad value for {flag}: {v}"))
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        spec: JobSpec {
            id: 0,
            benchmark: benchmark_from_name("bh").expect("bh is a known benchmark"),
            scale: scale_from_name("tiny").expect("tiny is a known scale"),
            protocol: protocol_from_name("gtsc").expect("gtsc is a known protocol"),
            consistency: ConsistencyModel::Rc,
            seed: 1,
            lossy_permille: 0,
            bank_crashes: 0,
            cycle_budget: 0,
        },
        span_rate: 0,
        folded: None,
        chrome: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--benchmark" => {
                let v = value("--benchmark")?;
                cli.spec.benchmark =
                    benchmark_from_name(v).ok_or_else(|| format!("unknown benchmark: {v}"))?;
            }
            "--scale" => {
                let v = value("--scale")?;
                cli.spec.scale = scale_from_name(v).ok_or_else(|| format!("unknown scale: {v}"))?;
            }
            "--protocol" => {
                let v = value("--protocol")?;
                cli.spec.protocol =
                    protocol_from_name(v).ok_or_else(|| format!("unknown protocol: {v}"))?;
            }
            "--consistency" => {
                let v = value("--consistency")?;
                cli.spec.consistency =
                    consistency_from_name(v).ok_or_else(|| format!("unknown consistency: {v}"))?;
            }
            "--seed" => cli.spec.seed = parse_num("--seed", value("--seed")?)?,
            "--lossy-permille" => {
                cli.spec.lossy_permille =
                    parse_num("--lossy-permille", value("--lossy-permille")?)?;
            }
            "--bank-crashes" => {
                cli.spec.bank_crashes = parse_num("--bank-crashes", value("--bank-crashes")?)?;
            }
            "--cycle-budget" => {
                cli.spec.cycle_budget = parse_num("--cycle-budget", value("--cycle-budget")?)?;
            }
            "--spans" => cli.span_rate = parse_num("--spans", value("--spans")?)?,
            "--folded" => cli.folded = Some(value("--folded")?.into()),
            "--chrome" => cli.chrome = Some(value("--chrome")?.into()),
            "--quiet" => cli.quiet = true,
            "--help" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag: {other}\n{USAGE}")),
        }
    }
    Ok(cli)
}

fn write_file(path: &Path, text: &str) -> Result<(), String> {
    std::fs::write(path, text).map_err(|e| format!("writing {}: {e}", path.display()))
}

fn build_sim(cli: &Cli) -> Result<GpuSim, String> {
    let mut cfg = cli.spec.config();
    if cli.span_rate > 0 {
        cfg.trace = cfg.trace.with_spans(cli.span_rate, cli.spec.seed);
    }
    SimBuilder::new(cfg).try_build().map_err(|e| e.to_string())
}

fn run(args: &[String]) -> Result<(), String> {
    let cli = parse_args(args)?;
    let mut sim = build_sim(&cli)?;
    let kernel = cli.spec.kernel();
    let report = sim.run_kernel(kernel.as_ref()).map_err(|e| e.to_string())?;
    if !cli.quiet {
        print!("{}", render_profile(&report.stats));
    }
    if let Some(path) = &cli.folded {
        write_file(path, &render_folded(&report.stats))?;
    }
    if let Some(path) = &cli.chrome {
        write_file(path, &spans_to_chrome_trace(&sim.spans()))?;
    }
    if cli.span_rate > 0 && !cli.quiet {
        let spans = sim.spans();
        let closed = spans.iter().filter(|s| s.closed.is_some()).count();
        println!(
            "spans: {} sampled, {} closed, {} suppressed by cap",
            spans.len(),
            closed,
            sim.spans_suppressed()
        );
    }
    for v in &report.violations {
        eprintln!("violation: {}", v.0);
    }
    if report.violations.is_empty() {
        Ok(())
    } else {
        Err(format!("{} invariant violations", report.violations.len()))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
