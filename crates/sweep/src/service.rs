//! The resumable, self-healing sweep service.
//!
//! [`run_sweep`] executes a batch of [`JobSpec`]s across a pool of
//! work-stealing worker threads. Its crash-safety contract:
//!
//! * Every completed shard is journaled (append-only, fsync'd) before
//!   it counts. A `kill -9` at any instant loses at most the shards
//!   that were still in flight.
//! * On restart with the same batch, journaled shards are **skipped**
//!   (never re-run) and in-flight jobs resume from their newest
//!   on-disk checkpoint; the final aggregate is byte-identical to an
//!   uninterrupted run because [`JobResult`]s are deterministic and
//!   exclude all execution bookkeeping (attempts, wall-clock, who ran
//!   what where).
//! * Transient failures (injected via [`TransientFaultPlan`] in tests;
//!   the analogue of a flaky executor in production) are retried with
//!   exponential backoff up to a bound; retries never change results.
//! * Under a disk budget the service sheds checkpoint work — first
//!   doubling the checkpoint interval at 50% consumption, then
//!   disabling checkpointing entirely at 100% — and under a memory
//!   budget it sheds parallelism. Every shed is reported in the
//!   outcome *and* journaled as a [`Record::Shed`].
//!
//! The simulator is deliberately **not** `Send` (its protocol
//! controllers and sanitizer share non-atomic state), so each worker
//! constructs and runs sims entirely on its own thread; only plain
//! data ([`JobSpec`], [`JobResult`]) crosses threads.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use gtsc_sim::CheckpointStore;
use gtsc_types::snap::{crc32, Snap, SnapWriter};

use crate::job::{run_job, JobResult, JobSpec};
use crate::journal::{Journal, Record};
use crate::metrics::SweepMetrics;

/// Rough peak memory of one concurrently-executing job (sim + snapshot
/// encode buffer), used to translate a memory budget into a worker
/// count. Deliberately generous; shedding parallelism too eagerly is
/// safe, shedding it too late is not.
pub const EST_JOB_BYTES: u64 = 8 << 20;

/// Upper bound on one retry backoff sleep.
const MAX_BACKOFF: Duration = Duration::from_secs(1);

/// Service-level tuning. Everything that could change *results* lives
/// in [`JobSpec`] instead; these knobs only change how execution is
/// scheduled, checkpointed, and retried.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Directory holding the journal, per-job checkpoints, and output.
    pub dir: PathBuf,
    /// Requested worker threads (may be shed under a memory budget).
    pub workers: usize,
    /// Cycles per [`gtsc_sim::GpuSim::advance_kernel`] slice (0 = run
    /// each job in one unbounded shot; disables checkpointing).
    pub slice_cycles: u64,
    /// Simulated cycles between checkpoints of a long job (0 = off).
    pub checkpoint_every: u64,
    /// Maximum attempts per job when transient failures strike.
    pub max_attempts: u32,
    /// Base backoff before the second attempt; doubles per retry.
    pub backoff_ms: u64,
    /// Disk budget for checkpoint bytes written this run (0 = unlimited).
    pub disk_budget_bytes: u64,
    /// Memory budget for concurrent jobs (0 = unlimited).
    pub memory_budget_bytes: u64,
}

impl SweepConfig {
    /// Defaults tuned for test-scale jobs.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SweepConfig {
            dir: dir.into(),
            workers: 2,
            slice_cycles: 1_000,
            checkpoint_every: 4_000,
            max_attempts: 3,
            backoff_ms: 10,
            disk_budget_bytes: 0,
            memory_budget_bytes: 0,
        }
    }
}

/// Deterministic transient-failure injection: job id → number of
/// initial attempts that fail "for transient reasons" (the stand-in
/// for a flaky executor, OOM kill, or preempted node). Used by the
/// retry tests to prove retries never leak into results.
#[derive(Debug, Clone, Default)]
pub struct TransientFaultPlan {
    /// Job id → how many leading attempts fail.
    pub fail_first: BTreeMap<u32, u32>,
}

impl TransientFaultPlan {
    /// Parses `"0:2,3:1"` (job 0 fails twice, job 3 once).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        let mut plan = TransientFaultPlan::default();
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (job, count) = part.split_once(':')?;
            plan.fail_first
                .insert(job.parse().ok()?, count.parse().ok()?);
        }
        Some(plan)
    }

    fn fails(&self, job: u32, attempt: u32) -> bool {
        self.fail_first.get(&job).is_some_and(|n| attempt <= *n)
    }
}

/// Why a sweep could not run.
#[derive(Debug)]
pub enum SweepError {
    /// Filesystem failure (journal, checkpoint dir, …).
    Io(io::Error),
    /// The journal in `dir` belongs to a different batch.
    BatchMismatch {
        /// Fingerprint of the requested batch.
        expected: u64,
        /// Fingerprint pinned in the journal header.
        found: u64,
    },
    /// The journal exists but does not start with a header record.
    MissingHeader,
    /// The spec list is unusable (empty, or duplicate ids).
    InvalidBatch(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Io(e) => write!(f, "sweep I/O error: {e}"),
            SweepError::BatchMismatch { expected, found } => write!(
                f,
                "journal belongs to a different batch (journal 0x{found:016x}, requested 0x{expected:016x}); use a fresh --dir"
            ),
            SweepError::MissingHeader => {
                write!(f, "journal has records but no batch header; refusing to guess")
            }
            SweepError::InvalidBatch(msg) => write!(f, "invalid batch: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<io::Error> for SweepError {
    fn from(e: io::Error) -> Self {
        SweepError::Io(e)
    }
}

/// What a sweep produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One deterministic result per job, sorted by id (journaled ones
    /// from earlier runs included).
    pub results: Vec<JobResult>,
    /// Human-readable shed reports (also journaled as [`Record::Shed`]).
    pub shed: Vec<String>,
    /// Jobs skipped because the journal already had their result.
    pub skipped_done: usize,
    /// Jobs that resumed from an on-disk checkpoint this run.
    pub resumed_from_checkpoint: usize,
    /// Jobs abandoned after exhausting transient-failure retries.
    pub abandoned: usize,
    /// Worker threads actually used after memory shedding.
    pub workers_used: usize,
}

impl SweepOutcome {
    /// Renders the byte-stable aggregate report: one line per result in
    /// id order plus totals. Everything non-deterministic (sheds, skip
    /// counts, worker counts) is deliberately excluded so this text is
    /// identical whether the batch ran uninterrupted or crashed and
    /// resumed any number of times.
    #[must_use]
    pub fn render_aggregates(&self, specs: &[JobSpec]) -> String {
        let by_id: BTreeMap<u32, &JobSpec> = specs.iter().map(|s| (s.id, s)).collect();
        let mut out = String::from("# gtsc sweep aggregates v1\n");
        let mut totals = (0u64, 0u64, 0u64);
        let mut outcomes: BTreeMap<&'static str, u64> = BTreeMap::new();
        for r in &self.results {
            out.push_str(&r.render(by_id.get(&r.id).copied()));
            out.push('\n');
            totals.0 += r.cycles;
            totals.1 += r.issued;
            totals.2 += r.violations;
            *outcomes.entry(r.outcome.label()).or_default() += 1;
        }
        out.push_str(&format!(
            "totals jobs={} cycles={} issued={} violations={}\n",
            self.results.len(),
            totals.0,
            totals.1,
            totals.2
        ));
        for (label, n) in outcomes {
            out.push_str(&format!("outcome {label}={n}\n"));
        }
        out
    }
}

/// Fingerprint pinning a batch: CRC of the snap-encoded spec list,
/// salted with its length.
#[must_use]
pub fn batch_fingerprint(specs: &[JobSpec]) -> u64 {
    let mut w = SnapWriter::new();
    w.u64(specs.len() as u64);
    for s in specs {
        s.save(&mut w);
    }
    let bytes = w.into_bytes();
    (u64::from(crc32(&bytes)) << 32) | (bytes.len() as u64 & 0xFFFF_FFFF)
}

/// Shared cross-worker state. All interior mutability; workers hold
/// only `&Shared`.
struct Shared<'a> {
    specs: &'a [JobSpec],
    cfg: &'a SweepConfig,
    plan: &'a TransientFaultPlan,
    queues: Vec<Mutex<VecDeque<usize>>>,
    journal: Mutex<Journal>,
    results: Mutex<Vec<JobResult>>,
    shed: Mutex<Vec<String>>,
    io_error: Mutex<Option<io::Error>>,
    disk_spent: AtomicU64,
    checkpoint_every: AtomicU64,
    checkpoints_disabled: AtomicBool,
    interval_doubled: AtomicBool,
    resumed: AtomicUsize,
    abandoned: AtomicUsize,
    /// Optional metrics registry (counters + latency histograms);
    /// metrics never influence results.
    metrics: Option<&'a SweepMetrics>,
}

/// A poisoned lock only means another worker panicked mid-update of a
/// Vec push or counter; the data is still structurally sound, so keep
/// going rather than cascading the panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared<'_> {
    /// Journals a record; on I/O failure latches the error (first one
    /// wins) and returns false so the worker can stop.
    fn journal_append(&self, record: &Record) -> bool {
        let t0 = Instant::now();
        match lock(&self.journal).append(record) {
            Ok(()) => {
                if let Some(m) = self.metrics {
                    m.journal_fsync(t0.elapsed().as_micros() as u64);
                }
                true
            }
            Err(e) => {
                let mut slot = lock(&self.io_error);
                if slot.is_none() {
                    *slot = Some(e);
                }
                false
            }
        }
    }

    fn report_shed(&self, what: String) {
        if let Some(m) = self.metrics {
            m.shed();
        }
        self.journal_append(&Record::Shed { what: what.clone() });
        lock(&self.shed).push(what);
    }

    /// Disk-budget gate for one checkpoint of `size` bytes. Sheds
    /// checkpoint *frequency* at 50% consumption and checkpointing
    /// entirely at 100%, reporting each shed exactly once.
    fn allow_checkpoint(&self, size: usize) -> bool {
        let budget = self.cfg.disk_budget_bytes;
        if budget == 0 {
            return true;
        }
        if self.checkpoints_disabled.load(Ordering::Relaxed) {
            return false;
        }
        let spent = self.disk_spent.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        if spent > budget {
            if !self.checkpoints_disabled.swap(true, Ordering::Relaxed) {
                self.report_shed(
                    "disk budget exhausted: checkpointing disabled (crash recovery will re-run in-flight jobs from cycle 0)"
                        .into(),
                );
            }
            return false;
        }
        if spent * 2 > budget && !self.interval_doubled.swap(true, Ordering::Relaxed) {
            let doubled = self
                .checkpoint_every
                .load(Ordering::Relaxed)
                .saturating_mul(2);
            self.checkpoint_every.store(doubled, Ordering::Relaxed);
            self.report_shed(format!(
                "disk budget half consumed: checkpoint interval doubled to {doubled} cycles"
            ));
        }
        true
    }

    /// Pops work: own queue front first, then steals from the back of
    /// the busiest sibling.
    fn next_job(&self, me: usize) -> Option<usize> {
        if let Some(job) = lock(&self.queues[me]).pop_front() {
            return Some(job);
        }
        for off in 1..self.queues.len() {
            let victim = (me + off) % self.queues.len();
            if let Some(job) = lock(&self.queues[victim]).pop_back() {
                return Some(job);
            }
        }
        None
    }

    /// Runs one job to a journaled result, retrying transient failures
    /// with exponential backoff. Returns false when the worker should
    /// stop (journal I/O failure).
    fn execute(&self, job_index: usize) -> bool {
        let spec = &self.specs[job_index];
        let store = CheckpointStore::new(self.cfg.dir.join(format!("job-{:04}.ck", spec.id)));
        let mut attempt = 1u32;
        loop {
            if !self.journal_append(&Record::Begin {
                job: spec.id,
                attempt,
            }) {
                return false;
            }
            if !self.plan.fails(spec.id, attempt) {
                let every = self.checkpoint_every.load(Ordering::Relaxed);
                let t0 = Instant::now();
                let run = run_job(spec, Some(&store), self.cfg.slice_cycles, every, |size| {
                    self.allow_checkpoint(size)
                });
                if run.resumed_from_checkpoint {
                    self.resumed.fetch_add(1, Ordering::Relaxed);
                }
                if !self.journal_append(&Record::Done {
                    result: run.result.clone(),
                }) {
                    return false;
                }
                if let Some(m) = self.metrics {
                    m.job_completed(t0.elapsed().as_millis() as u64);
                    for ns in &run.checkpoint_write_ns {
                        m.checkpoint_written(ns / 1_000);
                    }
                }
                lock(&self.results).push(run.result);
                return true;
            }
            // Transient failure: back off and retry, bounded.
            if attempt >= self.cfg.max_attempts {
                self.abandoned.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.metrics {
                    m.job_abandoned();
                }
                self.report_shed(format!(
                    "job {:04} abandoned after {attempt} transient failures (will retry on next sweep run)",
                    spec.id
                ));
                return true;
            }
            let backoff = Duration::from_millis(
                self.cfg
                    .backoff_ms
                    .saturating_mul(1u64 << (attempt - 1).min(16)),
            )
            .min(MAX_BACKOFF);
            std::thread::sleep(backoff);
            if let Some(m) = self.metrics {
                m.job_retried();
            }
            attempt += 1;
        }
    }
}

/// Runs (or resumes) a batch. See the module docs for the contract.
///
/// # Errors
///
/// * [`SweepError::InvalidBatch`] — empty batch or duplicate job ids.
/// * [`SweepError::BatchMismatch`] / [`SweepError::MissingHeader`] —
///   `cfg.dir` holds a journal for a different batch.
/// * [`SweepError::Io`] — filesystem failure.
pub fn run_sweep(
    specs: &[JobSpec],
    cfg: &SweepConfig,
    plan: &TransientFaultPlan,
) -> Result<SweepOutcome, SweepError> {
    run_sweep_with_metrics(specs, cfg, plan, None)
}

/// [`run_sweep`] with a [`SweepMetrics`] registry attached: workers
/// record job wall time, checkpoint/journal latencies, retries, and
/// sheds as they happen (so a mid-run `SIGUSR1` dump sees live values).
///
/// # Errors
///
/// Same contract as [`run_sweep`].
pub fn run_sweep_with_metrics(
    specs: &[JobSpec],
    cfg: &SweepConfig,
    plan: &TransientFaultPlan,
    metrics: Option<&SweepMetrics>,
) -> Result<SweepOutcome, SweepError> {
    if specs.is_empty() {
        return Err(SweepError::InvalidBatch("no jobs".into()));
    }
    let mut ids = BTreeSet::new();
    for s in specs {
        if !ids.insert(s.id) {
            return Err(SweepError::InvalidBatch(format!(
                "duplicate job id {}",
                s.id
            )));
        }
    }
    std::fs::create_dir_all(&cfg.dir)?;

    let fingerprint = batch_fingerprint(specs);
    let (mut journal, records) = Journal::open(cfg.dir.join("journal.bin"))?;
    let mut done: BTreeMap<u32, JobResult> = BTreeMap::new();
    match records.first() {
        None => {
            journal.append(&Record::Header {
                fingerprint,
                n_jobs: specs.len() as u32,
            })?;
        }
        Some(Record::Header {
            fingerprint: found, ..
        }) if *found == fingerprint => {
            for r in &records {
                if let Record::Done { result } = r {
                    done.insert(result.id, result.clone());
                }
            }
        }
        Some(Record::Header {
            fingerprint: found, ..
        }) => {
            return Err(SweepError::BatchMismatch {
                expected: fingerprint,
                found: *found,
            });
        }
        Some(_) => return Err(SweepError::MissingHeader),
    }

    let pending: Vec<usize> = specs
        .iter()
        .enumerate()
        .filter(|(_, s)| !done.contains_key(&s.id))
        .map(|(i, _)| i)
        .collect();
    let skipped_done = specs.len() - pending.len();

    // Memory budget → parallelism shedding.
    let mut workers_used = cfg.workers.max(1).min(pending.len().max(1));
    let mut mem_shed = None;
    if cfg.memory_budget_bytes > 0 {
        let affordable = (cfg.memory_budget_bytes / EST_JOB_BYTES).max(1) as usize;
        if affordable < workers_used {
            mem_shed = Some(format!(
                "memory budget {} B affords {affordable} concurrent jobs (~{} B each): workers reduced from {workers_used}",
                cfg.memory_budget_bytes, EST_JOB_BYTES
            ));
            workers_used = affordable;
        }
    }

    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers_used)
        .map(|_| Mutex::new(VecDeque::new()))
        .collect();
    for (i, job) in pending.iter().enumerate() {
        lock(&queues[i % workers_used]).push_back(*job);
    }

    let shared = Shared {
        specs,
        cfg,
        plan,
        queues,
        journal: Mutex::new(journal),
        results: Mutex::new(done.into_values().collect()),
        shed: Mutex::new(Vec::new()),
        io_error: Mutex::new(None),
        disk_spent: AtomicU64::new(0),
        checkpoint_every: AtomicU64::new(cfg.checkpoint_every),
        checkpoints_disabled: AtomicBool::new(false),
        interval_doubled: AtomicBool::new(false),
        resumed: AtomicUsize::new(0),
        abandoned: AtomicUsize::new(0),
        metrics,
    };
    if let Some(msg) = mem_shed {
        shared.report_shed(msg);
    }

    if !pending.is_empty() {
        std::thread::scope(|scope| {
            for w in 0..workers_used {
                let shared = &shared;
                scope.spawn(move || {
                    while let Some(job) = shared.next_job(w) {
                        if !shared.execute(job) {
                            break;
                        }
                    }
                });
            }
        });
    }

    if let Some(e) = lock(&shared.io_error).take() {
        return Err(SweepError::Io(e));
    }
    let mut results = lock(&shared.results).drain(..).collect::<Vec<_>>();
    results.sort_by_key(|r| r.id);
    let shed = lock(&shared.shed).drain(..).collect();
    Ok(SweepOutcome {
        results,
        shed,
        skipped_done,
        resumed_from_checkpoint: shared.resumed.load(Ordering::Relaxed),
        abandoned: shared.abandoned.load(Ordering::Relaxed),
        workers_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_types::{ConsistencyModel, ProtocolKind};
    use gtsc_workloads::{Benchmark, Scale};
    use std::path::Path;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gtsc-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn batch(n_seeds: u64) -> Vec<JobSpec> {
        let mut specs = Vec::new();
        for (b, bench) in [Benchmark::Km, Benchmark::Hs].into_iter().enumerate() {
            for seed in 1..=n_seeds {
                specs.push(JobSpec {
                    id: (b as u64 * n_seeds + seed - 1) as u32,
                    benchmark: bench,
                    scale: Scale::Tiny,
                    protocol: ProtocolKind::Gtsc,
                    consistency: ConsistencyModel::Rc,
                    seed,
                    lossy_permille: 30,
                    bank_crashes: 0,
                    cycle_budget: 2_000_000,
                });
            }
        }
        specs
    }

    fn journal_records(dir: &Path) -> Vec<Record> {
        let bytes = std::fs::read(dir.join("journal.bin")).unwrap();
        crate::journal::replay(&bytes).0
    }

    #[test]
    fn sweep_completes_all_jobs_and_aggregates_are_reproducible() {
        let specs = batch(2);
        let a = run_sweep(
            &specs,
            &SweepConfig::new(tmp("repro-a")),
            &TransientFaultPlan::default(),
        )
        .unwrap();
        let b = {
            let mut cfg = SweepConfig::new(tmp("repro-b"));
            cfg.workers = 4; // different parallelism, same bytes
            cfg.slice_cycles = 311;
            run_sweep(&specs, &cfg, &TransientFaultPlan::default()).unwrap()
        };
        assert_eq!(a.results.len(), specs.len());
        assert_eq!(
            a.render_aggregates(&specs),
            b.render_aggregates(&specs),
            "aggregates must not depend on workers or slicing"
        );
    }

    #[test]
    fn finished_batch_reruns_as_a_noop() {
        let specs = batch(1);
        let dir = tmp("noop");
        let cfg = SweepConfig::new(&dir);
        let first = run_sweep(&specs, &cfg, &TransientFaultPlan::default()).unwrap();
        let n_records = journal_records(&dir).len();
        let second = run_sweep(&specs, &cfg, &TransientFaultPlan::default()).unwrap();
        assert_eq!(second.skipped_done, specs.len());
        assert_eq!(
            journal_records(&dir).len(),
            n_records,
            "no new records on a no-op rerun"
        );
        assert_eq!(
            first.render_aggregates(&specs),
            second.render_aggregates(&specs)
        );
    }

    #[test]
    fn transient_failures_retry_without_changing_aggregates() {
        let specs = batch(1);
        let clean = run_sweep(
            &specs,
            &SweepConfig::new(tmp("retry-clean")),
            &TransientFaultPlan::default(),
        )
        .unwrap();
        let mut cfg = SweepConfig::new(tmp("retry-flaky"));
        cfg.backoff_ms = 1;
        let plan = TransientFaultPlan::parse("0:2,1:1").unwrap();
        let flaky = run_sweep(&specs, &cfg, &plan).unwrap();
        assert_eq!(flaky.abandoned, 0);
        assert_eq!(
            clean.render_aggregates(&specs),
            flaky.render_aggregates(&specs),
            "retries must be invisible in aggregates"
        );
        // The journal shows the extra attempts.
        let begins = journal_records(&cfg.dir)
            .iter()
            .filter(|r| matches!(r, Record::Begin { job: 0, .. }))
            .count();
        assert_eq!(begins, 3, "job 0 failed twice then succeeded");
    }

    #[test]
    fn exhausted_retries_abandon_the_job_but_keep_the_batch_alive() {
        let specs = batch(1);
        let mut cfg = SweepConfig::new(tmp("abandon"));
        cfg.backoff_ms = 1;
        cfg.max_attempts = 2;
        let plan = TransientFaultPlan::parse("0:99").unwrap();
        let out = run_sweep(&specs, &cfg, &plan).unwrap();
        assert_eq!(out.abandoned, 1);
        assert_eq!(out.results.len(), specs.len() - 1, "other jobs still ran");
        assert!(out.shed.iter().any(|s| s.contains("abandoned")));
        // A rerun without the fault plan finishes the abandoned job.
        let again = run_sweep(&specs, &cfg, &TransientFaultPlan::default()).unwrap();
        assert_eq!(again.results.len(), specs.len());
    }

    #[test]
    fn disk_budget_sheds_checkpoint_work_without_changing_results() {
        let specs = batch(1);
        let clean = run_sweep(
            &specs,
            &SweepConfig::new(tmp("disk-clean")),
            &TransientFaultPlan::default(),
        )
        .unwrap();
        let mut cfg = SweepConfig::new(tmp("disk-tight"));
        cfg.slice_cycles = 200;
        cfg.checkpoint_every = 400; // checkpoint eagerly to hit the budget
        cfg.disk_budget_bytes = 64 * 1024;
        let tight = run_sweep(&specs, &cfg, &TransientFaultPlan::default()).unwrap();
        assert_eq!(
            clean.render_aggregates(&specs),
            tight.render_aggregates(&specs),
            "shedding checkpoints must not change results"
        );
        assert!(
            tight.shed.iter().any(|s| s.contains("disk budget")),
            "shed report expected, got {:?}",
            tight.shed
        );
    }

    #[test]
    fn memory_budget_sheds_parallelism() {
        let specs = batch(1);
        let mut cfg = SweepConfig::new(tmp("mem"));
        cfg.workers = 4;
        cfg.memory_budget_bytes = EST_JOB_BYTES; // affords exactly one
        let out = run_sweep(&specs, &cfg, &TransientFaultPlan::default()).unwrap();
        assert_eq!(out.workers_used, 1);
        assert!(out.shed.iter().any(|s| s.contains("memory budget")));
        assert_eq!(out.results.len(), specs.len());
    }

    #[test]
    fn different_batch_in_same_dir_is_rejected() {
        let dir = tmp("mismatch");
        let cfg = SweepConfig::new(&dir);
        let specs = batch(1);
        run_sweep(&specs, &cfg, &TransientFaultPlan::default()).unwrap();
        let other = batch(2);
        match run_sweep(&other, &cfg, &TransientFaultPlan::default()) {
            Err(SweepError::BatchMismatch { .. }) => {}
            other => panic!("expected BatchMismatch, got {other:?}"),
        }
    }
}
