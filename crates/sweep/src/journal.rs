//! Append-only, fsync'd, crash-tolerant sweep journal.
//!
//! The journal is the sweep's source of truth for "which shards are
//! already done". Each record is framed as
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: snap encoding]
//! ```
//!
//! and every append is followed by `fdatasync`, so a record either
//! exists completely or not at all from the reader's point of view. A
//! `kill -9` (or power cut) can leave a *torn tail* — a partially
//! written final record; replay detects it (short frame or CRC
//! mismatch), drops it, and [`Journal::open`] truncates the file back
//! to the last intact record before appending resumes. Nothing is ever
//! rewritten in place.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use gtsc_types::snap::{crc32, Snap, SnapReader, SnapWriter, SnapshotError};

use crate::job::JobResult;

/// Largest record frame replay will accept; anything bigger is treated
/// as corruption (the length field itself may be garbage).
const MAX_RECORD_BYTES: u32 = 16 * 1024 * 1024;

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// First record of a batch: pins the job list so a restart with a
    /// different batch is rejected instead of silently mixed.
    Header {
        /// Fingerprint of the snap-encoded spec list.
        fingerprint: u64,
        /// Number of jobs in the batch.
        n_jobs: u32,
    },
    /// A worker is about to execute (or re-execute) a job.
    Begin {
        /// Job id.
        job: u32,
        /// 1-based attempt number within this process.
        attempt: u32,
    },
    /// A job finished with a deterministic result; it is never run again.
    Done {
        /// The journaled result.
        result: JobResult,
    },
    /// The service degraded itself under a resource budget.
    Shed {
        /// What was shed and why.
        what: String,
    },
}

impl Snap for Record {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            Record::Header {
                fingerprint,
                n_jobs,
            } => {
                w.u8(0);
                fingerprint.save(w);
                n_jobs.save(w);
            }
            Record::Begin { job, attempt } => {
                w.u8(1);
                job.save(w);
                attempt.save(w);
            }
            Record::Done { result } => {
                w.u8(2);
                result.save(w);
            }
            Record::Shed { what } => {
                w.u8(3);
                what.save(w);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(Record::Header {
                fingerprint: Snap::load(r)?,
                n_jobs: Snap::load(r)?,
            }),
            1 => Ok(Record::Begin {
                job: Snap::load(r)?,
                attempt: Snap::load(r)?,
            }),
            2 => Ok(Record::Done {
                result: Snap::load(r)?,
            }),
            3 => Ok(Record::Shed {
                what: Snap::load(r)?,
            }),
            other => Err(SnapshotError::Malformed {
                context: format!("journal record tag {other}"),
            }),
        }
    }
}

/// Decodes `bytes` into records, stopping at the first torn or corrupt
/// frame. Returns the records and the byte offset of the end of the
/// last intact record (the safe truncation point).
#[must_use]
pub fn replay(bytes: &[u8]) -> (Vec<Record>, usize) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let rest = &bytes[offset..];
        if rest.len() < 8 {
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_RECORD_BYTES || (len as usize) > rest.len() - 8 {
            break; // torn tail or garbage length
        }
        let payload = &rest[8..8 + len as usize];
        if crc32(payload) != crc {
            break;
        }
        let mut r = SnapReader::new(payload);
        let Ok(record) = Record::load(&mut r) else {
            break;
        };
        if r.expect_end("journal record").is_err() {
            break;
        }
        records.push(record);
        offset += 8 + len as usize;
    }
    (records, offset)
}

/// An open, append-only journal file.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, replays every intact
    /// record, truncates any torn tail, and positions the write cursor
    /// for appending. Returns the journal and the replayed records.
    ///
    /// # Errors
    ///
    /// Any filesystem error.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<(Journal, Vec<Record>)> {
        let path = path.into();
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (records, good) = replay(&bytes);
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)?;
        if good as u64 != file.metadata()?.len() {
            file.set_len(good as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((Journal { file, path }, records))
    }

    /// The journal's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and syncs it to disk before returning, so a
    /// crash immediately after cannot lose it.
    ///
    /// # Errors
    ///
    /// Any filesystem error.
    pub fn append(&mut self, record: &Record) -> io::Result<()> {
        let mut w = SnapWriter::new();
        record.save(&mut w);
        let payload = w.into_bytes();
        let len: u32 = payload
            .len()
            .try_into()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "journal record too large"))?;
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobOutcome;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gtsc-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d.join("journal.bin")
    }

    fn done(id: u32) -> Record {
        Record::Done {
            result: JobResult {
                id,
                outcome: JobOutcome::Completed,
                cycles: 100 + u64::from(id),
                issued: 7,
                l1_accesses: 5,
                l1_hits: 3,
                violations: 0,
                stats_crc: 0xDEAD_BEEF,
                image_crc: 0x1234_5678,
                detail: String::new(),
            },
        }
    }

    #[test]
    fn append_then_reopen_replays_everything() {
        let path = tmp("roundtrip");
        let (mut j, initial) = Journal::open(&path).unwrap();
        assert!(initial.is_empty());
        let records = vec![
            Record::Header {
                fingerprint: 0xABCD,
                n_jobs: 2,
            },
            Record::Begin { job: 0, attempt: 1 },
            done(0),
            Record::Shed {
                what: "checkpoint frequency halved".into(),
            },
            Record::Begin { job: 1, attempt: 2 },
            done(1),
        ];
        for r in &records {
            j.append(r).unwrap();
        }
        drop(j);
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed, records);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let path = tmp("torn");
        let (mut j, _) = Journal::open(&path).unwrap();
        j.append(&Record::Header {
            fingerprint: 1,
            n_jobs: 1,
        })
        .unwrap();
        j.append(&done(0)).unwrap();
        drop(j);
        let good_len = fs::metadata(&path).unwrap().len();

        // Simulate a crash mid-append: garbage half-frame at the end.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0x55, 0x00, 0x00, 0x00, 0x99]);
        fs::write(&path, &bytes).unwrap();

        let (j, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        drop(j);
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            good_len,
            "tail truncated"
        );
    }

    #[test]
    fn corrupt_crc_stops_replay_cleanly() {
        let path = tmp("crc");
        let (mut j, _) = Journal::open(&path).unwrap();
        j.append(&done(0)).unwrap();
        j.append(&done(1)).unwrap();
        drop(j);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a bit inside the *second* record's payload.
        let n = bytes.len();
        bytes[n - 3] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let (records, _) = replay(&bytes);
        assert_eq!(records.len(), 1, "only the intact prefix survives");
    }

    #[test]
    fn oversized_length_field_is_treated_as_corruption() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0; 16]);
        let (records, good) = replay(&bytes);
        assert!(records.is_empty());
        assert_eq!(good, 0);
    }
}
