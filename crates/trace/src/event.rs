//! The protocol event taxonomy.
//!
//! Tardis-style protocols are debugged in terms of their timestamp
//! transitions (lease grants, renewals, expiries, future-scheduled
//! writes, rollovers), so every event carries the logical-time facts a
//! post-mortem needs, not just a name. Events are small `Copy` values —
//! cheap to push into a ring buffer on the protocol paths.

use gtsc_types::{BlockAddr, Cycle, StallKind};

/// Coarse event category; each class owns one bit of
/// [`gtsc_types::TraceConfig::class_mask`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum EventClass {
    /// Cache lookups: hits, cold misses, expired (coherence) misses,
    /// accesses blocked on a pending write.
    Access = 0,
    /// Logical-lease machinery: grants, renewals, fills.
    Lease = 1,
    /// Store lifecycle: commit at L2, ack at L1, replay drops.
    Store = 2,
    /// Line evictions (L1 or L2).
    Eviction = 3,
    /// Timestamp rollover epochs (Section V-D).
    Rollover = 4,
    /// SM pipeline: warp issue and stall.
    Warp = 5,
    /// Interconnect packet send/deliver.
    Noc = 6,
    /// DRAM enqueue/service.
    Dram = 7,
    /// Reliable transport: drops, corruption, retransmits, NACKs, and
    /// bank crash/recovery.
    Transport = 8,
}

impl EventClass {
    /// All classes enabled.
    pub const ALL: u16 = 0x1FF;

    /// This class's bit in a [`gtsc_types::TraceConfig::class_mask`].
    #[must_use]
    pub fn bit(self) -> u16 {
        1 << (self as u16)
    }

    /// Short lowercase label (`access`, `lease`, ...).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventClass::Access => "access",
            EventClass::Lease => "lease",
            EventClass::Store => "store",
            EventClass::Eviction => "eviction",
            EventClass::Rollover => "rollover",
            EventClass::Warp => "warp",
            EventClass::Noc => "noc",
            EventClass::Dram => "dram",
            EventClass::Transport => "transport",
        }
    }
}

/// Which component recorded an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scope {
    /// An SM and its private L1 (index = SM id).
    Sm(u16),
    /// A shared-cache bank.
    L2Bank(u16),
    /// A network: `0` = request net, `1` = response net.
    Noc(u16),
    /// A DRAM partition.
    Dram(u16),
    /// A multi-GPU device's L2 shard (fabric endpoint); the index is
    /// the device id.
    Device(u16),
    /// The home-node directory joining the devices (index reserved for
    /// future multi-home topologies; today always 0). Sorts after every
    /// device so per-scope reports read devices-then-home.
    Home(u16),
}

impl Scope {
    /// The SM index, when this scope is SM-local.
    #[must_use]
    pub fn sm(self) -> Option<u16> {
        match self {
            Scope::Sm(i) => Some(i),
            _ => None,
        }
    }
}

impl gtsc_types::snap::Snap for Scope {
    fn save(&self, w: &mut gtsc_types::snap::SnapWriter) {
        let (tag, i) = match self {
            Scope::Sm(i) => (0u8, *i),
            Scope::L2Bank(i) => (1, *i),
            Scope::Noc(i) => (2, *i),
            Scope::Dram(i) => (3, *i),
            Scope::Device(i) => (4, *i),
            Scope::Home(i) => (5, *i),
        };
        w.u8(tag);
        w.u16(i);
    }

    fn load(
        r: &mut gtsc_types::snap::SnapReader<'_>,
    ) -> Result<Self, gtsc_types::snap::SnapshotError> {
        let tag = r.u8()?;
        let i = r.u16()?;
        match tag {
            0 => Ok(Scope::Sm(i)),
            1 => Ok(Scope::L2Bank(i)),
            2 => Ok(Scope::Noc(i)),
            3 => Ok(Scope::Dram(i)),
            4 => Ok(Scope::Device(i)),
            5 => Ok(Scope::Home(i)),
            other => Err(gtsc_types::snap::SnapshotError::Malformed {
                context: format!("Scope tag {other}"),
            }),
        }
    }
}

impl std::fmt::Display for Scope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scope::Sm(i) => write!(f, "sm{i}"),
            Scope::L2Bank(i) => write!(f, "l2[{i}]"),
            Scope::Noc(0) => write!(f, "noc.req"),
            Scope::Noc(_) => write!(f, "noc.resp"),
            Scope::Dram(i) => write!(f, "dram[{i}]"),
            Scope::Device(i) => write!(f, "dev{i}"),
            Scope::Home(i) => write!(f, "home{i}"),
        }
    }
}

/// One protocol event. Timestamps are raw logical-time values
/// ([`gtsc_types::Timestamp`]`.0`) so the enum stays `Copy` and free of
/// protocol-crate dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// L1/L2 lookup hit with a live (unexpired) lease.
    Hit {
        /// Block looked up.
        block: BlockAddr,
        /// Accessing warp slot.
        warp: u16,
        /// The accessor's logical timestamp at lookup (physical `now`
        /// for the TC baselines).
        warp_ts: u64,
        /// The hit line's read-timestamp upper bound (lease expiry
        /// cycle for the TC baselines). A live hit requires
        /// `warp_ts <= rts`; the `load-past-rts` trace lint enforces
        /// this offline.
        rts: u64,
    },
    /// Lookup missed: tag absent.
    ColdMiss {
        /// Block looked up.
        block: BlockAddr,
        /// Accessing warp slot.
        warp: u16,
    },
    /// Tag matched but the lease had expired — a coherence miss
    /// (Section II-D).
    ExpiredMiss {
        /// Block looked up.
        block: BlockAddr,
        /// The accessing warp's logical timestamp.
        warp_ts: u64,
        /// The line's (expired) read-timestamp upper bound.
        rts: u64,
    },
    /// Access blocked on a line awaiting its write ack (update
    /// visibility, Section V-A).
    BlockedOnWrite {
        /// Locked block.
        block: BlockAddr,
    },
    /// L2 granted a fresh lease `[wts, rts]` with fill data.
    LeaseGrant {
        /// Leased block.
        block: BlockAddr,
        /// Write timestamp.
        wts: u64,
        /// Read-timestamp upper bound.
        rts: u64,
    },
    /// Lease extended without data (renewal, Section II-D).
    Renewal {
        /// Renewed block.
        block: BlockAddr,
        /// New read-timestamp upper bound.
        rts: u64,
    },
    /// L1 installed fill data for an earlier miss.
    FillApplied {
        /// Filled block.
        block: BlockAddr,
    },
    /// L2 committed a store at logical time `wts` (future-scheduled
    /// write).
    StoreCommit {
        /// Written block.
        block: BlockAddr,
        /// Commit write-timestamp.
        wts: u64,
    },
    /// L1 received the global-performance ack for a store.
    WriteAck {
        /// Acked block.
        block: BlockAddr,
    },
    /// L2 dropped a duplicate store/atomic via the replay filter.
    ReplayDrop {
        /// Affected block.
        block: BlockAddr,
    },
    /// A line was evicted.
    Eviction {
        /// Evicted block.
        block: BlockAddr,
        /// The evicted line's read-timestamp upper bound (lease expiry
        /// cycle for the TC baselines); `0` when unknown. Lets the
        /// `evict-live-lease` trace lint spot evictions that dropped an
        /// unexpired lease.
        rts: u64,
    },
    /// Timestamp rollover: the component entered reset epoch `epoch`
    /// (Section V-D).
    Rollover {
        /// New epoch.
        epoch: u64,
    },
    /// A warp issued an instruction.
    WarpIssue {
        /// Issuing warp slot.
        warp: u16,
    },
    /// A warp spent this cycle stalled.
    WarpStall {
        /// Stalled warp slot.
        warp: u16,
        /// Why it could not issue.
        kind: StallKind,
    },
    /// A packet entered a network.
    PacketSend {
        /// Source port.
        src: u16,
        /// Destination port.
        dst: u16,
        /// Payload size in bytes.
        bytes: u32,
    },
    /// A packet left a network.
    PacketDeliver {
        /// Source port.
        src: u16,
        /// Destination port.
        dst: u16,
    },
    /// A packet vanished on the wire (loss fault).
    PacketDrop {
        /// Source port.
        src: u16,
        /// Destination port.
        dst: u16,
    },
    /// A packet arrived with an unusable payload (loss fault); only the
    /// header survived.
    PacketCorrupt {
        /// Source port.
        src: u16,
        /// Destination port.
        dst: u16,
    },
    /// The transport re-sent an unacked segment.
    Retransmit {
        /// Source port of the flow.
        src: u16,
        /// Destination port of the flow.
        dst: u16,
        /// Sequence number re-sent.
        seq: u64,
        /// Cycles since the segment was last sent.
        age: u64,
        /// The (backed-off) timeout that expired; `0` for NACK-driven
        /// retransmits, which do not wait for a timeout.
        timeout: u64,
        /// Whether a NACK (rather than a timeout) triggered it.
        nack: bool,
    },
    /// A receiver asked for a missing/corrupted segment.
    Nack {
        /// Source port of the flow being NACKed (the sender).
        src: u16,
        /// Destination port of the flow (the NACKing receiver).
        dst: u16,
        /// The sequence number the receiver expects next.
        expected: u64,
    },
    /// An L2 bank crashed and re-entered service empty at `epoch`.
    BankReset {
        /// Crashed bank.
        bank: u16,
        /// The reset epoch the recovery bumped the system into.
        epoch: u64,
    },
    /// A request entered a DRAM partition queue.
    DramEnqueue {
        /// Requested block.
        block: BlockAddr,
        /// Whether it is a write burst.
        write: bool,
    },
    /// A DRAM bank started servicing a request.
    DramService {
        /// Serviced block.
        block: BlockAddr,
        /// Whether it is a write burst.
        write: bool,
    },
}

impl EventKind {
    /// The filter class this event belongs to.
    #[must_use]
    pub fn class(&self) -> EventClass {
        match self {
            EventKind::Hit { .. }
            | EventKind::ColdMiss { .. }
            | EventKind::ExpiredMiss { .. }
            | EventKind::BlockedOnWrite { .. } => EventClass::Access,
            EventKind::LeaseGrant { .. }
            | EventKind::Renewal { .. }
            | EventKind::FillApplied { .. } => EventClass::Lease,
            EventKind::StoreCommit { .. }
            | EventKind::WriteAck { .. }
            | EventKind::ReplayDrop { .. } => EventClass::Store,
            EventKind::Eviction { .. } => EventClass::Eviction,
            EventKind::Rollover { .. } => EventClass::Rollover,
            EventKind::WarpIssue { .. } | EventKind::WarpStall { .. } => EventClass::Warp,
            EventKind::PacketSend { .. } | EventKind::PacketDeliver { .. } => EventClass::Noc,
            EventKind::PacketDrop { .. }
            | EventKind::PacketCorrupt { .. }
            | EventKind::Retransmit { .. }
            | EventKind::Nack { .. }
            | EventKind::BankReset { .. } => EventClass::Transport,
            EventKind::DramEnqueue { .. } | EventKind::DramService { .. } => EventClass::Dram,
        }
    }

    /// The block this event touches, when it has one (address-range
    /// filtering).
    #[must_use]
    pub fn block(&self) -> Option<BlockAddr> {
        match *self {
            EventKind::Hit { block, .. }
            | EventKind::ColdMiss { block, .. }
            | EventKind::ExpiredMiss { block, .. }
            | EventKind::BlockedOnWrite { block }
            | EventKind::LeaseGrant { block, .. }
            | EventKind::Renewal { block, .. }
            | EventKind::FillApplied { block }
            | EventKind::StoreCommit { block, .. }
            | EventKind::WriteAck { block }
            | EventKind::ReplayDrop { block }
            | EventKind::Eviction { block, .. }
            | EventKind::DramEnqueue { block, .. }
            | EventKind::DramService { block, .. } => Some(block),
            EventKind::Rollover { .. }
            | EventKind::WarpIssue { .. }
            | EventKind::WarpStall { .. }
            | EventKind::PacketSend { .. }
            | EventKind::PacketDeliver { .. }
            | EventKind::PacketDrop { .. }
            | EventKind::PacketCorrupt { .. }
            | EventKind::Retransmit { .. }
            | EventKind::Nack { .. }
            | EventKind::BankReset { .. } => None,
        }
    }

    /// Short stable name (`hit`, `lease_grant`, ...), used by the
    /// exporters.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Hit { .. } => "hit",
            EventKind::ColdMiss { .. } => "cold_miss",
            EventKind::ExpiredMiss { .. } => "expired_miss",
            EventKind::BlockedOnWrite { .. } => "blocked_on_write",
            EventKind::LeaseGrant { .. } => "lease_grant",
            EventKind::Renewal { .. } => "renewal",
            EventKind::FillApplied { .. } => "fill_applied",
            EventKind::StoreCommit { .. } => "store_commit",
            EventKind::WriteAck { .. } => "write_ack",
            EventKind::ReplayDrop { .. } => "replay_drop",
            EventKind::Eviction { .. } => "eviction",
            EventKind::Rollover { .. } => "rollover",
            EventKind::WarpIssue { .. } => "warp_issue",
            EventKind::WarpStall { .. } => "warp_stall",
            EventKind::PacketSend { .. } => "packet_send",
            EventKind::PacketDeliver { .. } => "packet_deliver",
            EventKind::PacketDrop { .. } => "packet_drop",
            EventKind::PacketCorrupt { .. } => "packet_corrupt",
            EventKind::Retransmit { .. } => "retransmit",
            EventKind::Nack { .. } => "nack",
            EventKind::BankReset { .. } => "bank_reset",
            EventKind::DramEnqueue { .. } => "dram_enqueue",
            EventKind::DramService { .. } => "dram_service",
        }
    }
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            EventKind::Hit {
                block,
                warp,
                warp_ts,
                rts,
            } => write!(
                f,
                "hit block {block} (warp {warp}, warp_ts {warp_ts} <= rts {rts})"
            ),
            EventKind::ColdMiss { block, warp } => {
                write!(f, "cold miss block {block} (warp {warp})")
            }
            EventKind::ExpiredMiss {
                block,
                warp_ts,
                rts,
            } => write!(
                f,
                "expired miss block {block} (warp_ts {warp_ts} > rts {rts})"
            ),
            EventKind::BlockedOnWrite { block } => {
                write!(f, "blocked on pending write, block {block}")
            }
            EventKind::LeaseGrant { block, wts, rts } => {
                write!(f, "lease grant block {block} [{wts}, {rts}]")
            }
            EventKind::Renewal { block, rts } => write!(f, "renewal block {block} rts -> {rts}"),
            EventKind::FillApplied { block } => write!(f, "fill applied block {block}"),
            EventKind::StoreCommit { block, wts } => {
                write!(f, "store commit block {block} at wts {wts}")
            }
            EventKind::WriteAck { block } => write!(f, "write ack block {block}"),
            EventKind::ReplayDrop { block } => write!(f, "replay drop block {block}"),
            EventKind::Eviction { block, rts } => write!(f, "evict block {block} (rts {rts})"),
            EventKind::Rollover { epoch } => write!(f, "rollover to epoch {epoch}"),
            EventKind::WarpIssue { warp } => write!(f, "warp {warp} issue"),
            EventKind::WarpStall { warp, kind } => write!(f, "warp {warp} stall ({kind:?})"),
            EventKind::PacketSend { src, dst, bytes } => {
                write!(f, "packet {src} -> {dst} ({bytes} B)")
            }
            EventKind::PacketDeliver { src, dst } => write!(f, "deliver {src} -> {dst}"),
            EventKind::PacketDrop { src, dst } => write!(f, "DROP {src} -> {dst}"),
            EventKind::PacketCorrupt { src, dst } => write!(f, "CORRUPT {src} -> {dst}"),
            EventKind::Retransmit {
                src,
                dst,
                seq,
                age,
                timeout,
                nack,
            } => write!(
                f,
                "retransmit {src} -> {dst} seq {seq} (age {age}{})",
                if nack {
                    ", nack-driven".to_string()
                } else {
                    format!(" >= timeout {timeout}")
                }
            ),
            EventKind::Nack { src, dst, expected } => {
                write!(f, "nack flow {src} -> {dst}, expected seq {expected}")
            }
            EventKind::BankReset { bank, epoch } => {
                write!(f, "bank {bank} crash/reset -> epoch {epoch}")
            }
            EventKind::DramEnqueue { block, write } => write!(
                f,
                "dram enqueue {} block {block}",
                if write { "write" } else { "read" }
            ),
            EventKind::DramService { block, write } => write!(
                f,
                "dram service {} block {block}",
                if write { "write" } else { "read" }
            ),
        }
    }
}

/// One recorded event: when, where, what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the event happened.
    pub cycle: Cycle,
    /// Component that recorded it.
    pub scope: Scope,
    /// What happened.
    pub kind: EventKind,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.cycle, self.scope, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_have_distinct_bits() {
        let classes = [
            EventClass::Access,
            EventClass::Lease,
            EventClass::Store,
            EventClass::Eviction,
            EventClass::Rollover,
            EventClass::Warp,
            EventClass::Noc,
            EventClass::Dram,
            EventClass::Transport,
        ];
        let mut seen = 0u16;
        for c in classes {
            assert_eq!(seen & c.bit(), 0, "{c:?} bit collides");
            seen |= c.bit();
        }
        assert_eq!(seen, EventClass::ALL);
    }

    #[test]
    fn kind_class_and_block_are_consistent() {
        let b = BlockAddr(42);
        assert_eq!(
            EventKind::LeaseGrant {
                block: b,
                wts: 1,
                rts: 11
            }
            .class(),
            EventClass::Lease
        );
        assert_eq!(EventKind::Eviction { block: b, rts: 9 }.block(), Some(b));
        assert_eq!(
            EventKind::Hit {
                block: b,
                warp: 1,
                warp_ts: 4,
                rts: 10
            }
            .block(),
            Some(b)
        );
        assert_eq!(EventKind::WarpIssue { warp: 3 }.block(), None);
        assert_eq!(
            EventKind::Rollover { epoch: 2 }.class(),
            EventClass::Rollover
        );
    }

    #[test]
    fn transport_events_class_and_render() {
        let retx = EventKind::Retransmit {
            src: 1,
            dst: 0,
            seq: 7,
            age: 300,
            timeout: 256,
            nack: false,
        };
        assert_eq!(retx.class(), EventClass::Transport);
        assert_eq!(retx.block(), None);
        assert_eq!(retx.name(), "retransmit");
        assert!(retx.to_string().contains("seq 7"), "{retx}");
        assert!(retx.to_string().contains("timeout 256"), "{retx}");
        let nacked = EventKind::Retransmit {
            src: 1,
            dst: 0,
            seq: 7,
            age: 300,
            timeout: 0,
            nack: true,
        };
        assert!(nacked.to_string().contains("nack-driven"), "{nacked}");
        for k in [
            EventKind::PacketDrop { src: 0, dst: 1 },
            EventKind::PacketCorrupt { src: 0, dst: 1 },
            EventKind::Nack {
                src: 0,
                dst: 1,
                expected: 3,
            },
            EventKind::BankReset { bank: 1, epoch: 2 },
        ] {
            assert_eq!(k.class(), EventClass::Transport, "{k:?}");
        }
        assert_eq!(EventClass::Transport.name(), "transport");
        assert_eq!(EventClass::Transport.bit(), 1 << 8);
    }

    #[test]
    fn event_renders_scope_and_kind() {
        let e = TraceEvent {
            cycle: Cycle(7),
            scope: Scope::Sm(1),
            kind: EventKind::ExpiredMiss {
                block: BlockAddr(3),
                warp_ts: 9,
                rts: 5,
            },
        };
        let s = e.to_string();
        assert!(s.contains("sm1"), "{s}");
        assert!(s.contains("expired miss"), "{s}");
        assert!(s.contains("warp_ts 9 > rts 5"), "{s}");
        assert_eq!(Scope::Noc(0).to_string(), "noc.req");
        assert_eq!(Scope::Noc(1).to_string(), "noc.resp");
        assert_eq!(Scope::Dram(2).to_string(), "dram[2]");
    }

    #[test]
    fn device_and_home_scopes_render_order_and_round_trip() {
        use gtsc_types::snap::{Snap, SnapReader, SnapWriter};
        assert_eq!(Scope::Device(3).to_string(), "dev3");
        assert_eq!(Scope::Home(0).to_string(), "home0");
        assert!(Scope::Device(3).sm().is_none());
        // Devices sort before the home node in per-scope reports.
        assert!(Scope::Device(u16::MAX) < Scope::Home(0));
        for s in [Scope::Device(7), Scope::Home(0)] {
            let mut w = SnapWriter::new();
            s.save(&mut w);
            let bytes = w.into_bytes();
            let mut r = SnapReader::new(&bytes);
            assert_eq!(Scope::load(&mut r).unwrap(), s);
        }
    }
}
