//! Causal request spans: per-hop latency breakdown for a sampled
//! subset of memory accesses (DESIGN.md §15).
//!
//! A span follows one memory access end-to-end — SM issue → L1
//! lookup/MSHR → request NoC → L2 serve → response NoC → L1 fill →
//! completion — by carrying a [`SpanId`] inside the protocol messages
//! themselves. The [`SpanTracker`] is the collection point: components
//! and the simulator loop report hop transitions against it, and it
//! maintains the *chain invariant* that makes the data trustworthy:
//!
//! * [`SpanTracker::open`] starts the span inside its first hop
//!   ([`HopKind::L1`]);
//! * [`SpanTracker::hop_enter`] closes the currently open hop at the
//!   same cycle it opens the next, so hops tile the span's lifetime
//!   with no gaps and no overlaps — even if a layer fails to report;
//! * [`SpanTracker::close`] exits the open hop at the close cycle.
//!
//! Consequently `sum(hop durations) == end-to-end latency` holds *by
//! construction* for every span, on every protocol, on every path —
//! the property `tests/spans.rs` asserts across 100 seeds.
//!
//! Time a request spends waiting on DRAM or being retransmitted by the
//! reliable transport is recorded as *overlay* hops
//! ([`HopKind::is_overlay`]): they annotate the span but are excluded
//! from the tiling sum, because they happen *inside* chain hops
//! (DRAM inside `L2Serve`, retransmits inside a NoC hop).
//!
//! Spans must terminate even when the fabric fails: payloads
//! irrecoverably discarded by a transport flow reset close with
//! [`CloseReason::Dropped`], and requests destroyed by an L2 bank
//! crash close with [`CloseReason::BankReset`]. The first terminal
//! event wins; later closes are no-ops.
//!
//! Like the tracer ring, span state is deliberately **excluded from
//! snapshots**: restoring mid-kernel restarts the observatory empty,
//! while the sampling *decision* (a pure function of seed and the
//! snapshotted access ordinal) stays deterministic.
//!
//! # Examples
//!
//! ```
//! use gtsc_trace::span::{CloseReason, HopKind, SpanTracker};
//! use gtsc_types::{Cycle, SmId, SpanId};
//!
//! let t = SpanTracker::new(16);
//! let id = SpanId::new(SmId(0), 1);
//! t.open(id, Cycle(10));
//! t.hop_enter(id, HopKind::NocReq, Cycle(12));
//! t.hop_enter(id, HopKind::L2Serve, Cycle(15));
//! t.hop_enter(id, HopKind::NocResp, Cycle(20));
//! t.close(id, CloseReason::Completed, Cycle(23));
//! let spans = t.spans();
//! assert_eq!(spans[0].end_to_end(), Some(13));
//! assert_eq!(spans[0].hop_total(), 13); // hops tile the lifetime
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use gtsc_types::{Cycle, SpanId};

/// One stop on a span's journey through the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HopKind {
    /// In the issuing L1: lookup, MSHR wait, retry backoff.
    L1,
    /// Request network (L1 → L2), including transport queueing.
    NocReq,
    /// At the L2 bank: queueing, tag lookup, miss handling.
    L2Serve,
    /// Response network (L2 → L1).
    NocResp,
    /// Back in the L1: fill/ack processing until warp completion.
    L1Fill,
    /// Overlay: time the L2 spent waiting on DRAM for this request
    /// (contained within [`HopKind::L2Serve`]).
    DramWait,
    /// Overlay: a reliable-transport retransmission of this span's
    /// payload (instantaneous marker inside a NoC hop).
    Retransmit,
}

impl HopKind {
    /// Overlay hops annotate a span but are excluded from the chain
    /// tiling, so they never contribute to [`SpanRecord::hop_total`].
    #[must_use]
    pub fn is_overlay(self) -> bool {
        matches!(self, HopKind::DramWait | HopKind::Retransmit)
    }

    /// Stable short name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HopKind::L1 => "l1",
            HopKind::NocReq => "noc_req",
            HopKind::L2Serve => "l2_serve",
            HopKind::NocResp => "noc_resp",
            HopKind::L1Fill => "l1_fill",
            HopKind::DramWait => "dram_wait",
            HopKind::Retransmit => "retransmit",
        }
    }
}

impl fmt::Display for HopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a span terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CloseReason {
    /// The access completed back at its warp.
    Completed,
    /// The carrying payload was irrecoverably discarded by a transport
    /// flow reset (lossy NoC + crash recovery).
    Dropped,
    /// An L2 bank crash destroyed the request mid-flight.
    BankReset,
}

impl CloseReason {
    /// Stable short name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CloseReason::Completed => "completed",
            CloseReason::Dropped => "dropped",
            CloseReason::BankReset => "bank_reset",
        }
    }
}

impl fmt::Display for CloseReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How the L2 served the sampled request (the G-TSC-specific
/// classification: fresh grant vs data-less renewal vs expiry refetch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServeClass {
    /// Cold fill: a fresh lease grant with data.
    Grant,
    /// Data-less lease renewal (the wts matched).
    Renewal,
    /// Refetch after the L1's lease expired (a coherence miss).
    ExpiredRefetch,
}

impl ServeClass {
    /// Stable short name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ServeClass::Grant => "grant",
            ServeClass::Renewal => "renewal",
            ServeClass::ExpiredRefetch => "expired_refetch",
        }
    }
}

/// One enter/exit interval within a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Which stage of the journey.
    pub kind: HopKind,
    /// Cycle the span entered this hop.
    pub enter: Cycle,
    /// Cycle the span left it; `None` only while the span is open (or,
    /// for overlays, until the matching exit arrives).
    pub exit: Option<Cycle>,
}

impl Hop {
    /// The hop's duration in cycles; `0` while still open.
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.exit.map_or(0, |e| e.0.saturating_sub(self.enter.0))
    }
}

/// The full life of one sampled access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The sampled access's identity.
    pub id: SpanId,
    /// Cycle the access was issued (span opened).
    pub opened: Cycle,
    /// Terminal cycle and reason; `None` while in flight.
    pub closed: Option<(Cycle, CloseReason)>,
    /// Chain hops, in order; they tile `[opened, closed]` exactly.
    pub hops: Vec<Hop>,
    /// Overlay hops (DRAM wait, retransmits) — excluded from tiling.
    pub overlays: Vec<Hop>,
    /// How the L2 served the request, when it got that far.
    pub serve: Option<ServeClass>,
    /// The access merged into an existing L1 MSHR entry (it never
    /// produced its own messages; the whole span stays in `L1`).
    pub mshr_merged: bool,
    /// Reliable-transport retransmissions of this span's payload.
    pub retransmits: u32,
}

impl SpanRecord {
    /// Issue-to-terminal latency in cycles; `None` while open.
    #[must_use]
    pub fn end_to_end(&self) -> Option<u64> {
        self.closed.map(|(c, _)| c.0.saturating_sub(self.opened.0))
    }

    /// Sum of chain-hop durations — equals [`SpanRecord::end_to_end`]
    /// for every closed span, by construction.
    #[must_use]
    pub fn hop_total(&self) -> u64 {
        self.hops.iter().map(Hop::duration).sum()
    }
}

#[derive(Debug, Default)]
struct SpanCore {
    cap: usize,
    spans: Vec<SpanRecord>,
    index: HashMap<SpanId, usize>,
    open: usize,
    suppressed: u64,
}

impl SpanCore {
    fn record_mut(&mut self, id: SpanId) -> Option<&mut SpanRecord> {
        let i = *self.index.get(&id)?;
        Some(&mut self.spans[i])
    }
}

/// Cheap clonable handle to the shared span store; the default handle
/// is disabled and every operation on it is a single branch.
///
/// Deterministic retention: the first `cap` *opened* spans are stored,
/// later ones are counted in [`SpanTracker::suppressed`] — no
/// randomness, so equal seeds give equal span sets.
#[derive(Debug, Clone, Default)]
pub struct SpanTracker {
    core: Option<Rc<RefCell<SpanCore>>>,
}

impl SpanTracker {
    /// A tracker retaining at most `cap` spans.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        SpanTracker {
            core: Some(Rc::new(RefCell::new(SpanCore {
                cap: cap.max(1),
                ..SpanCore::default()
            }))),
        }
    }

    /// A tracker that records nothing (the hot-path default).
    #[must_use]
    pub fn disabled() -> Self {
        SpanTracker { core: None }
    }

    /// Whether this handle records anything.
    #[must_use]
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// The deterministic sampling decision for one access: sample when
    /// the seeded hash of `material` lands in the 1-in-`rate` residue
    /// class. Pure — the same `(rate, seed, material)` always answers
    /// the same, which is what makes spans snapshot/restore-safe.
    #[must_use]
    #[inline]
    pub fn sampled(rate: u64, seed: u64, material: u64) -> bool {
        rate > 0 && mix64(seed ^ material).is_multiple_of(rate)
    }

    /// Opens a span at `cycle`, implicitly entering its first chain
    /// hop ([`HopKind::L1`]). No-op for [`SpanId::NONE`], duplicate
    /// opens, or once the retention cap is reached (counted instead).
    #[inline]
    pub fn open(&self, id: SpanId, cycle: Cycle) {
        // Outlined so the disabled-tracker fast path is a single
        // inlined branch at every call site (no LTO in this
        // workspace, so cross-crate calls only inline via
        // `#[inline]`).
        if self.core.is_some() {
            self.open_enabled(id, cycle);
        }
    }

    fn open_enabled(&self, id: SpanId, cycle: Cycle) {
        let Some(core) = &self.core else { return };
        if id.is_none() {
            return;
        }
        let mut c = core.borrow_mut();
        if c.index.contains_key(&id) {
            return;
        }
        if c.spans.len() >= c.cap {
            c.suppressed += 1;
            return;
        }
        let i = c.spans.len();
        c.spans.push(SpanRecord {
            id,
            opened: cycle,
            closed: None,
            hops: vec![Hop {
                kind: HopKind::L1,
                enter: cycle,
                exit: None,
            }],
            overlays: Vec::new(),
            serve: None,
            mshr_merged: false,
            retransmits: 0,
        });
        c.index.insert(id, i);
        c.open += 1;
    }

    /// Advances the span's chain into `kind` at `cycle`: the currently
    /// open chain hop exits at the same cycle the new one enters, so
    /// the chain stays gap-free. Overlay kinds are rejected (use
    /// [`SpanTracker::overlay_enter`]); closed spans ignore the call.
    #[inline]
    pub fn hop_enter(&self, id: SpanId, kind: HopKind, cycle: Cycle) {
        // Outlined so the disabled-tracker fast path is a single
        // inlined branch at every call site (no LTO in this
        // workspace, so cross-crate calls only inline via
        // `#[inline]`).
        if self.core.is_some() {
            self.hop_enter_enabled(id, kind, cycle);
        }
    }

    fn hop_enter_enabled(&self, id: SpanId, kind: HopKind, cycle: Cycle) {
        let Some(core) = &self.core else { return };
        if id.is_none() || kind.is_overlay() {
            return;
        }
        let mut c = core.borrow_mut();
        let Some(rec) = c.record_mut(id) else { return };
        if rec.closed.is_some() {
            return;
        }
        if let Some(last) = rec.hops.last_mut() {
            last.exit = Some(cycle);
        }
        rec.hops.push(Hop {
            kind,
            enter: cycle,
            exit: None,
        });
    }

    /// Terminates the span at `cycle`, exiting the open chain hop and
    /// any still-open overlays. The first terminal event wins — a
    /// later `close` (e.g. a completion racing a bank-reset sweep) is
    /// a no-op, so spans close *exactly* once.
    #[inline]
    pub fn close(&self, id: SpanId, reason: CloseReason, cycle: Cycle) {
        // Outlined so the disabled-tracker fast path is a single
        // inlined branch at every call site (no LTO in this
        // workspace, so cross-crate calls only inline via
        // `#[inline]`).
        if self.core.is_some() {
            self.close_enabled(id, reason, cycle);
        }
    }

    fn close_enabled(&self, id: SpanId, reason: CloseReason, cycle: Cycle) {
        let Some(core) = &self.core else { return };
        if id.is_none() {
            return;
        }
        let mut c = core.borrow_mut();
        let Some(rec) = c.record_mut(id) else { return };
        if rec.closed.is_some() {
            return;
        }
        if let Some(last) = rec.hops.last_mut() {
            if last.exit.is_none() {
                last.exit = Some(cycle);
            }
        }
        for o in &mut rec.overlays {
            if o.exit.is_none() {
                o.exit = Some(cycle);
            }
        }
        rec.closed = Some((cycle, reason));
        c.open -= 1;
    }

    /// Starts an overlay interval (e.g. [`HopKind::DramWait`]) without
    /// touching the chain.
    #[inline]
    pub fn overlay_enter(&self, id: SpanId, kind: HopKind, cycle: Cycle) {
        // Outlined so the disabled-tracker fast path is a single
        // inlined branch at every call site (no LTO in this
        // workspace, so cross-crate calls only inline via
        // `#[inline]`).
        if self.core.is_some() {
            self.overlay_enter_enabled(id, kind, cycle);
        }
    }

    fn overlay_enter_enabled(&self, id: SpanId, kind: HopKind, cycle: Cycle) {
        let Some(core) = &self.core else { return };
        if id.is_none() || !kind.is_overlay() {
            return;
        }
        let mut c = core.borrow_mut();
        let Some(rec) = c.record_mut(id) else { return };
        if rec.closed.is_some() {
            return;
        }
        rec.overlays.push(Hop {
            kind,
            enter: cycle,
            exit: None,
        });
    }

    /// Ends the most recent still-open overlay of `kind`.
    #[inline]
    pub fn overlay_exit(&self, id: SpanId, kind: HopKind, cycle: Cycle) {
        // Outlined so the disabled-tracker fast path is a single
        // inlined branch at every call site (no LTO in this
        // workspace, so cross-crate calls only inline via
        // `#[inline]`).
        if self.core.is_some() {
            self.overlay_exit_enabled(id, kind, cycle);
        }
    }

    fn overlay_exit_enabled(&self, id: SpanId, kind: HopKind, cycle: Cycle) {
        let Some(core) = &self.core else { return };
        if id.is_none() {
            return;
        }
        let mut c = core.borrow_mut();
        let Some(rec) = c.record_mut(id) else { return };
        if let Some(o) = rec
            .overlays
            .iter_mut()
            .rev()
            .find(|o| o.kind == kind && o.exit.is_none())
        {
            o.exit = Some(cycle);
        }
    }

    /// Marks one reliable-transport retransmission of the span's
    /// payload (an instantaneous [`HopKind::Retransmit`] overlay).
    #[inline]
    pub fn note_retransmit(&self, id: SpanId, cycle: Cycle) {
        // Outlined so the disabled-tracker fast path is a single
        // inlined branch at every call site (no LTO in this
        // workspace, so cross-crate calls only inline via
        // `#[inline]`).
        if self.core.is_some() {
            self.note_retransmit_enabled(id, cycle);
        }
    }

    fn note_retransmit_enabled(&self, id: SpanId, cycle: Cycle) {
        let Some(core) = &self.core else { return };
        if id.is_none() {
            return;
        }
        let mut c = core.borrow_mut();
        let Some(rec) = c.record_mut(id) else { return };
        if rec.closed.is_some() {
            return;
        }
        rec.retransmits += 1;
        rec.overlays.push(Hop {
            kind: HopKind::Retransmit,
            enter: cycle,
            exit: Some(cycle),
        });
    }

    /// Records how the L2 served this request (first report wins).
    #[inline]
    pub fn note_serve(&self, id: SpanId, class: ServeClass) {
        // Outlined so the disabled-tracker fast path is a single
        // inlined branch at every call site (no LTO in this
        // workspace, so cross-crate calls only inline via
        // `#[inline]`).
        if self.core.is_some() {
            self.note_serve_enabled(id, class);
        }
    }

    fn note_serve_enabled(&self, id: SpanId, class: ServeClass) {
        let Some(core) = &self.core else { return };
        if id.is_none() {
            return;
        }
        let mut c = core.borrow_mut();
        if let Some(rec) = c.record_mut(id) {
            if rec.serve.is_none() {
                rec.serve = Some(class);
            }
        }
    }

    /// Marks the span as merged into an existing MSHR entry.
    #[inline]
    pub fn note_merged(&self, id: SpanId) {
        // Outlined so the disabled-tracker fast path is a single
        // inlined branch at every call site (no LTO in this
        // workspace, so cross-crate calls only inline via
        // `#[inline]`).
        if self.core.is_some() {
            self.note_merged_enabled(id);
        }
    }

    fn note_merged_enabled(&self, id: SpanId) {
        let Some(core) = &self.core else { return };
        if id.is_none() {
            return;
        }
        let mut c = core.borrow_mut();
        if let Some(rec) = c.record_mut(id) {
            rec.mshr_merged = true;
        }
    }

    /// A copy of every retained span, in open order.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.core
            .as_ref()
            .map_or_else(Vec::new, |c| c.borrow().spans.clone())
    }

    /// Spans opened but not yet closed.
    #[must_use]
    pub fn open_count(&self) -> usize {
        self.core.as_ref().map_or(0, |c| c.borrow().open)
    }

    /// Spans dropped by the retention cap.
    #[must_use]
    pub fn suppressed(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.borrow().suppressed)
    }
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer used for
/// the sampling decision.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_types::SmId;

    fn id(n: u64) -> SpanId {
        SpanId::new(SmId(1), n)
    }

    #[test]
    fn disabled_tracker_is_inert() {
        let t = SpanTracker::disabled();
        t.open(id(1), Cycle(0));
        t.hop_enter(id(1), HopKind::NocReq, Cycle(1));
        t.close(id(1), CloseReason::Completed, Cycle(2));
        assert!(!t.is_enabled());
        assert!(t.spans().is_empty());
        assert_eq!(t.open_count(), 0);
    }

    #[test]
    fn chain_tiles_lifetime() {
        let t = SpanTracker::new(8);
        t.open(id(1), Cycle(100));
        t.hop_enter(id(1), HopKind::NocReq, Cycle(104));
        t.hop_enter(id(1), HopKind::L2Serve, Cycle(110));
        t.hop_enter(id(1), HopKind::NocResp, Cycle(130));
        t.hop_enter(id(1), HopKind::L1Fill, Cycle(134));
        t.close(id(1), CloseReason::Completed, Cycle(136));
        let s = &t.spans()[0];
        assert_eq!(s.end_to_end(), Some(36));
        assert_eq!(s.hop_total(), 36);
        assert_eq!(s.hops.len(), 5);
        assert_eq!(s.hops[0].kind, HopKind::L1);
        assert_eq!(s.hops[0].duration(), 4);
        assert_eq!(s.hops[2].duration(), 20);
    }

    #[test]
    fn chain_self_heals_when_layers_skip() {
        // A merged MSHR waiter produces no messages: the span never
        // leaves L1, yet the sum still equals end-to-end.
        let t = SpanTracker::new(8);
        t.open(id(1), Cycle(10));
        t.note_merged(id(1));
        t.close(id(1), CloseReason::Completed, Cycle(55));
        let s = &t.spans()[0];
        assert!(s.mshr_merged);
        assert_eq!(s.hops.len(), 1);
        assert_eq!(s.hop_total(), 45);
        assert_eq!(s.end_to_end(), Some(45));
    }

    #[test]
    fn first_terminal_event_wins() {
        let t = SpanTracker::new(8);
        t.open(id(1), Cycle(0));
        t.close(id(1), CloseReason::BankReset, Cycle(7));
        t.close(id(1), CloseReason::Completed, Cycle(9));
        t.hop_enter(id(1), HopKind::NocResp, Cycle(9));
        let s = &t.spans()[0];
        assert_eq!(s.closed, Some((Cycle(7), CloseReason::BankReset)));
        assert_eq!(s.hops.len(), 1, "post-close hops are ignored");
        assert_eq!(t.open_count(), 0);
    }

    #[test]
    fn overlays_do_not_count_toward_tiling() {
        let t = SpanTracker::new(8);
        t.open(id(1), Cycle(0));
        t.hop_enter(id(1), HopKind::L2Serve, Cycle(5));
        t.overlay_enter(id(1), HopKind::DramWait, Cycle(6));
        t.overlay_exit(id(1), HopKind::DramWait, Cycle(26));
        t.note_retransmit(id(1), Cycle(8));
        t.close(id(1), CloseReason::Completed, Cycle(30));
        let s = &t.spans()[0];
        assert_eq!(s.hop_total(), 30);
        assert_eq!(s.overlays.len(), 2);
        assert_eq!(s.overlays[0].duration(), 20);
        assert_eq!(s.retransmits, 1);
    }

    #[test]
    fn open_overlays_are_closed_with_the_span() {
        let t = SpanTracker::new(8);
        t.open(id(1), Cycle(0));
        t.overlay_enter(id(1), HopKind::DramWait, Cycle(3));
        t.close(id(1), CloseReason::BankReset, Cycle(11));
        let s = &t.spans()[0];
        assert_eq!(s.overlays[0].exit, Some(Cycle(11)));
    }

    #[test]
    fn cap_is_deterministic_first_n() {
        let t = SpanTracker::new(2);
        for n in 1..=5 {
            t.open(id(n), Cycle(n));
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].id, id(1));
        assert_eq!(spans[1].id, id(2));
        assert_eq!(t.suppressed(), 3);
    }

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let picks = |seed: u64| -> Vec<u64> {
            (0..2000)
                .filter(|&m| SpanTracker::sampled(16, seed, m))
                .collect()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8));
        assert!(!picks(7).is_empty());
        assert!(!SpanTracker::sampled(0, 7, 3), "rate 0 disables");
        assert!(SpanTracker::sampled(1, 7, 3), "rate 1 samples all");
    }

    #[test]
    fn clones_share_one_core() {
        let t = SpanTracker::new(8);
        let u = t.clone();
        t.open(id(1), Cycle(0));
        u.close(id(1), CloseReason::Dropped, Cycle(4));
        assert_eq!(t.spans()[0].closed, Some((Cycle(4), CloseReason::Dropped)));
    }
}
