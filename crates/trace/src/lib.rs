//! Structured protocol event tracing for the G-TSC simulator.
//!
//! Aggregate counters ([`gtsc_types::SimStats`]) say what a run did;
//! this crate records *how*: the lease grants, renewals, expiries,
//! future-scheduled writes, and rollovers of the logical-time machinery,
//! with three consumers:
//!
//! * a bounded [`FlightRecorder`] per component, dumped into stall
//!   diagnoses and checker violation reports;
//! * an [`IntervalSampler`] turning cumulative stats into a time-series
//!   (IPC, stall breakdown, expired-miss rate, NoC flits per interval);
//! * exporters — [`to_chrome_trace`] (Chrome `trace_event` JSON) and
//!   [`to_lines`] — plus the `trace_report` bench binary for human
//!   summaries.
//!
//! Tracing is configured through [`gtsc_types::TraceConfig`] and is off
//! by default: every hot-path hook goes through [`Tracer::record_with`]
//! (or [`Tracer::record`] off the fast paths), which compiles to a
//! single predicted-not-taken branch when disabled — the event payload
//! is never even built (the `trace_overhead` benches in `gtsc-bench`
//! hold this to <2% on the protocol fast paths).
//!
//! # Examples
//!
//! ```
//! use gtsc_trace::{EventKind, Scope, Tracer};
//! use gtsc_types::{BlockAddr, Cycle, TraceConfig};
//!
//! let mut t = Tracer::new(Scope::Sm(0), &TraceConfig::flight());
//! t.record(
//!     Cycle(5),
//!     EventKind::LeaseGrant { block: BlockAddr(1), wts: 0, rts: 10 },
//! );
//! assert_eq!(t.flight_tail().len(), 1);
//! ```

pub mod event;
pub mod export;
pub mod recorder;
pub mod sampler;
pub mod sanitize;
pub mod span;

pub use event::{EventClass, EventKind, Scope, TraceEvent};
pub use export::{json_escape, to_chrome_trace, to_lines};
pub use recorder::FlightRecorder;
pub use sampler::{IntervalSample, IntervalSampler};
pub use sanitize::{Sanitizer, Transition};
pub use span::{CloseReason, Hop, HopKind, ServeClass, SpanRecord, SpanTracker};

use gtsc_types::{Cycle, TraceConfig, TraceMode};

/// One component's event recorder: a mode, conjunctive filters, a
/// flight-recorder ring, and (in [`TraceMode::Full`]) an unbounded
/// in-order log.
///
/// The default tracer is disabled and records nothing; components embed
/// one and the simulator swaps in configured tracers at build time.
/// Everything beyond the mode tag lives behind a `Box` that disabled
/// tracers never allocate, so embedding one costs a component struct two
/// words, not a ring buffer.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Box<TracerInner>>,
}

#[derive(Debug, Clone)]
struct TracerInner {
    mode: TraceMode,
    scope: Scope,
    class_mask: u16,
    sm_filter: Option<u16>,
    block_range: Option<(u64, u64)>,
    ring: FlightRecorder,
    full: Vec<TraceEvent>,
}

impl Tracer {
    /// A tracer that records nothing (the hot-path default).
    #[must_use]
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer for the component `scope` configured by `cfg`. A
    /// [`TraceMode::Off`] config yields a disabled tracer.
    #[must_use]
    pub fn new(scope: Scope, cfg: &TraceConfig) -> Self {
        if cfg.mode == TraceMode::Off {
            return Tracer::disabled();
        }
        Tracer {
            inner: Some(Box::new(TracerInner {
                mode: cfg.mode,
                scope,
                class_mask: cfg.class_mask,
                sm_filter: cfg.sm_filter,
                block_range: cfg.block_range,
                ring: FlightRecorder::new(cfg.flight_capacity),
                full: Vec::new(),
            })),
        }
    }

    /// Whether any recording is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The component this tracer belongs to ([`Scope::Sm`]`(0)` when
    /// disabled).
    #[must_use]
    pub fn scope(&self) -> Scope {
        self.inner
            .as_ref()
            .map_or(Scope::Sm(0), |inner| inner.scope)
    }

    /// Records one event. When tracing is off this is a single
    /// null-pointer check — the only cost the protocol hot paths ever
    /// pay. Call sites that execute once per access should prefer
    /// [`Tracer::record_with`], which also skips building the
    /// [`EventKind`] itself.
    #[inline]
    pub fn record(&mut self, cycle: Cycle, kind: EventKind) {
        if self.inner.is_none() {
            return;
        }
        self.record_slow(cycle, kind);
    }

    /// Records the event built by `kind`, which only runs when tracing
    /// is enabled. This is the per-access hot-path hook: a disabled
    /// tracer pays the null check and never materialises the event
    /// payload (measurably cheaper than [`Tracer::record`] on the L1
    /// hit path, where the 32-byte `EventKind` would otherwise be
    /// written to the stack before the branch).
    #[inline]
    pub fn record_with(&mut self, cycle: Cycle, kind: impl FnOnce() -> EventKind) {
        if self.inner.is_none() {
            return;
        }
        self.record_slow(cycle, kind());
    }

    /// The filtered recording path, deliberately kept out of line (and
    /// marked cold) so the disabled fast path stays a bare
    /// predicted-not-taken branch.
    #[cold]
    #[inline(never)]
    fn record_slow(&mut self, cycle: Cycle, kind: EventKind) {
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        if inner.class_mask & kind.class().bit() == 0 {
            return;
        }
        if let (Some(want), Some(sm)) = (inner.sm_filter, inner.scope.sm()) {
            if sm != want {
                return;
            }
        }
        if let (Some((lo, hi)), Some(block)) = (inner.block_range, kind.block()) {
            if block.0 < lo || block.0 > hi {
                return;
            }
        }
        let event = TraceEvent {
            cycle,
            scope: inner.scope,
            kind,
        };
        inner.ring.push(event);
        if inner.mode == TraceMode::Full {
            inner.full.push(event);
        }
    }

    /// The flight-recorder tail (most recent retained events, oldest
    /// first).
    #[must_use]
    pub fn flight_tail(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |inner| inner.ring.tail())
    }

    /// The full in-order event log (empty unless [`TraceMode::Full`]).
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        self.inner.as_ref().map_or(&[], |inner| &inner.full)
    }
}

/// Merges several flight-recorder tails into one cycle-ordered sequence
/// (the post-mortem view across SMs, banks, networks, and DRAM).
///
/// Events are totally ordered by `(cycle, scope, within-tail sequence)`,
/// so the merged tail is byte-stable regardless of the order the caller
/// assembled `tails` in — same-cycle events from different components
/// sort by component identity, and same-cycle events from one recorder
/// keep their recording order.
#[must_use]
pub fn merge_tails(tails: &[Vec<TraceEvent>]) -> Vec<TraceEvent> {
    let mut all: Vec<(Cycle, Scope, usize, TraceEvent)> = tails
        .iter()
        .flat_map(|tail| {
            tail.iter()
                .enumerate()
                .map(|(i, e)| (e.cycle, e.scope, i, *e))
        })
        .collect();
    all.sort_by_key(|&(cycle, scope, seq, _)| (cycle, scope, seq));
    all.into_iter().map(|(_, _, _, e)| e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtsc_types::{BlockAddr, StallKind};

    fn grant(block: u64) -> EventKind {
        EventKind::LeaseGrant {
            block: BlockAddr(block),
            wts: 0,
            rts: 10,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.record(Cycle(1), grant(0));
        assert!(t.flight_tail().is_empty());
        assert!(t.events().is_empty());
    }

    #[test]
    fn flight_mode_fills_ring_but_not_log() {
        let cfg = TraceConfig::flight().with_flight_capacity(2);
        let mut t = Tracer::new(Scope::L2Bank(0), &cfg);
        for c in 0..5 {
            t.record(Cycle(c), grant(c));
        }
        assert_eq!(t.flight_tail().len(), 2);
        assert_eq!(t.flight_tail()[0].cycle, Cycle(3));
        assert!(t.events().is_empty(), "Flight mode keeps no full log");
    }

    #[test]
    fn full_mode_keeps_everything_in_order() {
        let mut t = Tracer::new(Scope::Sm(1), &gtsc_types::TraceConfig::full());
        for c in 0..100 {
            t.record(Cycle(c), grant(c));
        }
        assert_eq!(t.events().len(), 100);
        assert!(t.events().windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }

    #[test]
    fn class_filter_drops_other_classes() {
        let cfg = TraceConfig::full().with_class_mask(EventClass::Lease.bit());
        let mut t = Tracer::new(Scope::Sm(0), &cfg);
        t.record(Cycle(1), grant(0));
        t.record(
            Cycle(2),
            EventKind::WarpStall {
                warp: 0,
                kind: StallKind::Memory,
            },
        );
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.events()[0].kind.class(), EventClass::Lease);
    }

    #[test]
    fn sm_filter_passes_matching_sm_and_non_sm_scopes() {
        let cfg = TraceConfig::full().with_sm(1);
        let mut hit = Tracer::new(Scope::Sm(1), &cfg);
        let mut miss = Tracer::new(Scope::Sm(0), &cfg);
        let mut bank = Tracer::new(Scope::L2Bank(0), &cfg);
        for t in [&mut hit, &mut miss, &mut bank] {
            t.record(Cycle(1), grant(0));
        }
        assert_eq!(hit.events().len(), 1);
        assert_eq!(miss.events().len(), 0);
        assert_eq!(bank.events().len(), 1, "non-SM scopes always pass");
    }

    #[test]
    fn block_filter_is_inclusive_and_ignores_blockless_events() {
        let cfg = TraceConfig::full().with_blocks(10, 20);
        let mut t = Tracer::new(Scope::Sm(0), &cfg);
        t.record(Cycle(1), grant(9));
        t.record(Cycle(2), grant(10));
        t.record(Cycle(3), grant(20));
        t.record(Cycle(4), grant(21));
        t.record(Cycle(5), EventKind::WarpIssue { warp: 0 });
        let blocks: Vec<_> = t.events().iter().map(|e| e.kind.block()).collect();
        assert_eq!(blocks, vec![Some(BlockAddr(10)), Some(BlockAddr(20)), None]);
    }

    #[test]
    fn merge_tails_orders_by_cycle() {
        let mut a = Tracer::new(Scope::Sm(0), &TraceConfig::flight());
        let mut b = Tracer::new(Scope::L2Bank(0), &TraceConfig::flight());
        a.record(Cycle(5), grant(0));
        b.record(Cycle(2), grant(1));
        a.record(Cycle(9), grant(2));
        let merged = merge_tails(&[a.flight_tail(), b.flight_tail()]);
        let cycles: Vec<u64> = merged.iter().map(|e| e.cycle.0).collect();
        assert_eq!(cycles, vec![2, 5, 9]);
    }

    #[test]
    fn merge_tails_is_stable_on_cycle_ties() {
        // Three components all record at the same cycles; the merged
        // tail must come out identical however the caller orders the
        // input tails — ties break on (scope, within-tail sequence).
        let mut sm = Tracer::new(Scope::Sm(1), &TraceConfig::flight());
        let mut bank = Tracer::new(Scope::L2Bank(0), &TraceConfig::flight());
        let mut dram = Tracer::new(Scope::Dram(0), &TraceConfig::flight());
        for c in [3u64, 3, 7] {
            sm.record(Cycle(c), grant(c));
            bank.record(Cycle(c), grant(c + 10));
            dram.record(Cycle(c), grant(c + 20));
        }
        let fwd = merge_tails(&[sm.flight_tail(), bank.flight_tail(), dram.flight_tail()]);
        let rev = merge_tails(&[dram.flight_tail(), bank.flight_tail(), sm.flight_tail()]);
        assert_eq!(fwd, rev);
        // Within a cycle tie, Sm < L2Bank < Dram, and a component's own
        // events keep recording order.
        assert_eq!(fwd[0].scope, Scope::Sm(1));
        assert_eq!(fwd[1].scope, Scope::Sm(1));
        assert_eq!(fwd[2].scope, Scope::L2Bank(0));
        assert_eq!(fwd[4].scope, Scope::Dram(0));
        assert!(fwd.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }
}
