//! The interval sampler: a time-series of [`SimStats`] deltas.
//!
//! Aggregate counters say *what* a run did; the sampler says *when*.
//! Every `interval` cycles it diffs the current cumulative stats against
//! the previous snapshot, yielding per-interval IPC, stall breakdown,
//! expired-miss rate, and NoC flits — with per-SM / per-bank resolution
//! when the producer fills [`SimStats::per_sm`] and friends.

use gtsc_types::{Cycle, SimStats};

/// One sampling interval's delta.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSample {
    /// First cycle covered (inclusive).
    pub start: Cycle,
    /// Last cycle covered (exclusive).
    pub end: Cycle,
    /// Counter deltas over `[start, end)`; `delta.cycles` is the
    /// interval length.
    pub delta: SimStats,
}

impl IntervalSample {
    /// Instructions per cycle over this interval.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        self.delta.ipc()
    }

    /// Expired misses / accesses in this interval's L1 traffic
    /// (the coherence-miss rate the paper's Figure 13 stalls trace back
    /// to); `0` with no accesses.
    #[must_use]
    pub fn expired_miss_rate(&self) -> f64 {
        if self.delta.l1.accesses == 0 {
            0.0
        } else {
            self.delta.l1.expired_misses as f64 / self.delta.l1.accesses as f64
        }
    }
}

/// Snapshots cumulative [`SimStats`] every `interval` cycles.
///
/// # Examples
///
/// ```
/// use gtsc_trace::IntervalSampler;
/// use gtsc_types::{Cycle, SimStats};
///
/// let mut s = IntervalSampler::new(100);
/// let mut stats = SimStats::default();
/// stats.sm.issued = 50;
/// stats.cycles = Cycle(100);
/// assert!(s.due(Cycle(100)));
/// s.sample(Cycle(100), &stats);
/// stats.sm.issued = 80;
/// stats.cycles = Cycle(200);
/// s.sample(Cycle(200), &stats);
/// let samples = s.samples();
/// assert_eq!(samples.len(), 2);
/// assert_eq!(samples[1].delta.sm.issued, 30);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IntervalSampler {
    interval: u64,
    last: Cycle,
    prev: SimStats,
    samples: Vec<IntervalSample>,
}

impl IntervalSampler {
    /// A sampler firing every `interval` cycles; `0` never fires.
    #[must_use]
    pub fn new(interval: u64) -> Self {
        IntervalSampler {
            interval,
            ..IntervalSampler::default()
        }
    }

    /// Whether a sample is due at `now`.
    #[must_use]
    pub fn due(&self, now: Cycle) -> bool {
        self.interval > 0 && now.0 - self.last.0 >= self.interval
    }

    /// Records the delta since the previous snapshot. `current` must be
    /// the *cumulative* stats at `now`.
    pub fn sample(&mut self, now: Cycle, current: &SimStats) {
        let mut delta = current.diff(&self.prev);
        delta.cycles = Cycle(now.0 - self.last.0);
        self.samples.push(IntervalSample {
            start: self.last,
            end: now,
            delta,
        });
        self.prev = current.clone();
        self.last = now;
    }

    /// Records the final partial interval, if any cycles elapsed since
    /// the last sample.
    pub fn finish(&mut self, now: Cycle, current: &SimStats) {
        if self.interval > 0 && now.0 > self.last.0 {
            self.sample(now, current);
        }
    }

    /// The recorded time-series, oldest first.
    #[must_use]
    pub fn samples(&self) -> &[IntervalSample] {
        &self.samples
    }

    /// The configured interval in cycles (`0` = disabled).
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }
}

gtsc_types::snap_fields!(IntervalSample { start, end, delta });
gtsc_types::snap_fields!(IntervalSampler {
    interval,
    last,
    prev,
    samples,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_at(cycles: u64, issued: u64, expired: u64) -> SimStats {
        let mut s = SimStats {
            cycles: Cycle(cycles),
            ..SimStats::default()
        };
        s.sm.issued = issued;
        s.l1.accesses = issued;
        s.l1.expired_misses = expired;
        s
    }

    #[test]
    fn deltas_are_per_interval_not_cumulative() {
        let mut s = IntervalSampler::new(10);
        assert!(!s.due(Cycle(5)));
        assert!(s.due(Cycle(10)));
        s.sample(Cycle(10), &stats_at(10, 20, 2));
        s.sample(Cycle(20), &stats_at(20, 50, 2));
        let v = s.samples();
        assert_eq!(v[0].delta.sm.issued, 20);
        assert_eq!(v[1].delta.sm.issued, 30);
        assert!((v[0].ipc() - 2.0).abs() < 1e-12);
        assert!((v[1].ipc() - 3.0).abs() < 1e-12);
        assert!((v[0].expired_miss_rate() - 0.1).abs() < 1e-12);
        assert_eq!(v[1].expired_miss_rate(), 0.0);
    }

    #[test]
    fn finish_captures_the_partial_tail() {
        let mut s = IntervalSampler::new(100);
        s.sample(Cycle(100), &stats_at(100, 10, 0));
        s.finish(Cycle(130), &stats_at(130, 16, 0));
        let v = s.samples();
        assert_eq!(v.len(), 2);
        assert_eq!(v[1].start, Cycle(100));
        assert_eq!(v[1].end, Cycle(130));
        assert_eq!(v[1].delta.cycles.0, 30);
        assert_eq!(v[1].delta.sm.issued, 6);
        // Nothing elapsed since: finish is idempotent.
        let mut again = s.clone();
        again.finish(Cycle(130), &stats_at(130, 16, 0));
        assert_eq!(again.samples().len(), 2);
    }

    #[test]
    fn disabled_sampler_never_fires() {
        let s = IntervalSampler::new(0);
        assert!(!s.due(Cycle(1_000_000)));
        let mut s2 = s.clone();
        s2.finish(Cycle(500), &stats_at(500, 1, 0));
        assert!(s2.samples().is_empty());
    }
}
