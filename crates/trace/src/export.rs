//! Trace exporters: Chrome `trace_event` JSON and a line-oriented dump.
//!
//! The JSON is hand-rolled (the workspace is offline — no serde); the
//! schema is the subset of the Trace Event Format that `chrome://tracing`
//! and Perfetto accept: instant events (`ph: "i"`) for protocol events,
//! counter events (`ph: "C"`) for the interval sampler's time-series, and
//! metadata events naming the process rows. One simulated cycle maps to
//! one microsecond of trace time (`ts` is in µs).

use crate::event::{Scope, TraceEvent};
use crate::sampler::IntervalSample;

/// Escapes `s` for inclusion in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `(pid, tid)` for a scope: one process row per component type, one
/// thread row per component instance.
fn pid_tid(scope: Scope) -> (u16, u16) {
    match scope {
        Scope::Sm(i) => (1, i),
        Scope::L2Bank(i) => (2, i),
        Scope::Noc(i) => (3, i),
        Scope::Dram(i) => (4, i),
        Scope::Device(i) => (5, i),
        Scope::Home(i) => (6, i),
    }
}

fn push_meta(out: &mut String, pid: u16, name: &str) {
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        json_escape(name)
    ));
}

/// Renders events plus the sampler time-series as a Chrome-trace JSON
/// document (load via `chrome://tracing` or <https://ui.perfetto.dev>).
#[must_use]
pub fn to_chrome_trace(events: &[TraceEvent], samples: &[IntervalSample]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };
    for (pid, name) in [
        (1, "SMs"),
        (2, "L2 banks"),
        (3, "NoC"),
        (4, "DRAM"),
        (5, "Devices"),
        (6, "Home"),
    ] {
        sep(&mut out);
        push_meta(&mut out, pid, name);
    }
    // One thread_name record per distinct scope, so every thread row
    // (not just the process groups) is labelled in chrome://tracing.
    let mut scopes: Vec<Scope> = events.iter().map(|e| e.scope).collect();
    scopes.sort_by_key(|&s| pid_tid(s));
    scopes.dedup();
    for scope in scopes {
        let (pid, tid) = pid_tid(scope);
        sep(&mut out);
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(&scope.to_string())
        ));
    }
    for e in events {
        let (pid, tid) = pid_tid(e.scope);
        sep(&mut out);
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{},\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"detail\":\"{}\"}}}}",
            e.kind.name(),
            e.kind.class().name(),
            e.cycle.0,
            json_escape(&e.kind.to_string())
        ));
    }
    for s in samples {
        for (name, value) in [
            ("ipc", s.ipc()),
            ("expired_miss_rate", s.expired_miss_rate()),
            (
                "stall_cycles_per_cycle",
                if s.delta.cycles.0 == 0 {
                    0.0
                } else {
                    s.delta.sm.total_stall_cycles() as f64 / s.delta.cycles.0 as f64
                },
            ),
            (
                "noc_flits_per_cycle",
                if s.delta.cycles.0 == 0 {
                    0.0
                } else {
                    s.delta.noc.flits as f64 / s.delta.cycles.0 as f64
                },
            ),
        ] {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"tid\":0,\
                 \"args\":{{\"{name}\":{:.6}}}}}",
                s.end.0, value
            ));
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Renders events one per line (`[cycle] scope: detail`), the
/// machine-greppable dump.
#[must_use]
pub fn to_lines(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use gtsc_types::{BlockAddr, Cycle, SimStats};

    fn demo_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                cycle: Cycle(1),
                scope: Scope::Sm(0),
                kind: EventKind::ColdMiss {
                    block: BlockAddr(4),
                    warp: 2,
                },
            },
            TraceEvent {
                cycle: Cycle(9),
                scope: Scope::L2Bank(1),
                kind: EventKind::LeaseGrant {
                    block: BlockAddr(4),
                    wts: 0,
                    rts: 10,
                },
            },
        ]
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb"), "a\\nb");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn chrome_trace_has_events_and_counters() {
        let mut stats = SimStats {
            cycles: Cycle(100),
            ..SimStats::default()
        };
        stats.sm.issued = 50;
        let sample = IntervalSample {
            start: Cycle(0),
            end: Cycle(100),
            delta: stats,
        };
        let json = to_chrome_trace(&demo_events(), &[sample]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with('}'));
        assert!(json.contains("\"name\":\"cold_miss\""), "{json}");
        assert!(json.contains("\"cat\":\"lease\""), "{json}");
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("\"ipc\":0.500000"), "{json}");
        // Every distinct scope in the events gets a thread_name row.
        assert!(
            json.contains("\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0"),
            "{json}"
        );
        assert!(json.contains("\"args\":{\"name\":\"sm0\"}"), "{json}");
        assert!(json.contains("\"args\":{\"name\":\"l2[1]\"}"), "{json}");
        // Balanced braces/brackets — a cheap well-formedness check on
        // top of the CI job's real JSON parser.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn lines_render_one_event_per_line() {
        let dump = to_lines(&demo_events());
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("sm0"));
        assert!(lines[1].contains("l2[1]"));
        assert!(lines[1].contains("lease grant"));
    }
}
